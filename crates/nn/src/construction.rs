//! The explicit memorization construction of Theorem 3.4 / Algorithm 1.
//!
//! The paper proves its approximation bound by *constructing* a two-hidden-
//! layer ReLU network out of `k = (t+1)^d` "g-units", each of which pins the
//! network's value at one vertex of a uniform grid over `[0,1]^d`:
//!
//! ```text
//!   ĝ_i(x) = a_i · σ( Σ_r −M·σ(−x_r + π_r^i / t) + 1/t )
//!   f̂(x)   = b + Σ_i ĝ_i(x)
//! ```
//!
//! Iterating the grid vertices in base-(t+1) order and setting
//! `a_i = t · (f(π^i/t) − ŷ)` makes the network *exact* at every vertex
//! (Lemma A.1) while keeping it Lipschitz-bounded inside each cell
//! (Lemma A.2), yielding the `3ρd/t` 1-norm error bound.
//!
//! This module implements the construction both as a compact [`GridNet`]
//! evaluator (the "CS" method of Sec. A.5) and as a conversion to a standard
//! [`Mlp`] so it can seed SGD training ("CS+SGD").

use crate::activation::Activation;
use crate::linalg::Matrix;
use crate::mlp::{Dense, Mlp};
use crate::NnError;

/// How to pick the slope constant `M` of the g-units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlopeMode {
    /// `M = 1`, the choice used for the tight low-dimensional bound
    /// (Lemma A.2 part (c), d ≤ 3).
    Unit,
    /// The value from the proof of Lemma A.3 that balances the constant and
    /// sloped regions of each cell: `M = 1 / (1 − (1 − 1/(k·d²·2^(d−1)))^(1/d))`.
    LemmaA3,
    /// An explicit caller-chosen value (must be ≥ 1).
    Fixed(f64),
}

/// The constructed memorization network in its natural compact form.
#[derive(Debug, Clone)]
pub struct GridNet {
    /// Input dimensionality `d`.
    d: usize,
    /// Grid resolution: `t+1` vertices per axis.
    t: usize,
    /// Slope constant `M ≥ 1`.
    m: f64,
    /// Output bias `b = f(0)`.
    bias: f64,
    /// Per-unit output coefficients `a_i` for `i = 1..k` (unit 0 is the bias).
    coeffs: Vec<f64>,
    /// Per-unit grid vertex `π^i / t`, flattened `k × d` row-major.
    anchors: Vec<f64>,
}

/// Decode integer `i` into its base-(t+1) digit vector `π^i` of length `d`,
/// most significant digit first (matching the paper's ordering).
pub fn vertex_digits(i: usize, t: usize, d: usize) -> Vec<usize> {
    let base = t + 1;
    let mut digits = vec![0usize; d];
    let mut rem = i;
    for r in (0..d).rev() {
        digits[r] = rem % base;
        rem /= base;
    }
    debug_assert_eq!(rem, 0, "vertex index out of range");
    digits
}

impl GridNet {
    /// Run Algorithm 1: construct the network memorizing `f` on the uniform
    /// grid with parameter `t` over `[0,1]^d`.
    ///
    /// Complexity is `O(k² d)` with `k = (t+1)^d`; the construction is a
    /// preprocessing step, mirroring the paper.
    pub fn construct(
        f: &dyn Fn(&[f64]) -> f64,
        d: usize,
        t: usize,
        slope: SlopeMode,
    ) -> Result<Self, NnError> {
        if d == 0 || t == 0 {
            return Err(NnError::BadArchitecture(format!(
                "d={d}, t={t} must be positive"
            )));
        }
        let k = (t + 1).pow(d as u32);
        let m = match slope {
            SlopeMode::Unit => 1.0,
            SlopeMode::Fixed(v) => {
                if v < 1.0 {
                    return Err(NnError::BadArchitecture(format!("M={v} must be >= 1")));
                }
                v
            }
            SlopeMode::LemmaA3 => {
                let kd = k as f64 * (d * d) as f64 * 2f64.powi(d as i32 - 1);
                let inner: f64 = 1.0 - 1.0 / kd;
                1.0 / (1.0 - inner.powf(1.0 / d as f64))
            }
        };
        let tf = t as f64;
        let zero = vec![0.0; d];
        let bias = f(&zero);
        let mut net = GridNet {
            d,
            t,
            m,
            bias,
            coeffs: Vec::with_capacity(k - 1),
            anchors: Vec::with_capacity((k - 1) * d),
        };
        let mut point = vec![0.0; d];
        for i in 1..k {
            let digits = vertex_digits(i, t, d);
            for (p, dig) in point.iter_mut().zip(&digits) {
                *p = *dig as f64 / tf;
            }
            let y_hat = net.forward(&point);
            let a_i = tf * (f(&point) - y_hat);
            net.coeffs.push(a_i);
            net.anchors.extend_from_slice(&point);
        }
        Ok(net)
    }

    /// Evaluate the compact form: `b + Σ_i a_i σ(Σ_r −M σ(−x_r + anchor) + 1/t)`.
    pub fn forward(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.d, "input dim mismatch");
        let inv_t = 1.0 / self.t as f64;
        let mut out = self.bias;
        for (ai, anchor) in self.coeffs.iter().zip(self.anchors.chunks_exact(self.d)) {
            let mut inner = inv_t;
            for (xr, br) in x.iter().zip(anchor) {
                let h = (br - xr).max(0.0); // σ(−x_r + b_r)
                inner -= self.m * h;
                if inner <= 0.0 {
                    // Remaining terms only decrease `inner`; the unit is off.
                    break;
                }
            }
            if inner > 0.0 {
                out += ai * inner;
            }
        }
        out
    }

    /// Number of g-units (`k − 1`; the 0-vertex is absorbed into the bias).
    pub fn units(&self) -> usize {
        self.coeffs.len()
    }

    /// Grid resolution parameter `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Slope constant `M`.
    pub fn slope(&self) -> f64 {
        self.m
    }

    /// Tunable-parameter count as in Lemma A.4: the `a_i`, the anchors
    /// `b_{j,i}`, and the output bias.
    pub fn param_count(&self) -> usize {
        self.coeffs.len() + self.anchors.len() + 1
    }

    /// Convert to a standard 2-hidden-layer [`Mlp`]:
    ///
    /// * layer 1 (`units·d` neurons): neuron `(i,r)` computes `σ(−x_r + b_{r,i})`,
    /// * layer 2 (`units` neurons): neuron `i` computes `σ(−M Σ_r h_{i,r} + 1/t)`,
    /// * output: `Σ_i a_i z_i + b`.
    ///
    /// The dense form materializes the construction's sparse connectivity
    /// with explicit zeros, so it can be trained further with SGD
    /// ("CS+SGD", Sec. A.5 / Fig. 19).
    pub fn to_mlp(&self) -> Mlp {
        let units = self.units();
        let d = self.d;
        let inv_t = 1.0 / self.t as f64;

        let mut w1 = Matrix::zeros(units * d, d);
        let mut b1 = vec![0.0; units * d];
        for (i, anchor) in self.anchors.chunks_exact(d).enumerate() {
            for (r, br) in anchor.iter().enumerate() {
                w1.set(i * d + r, r, -1.0);
                b1[i * d + r] = *br;
            }
        }

        let mut w2 = Matrix::zeros(units, units * d);
        let b2 = vec![inv_t; units];
        for i in 0..units {
            for r in 0..d {
                w2.set(i, i * d + r, -self.m);
            }
        }

        let mut w3 = Matrix::zeros(1, units);
        for (i, a) in self.coeffs.iter().enumerate() {
            w3.set(0, i, *a);
        }

        Mlp::from_layers(vec![
            Dense {
                weights: w1,
                biases: b1,
                activation: Activation::Relu,
            },
            Dense {
                weights: w2,
                biases: b2,
                activation: Activation::Relu,
            },
            Dense {
                weights: w3,
                biases: vec![self.bias],
                activation: Activation::Identity,
            },
        ])
        .expect("construction dimensions are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lipschitz_2d(x: &[f64]) -> f64 {
        // ρ-Lipschitz in 1-norm with ρ = 1.
        0.5 * x[0] + 0.5 * (1.0 - x[1])
    }

    #[test]
    fn vertex_digits_base_representation() {
        // Paper example: t = 3, π^6 = (1, 2) since 6 = 1·4 + 2.
        assert_eq!(vertex_digits(6, 3, 2), vec![1, 2]);
        assert_eq!(vertex_digits(0, 3, 2), vec![0, 0]);
        assert_eq!(vertex_digits(15, 3, 2), vec![3, 3]);
    }

    #[test]
    fn memorizes_all_grid_vertices_exactly() {
        // Lemma A.1: f̂(p) = f(p) for every grid vertex p.
        let t = 3;
        let net = GridNet::construct(&lipschitz_2d, 2, t, SlopeMode::LemmaA3).unwrap();
        for i in 0..(t + 1) * (t + 1) {
            let dig = vertex_digits(i, t, 2);
            let p: Vec<f64> = dig.iter().map(|&v| v as f64 / t as f64).collect();
            let err = (net.forward(&p) - lipschitz_2d(&p)).abs();
            assert!(err < 1e-9, "vertex {p:?}: err {err}");
        }
    }

    #[test]
    fn memorizes_in_three_dimensions() {
        let f = |x: &[f64]| x[0] * 0.3 + x[1] * 0.2 - x[2] * 0.4 + 0.5;
        let t = 2;
        let net = GridNet::construct(&f, 3, t, SlopeMode::Unit).unwrap();
        for i in 0..(t + 1usize).pow(3) {
            let dig = vertex_digits(i, t, 3);
            let p: Vec<f64> = dig.iter().map(|&v| v as f64 / t as f64).collect();
            assert!((net.forward(&p) - f(&p)).abs() < 1e-9, "vertex {p:?}");
        }
    }

    #[test]
    fn one_norm_error_within_theorem_bound() {
        // Theorem 3.4 (a): ‖f − f̂‖₁ ≤ 3ρd/t for the LemmaA3 slope.
        let (d, t, rho) = (2usize, 8usize, 1.0f64);
        let net = GridNet::construct(&lipschitz_2d, d, t, SlopeMode::LemmaA3).unwrap();
        // Estimate the 1-norm integral on a fine grid.
        let steps = 60;
        let mut acc = 0.0;
        for i in 0..steps {
            for j in 0..steps {
                let p = [
                    (i as f64 + 0.5) / steps as f64,
                    (j as f64 + 0.5) / steps as f64,
                ];
                acc += (net.forward(&p) - lipschitz_2d(&p)).abs();
            }
        }
        let integral = acc / (steps * steps) as f64;
        let bound = 3.0 * rho * d as f64 / t as f64;
        assert!(integral <= bound, "integral {integral} > bound {bound}");
    }

    #[test]
    fn sup_norm_error_within_theorem_bound_low_dim() {
        // Theorem 3.4 (b): for d <= 3 with M = 1, ‖f − f̂‖∞ ≤ 37ρd/t.
        let (d, t, rho) = (2usize, 6usize, 1.0f64);
        let net = GridNet::construct(&lipschitz_2d, d, t, SlopeMode::Unit).unwrap();
        let steps = 80;
        let mut sup: f64 = 0.0;
        for i in 0..=steps {
            for j in 0..=steps {
                let p = [i as f64 / steps as f64, j as f64 / steps as f64];
                sup = sup.max((net.forward(&p) - lipschitz_2d(&p)).abs());
            }
        }
        let bound = 37.0 * rho * d as f64 / t as f64;
        assert!(sup <= bound, "sup {sup} > bound {bound}");
    }

    #[test]
    fn mlp_conversion_agrees_with_compact_form() {
        let net = GridNet::construct(&lipschitz_2d, 2, 4, SlopeMode::LemmaA3).unwrap();
        let mlp = net.to_mlp();
        assert_eq!(mlp.input_dim(), 2);
        for i in 0..50 {
            let x = [(i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0];
            let a = net.forward(&x);
            let b = mlp.predict(&x);
            assert!((a - b).abs() < 1e-9, "x {x:?}: {a} vs {b}");
        }
    }

    #[test]
    fn unit_count_and_params() {
        let t = 3;
        let net = GridNet::construct(&lipschitz_2d, 2, t, SlopeMode::Unit).unwrap();
        let k = (t + 1) * (t + 1);
        assert_eq!(net.units(), k - 1);
        assert_eq!(net.param_count(), (k - 1) + (k - 1) * 2 + 1);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(GridNet::construct(&lipschitz_2d, 0, 3, SlopeMode::Unit).is_err());
        assert!(GridNet::construct(&lipschitz_2d, 2, 0, SlopeMode::Unit).is_err());
        assert!(GridNet::construct(&lipschitz_2d, 2, 3, SlopeMode::Fixed(0.5)).is_err());
    }

    #[test]
    fn lemma_a3_slope_is_at_least_one() {
        for d in 1..=4usize {
            let f = |x: &[f64]| x.iter().sum::<f64>();
            let net = GridNet::construct(&f, d, 2, SlopeMode::LemmaA3).unwrap();
            assert!(net.slope() >= 1.0, "d={d}: M={}", net.slope());
        }
    }

    #[test]
    fn constant_function_needs_only_bias() {
        let f = |_: &[f64]| 0.75;
        let net = GridNet::construct(&f, 2, 3, SlopeMode::Unit).unwrap();
        // All coefficients should be ~0: nothing beyond the bias is needed.
        assert!(net.coeffs.iter().all(|a| a.abs() < 1e-9));
        assert!((net.forward(&[0.123, 0.456]) - 0.75).abs() < 1e-9);
    }
}
