//! Adversarial tests for the NSKW wire protocol, mirroring the NSK2
//! container suite (`persist_corruption.rs`): every corruption of the
//! byte stream — truncated frames, single-byte flips, oversized
//! declared lengths, garbage prologues — must come back as a typed
//! [`NetError`], never a panic; and on a live server a violating
//! connection is closed with one typed [`Frame::Error`] farewell while
//! every other connection keeps being served, bitwise-correct.

use neurosketch::deploy::LiveDeployment;
use neurosketch::net::{
    decode_frame, encode_frame, Frame, NetClient, NetError, NetOptions, NetServer, FRAME_HEADER,
    NET_MAGIC, NET_VERSION,
};
use neurosketch::{Deployment, NeuroSketch, NeuroSketchConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A canonical query frame to corrupt (built fresh per case — cheap).
fn sample_frame() -> Vec<u8> {
    encode_frame(&Frame::Query {
        id: 42,
        query: vec![0.25, 0.75, 0.5],
    })
}

/// Decoding must be total: typed error, incomplete, or a full decode —
/// never a panic — for any damage the properties below inflict.
fn decode_is_total(bytes: &[u8], max_payload: u32) {
    let _ = decode_frame(bytes, max_payload);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any strict prefix of a valid frame either asks for more bytes
    /// or fails typed — and once the magic survived the cut, the error
    /// is never a bad-magic report.
    #[test]
    fn truncation_never_panics(frac in 0.0f64..1.0) {
        let frame = sample_frame();
        let cut = ((frame.len() - 1) as f64 * frac) as usize;
        match decode_frame(&frame[..cut], u32::MAX) {
            Ok(Some(_)) => prop_assert!(false, "a strict prefix decoded whole"),
            Ok(None) => {}
            Err(e) => prop_assert!(
                cut < 4 || !matches!(e, NetError::BadMagic { .. }),
                "magic was intact at cut {cut}: {e}"
            ),
        }
    }

    /// Every single-byte flip anywhere in a frame is refused (or, for
    /// flips that inflate the declared length, stalls waiting for
    /// bytes that never come) — never a silent mis-decode, never a
    /// panic.
    #[test]
    fn byte_flips_never_yield_a_wrong_frame(pos_frac in 0.0f64..1.0, flip in 1u32..256) {
        let mut frame = sample_frame();
        let pos = ((frame.len() - 1) as f64 * pos_frac) as usize;
        frame[pos] ^= flip as u8;
        match decode_frame(&frame, u32::MAX) {
            Ok(Some((decoded, _))) => {
                prop_assert!(false, "flip at {pos} decoded to {decoded:?}")
            }
            Ok(None) => prop_assert!(
                (6..FRAME_HEADER).contains(&pos),
                "flip at {pos} stalled the decoder"
            ),
            Err(_) => {}
        }
    }

    /// A header declaring an absurd payload length is refused as soon
    /// as the header is complete — before any payload is buffered —
    /// whenever it exceeds the negotiated cap.
    #[test]
    fn oversized_declared_lengths_are_refused_at_the_header(
        declared in 0u32..u32::MAX,
        cap in 1u32..1_048_576,
    ) {
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&NET_MAGIC);
        hdr.push(NET_VERSION);
        hdr.push(1); // query kind
        hdr.extend_from_slice(&declared.to_le_bytes());
        match decode_frame(&hdr, cap) {
            Err(NetError::Oversized { declared: d, max }) => {
                prop_assert_eq!((d, max), (declared, cap));
                prop_assert!(declared > cap);
            }
            Ok(None) => prop_assert!(declared <= cap),
            other => prop_assert!(false, "unexpected: {other:?}"),
        }
    }

    /// Garbage prologues of any length fail typed (or wait for the
    /// bytes that could still make them valid) — the decoder is total.
    #[test]
    fn garbage_prologues_never_panic(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        decode_is_total(&raw, 4096);
    }

    /// Valid frames embedded at arbitrary offsets inside garbage still
    /// never panic the decoder (it may refuse the garbage in front —
    /// that is the point).
    #[test]
    fn garbage_wrapped_frames_never_panic(
        prefix in prop::collection::vec(0u32..256, 0..32),
        suffix in prop::collection::vec(0u32..256, 0..32),
    ) {
        let mut raw: Vec<u8> = prefix.iter().map(|&b| b as u8).collect();
        raw.extend_from_slice(&sample_frame());
        raw.extend(suffix.iter().map(|&b| b as u8));
        decode_is_total(&raw, u32::MAX);
    }
}

/// Shared fixture: a small trained sketch behind a [`LiveDeployment`].
fn live_fixture() -> (Arc<LiveDeployment>, Vec<Vec<f64>>, Vec<f64>) {
    let queries: Vec<Vec<f64>> = (0..160)
        .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
        .collect();
    let labels: Vec<f64> = queries.iter().map(|q| 7.0 * q[0] - 3.0 * q[1]).collect();
    let mut cfg = NeuroSketchConfig::small();
    cfg.tree_height = 2;
    cfg.target_partitions = 4;
    cfg.train.epochs = 5;
    let (sketch, _) = NeuroSketch::build_from_labeled(&queries, &labels, &cfg).unwrap();
    let (expected, _) = Deployment::answer_batch(&sketch, &queries);
    (Arc::new(LiveDeployment::new(sketch, 0)), queries, expected)
}

/// Spawn a serving loop; returns (addr, shutdown flag, join handle).
type ServerHandle = (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<NetServer>,
);

fn spawn_server(live: Arc<LiveDeployment>, opts: NetOptions) -> ServerHandle {
    let mut server = NetServer::bind("127.0.0.1:0", live, 2, opts).unwrap();
    let addr = server.local_addr();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let handle = std::thread::spawn(move || {
        server.serve(&flag);
        server
    });
    (addr, shutdown, handle)
}

/// A connection spraying damaged frames gets a typed [`Frame::Error`]
/// and a close; a well-behaved connection opened alongside it keeps
/// receiving bitwise-correct answers. One bad client never poisons
/// another.
#[test]
fn corrupt_client_is_isolated_from_good_clients() {
    let (live, queries, expected) = live_fixture();
    let (addr, shutdown, handle) = spawn_server(live, NetOptions::default());

    let mut good = NetClient::connect(addr).unwrap();
    good.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let a = good.query(&queries[0]).unwrap();
    assert_eq!(a.value.to_bits(), expected[0].to_bits());

    // Damage regimes, each on a fresh connection: flipped checksum,
    // bad magic, bad version, unknown kind, oversized declared length,
    // a wrong-direction (server-only) frame, and a mid-frame hangup.
    let mut flipped = sample_frame();
    let last = flipped.len() - 1;
    flipped[last] ^= 0xFF;
    let damages: Vec<Vec<u8>> = vec![
        flipped,
        b"JUNKJUNKJUNK".to_vec(),
        {
            let mut f = sample_frame();
            f[4] = 9;
            f
        },
        {
            let mut f = sample_frame();
            f[5] = 99;
            f
        },
        {
            let mut hdr = Vec::new();
            hdr.extend_from_slice(&NET_MAGIC);
            hdr.push(NET_VERSION);
            hdr.push(1);
            hdr.extend_from_slice(&u32::MAX.to_le_bytes());
            hdr
        },
        encode_frame(&Frame::Answer {
            id: 1,
            generation: 0,
            value: 1.0,
        }),
    ];
    for damage in damages {
        let mut bad = NetClient::connect(addr).unwrap();
        bad.set_timeout(Some(Duration::from_secs(10))).unwrap();
        bad.send_raw(&damage).unwrap();
        // The server's farewell is a typed error frame, then a close.
        match bad.recv() {
            Ok(Frame::Error { .. }) => {}
            Ok(other) => panic!("expected an error farewell, got {other:?}"),
            Err(NetError::Truncated { .. }) | Err(NetError::Io(_)) => {
                // Close raced ahead of the farewell — acceptable; the
                // connection is down either way.
            }
            Err(e) => panic!("unexpected client error: {e}"),
        }
        // The good client is unaffected, still bitwise-correct.
        let i = 1 + (damage.len() % (queries.len() - 1));
        let a = good.query(&queries[i]).unwrap();
        assert_eq!(a.value.to_bits(), expected[i].to_bits());
    }

    // A client that hangs up mid-frame must not wedge the server.
    {
        let mut partial = NetClient::connect(addr).unwrap();
        partial.send_raw(&sample_frame()[..7]).unwrap();
    } // dropped here: EOF with a partial frame buffered
    let a = good.query(&queries[5]).unwrap();
    assert_eq!(a.value.to_bits(), expected[5].to_bits());

    shutdown.store(true, Ordering::Relaxed);
    let server = handle.join().unwrap();
    let stats = server.stats();
    assert!(
        stats.protocol_errors >= 6,
        "expected at least 6 typed violations, saw {}",
        stats.protocol_errors
    );
    assert_eq!(stats.answered, 8, "good client's answers: 1 + 6 + 1");
}

/// Frames split at every possible byte boundary across two writes
/// still decode whole: the server's incremental parser never treats a
/// short read as corruption.
#[test]
fn frames_fragmented_across_writes_decode_whole() {
    let (live, queries, expected) = live_fixture();
    let (addr, shutdown, handle) = spawn_server(live, NetOptions::default());

    let frame = encode_frame(&Frame::Query {
        id: 0,
        query: queries[3].clone(),
    });
    for cut in 1..frame.len() {
        let mut c = NetClient::connect(addr).unwrap();
        c.set_timeout(Some(Duration::from_secs(10))).unwrap();
        c.send_raw(&frame[..cut]).unwrap();
        std::thread::sleep(Duration::from_millis(1));
        c.send_raw(&frame[cut..]).unwrap();
        match c.recv().unwrap() {
            Frame::Answer { id, value, .. } => {
                assert_eq!(id, 0);
                assert_eq!(value.to_bits(), expected[3].to_bits(), "cut at {cut}");
            }
            other => panic!("cut at {cut}: {other:?}"),
        }
    }

    shutdown.store(true, Ordering::Relaxed);
    let server = handle.join().unwrap();
    assert_eq!(server.stats().protocol_errors, 0);
}

/// Pipelined garbage after valid frames: the valid prefix is served,
/// the garbage earns the typed farewell.
#[test]
fn valid_prefix_is_served_before_the_violation_closes() {
    let (live, queries, expected) = live_fixture();
    let (addr, shutdown, handle) = spawn_server(live, NetOptions::default());

    let mut c = NetClient::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut bytes = Vec::new();
    for (i, q) in queries.iter().enumerate().take(3) {
        bytes.extend_from_slice(&encode_frame(&Frame::Query {
            id: i as u64,
            query: q.clone(),
        }));
    }
    bytes.extend_from_slice(b"GARBAGE");
    c.send_raw(&bytes).unwrap();

    let mut answered = 0;
    let mut farewell = false;
    loop {
        match c.recv() {
            Ok(Frame::Answer { id, value, .. }) => {
                assert_eq!(value.to_bits(), expected[id as usize].to_bits());
                answered += 1;
            }
            Ok(Frame::Error { .. }) => {
                farewell = true;
                break;
            }
            Ok(other) => panic!("unexpected frame {other:?}"),
            Err(_) => break, // close raced the farewell
        }
    }
    // The three valid queries may be served or discarded depending on
    // whether the violation was parsed in the same pump; what must
    // never happen is a wrong answer or a panic. If anything was
    // answered it was bitwise-correct (asserted above).
    assert!(answered <= 3);
    assert!(farewell || answered <= 3);

    shutdown.store(true, Ordering::Relaxed);
    let server = handle.join().unwrap();
    assert_eq!(server.stats().protocol_errors, 1);
}
