//! Criterion benchmark behind Fig. 13: preprocessing costs — training-set
//! labeling, kd-tree partitioning + AQC merging, per-leaf model training
//! (batched hot path vs the per-example reference), and the forward-pass
//! cost of the theoretical construction (Sec. A.5).
//!
//! The workload is [`bench::perf::scenarios::build_scenario`] — the same
//! fixture `perfbench` times into `BENCH_build.json`, so criterion runs
//! and the tracked JSON trajectory measure the same thing.

use bench::perf::scenarios::build_scenario;
use criterion::{criterion_group, criterion_main, Criterion};
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use nn::construction::{GridNet, SlopeMode};
use nn::train::{train, train_per_example, TrainConfig};
use nn::Mlp;
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let sc = build_scenario(false);
    let engine = QueryEngine::new(&sc.data, 1);

    let mut group = c.benchmark_group("fig13_preprocessing");
    group.sample_size(10);

    group.bench_function("label_600_queries_exact", |b| {
        b.iter(|| {
            black_box(engine.label_batch(&sc.wl.predicate, Aggregate::Avg, &sc.wl.queries, 4))
        })
    });

    group.bench_function("build_sketch_h2_small", |b| {
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 2;
        cfg.target_partitions = 4;
        cfg.train.epochs = 15;
        b.iter(|| {
            black_box(NeuroSketch::build_from_labeled(&sc.wl.queries, &sc.labels, &cfg).unwrap())
        })
    });

    let train_cfg = TrainConfig {
        epochs: 40,
        patience: 0,
        ..TrainConfig::default()
    };
    group.bench_function("train_leaf_batched", |b| {
        b.iter(|| {
            let mut mlp = Mlp::new(&[2, 60, 30, 30, 1], 9);
            black_box(train(&mut mlp, &sc.wl.queries, &sc.labels, &train_cfg))
        })
    });
    group.bench_function("train_leaf_per_example", |b| {
        b.iter(|| {
            let mut mlp = Mlp::new(&[2, 60, 30, 30, 1], 9);
            black_box(train_per_example(
                &mut mlp,
                &sc.wl.queries,
                &sc.labels,
                &train_cfg,
            ))
        })
    });

    group.bench_function("construction_t8_d2", |b| {
        let f = |x: &[f64]| x[0] * 0.5 + x[1] * 0.25;
        b.iter(|| black_box(GridNet::construct(&f, 2, 8, SlopeMode::LemmaA3).unwrap()))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_build
}
criterion_main!(benches);
