//! A small SQL front-end for the RAQ form the paper targets (Sec. 2):
//!
//! ```sql
//! SELECT AVG(m) FROM t WHERE 0.1 <= a AND a < 0.4 AND b BETWEEN 0.2 AND 0.7
//! ```
//!
//! Supported grammar (case-insensitive keywords):
//!
//! * aggregates: `COUNT(col)`, `SUM(col)`, `AVG(col)`, `STD(col)`,
//!   `MEDIAN(col)`;
//! * conjunctions of per-column constraints, each either
//!   `lit <= col`, `lit < col`, `col < lit`, `col <= lit`,
//!   `col >= lit`, `col > lit`, or `col BETWEEN lit AND lit`
//!   (BETWEEN is half-open `[lo, hi)` here, matching the paper's ranges);
//! * no OR, no joins, no nesting — exactly the query family NeuroSketch
//!   models.
//!
//! [`parse`] produces a [`ParsedQuery`]; [`ParsedQuery::bind`] resolves
//! column names against a dataset and yields the `(Range, query-vector,
//! Aggregate)` triple the rest of the crate consumes.

use crate::aggregate::Aggregate;
use crate::predicate::Range;
use crate::QueryError;
use datagen::Dataset;

/// A parsed (but not yet column-resolved) RAQ.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// Aggregation function.
    pub agg: Aggregate,
    /// Name of the measure column.
    pub measure: String,
    /// Table name after FROM (informational).
    pub table: String,
    /// Per-column `(name, lo, hi)` constraints, half-open.
    pub constraints: Vec<(String, f64, f64)>,
}

/// Parse errors, pointing at the offending token.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    LParen,
    RParen,
    Le,
    Lt,
    Ge,
    Gt,
}

fn keyword(t: &Tok, kw: &str) -> bool {
    matches!(t, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
}

fn tokenize(sql: &str) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() || c == ',' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '<' | '>' => {
                let eq = chars.get(i + 1) == Some(&'=');
                out.push(match (c, eq) {
                    ('<', true) => Tok::Le,
                    ('<', false) => Tok::Lt,
                    ('>', true) => Tok::Ge,
                    ('>', false) => Tok::Gt,
                    _ => unreachable!(),
                });
                i += if eq { 2 } else { 1 };
            }
            c if c.is_ascii_digit() || c == '.' || c == '-' || c == '+' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '-' || chars[i] == '+')
                            && matches!(chars[i - 1], 'e' | 'E')))
                {
                    i += 1;
                }
                let s: String = chars[start..i].iter().collect();
                let v: f64 = s
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{s}`")))?;
                out.push(Tok::Num(v));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(ParseError(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

/// Parse one RAQ of the supported grammar.
pub fn parse(sql: &str) -> Result<ParsedQuery, ParseError> {
    let toks = tokenize(sql)?;
    let mut i = 0;
    let eat = |i: &mut usize, want: &str, toks: &[Tok]| -> Result<(), ParseError> {
        match toks.get(*i) {
            Some(t) if keyword(t, want) => {
                *i += 1;
                Ok(())
            }
            other => Err(ParseError(format!("expected {want}, got {other:?}"))),
        }
    };
    let ident = |i: &mut usize, toks: &[Tok]| -> Result<String, ParseError> {
        match toks.get(*i) {
            Some(Tok::Ident(s)) => {
                *i += 1;
                Ok(s.clone())
            }
            other => Err(ParseError(format!("expected identifier, got {other:?}"))),
        }
    };
    let num = |i: &mut usize, toks: &[Tok]| -> Result<f64, ParseError> {
        match toks.get(*i) {
            Some(Tok::Num(v)) => {
                *i += 1;
                Ok(*v)
            }
            other => Err(ParseError(format!("expected number, got {other:?}"))),
        }
    };

    eat(&mut i, "SELECT", &toks)?;
    let agg_name = ident(&mut i, &toks)?;
    let agg = match agg_name.to_ascii_uppercase().as_str() {
        "COUNT" => Aggregate::Count,
        "SUM" => Aggregate::Sum,
        "AVG" => Aggregate::Avg,
        "STD" | "STDEV" | "STDDEV" => Aggregate::Std,
        "MEDIAN" => Aggregate::Median,
        other => return Err(ParseError(format!("unknown aggregate `{other}`"))),
    };
    if toks.get(i) != Some(&Tok::LParen) {
        return Err(ParseError("expected ( after aggregate".into()));
    }
    i += 1;
    let measure = ident(&mut i, &toks)?;
    if toks.get(i) != Some(&Tok::RParen) {
        return Err(ParseError("expected ) after measure column".into()));
    }
    i += 1;
    eat(&mut i, "FROM", &toks)?;
    let table = ident(&mut i, &toks)?;

    // Optional WHERE with AND-chained constraints.
    let mut constraints: Vec<(String, f64, f64)> = Vec::new();
    if i < toks.len() {
        eat(&mut i, "WHERE", &toks)?;
        loop {
            // Forms: num OP col | col OP num | col BETWEEN num AND num.
            let (name, lo, hi) = match toks.get(i) {
                Some(Tok::Num(v)) => {
                    let v = *v;
                    i += 1;
                    let op = toks
                        .get(i)
                        .cloned()
                        .ok_or_else(|| ParseError("dangling comparison".into()))?;
                    i += 1;
                    let col = ident(&mut i, &toks)?;
                    match op {
                        // lit <= col / lit < col: lower bound.
                        Tok::Le | Tok::Lt => (col, v, f64::INFINITY),
                        // lit >= col / lit > col: upper bound.
                        Tok::Ge | Tok::Gt => (col, f64::NEG_INFINITY, v),
                        other => return Err(ParseError(format!("bad operator {other:?}"))),
                    }
                }
                Some(Tok::Ident(_)) => {
                    let col = ident(&mut i, &toks)?;
                    match toks.get(i) {
                        Some(t) if keyword(t, "BETWEEN") => {
                            i += 1;
                            let lo = num(&mut i, &toks)?;
                            eat(&mut i, "AND", &toks)?;
                            let hi = num(&mut i, &toks)?;
                            (col, lo, hi)
                        }
                        Some(Tok::Le) | Some(Tok::Lt) => {
                            i += 1;
                            let v = num(&mut i, &toks)?;
                            (col, f64::NEG_INFINITY, v)
                        }
                        Some(Tok::Ge) | Some(Tok::Gt) => {
                            i += 1;
                            let v = num(&mut i, &toks)?;
                            (col, v, f64::INFINITY)
                        }
                        other => return Err(ParseError(format!("bad constraint at {other:?}"))),
                    }
                }
                other => return Err(ParseError(format!("bad constraint at {other:?}"))),
            };
            // Merge with any existing constraint on the same column.
            if let Some(existing) = constraints
                .iter_mut()
                .find(|(n, _, _)| n.eq_ignore_ascii_case(&name))
            {
                existing.1 = existing.1.max(lo);
                existing.2 = existing.2.min(hi);
            } else {
                constraints.push((name, lo, hi));
            }
            match toks.get(i) {
                None => break,
                Some(t) if keyword(t, "AND") => i += 1,
                other => return Err(ParseError(format!("expected AND, got {other:?}"))),
            }
        }
    }
    Ok(ParsedQuery {
        agg,
        measure,
        table,
        constraints,
    })
}

impl ParsedQuery {
    /// Resolve column names against a dataset: returns the predicate, the
    /// query vector, the aggregate, and the measure column index. Open
    /// bounds default to the column's normalized domain `[0, 1]`.
    pub fn bind(&self, data: &Dataset) -> Result<(Range, Vec<f64>, Aggregate, usize), QueryError> {
        let find = |name: &str| -> Result<usize, QueryError> {
            data.column_names()
                .iter()
                .position(|c| c.eq_ignore_ascii_case(name))
                .ok_or_else(|| QueryError::BadConfig(format!("no column `{name}`")))
        };
        let measure = find(&self.measure)?;
        if self.constraints.is_empty() {
            return Err(QueryError::BadConfig(
                "need at least one WHERE constraint to form a range query".into(),
            ));
        }
        let mut attrs = Vec::with_capacity(self.constraints.len());
        let mut cs = Vec::with_capacity(self.constraints.len());
        let mut rs = Vec::with_capacity(self.constraints.len());
        for (name, lo, hi) in &self.constraints {
            let a = find(name)?;
            let lo = lo.max(0.0);
            let hi = hi.min(1.0);
            if hi <= lo {
                return Err(QueryError::BadConfig(format!(
                    "empty range on `{name}`: [{lo}, {hi})"
                )));
            }
            attrs.push(a);
            cs.push(lo);
            rs.push(hi - lo);
        }
        let pred = Range::new(attrs, data.dims())?;
        let mut q = cs;
        q.extend_from_slice(&rs);
        Ok((pred, q, self.agg, measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::QueryEngine;
    use datagen::simple::uniform;

    #[test]
    fn parses_full_query() {
        let p = parse("SELECT AVG(m) FROM t WHERE 0.1 <= a AND a < 0.4 AND b BETWEEN 0.2 AND 0.7")
            .unwrap();
        assert_eq!(p.agg, Aggregate::Avg);
        assert_eq!(p.measure, "m");
        assert_eq!(p.table, "t");
        assert_eq!(
            p.constraints,
            vec![("a".into(), 0.1, 0.4), ("b".into(), 0.2, 0.7)]
        );
    }

    #[test]
    fn merges_constraints_on_same_column() {
        let p = parse("SELECT COUNT(m) FROM t WHERE a >= 0.1 AND a < 0.6").unwrap();
        assert_eq!(p.constraints, vec![("a".into(), 0.1, 0.6)]);
    }

    #[test]
    fn all_aggregates_parse() {
        for (kw, agg) in [
            ("COUNT", Aggregate::Count),
            ("SUM", Aggregate::Sum),
            ("AVG", Aggregate::Avg),
            ("STD", Aggregate::Std),
            ("MEDIAN", Aggregate::Median),
        ] {
            let p = parse(&format!("SELECT {kw}(x) FROM t WHERE x < 0.5")).unwrap();
            assert_eq!(p.agg, agg, "{kw}");
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT MAX(m) FROM t").is_err());
        assert!(parse("SELECT AVG(m) FROM t WHERE").is_err());
        assert!(parse("SELECT AVG(m) FROM t WHERE a ! 0.5").is_err());
        assert!(parse("SELECT AVG(m) FROM t WHERE a < 0.5 OR b < 0.5").is_err());
    }

    #[test]
    fn bind_and_execute_matches_manual_query() {
        let data = uniform(2_000, 3, 1); // columns x0, x1, x2
        let engine = QueryEngine::new(&data, 2);
        let p = parse("SELECT SUM(x2) FROM t WHERE x0 BETWEEN 0.2 AND 0.6").unwrap();
        let (pred, q, agg, measure) = p.bind(&data).unwrap();
        assert_eq!(measure, 2);
        let sql_ans = QueryEngine::new(&data, measure).answer(&pred, agg, &q);
        // Manual equivalent.
        let manual_pred = crate::predicate::Range::new(vec![0], 3).unwrap();
        let manual = engine.answer(&manual_pred, Aggregate::Sum, &[0.2, 0.4]);
        assert!((sql_ans - manual).abs() < 1e-9);
    }

    #[test]
    fn bind_rejects_unknown_columns_and_empty_ranges() {
        let data = uniform(10, 2, 2);
        let p = parse("SELECT AVG(nope) FROM t WHERE x0 < 0.5").unwrap();
        assert!(p.bind(&data).is_err());
        let p = parse("SELECT AVG(x1) FROM t WHERE x0 BETWEEN 0.6 AND 0.4").unwrap();
        assert!(p.bind(&data).is_err());
        let p = parse("SELECT AVG(x1) FROM t").unwrap();
        assert!(p.bind(&data).is_err());
    }

    #[test]
    fn scientific_notation_and_reversed_comparisons() {
        let p = parse("SELECT COUNT(m) FROM t WHERE 1e-2 <= a AND 0.9 >= a").unwrap();
        assert_eq!(p.constraints, vec![("a".into(), 0.01, 0.9)]);
    }
}
