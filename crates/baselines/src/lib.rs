//! # baselines — the comparators of the paper's evaluation (Sec. 5.1)
//!
//! Four AQP engines, all built from scratch:
//!
//! * [`tree_agg::TreeAgg`] — the paper's own sampling baseline: a uniform
//!   sample indexed by an R-tree; answers are exact aggregates over the
//!   matching samples, scaled up for COUNT/SUM.
//! * [`verdict::StratifiedSampler`] — a VerdictDB-style engine: stratified
//!   ("scrambled") samples with per-stratum weights.
//! * [`dbest::DbEst`] — a DBEst-style *model-of-data* engine: a density
//!   model plus a regression model per (active attribute, measure) pair,
//!   combined by numeric integration.
//! * [`deepdb::Spn`] — a DeepDB-style sum-product network learned over the
//!   data with correlation-based column splits and 2-means row clustering.
//! * [`histogram::AviHistogram`] — the classic non-learned synopsis:
//!   per-attribute histograms under attribute-value independence.
//!
//! All engines implement [`AqpEngine`]; capability differences mirror the
//! paper (e.g. the model-based engines cannot answer the rotated-rectangle
//! MEDIAN query of Table 2, and VerdictDB/DeepDB decline STDEV).

pub mod dbest;
pub mod deepdb;
pub mod histogram;
pub mod tree_agg;
pub mod verdict;

use query::aggregate::Aggregate;
use query::predicate::PredicateFn;

/// Why an engine declined a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Unsupported {
    /// The aggregate is outside the engine's model class.
    Aggregate(Aggregate),
    /// The predicate cannot be expressed (e.g. not axis-aligned).
    Predicate(String),
    /// The query shape (e.g. number of active attributes) is unsupported.
    QueryShape(String),
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unsupported::Aggregate(a) => write!(f, "aggregate {} unsupported", a.name()),
            Unsupported::Predicate(s) => write!(f, "predicate unsupported: {s}"),
            Unsupported::QueryShape(s) => write!(f, "query shape unsupported: {s}"),
        }
    }
}

impl std::error::Error for Unsupported {}

/// A baseline approximate-query-processing engine.
pub trait AqpEngine: Send + Sync {
    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Approximate `f_D(q)`, or explain why the engine cannot answer.
    fn answer(&self, pred: &dyn PredicateFn, agg: Aggregate, q: &[f64])
        -> Result<f64, Unsupported>;

    /// Storage footprint in bytes (samples, histograms, or parameters),
    /// comparable with `NeuroSketch::storage_bytes`.
    fn storage_bytes(&self) -> usize;
}
