//! Fig. 14: confirming the DQD bound on synthetic distributions.
//!
//! COUNT queries over 1-D uniform, Gaussian and two-component-GMM data
//! with the corresponding closed-form LDQs (Examples 3.2/3.3). Panel (a):
//! with a fixed single-hidden-layer architecture, error falls as data
//! size `n` grows, ordered by LDQ (uniform < Gaussian < GMM). Panel (b):
//! fixing an error target, the smallest sufficient width — and hence
//! query time — shrinks as `n` grows.

use crate::common::ExperimentContext;
use datagen::simple::{gaussian, gmm2, uniform};
use datagen::Dataset;
use neurosketch::arch_search::smallest_width_for_error;
use neurosketch::ldq;
use neurosketch::NeuroSketch;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

/// Distribution parameters matching the LDQ examples.
const GAUSS_SIGMA: f64 = 0.15;
const GMM_SIGMA: f64 = 0.05;

/// One (distribution, n) measurement.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Distribution name.
    pub dist: &'static str,
    /// Closed-form LDQ of the COUNT query function.
    pub ldq: f64,
    /// Data size.
    pub n: usize,
    /// Panel (a): normalized MAE at the fixed architecture.
    pub nmae_fixed_arch: f64,
    /// Panel (b): smallest width reaching the target error (`None` when
    /// no candidate width reached it).
    pub width_for_target: Option<usize>,
    /// Panel (b): query time of that smallest model (µs).
    pub query_us: Option<f64>,
}

fn make_data(dist: &'static str, n: usize, seed: u64) -> Dataset {
    match dist {
        "uniform" => uniform(n, 1, seed),
        "gaussian" => gaussian(n, 1, 0.5, GAUSS_SIGMA, seed),
        "gmm" => gmm2(n, 0.3, 0.7, GMM_SIGMA, seed),
        _ => unreachable!("unknown distribution"),
    }
}

fn dist_ldq(dist: &str) -> f64 {
    match dist {
        "uniform" => ldq::ldq_uniform_count(),
        "gaussian" => ldq::ldq_gaussian_count(GAUSS_SIGMA),
        "gmm" => ldq::ldq_gmm_count(&[0.5, 0.5], &[GMM_SIGMA, GMM_SIGMA]),
        _ => unreachable!("unknown distribution"),
    }
}

/// Panel-(a) measurement for one `(dist, n, seed)` cell: label a
/// train/test split and train the fixed Sec. 5.7 architecture. The
/// labeled split and config are returned so [`run`] can reuse them for
/// panel (b) without re-labeling.
struct FixedArchCell {
    nmae: f64,
    train: Vec<Vec<f64>>,
    labels: Vec<f64>,
    test: Vec<Vec<f64>>,
    truth: Vec<f64>,
    cfg: neurosketch::NeuroSketchConfig,
}

fn fixed_arch_cell(
    dist: &'static str,
    n: usize,
    ctx: &ExperimentContext,
    seed: u64,
    train_budget: Option<(usize, usize)>,
) -> FixedArchCell {
    let data = make_data(dist, n, seed);
    let engine = QueryEngine::new(&data, 0);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 1,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: ctx.train_queries() + ctx.test_queries(),
        seed,
    })
    .expect("valid workload");
    let (train, test) = wl.split(ctx.test_queries());
    let labels = engine.label_batch(&wl.predicate, Aggregate::Count, &train, 4);
    let truth = engine.label_batch(&wl.predicate, Aggregate::Count, &test, 4);

    // Fixed architecture — 80-unit hidden layers, no partitioning
    // (paper Sec. 5.7).
    let mut cfg = ctx.ns_config();
    cfg.seed = seed;
    cfg.train.seed = seed;
    if let Some((epochs, patience)) = train_budget {
        cfg.train.epochs = epochs;
        cfg.train.patience = patience;
    }
    cfg.tree_height = 0;
    cfg.target_partitions = 1;
    cfg.depth = 3;
    cfg.l_first = 80;
    cfg.l_rest = 80;
    let (sketch, _) = NeuroSketch::build_from_labeled(&train, &labels, &cfg).expect("build");
    let preds: Vec<f64> = test.iter().map(|q| sketch.answer(q)).collect();
    let nmae = normalized_mae(&truth, &preds);
    FixedArchCell {
        nmae,
        train,
        labels,
        test,
        truth,
        cfg,
    }
}

/// Run the synthetic DQD study.
pub fn run(ctx: &ExperimentContext) -> Vec<Fig14Row> {
    let ns: Vec<usize> = if ctx.fast {
        vec![100, 1_000, 5_000]
    } else {
        vec![100, 1_000, 10_000, 100_000]
    };
    let target_err = if ctx.fast { 0.10 } else { 0.05 };
    let widths: Vec<usize> = vec![2, 4, 8, 16, 32, 64, 128];

    let mut rows = Vec::new();
    for dist in ["uniform", "gaussian", "gmm"] {
        for &n in &ns {
            let FixedArchCell {
                nmae: nmae_fixed_arch,
                train,
                labels,
                test,
                truth,
                cfg,
            } = fixed_arch_cell(dist, n, ctx, ctx.seed, None);

            // Panel (b): smallest width reaching the target.
            let found =
                smallest_width_for_error(&train, &labels, &test, &truth, &widths, target_err, &cfg);
            let (width_for_target, query_us) = match found {
                Some((w, small)) => {
                    let mut ws = nn::mlp::Workspace::default();
                    let (_, us) =
                        crate::common::time_queries(&test, |q| small.answer_with(&mut ws, q));
                    (Some(w), Some(us))
                }
                None => (None, None),
            };

            rows.push(Fig14Row {
                dist,
                ldq: dist_ldq(dist),
                n,
                nmae_fixed_arch,
                width_for_target,
                query_us,
            });
        }
    }
    rows
}

/// Print both panels.
pub fn print(rows: &[Fig14Row]) {
    println!("\n==== Fig. 14: DQD bound on synthetic datasets (COUNT) ====");
    println!(
        "{:<10} {:>8} {:>10} {:>14} {:>12} {:>12}",
        "dist", "LDQ", "n", "nMAE (fixed)", "min width", "query (us)"
    );
    for r in rows {
        println!(
            "{:<10} {:>8.2} {:>10} {:>14.4} {:>12} {:>12}",
            r.dist,
            r.ldq,
            r.n,
            r.nmae_fixed_arch,
            r.width_for_target.map_or("-".into(), |w| w.to_string()),
            r.query_us.map_or("-".into(), |t| format!("{t:.1}")),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ldq_ordering_matches_paper() {
        assert!(dist_ldq("uniform") < dist_ldq("gaussian"));
        assert!(dist_ldq("gaussian") < dist_ldq("gmm"));
    }

    #[test]
    fn error_improves_with_data_size() {
        // Panel (a)'s claims, tested where they are statistically
        // resolvable at smoke scale. Models must be *converged* for the
        // trends to emerge (the default 200-epoch budget plateaus the
        // Gaussian model at nMAE ~0.21), so use small workloads with a
        // to-convergence budget (800 epochs, patience 50) and average
        // the endpoints over a few seeds. The GMM model (highest LDQ)
        // converges too slowly for its n-trend to beat seed noise at
        // this scale, so for it we only require no degradation — while
        // asserting the panel's headline LDQ ordering, which holds with
        // wide margins.
        let ctx = ExperimentContext {
            scale: 0.05,
            seed: 42,
            fast: false,
        };
        let seeds = [42, 43, 44];
        let mean = |dist: &'static str, n: usize| {
            seeds
                .iter()
                .map(|&s| fixed_arch_cell(dist, n, &ctx, s, Some((800, 50))).nmae)
                .sum::<f64>()
                / seeds.len() as f64
        };
        let mut at_large = Vec::new();
        for dist in ["uniform", "gaussian", "gmm"] {
            let small = mean(dist, 100);
            let large = mean(dist, 5_000);
            if dist == "gmm" {
                assert!(
                    large < small * 1.15,
                    "{dist}: error should not grow with n ({small} -> {large})"
                );
            } else {
                assert!(
                    large < small,
                    "{dist}: error should fall with n ({small} -> {large})"
                );
            }
            at_large.push(large);
        }
        // Fixed n: error ordered by LDQ (uniform < gaussian < gmm).
        assert!(
            at_large[0] < at_large[1] && at_large[1] < at_large[2],
            "LDQ ordering violated at n=5000: {at_large:?}"
        );
    }
}
