//! Criterion benchmark behind Fig. 13: preprocessing costs — training-set
//! labeling, kd-tree partitioning + AQC merging, and per-leaf model
//! training — plus the forward-pass cost of the theoretical construction
//! (Sec. A.5).

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::simple::uniform;
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use nn::construction::{GridNet, SlopeMode};
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let data = uniform(5_000, 2, 3);
    let engine = QueryEngine::new(&data, 1);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 2,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: 600,
        seed: 2,
    })
    .expect("workload");
    let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &wl.queries, 4);

    let mut group = c.benchmark_group("fig13_preprocessing");
    group.sample_size(10);

    group.bench_function("label_600_queries_exact", |b| {
        b.iter(|| black_box(engine.label_batch(&wl.predicate, Aggregate::Avg, &wl.queries, 4)))
    });

    group.bench_function("build_sketch_h2_small", |b| {
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 2;
        cfg.target_partitions = 4;
        cfg.train.epochs = 15;
        b.iter(|| black_box(NeuroSketch::build_from_labeled(&wl.queries, &labels, &cfg).unwrap()))
    });

    group.bench_function("construction_t8_d2", |b| {
        let f = |x: &[f64]| x[0] * 0.5 + x[1] * 0.25;
        b.iter(|| black_box(GridNet::construct(&f, 2, 8, SlopeMode::LemmaA3).unwrap()))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_build
}
criterion_main!(benches);
