//! End-to-end serving lifecycle: **build → save (NSK2) → load → serve**.
//!
//! The paper's deployment model (Sec. 5.1) trains once, persists the
//! sketch, and serves queries at data-size-independent cost. This
//! example drives that pipeline with the repo's production pieces:
//!
//! 1. build a sketch + DQD router on a synthetic workload,
//! 2. save it as an NSK2 artifact (`neurosketch::persist`) in the
//!    requested parameter encoding (`--quant f32|f16|i8`),
//! 3. load it back and verify the loaded sketch answers **bitwise
//!    identically** to the same quantization applied to the in-memory
//!    sketch on the full workload,
//! 4. serve the workload through the batched, multi-threaded
//!    [`SketchServer`] and verify batched serving matches the loaded
//!    sketch's single-query answers bitwise.
//!
//! ```text
//! cargo run --release --example save_load_serve            # full scale
//! cargo run --release --example save_load_serve -- --fast  # CI smoke
//! cargo run --release --example save_load_serve -- --fast --quant i8
//! ```

use bench::perf::scenarios::query_scenario;
use neurosketch::deploy::Deployment;
use neurosketch::router::{DqdRouter, RoutingPolicy};
use neurosketch::serve::{ServeOptions, SketchServer};
use neurosketch::{persist, NeuroSketch, NeuroSketchConfig};
use nn::QuantMode;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let quant = match args.iter().position(|a| a == "--quant") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            QuantMode::parse(name).unwrap_or_else(|| {
                eprintln!("--quant needs one of: f32, f16, i8");
                std::process::exit(2);
            })
        }
        None => QuantMode::F32,
    };

    // 1. Build. Same scenario the tracked query-perf suite uses.
    let sc = query_scenario(fast);
    let mut cfg = NeuroSketchConfig::default();
    cfg.train.epochs = if fast { 20 } else { 60 };
    let t0 = Instant::now();
    let (sketch, report) =
        NeuroSketch::build_from_labeled(&sc.train, &sc.labels, &cfg).expect("sketch build");
    println!(
        "built: {} partitions, {} parameters, {:?}",
        sketch.partitions(),
        sketch.param_count(),
        t0.elapsed()
    );

    // 2. Save the routed sketch as one NSK2 artifact in the chosen
    // parameter encoding.
    let router = DqdRouter::new(sketch.clone(), report.leaf_aqcs, RoutingPolicy::default());
    let path = std::env::temp_dir().join("neurosketch_demo.nsk2");
    persist::save_router_with(&path, &router, quant).expect("save");
    let on_disk = std::fs::metadata(&path).expect("stat").len() as usize;
    println!(
        "saved [{}]: {} bytes on disk ({} at f32) vs {} paper-accounted (4 B/param + tree)",
        quant.name(),
        on_disk,
        persist::encoded_len_with(&sketch, QuantMode::F32),
        sketch.storage_bytes()
    );

    // 3. Load and verify: each encoding quantizes exactly once at save
    // time, so the loaded sketch must equal the same quantization of
    // the in-memory sketch bitwise on every workload query.
    let artifact = persist::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        artifact.sketch.quant_mode(),
        quant,
        "mode survives the round trip"
    );
    let quantized = sketch.quantized_to(quant);
    for q in &sc.wl.queries {
        assert_eq!(
            artifact.sketch.answer(q),
            quantized.answer(q),
            "loaded sketch diverged from the in-memory sketch at {q:?}"
        );
    }
    println!(
        "loaded: answers bitwise-identical to the in-memory sketch on all {} queries",
        sc.wl.queries.len()
    );

    // 4. Serve. Batched multi-threaded serving must agree bitwise with
    // the loaded sketch's own single-query path (the server's padded
    // serving layout changes scheduling, not arithmetic).
    let expected: Vec<f64> = sc
        .wl
        .queries
        .iter()
        .map(|q| artifact.sketch.answer(q))
        .collect();
    let server = SketchServer::new(
        artifact.into_router(),
        ServeOptions {
            threads: 2,
            ..ServeOptions::default()
        },
    );
    // Serve through the unified `Deployment` trait — the surface every
    // batch consumer (monitor, benches, front ends) is written against.
    let serving: &dyn Deployment = &server;
    let t1 = Instant::now();
    let (answers, stats) = serving.answer_batch(&sc.wl.queries);
    let elapsed = t1.elapsed();
    assert_eq!(answers, expected, "batched serving diverged");
    println!(
        "served [{}]: {} queries in {:?} ({:.0} queries/sec, {} via sketch)",
        serving.describe(),
        stats.queries,
        elapsed,
        stats.queries as f64 / elapsed.as_secs_f64(),
        stats.sketch
    );
    println!("save -> load -> serve round trip verified");
}
