//! Activation functions. NeuroSketch uses ReLU on every layer except the
//! (linear) output, exactly as in Sec. 4.2 of the paper.

use serde::{Deserialize, Serialize};

/// Element-wise activation applied after a dense layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — used on all hidden layers.
    Relu,
    /// The identity — used on the output layer.
    Identity,
}

impl Activation {
    /// Apply the activation in place.
    #[inline]
    pub fn apply(self, xs: &mut [f64]) {
        match self {
            Activation::Relu => {
                for x in xs {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }
            Activation::Identity => {}
        }
    }

    /// Derivative evaluated at the *pre-activation* value `z`.
    ///
    /// For ReLU we use the convention `relu'(0) = 0` (subgradient choice),
    /// which is what every mainstream framework does.
    #[inline]
    pub fn derivative(self, z: f64) -> f64 {
        match self {
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Derivative recovered from the *post-activation* value `a = act(z)`.
    ///
    /// For the activations in this crate the derivative is a function of
    /// the output: ReLU has `a > 0 ⟺ z > 0` (with the `relu'(0) = 0`
    /// convention), and the identity is constant. This is what lets the
    /// batched backward pass keep only activations — no pre-activation
    /// storage — while matching [`Activation::derivative`] exactly.
    #[inline]
    pub fn derivative_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut v = vec![-1.0, 0.0, 2.5];
        Activation::Relu.apply(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn identity_is_noop() {
        let mut v = vec![-1.0, 3.0];
        Activation::Identity.apply(&mut v);
        assert_eq!(v, vec![-1.0, 3.0]);
    }

    #[test]
    fn derivatives() {
        assert_eq!(Activation::Relu.derivative(-0.5), 0.0);
        assert_eq!(Activation::Relu.derivative(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative(0.5), 1.0);
        assert_eq!(Activation::Identity.derivative(-7.0), 1.0);
    }

    #[test]
    fn output_derivative_agrees_with_preactivation_derivative() {
        for act in [Activation::Relu, Activation::Identity] {
            for z in [-2.0, -0.5, 0.0, 0.5, 3.0] {
                let mut a = [z];
                act.apply(&mut a);
                assert_eq!(
                    act.derivative(z),
                    act.derivative_from_output(a[0]),
                    "{act:?} at z={z}"
                );
            }
        }
    }
}
