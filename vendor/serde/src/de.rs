//! The JSON pull-parser used by [`crate::Deserialize`] impls.

use std::fmt;

/// A deserialization error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    pos: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for Error {}

/// A cursor over JSON text. All `parse_*`/`expect_*` methods skip
/// leading whitespace first.
pub struct Deserializer<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Deserializer<'a> {
    /// Start parsing `input`.
    pub fn new(input: &'a str) -> Self {
        Deserializer {
            s: input.as_bytes(),
            pos: 0,
        }
    }

    /// Build an [`Error`] at the current position.
    pub fn error(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            pos: self.pos,
        }
    }

    /// An [`Error`] for a struct field absent from the input.
    pub fn missing_field(&self, name: &str) -> Error {
        self.error(&format!("missing field `{name}`"))
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.s.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// The next non-whitespace byte, without consuming it.
    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    /// Consume `c` if it is next; report whether it was.
    pub fn eat_char(&mut self, c: char) -> bool {
        if self.peek() == Some(c as u8) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require `c` next.
    pub fn expect_char(&mut self, c: char) -> Result<(), Error> {
        if self.eat_char(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{c}`")))
        }
    }

    /// Consume the literal `kw` (e.g. `null`) if it is next.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.s[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    /// Require the input to be fully consumed (modulo whitespace).
    pub fn finish(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos == self.s.len() {
            Ok(())
        } else {
            Err(self.error("trailing characters after JSON value"))
        }
    }

    /// Parse a JSON string (with escapes) into an owned `String`.
    pub fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .s
                .get(self.pos)
                .ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .s
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them explicitly.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.error("unsupported \\u escape"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    let bytes = self
                        .s
                        .get(start..end)
                        .ok_or_else(|| self.error("truncated UTF-8"))?;
                    let st = std::str::from_utf8(bytes).map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(st);
                    self.pos = end;
                }
            }
        }
    }

    fn number_slice(&mut self) -> Result<&'a str, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&c) = self.s.get(self.pos) {
            if c.is_ascii_digit() || c == b'-' || c == b'+' || c == b'.' || c == b'e' || c == b'E' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected number"));
        }
        std::str::from_utf8(&self.s[start..self.pos]).map_err(|_| self.error("invalid UTF-8"))
    }

    /// Parse a JSON number as `f64`.
    pub fn parse_f64(&mut self) -> Result<f64, Error> {
        let txt = self.number_slice()?;
        txt.parse().map_err(|_| self.error("malformed number"))
    }

    /// Parse a JSON number as a signed 128-bit integer (the common
    /// denominator for every integer impl).
    pub fn parse_i128(&mut self) -> Result<i128, Error> {
        let txt = self.number_slice()?;
        txt.parse().map_err(|_| self.error("malformed integer"))
    }

    /// Skip one complete JSON value of any kind (used for unknown
    /// object keys).
    pub fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'"' => {
                self.parse_string()?;
            }
            b'{' => {
                self.expect_char('{')?;
                if self.eat_char('}') {
                    return Ok(());
                }
                loop {
                    self.parse_string()?;
                    self.expect_char(':')?;
                    self.skip_value()?;
                    if self.eat_char(',') {
                        continue;
                    }
                    self.expect_char('}')?;
                    break;
                }
            }
            b'[' => {
                self.expect_char('[')?;
                if self.eat_char(']') {
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    if self.eat_char(',') {
                        continue;
                    }
                    self.expect_char(']')?;
                    break;
                }
            }
            b't' | b'f' | b'n' => {
                if !(self.eat_keyword("true")
                    || self.eat_keyword("false")
                    || self.eat_keyword("null"))
                {
                    return Err(self.error("bad literal"));
                }
            }
            _ => {
                self.parse_f64()?;
            }
        }
        Ok(())
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
