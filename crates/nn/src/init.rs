//! Weight initialization schemes.
//!
//! He (Kaiming) initialization is the right default for ReLU networks; the
//! paper's TensorFlow implementation would have used Glorot by default, so
//! both are provided. Sampling uses a hand-rolled Box–Muller transform so we
//! only depend on `rand`'s uniform source.

use rand::{Rng, RngExt};

/// Initialization scheme for dense layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// He normal: `N(0, 2 / fan_in)`. Default for ReLU nets.
    HeNormal,
    /// Glorot (Xavier) uniform: `U(-l, l)` with `l = sqrt(6/(fan_in+fan_out))`.
    GlorotUniform,
    /// All zeros (used for biases and for testing).
    Zeros,
}

/// Draw a standard normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Init {
    /// Sample a single weight for a layer with the given fan-in/fan-out.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R, fan_in: usize, fan_out: usize) -> f64 {
        match self {
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt();
                standard_normal(rng) * std
            }
            Init::GlorotUniform => {
                let l = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
                rng.random_range(-l..l)
            }
            Init::Zeros => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let fan_in = 64;
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| Init::HeNormal.sample(&mut rng, fan_in, 32))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let expected_var = 2.0 / fan_in as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - expected_var).abs() / expected_var < 0.1,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn glorot_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = (6.0_f64 / 20.0).sqrt();
        for _ in 0..1000 {
            let w = Init::GlorotUniform.sample(&mut rng, 10, 10);
            assert!(w >= -l && w < l);
        }
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(Init::Zeros.sample(&mut rng, 5, 5), 0.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
