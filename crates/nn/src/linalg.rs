//! Minimal dense linear algebra: a row-major matrix, the matrix–vector
//! products the per-example MLP paths need, and the blocked
//! transpose-aware matrix–matrix kernels behind the batched training hot
//! path ([`matmul`], [`matmul_at_b`], [`matmul_a_bt`], the fused
//! [`bias_relu_rows`] epilogue, and AXPY-style update ops).
//!
//! This is deliberately not a general-purpose linear algebra library: the
//! MLPs in NeuroSketch are tiny (tens of units per layer), so a simple
//! cache-friendly row-major layout is fast enough and keeps the code
//! auditable. What the batch kernels buy over the scalar loops is not
//! asymptotics but locality: one pass over the weights per *mini-batch*
//! instead of one per example, with zero allocation.
//!
//! **Determinism contract:** every batched kernel accumulates each output
//! entry in exactly the same floating-point order as the per-example path
//! it replaces (ascending over the contraction index, with the same
//! skip-zero short-circuits). Batched training is therefore bitwise
//! reproducible against the per-example reference — a property the
//! training property tests assert.

use serde::{Deserialize, Serialize};

/// Fused multiply-add `a * b + c`, used by every kernel in this module —
/// scalar and batched alike — so the two training paths round identically
/// and stay bitwise comparable.
///
/// When the build target has hardware FMA (e.g. `-C target-cpu=native`
/// from this repo's `.cargo/config.toml` on any x86-64 from the last
/// decade), this is a single `vfmadd` — one rounding, twice the
/// arithmetic throughput of separate mul+add. Without the target
/// feature it falls back to plain `a * b + c` rather than the libm
/// software `fma` routine, which would be ~20x slower than the two
/// operations it replaces.
#[inline(always)]
fn fmadd(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// A dense row-major `rows x cols` matrix of `f64`.
///
/// `Default` is the empty `0 x 0` matrix — the starting state of reusable
/// scratch buffers before their first [`Matrix::resize`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` — this is an internal
    /// construction invariant, not user input.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `out = self * x` where `x` has length `cols` and `out` length `rows`.
    ///
    /// The workhorse of the forward pass. `out` is overwritten.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x) {
                acc = fmadd(*w, *xi, acc);
            }
            *o = acc;
        }
    }

    /// `out = self^T * x` where `x` has length `rows` and `out` length `cols`.
    ///
    /// Used to back-propagate deltas through a layer's weights.
    pub fn matvec_transpose_into(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.rows);
        debug_assert_eq!(out.len(), self.cols);
        out.fill(0.0);
        for (r, xr) in x.iter().enumerate() {
            if *xr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, w) in out.iter_mut().zip(row) {
                *o = fmadd(*w, *xr, *o);
            }
        }
    }

    /// Rank-1 update `self += alpha * a * b^T` with `a` of length `rows` and
    /// `b` of length `cols`. Used to accumulate weight gradients.
    pub fn rank1_add(&mut self, alpha: f64, a: &[f64], b: &[f64]) {
        debug_assert_eq!(a.len(), self.rows);
        debug_assert_eq!(b.len(), self.cols);
        for (r, ar) in a.iter().enumerate() {
            if *ar == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let s = alpha * ar;
            for (w, bi) in row.iter_mut().zip(b) {
                *w = fmadd(s, *bi, *w);
            }
        }
    }

    /// Reset all entries to zero (gradient buffers between batches).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshape in place to `rows x cols`, reusing the existing
    /// allocation. Contents are unspecified afterwards — this exists so
    /// batch workspaces can grow once and be reused across mini-batches
    /// of varying size without reallocating.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Write this matrix's transpose into `out` (resized as needed,
    /// allocation reused). The batched forward pass keeps a transposed
    /// copy of each weight matrix so the layer GEMM runs in the
    /// vectorizable axpy form; refreshing the copy once per mini-batch
    /// costs `rows * cols` moves against the `batch * rows * cols` flops
    /// it accelerates.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, v) in self.data[r * self.cols..(r + 1) * self.cols]
                .iter()
                .enumerate()
            {
                out.data[c * self.rows + r] = *v;
            }
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Column-block width for the GEMM kernels. Output tiles of this width
/// stay resident in L1 while a panel of the right-hand side streams
/// through; for NeuroSketch's layer widths (≤ 64) a whole output row fits
/// in one block and the blocking collapses to plain register-friendly
/// loops.
const GEMM_BLOCK_COLS: usize = 128;

/// `c = a * b` where `a` is `m x k`, `b` is `k x n` and `c` is `m x n`.
///
/// Blocked i-k-j loop order: for each output row, rows of `b` are
/// streamed and scaled by `a[i][k]` (an AXPY per contraction step), so
/// all inner accesses are contiguous. Zero multipliers are skipped —
/// with ReLU-sparse delta matrices on the left this elides a large
/// fraction of the work, and it mirrors the skip in
/// [`Matrix::matvec_transpose_into`] exactly, keeping the accumulation
/// order of the per-example backward path.
///
/// # Panics
/// Panics in debug builds if the shapes disagree.
pub fn matmul(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    debug_assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    debug_assert_eq!(c.rows, a.rows, "output rows must match a");
    debug_assert_eq!(c.cols, b.cols, "output cols must match b");
    let (k, n) = (a.cols, b.cols);
    if n == 1 {
        // Single output column (every model's last layer): the axpy form
        // degenerates to length-1 inner loops, so compute dot products
        // against the contiguous column instead, four rows at a time —
        // four independent accumulator chains hide the FMA latency, and
        // each chain still sums in ascending `k` order.
        let bcol = &b.data;
        let mut i = 0;
        while i + 4 <= a.rows {
            let r0 = &a.data[i * k..(i + 1) * k];
            let r1 = &a.data[(i + 1) * k..(i + 2) * k];
            let r2 = &a.data[(i + 2) * k..(i + 3) * k];
            let r3 = &a.data[(i + 3) * k..(i + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for (t, bt) in bcol.iter().enumerate() {
                s0 = fmadd(r0[t], *bt, s0);
                s1 = fmadd(r1[t], *bt, s1);
                s2 = fmadd(r2[t], *bt, s2);
                s3 = fmadd(r3[t], *bt, s3);
            }
            c.data[i] = s0;
            c.data[i + 1] = s1;
            c.data[i + 2] = s2;
            c.data[i + 3] = s3;
            i += 4;
        }
        while i < a.rows {
            let row = &a.data[i * k..(i + 1) * k];
            let mut acc = 0.0;
            for (rt, bt) in row.iter().zip(bcol) {
                acc = fmadd(*rt, *bt, acc);
            }
            c.data[i] = acc;
            i += 1;
        }
        return;
    }
    // Degenerate empty contraction: the product is all zeros, and the
    // chunked row iterator below would never visit (and so never clear)
    // the output.
    if k == 0 {
        c.data.fill(0.0);
        return;
    }
    // General path: per-chunk compaction of the nonzero multipliers of
    // one left-hand row (ReLU-sparse delta/activation matrices are ~half
    // zeros): the contraction then runs dense 4-wide over survivors only,
    // keeping both the skip win of the scalar path and the unrolled
    // throughput. Compaction preserves ascending `k`, so each output
    // entry still rounds in exactly the per-example order.
    const CHUNK: usize = 128;
    let mut vals = [0.0f64; CHUNK];
    let mut idxs = [0usize; CHUNK];
    for j0 in (0..n).step_by(GEMM_BLOCK_COLS) {
        let j1 = (j0 + GEMM_BLOCK_COLS).min(n);
        let w = j1 - j0;
        for (i, arow) in a.data.chunks_exact(k.max(1)).enumerate() {
            let crow = &mut c.data[i * n + j0..i * n + j1];
            crow.fill(0.0);
            for k0 in (0..k).step_by(CHUNK) {
                let k1 = (k0 + CHUNK).min(k);
                let mut nz = 0;
                for (kk, &aik) in arow[k0..k1].iter().enumerate() {
                    if aik != 0.0 {
                        vals[nz] = aik;
                        idxs[nz] = (k0 + kk) * n;
                        nz += 1;
                    }
                }
                // Four contraction steps per pass over the output tile,
                // quartering the read-modify-write traffic on `c`.
                let mut t = 0;
                while t + 4 <= nz {
                    let (a0, a1, a2, a3) = (vals[t], vals[t + 1], vals[t + 2], vals[t + 3]);
                    let b0 = &b.data[idxs[t] + j0..idxs[t] + j1];
                    let b1 = &b.data[idxs[t + 1] + j0..idxs[t + 1] + j1];
                    let b2 = &b.data[idxs[t + 2] + j0..idxs[t + 2] + j1];
                    let b3 = &b.data[idxs[t + 3] + j0..idxs[t + 3] + j1];
                    for j in 0..w {
                        let mut v = crow[j];
                        v = fmadd(a0, b0[j], v);
                        v = fmadd(a1, b1[j], v);
                        v = fmadd(a2, b2[j], v);
                        v = fmadd(a3, b3[j], v);
                        crow[j] = v;
                    }
                    t += 4;
                }
                while t < nz {
                    let aik = vals[t];
                    let brow = &b.data[idxs[t] + j0..idxs[t] + j1];
                    for (cj, bj) in crow.iter_mut().zip(brow) {
                        *cj = fmadd(aik, *bj, *cj);
                    }
                    t += 1;
                }
            }
        }
    }
}

/// `c = a * b` for **block-padded** serving layouts: `a` is `m x k`,
/// `b` is `k x n`, and both `k` and `n` are multiples of 4 (the caller
/// pads with zeros — see `Mlp::serving_layout`). Dense 4-row × 2-step
/// register blocking: four output rows share each right-hand-side load
/// and the contraction never branches on sparsity, so a padded layout
/// trades the general path's zero-compaction for straight-line FMA
/// throughput — the right trade for serving batches, whose layer inputs
/// are assembled once and reused across layers.
///
/// **Bitwise contract:** every output entry accumulates in ascending
/// contraction order with no reordering, and a zero multiplier leaves
/// an accumulator bit-identical under `fmadd` (`0·b + s = s` for
/// finite `b`), so the result equals [`matmul`] — and therefore the
/// per-example matvec — bit for bit, padding columns included.
///
/// # Panics
/// Panics in debug builds if the shapes disagree or `k`/`n` are not
/// multiples of 4.
pub fn matmul_padded(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    debug_assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    debug_assert_eq!(c.rows, a.rows, "output rows must match a");
    debug_assert_eq!(c.cols, b.cols, "output cols must match b");
    debug_assert!(
        a.cols.is_multiple_of(4),
        "contraction dim must be padded to 4"
    );
    debug_assert!(b.cols.is_multiple_of(4), "output dim must be padded to 4");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    if k == 0 {
        c.data.fill(0.0);
        return;
    }
    let mut i = 0;
    while i + 4 <= m {
        let a0 = &a.data[i * k..(i + 1) * k];
        let a1 = &a.data[(i + 1) * k..(i + 2) * k];
        let a2 = &a.data[(i + 2) * k..(i + 3) * k];
        let a3 = &a.data[(i + 3) * k..(i + 4) * k];
        let cblk = &mut c.data[i * n..(i + 4) * n];
        cblk.fill(0.0);
        let (c0, rest) = cblk.split_at_mut(n);
        let (c1, rest) = rest.split_at_mut(n);
        let (c2, c3) = rest.split_at_mut(n);
        let mut t = 0;
        while t < k {
            // Two contraction steps per pass: 4 rows × 2 steps = 8
            // broadcast scalars + 2 shared b-rows stays within the
            // vector register budget, and each accumulator still chains
            // its fmadds in ascending `t`.
            let bt0 = &b.data[t * n..(t + 1) * n];
            let bt1 = &b.data[(t + 1) * n..(t + 2) * n];
            let (x00, x01) = (a0[t], a0[t + 1]);
            let (x10, x11) = (a1[t], a1[t + 1]);
            let (x20, x21) = (a2[t], a2[t + 1]);
            let (x30, x31) = (a3[t], a3[t + 1]);
            for j in 0..n {
                let (b0j, b1j) = (bt0[j], bt1[j]);
                c0[j] = fmadd(x01, b1j, fmadd(x00, b0j, c0[j]));
                c1[j] = fmadd(x11, b1j, fmadd(x10, b0j, c1[j]));
                c2[j] = fmadd(x21, b1j, fmadd(x20, b0j, c2[j]));
                c3[j] = fmadd(x31, b1j, fmadd(x30, b0j, c3[j]));
            }
            t += 2;
        }
        i += 4;
    }
    while i < m {
        let arow = &a.data[i * k..(i + 1) * k];
        let crow = &mut c.data[i * n..(i + 1) * n];
        crow.fill(0.0);
        let mut t = 0;
        while t < k {
            let bt0 = &b.data[t * n..(t + 1) * n];
            let bt1 = &b.data[(t + 1) * n..(t + 2) * n];
            let (x0, x1) = (arow[t], arow[t + 1]);
            for j in 0..n {
                crow[j] = fmadd(x1, bt1[j], fmadd(x0, bt0[j], crow[j]));
            }
            t += 2;
        }
        i += 1;
    }
}

/// `c = a^T * b` where `a` is `m x k`, `b` is `m x n` and `c` is `k x n`.
///
/// This is the gradient kernel: with `a` the batch delta matrix
/// (`batch x out`) and `b` the batch input (`batch x in`), it produces
/// the weight gradient `out x in` as a sequence of rank-1 updates — one
/// per example, in batch order, skipping zero deltas — which is the
/// identical floating-point schedule [`Matrix::rank1_add`] performs in
/// the per-example path.
///
/// # Panics
/// Panics in debug builds if the shapes disagree.
pub fn matmul_at_b(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    debug_assert_eq!(a.rows, b.rows, "contraction (row) dimensions must agree");
    debug_assert_eq!(c.rows, a.cols, "output rows must match a^T");
    debug_assert_eq!(c.cols, b.cols, "output cols must match b");
    let (k, n) = (a.cols, b.cols);
    let m = a.rows;
    if n == 1 {
        // Single right-hand column (`dW` of a 1-input layer, `db`-like
        // reductions): each output entry is a dot of an `a` column with
        // the contiguous `b` column. Four adjacent `a` columns at a time
        // turn the strided loads into one contiguous 4-element read per
        // example and run four independent accumulator chains, summing
        // in ascending example order like the rank-1 schedule.
        let bcol = &b.data;
        let mut o = 0;
        while o + 4 <= k {
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for (e, be) in bcol.iter().enumerate() {
                let arow = &a.data[e * k + o..e * k + o + 4];
                s0 = fmadd(arow[0], *be, s0);
                s1 = fmadd(arow[1], *be, s1);
                s2 = fmadd(arow[2], *be, s2);
                s3 = fmadd(arow[3], *be, s3);
            }
            c.data[o] = s0;
            c.data[o + 1] = s1;
            c.data[o + 2] = s2;
            c.data[o + 3] = s3;
            o += 4;
        }
        while o < k {
            let mut acc = 0.0;
            for (e, be) in bcol.iter().enumerate() {
                acc = fmadd(a.data[e * k + o], *be, acc);
            }
            c.data[o] = acc;
            o += 1;
        }
        return;
    }
    c.data.fill(0.0);
    // Contraction (batch) dimension unrolled by 4: four examples' rank-1
    // updates fold into each output row per pass, quartering the
    // read-modify-write traffic on `c`. The fmadds chain in ascending
    // example order, matching the one-example-at-a-time schedule exactly.
    let mut e = 0;
    while e + 4 <= m {
        let a0 = &a.data[e * k..(e + 1) * k];
        let a1 = &a.data[(e + 1) * k..(e + 2) * k];
        let a2 = &a.data[(e + 2) * k..(e + 3) * k];
        let a3 = &a.data[(e + 3) * k..(e + 4) * k];
        let b0 = &b.data[e * n..(e + 1) * n];
        let b1 = &b.data[(e + 1) * n..(e + 2) * n];
        let b2 = &b.data[(e + 2) * n..(e + 3) * n];
        let b3 = &b.data[(e + 3) * n..(e + 4) * n];
        for o in 0..k {
            let (s0, s1, s2, s3) = (a0[o], a1[o], a2[o], a3[o]);
            if s0 == 0.0 && s1 == 0.0 && s2 == 0.0 && s3 == 0.0 {
                continue;
            }
            let crow = &mut c.data[o * n..(o + 1) * n];
            for j in 0..n {
                let mut v = crow[j];
                v = fmadd(s0, b0[j], v);
                v = fmadd(s1, b1[j], v);
                v = fmadd(s2, b2[j], v);
                v = fmadd(s3, b3[j], v);
                crow[j] = v;
            }
        }
        e += 4;
    }
    for (arow, brow) in a.data[e * k..]
        .chunks_exact(k.max(1))
        .zip(b.data[e * n..].chunks_exact(n.max(1)))
    {
        for (o, &s) in arow.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            let crow = &mut c.data[o * n..(o + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj = fmadd(s, *bj, *cj);
            }
        }
    }
}

/// `c = a * b^T` where `a` is `m x k`, `b` is `n x k` and `c` is `m x n`.
///
/// The dot-shaped kernel: with `a` an input batch (`batch x in`) and
/// `b` a row-major weight matrix (`out x in`), each output entry is a
/// single contiguous dot product over ascending `k` — the same
/// contraction [`Matrix::matvec_into`] performs per example, so the
/// result is bitwise the per-example one. [`Mlp::forward_batch`]
/// currently prefers [`Matrix::transpose_into`] + [`matmul`] (the axpy
/// form vectorizes better and skips ReLU-zero inputs); this kernel is
/// the right shape when transposing the right-hand side isn't worth it,
/// e.g. a one-off product against frozen weights.
///
/// [`Mlp::forward_batch`]: crate::mlp::Mlp::forward_batch
///
/// # Panics
/// Panics in debug builds if the shapes disagree.
pub fn matmul_a_bt(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    debug_assert_eq!(a.cols, b.cols, "inner dimensions must agree");
    debug_assert_eq!(c.rows, a.rows, "output rows must match a");
    debug_assert_eq!(c.cols, b.rows, "output cols must match b^T");
    let (k, n) = (a.cols, b.rows);
    for (i, arow) in a.data.chunks_exact(k.max(1)).enumerate() {
        let crow = &mut c.data[i * n..(i + 1) * n];
        // Four output units at a time: the four dot products share the
        // `arow` loads and run as independent accumulator chains, hiding
        // FP-add latency. Each accumulator still sums in ascending `k`
        // order, so every output is bitwise the single-dot result.
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b.data[j * k..(j + 1) * k];
            let b1 = &b.data[(j + 1) * k..(j + 2) * k];
            let b2 = &b.data[(j + 2) * k..(j + 3) * k];
            let b3 = &b.data[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for (t, &x) in arow.iter().enumerate() {
                s0 = fmadd(x, b0[t], s0);
                s1 = fmadd(x, b1[t], s1);
                s2 = fmadd(x, b2[t], s2);
                s3 = fmadd(x, b3[t], s3);
            }
            crow[j] = s0;
            crow[j + 1] = s1;
            crow[j + 2] = s2;
            crow[j + 3] = s3;
            j += 4;
        }
        for (cj, brow) in crow[j..]
            .iter_mut()
            .zip(b.data[j * k..].chunks_exact(k.max(1)))
        {
            let mut acc = 0.0;
            for (ai, bi) in arow.iter().zip(brow) {
                acc = fmadd(*ai, *bi, acc);
            }
            *cj = acc;
        }
    }
}

/// Fused epilogue of a hidden layer: add `bias` to every row of `z`
/// (`batch x out`) and apply ReLU, in one pass over the batch.
///
/// # Panics
/// Panics in debug builds if `bias.len() != z.cols()`.
pub fn bias_relu_rows(z: &mut Matrix, bias: &[f64]) {
    debug_assert_eq!(bias.len(), z.cols);
    for row in z.data.chunks_exact_mut(bias.len().max(1)) {
        for (zi, bi) in row.iter_mut().zip(bias) {
            let v = *zi + bi;
            *zi = if v > 0.0 { v } else { 0.0 };
        }
    }
}

/// Linear-layer epilogue: add `bias` to every row of `z` (`batch x out`)
/// with no activation.
///
/// # Panics
/// Panics in debug builds if `bias.len() != z.cols()`.
pub fn bias_add_rows(z: &mut Matrix, bias: &[f64]) {
    debug_assert_eq!(bias.len(), z.cols);
    for row in z.data.chunks_exact_mut(bias.len().max(1)) {
        for (zi, bi) in row.iter_mut().zip(bias) {
            *zi += bi;
        }
    }
}

/// Overwrite `out` with the column sums of `m` — the bias-gradient
/// reduction `db[o] = Σ_e delta[e][o]`, accumulated in batch order like
/// the per-example path.
///
/// # Panics
/// Panics in debug builds if `out.len() != m.cols()`.
pub fn col_sums_into(m: &Matrix, out: &mut [f64]) {
    debug_assert_eq!(out.len(), m.cols);
    out.fill(0.0);
    for row in m.data.chunks_exact(m.cols.max(1)) {
        for (o, v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
}

/// `y += alpha * x` for equal-length slices.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = fmadd(alpha, *xi, *yi);
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm.
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.5, -1.0];
        let mut out = [0.0; 2];
        m.matvec_into(&x, &mut out);
        assert_eq!(out, [1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn matvec_transpose_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [2.0, -1.0];
        let mut out = [0.0; 3];
        m.matvec_transpose_into(&x, &mut out);
        assert_eq!(out, [2.0 - 4.0, 4.0 - 5.0, 6.0 - 6.0]);
    }

    #[test]
    fn rank1_add_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.rank1_add(2.0, &[1.0, 0.5], &[3.0, 4.0]);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(0, 1), 8.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn row_views_are_consistent() {
        let mut m = Matrix::zeros(3, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(1, 0), 7.0);
        assert_eq!(m.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm1(&[1.0, -2.0, 3.0]), 6.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    #[should_panic(expected = "matrix buffer size mismatch")]
    fn from_vec_checks_size() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    /// Naive triple-loop reference for the GEMM kernels.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn transpose(m: &Matrix) -> Matrix {
        let mut t = Matrix::zeros(m.cols(), m.rows());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                t.set(c, r, m.get(r, c));
            }
        }
        t
    }

    fn fill_pattern(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for v in m.as_mut_slice() {
            // xorshift-ish deterministic pattern with some exact zeros to
            // exercise the skip paths.
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = if s.is_multiple_of(5) {
                0.0
            } else {
                (s % 1000) as f64 / 250.0 - 2.0
            };
        }
        m
    }

    #[test]
    fn matmul_matches_naive_on_many_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (7, 2, 9), (64, 60, 30), (5, 200, 3)] {
            let a = fill_pattern(m, k, (m * 31 + k) as u64);
            let b = fill_pattern(k, n, (k * 17 + n) as u64);
            let mut c = Matrix::zeros(m, n);
            matmul(&mut c, &a, &b);
            let want = naive_matmul(&a, &b);
            for (x, y) in c.as_slice().iter().zip(want.as_slice()) {
                assert!((x - y).abs() < 1e-12, "matmul {m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn transpose_kernels_match_explicit_transposes() {
        for &(m, k, n) in &[(2, 3, 4), (8, 5, 6), (33, 7, 13)] {
            let a = fill_pattern(m, k, 3);
            let b = fill_pattern(m, n, 4);
            let mut c = Matrix::zeros(k, n);
            matmul_at_b(&mut c, &a, &b);
            let want = naive_matmul(&transpose(&a), &b);
            for (x, y) in c.as_slice().iter().zip(want.as_slice()) {
                assert!((x - y).abs() < 1e-12, "at_b {m}x{k}x{n}: {x} vs {y}");
            }

            let a2 = fill_pattern(m, k, 5);
            let b2 = fill_pattern(n, k, 6);
            let mut c2 = Matrix::zeros(m, n);
            matmul_a_bt(&mut c2, &a2, &b2);
            let want2 = naive_matmul(&a2, &transpose(&b2));
            for (x, y) in c2.as_slice().iter().zip(want2.as_slice()) {
                assert!((x - y).abs() < 1e-12, "a_bt {m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_overwrites_stale_output() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 1, vec![3.0, 4.0]);
        let mut c = Matrix::from_vec(1, 1, vec![999.0]);
        matmul(&mut c, &a, &b);
        assert_eq!(c.get(0, 0), 11.0);
        let mut c2 = Matrix::from_vec(2, 1, vec![7.0, 7.0]);
        matmul_at_b(&mut c2, &a, &Matrix::from_vec(1, 1, vec![2.0]));
        assert_eq!(c2.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn fused_bias_relu_and_bias_add() {
        let mut z = Matrix::from_vec(2, 2, vec![-1.0, 0.5, 2.0, -3.0]);
        bias_relu_rows(&mut z, &[0.25, 1.0]);
        assert_eq!(z.as_slice(), &[0.0, 1.5, 2.25, 0.0]);
        let mut z2 = Matrix::from_vec(2, 2, vec![-1.0, 0.5, 2.0, -3.0]);
        bias_add_rows(&mut z2, &[0.25, 1.0]);
        assert_eq!(z2.as_slice(), &[-0.75, 1.5, 2.25, -2.0]);
    }

    #[test]
    fn col_sums_reduce_in_row_order() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        let mut out = [0.0; 2];
        col_sums_into(&m, &mut out);
        assert_eq!(out, [6.0, 60.0]);
    }

    #[test]
    fn resize_reuses_and_reshapes() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        m.resize(3, 4);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert_eq!(m.len(), 12);
        m.resize(1, 2);
        assert_eq!((m.rows(), m.cols()), (1, 2));
    }
}
