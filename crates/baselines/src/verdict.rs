//! VerdictDB-style stratified sampling (Park et al., SIGMOD 2018).
//!
//! VerdictDB pre-computes "scramble" tables: stratified samples with
//! per-row sampling weights, so rare strata stay represented. We stratify
//! on the measure column's quantiles — the choice that most affects
//! aggregate accuracy — draw an equal budget per stratum, and weight each
//! sampled row by `stratum_size / stratum_sample_size`.
//!
//! Capability parity with the paper: COUNT/SUM/AVG only ("VerdictDB and
//! DeepDB implementation did not support STDEV"; Table 2's MEDIAN is also
//! declined).

use crate::{AqpEngine, Unsupported};
use datagen::Dataset;
use query::aggregate::Aggregate;
use query::predicate::PredicateFn;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Stratified-sample AQP engine.
#[derive(Debug, Clone)]
pub struct StratifiedSampler {
    /// Sampled rows, flat row-major.
    rows: Vec<f64>,
    /// Per-sampled-row weight (`stratum_size / stratum_sample_count`).
    weights: Vec<f64>,
    dims: usize,
    measure: usize,
}

impl StratifiedSampler {
    /// Build with `strata` measure-quantile strata and a total budget of
    /// `k` samples.
    ///
    /// # Panics
    /// Panics on an empty dataset, `k == 0`, `strata == 0`, or a bad
    /// measure column.
    pub fn build(data: &Dataset, measure: usize, k: usize, strata: usize, seed: u64) -> Self {
        assert!(data.rows() > 0, "empty dataset");
        assert!(k > 0 && strata > 0, "k and strata must be positive");
        assert!(measure < data.dims(), "measure column out of range");
        let n = data.rows();
        let strata = strata.min(n);
        let k = k.min(n);

        // Order rows by measure value and cut into equal-count strata.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            data.value(a, measure)
                .partial_cmp(&data.value(b, measure))
                .expect("no NaN")
        });
        let stratum_size = n.div_ceil(strata);
        let per_stratum_budget = (k / strata).max(1);

        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut weights = Vec::new();
        for chunk in order.chunks(stratum_size) {
            let mut ids = chunk.to_vec();
            ids.shuffle(&mut rng);
            let take = per_stratum_budget.min(ids.len());
            let w = chunk.len() as f64 / take as f64;
            for &i in &ids[..take] {
                rows.extend_from_slice(data.row(i));
                weights.push(w);
            }
        }
        StratifiedSampler {
            rows,
            weights,
            dims: data.dims(),
            measure,
        }
    }

    /// Number of retained samples.
    pub fn sample_size(&self) -> usize {
        self.weights.len()
    }

    fn iter_rows(&self) -> impl Iterator<Item = (&[f64], f64)> {
        self.rows
            .chunks_exact(self.dims)
            .zip(self.weights.iter().copied())
    }
}

impl AqpEngine for StratifiedSampler {
    fn name(&self) -> &'static str {
        "VerdictDB"
    }

    fn answer(
        &self,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
    ) -> Result<f64, Unsupported> {
        if !matches!(agg, Aggregate::Count | Aggregate::Sum | Aggregate::Avg) {
            return Err(Unsupported::Aggregate(agg));
        }
        let (mut wsum, mut wvsum) = (0.0f64, 0.0f64);
        for (row, w) in self.iter_rows() {
            if pred.matches(q, row) {
                wsum += w;
                wvsum += w * row[self.measure];
            }
        }
        Ok(match agg {
            Aggregate::Count => wsum,
            Aggregate::Sum => wvsum,
            Aggregate::Avg => {
                if wsum > 0.0 {
                    wvsum / wsum
                } else {
                    0.0
                }
            }
            _ => unreachable!("filtered above"),
        })
    }

    fn storage_bytes(&self) -> usize {
        // Samples plus one weight per row.
        self.weights.len() * (self.dims + 1) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::simple::uniform;
    use query::predicate::Range;
    use query::QueryEngine;

    #[test]
    fn full_budget_is_nearly_exact() {
        let data = uniform(2000, 2, 1);
        let engine = QueryEngine::new(&data, 1);
        let vs = StratifiedSampler::build(&data, 1, 2000, 10, 0);
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.2, 0.5];
        for agg in [Aggregate::Count, Aggregate::Sum, Aggregate::Avg] {
            let exact = engine.answer(&pred, agg, &q);
            let est = vs.answer(&pred, agg, &q).unwrap();
            assert!(
                (exact - est).abs() / exact.abs().max(1.0) < 0.02,
                "{}: exact {exact} est {est}",
                agg.name()
            );
        }
    }

    #[test]
    fn weighted_count_is_close_on_subsample() {
        let data = uniform(20_000, 2, 2);
        let engine = QueryEngine::new(&data, 1);
        let vs = StratifiedSampler::build(&data, 1, 2_000, 20, 3);
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.3, 0.4];
        let exact = engine.answer(&pred, Aggregate::Count, &q);
        let est = vs.answer(&pred, Aggregate::Count, &q).unwrap();
        assert!(
            (exact - est).abs() / exact < 0.12,
            "exact {exact} est {est}"
        );
    }

    #[test]
    fn declines_std_and_median() {
        let data = uniform(100, 2, 4);
        let vs = StratifiedSampler::build(&data, 1, 50, 5, 0);
        let pred = Range::new(vec![0], 2).unwrap();
        assert!(matches!(
            vs.answer(&pred, Aggregate::Std, &[0.0, 1.0]),
            Err(Unsupported::Aggregate(Aggregate::Std))
        ));
        assert!(vs.answer(&pred, Aggregate::Median, &[0.0, 1.0]).is_err());
    }

    #[test]
    fn strata_preserve_tail_representation() {
        // With stratification on the measure, the top stratum is always
        // represented: 50 strata of 20 rows each, 2 samples per stratum,
        // so the sampled max must come from the top stratum (>= 980).
        let rows: Vec<Vec<f64>> = (0..1000)
            .map(|i| vec![i as f64 / 1000.0, i as f64])
            .collect();
        let data = Dataset::from_rows(vec!["a".into(), "m".into()], &rows).unwrap();
        let vs = StratifiedSampler::build(&data, 1, 100, 50, 1);
        let max_measure = vs
            .iter_rows()
            .map(|(r, _)| r[1])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_measure >= 980.0, "sampled max {max_measure}");
    }

    #[test]
    fn empty_match_returns_zero() {
        let data = uniform(100, 2, 5);
        let vs = StratifiedSampler::build(&data, 1, 50, 5, 0);
        let pred = Range::new(vec![0], 2).unwrap();
        assert_eq!(
            vs.answer(&pred, Aggregate::Avg, &[0.99, 0.0001]).unwrap(),
            0.0
        );
    }
}
