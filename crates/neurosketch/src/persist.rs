//! The NSK2 persistent sketch format ("models are saved after
//! training", Sec. 5.1).
//!
//! [`nn::binary`] ships a *single* MLP (NSK1). A deployed NeuroSketch is
//! more than one model: a kd-tree routing structure, one compact MLP per
//! partition, the per-leaf output scalers, and — when it is served
//! behind a [`DqdRouter`] — the per-partition AQC estimates and routing
//! thresholds. NSK2 is the whole-sketch container: everything a serving
//! process ([`crate::serve`]) needs, in one versioned blob whose size
//! matches the paper's 4-bytes-per-parameter model-size accounting
//! (parameters dominate; the tree and headers are a few dozen bytes per
//! partition).
//!
//! Layout (little-endian, container version 3):
//!
//! ```text
//! magic      u32 = 0x4E53_4B32 ("NSK2")
//! version    u32 = 3             (v1/v2 — no quant byte, no trailer — still read)
//! query_dim  u32
//! node_count u32
//! per node, preorder (root = 0):
//!   tag u8: 0 = internal, 1 = leaf
//!   internal only: dim u32, val f64, left u32, right u32
//! model_count u32               (one per leaf, ascending node index)
//! per model:
//!   leaf u32                    (node-table index of its leaf)
//!   y_mean f64, y_std f64       (output de-standardization)
//!   quant u8                    (v3+: QuantMode tag — 0 f32, 1 f16, 2 i8)
//!   blob_len u32, blob          (the MLP via nn::binary, in that mode)
//! router u8: 0 = absent, 1 = present
//! router only:
//!   min_range_volume f64, max_leaf_aqc f64
//!   aqc_count u32, aqc f64 per leaf (sketch leaf order)
//! checksum u64                  (v3+: FNV-1a-64 of every preceding byte)
//! ```
//!
//! ## Quantized parameter sections and the accuracy contract
//!
//! The default encoding stores parameters as `f32` (the paper's
//! 4 B/param storage model); [`encode_sketch_with`] additionally offers
//! [`QuantMode::F16`] (2 B/param) and [`QuantMode::I8`] (1 B/param +
//! one `f32` power-of-two scale per tensor). For **every** mode, saving
//! is lossy exactly once: a decoded sketch answers **bitwise
//! identically** to [`NeuroSketch::quantized_to`] of the sketch it was
//! saved from, re-encoding a decoded sketch reproduces the byte stream
//! exactly (the decoded sketch carries the artifact's mode as its
//! [`NeuroSketch::quant_mode`], so plain [`encode_sketch`] round-trips
//! too), and a second load answers bitwise identically to the first.
//! What f16/i8 trade away is accuracy *against the data*, not
//! reproducibility — `docs/serving.md` quantifies the NMAE curve.
//!
//! The version-3 trailing checksum ([`artifact_checksum`], same FNV-1a
//! as NSKM) is verified before any section is parsed, closing the
//! single-artifact integrity gap: flipped bits anywhere in the
//! container are [`PersistError::TrailerMismatch`], not a
//! silently-wrong weight. Corrupt input — truncation, bad magic, an
//! unsupported version, structural tree damage, implausible layer
//! dimensions, non-finite f16 bits, or a non-power-of-two i8 scale —
//! yields a typed [`PersistError`], never a panic. Version-1/2
//! artifacts (written before the quant byte and trailer existed) still
//! decode, as pure-f32 containers without end-to-end verification.
//!
//! ## NSKM: the sharded-deployment manifest
//!
//! A sharded deployment ([`crate::shard`]) is *several* NSK2 artifacts —
//! one per (data shard, moment component) — plus the [`ShardPlan`] that
//! assigns rows and the aggregate being served. The **NSKM** manifest
//! makes that one loadable unit: [`save_sharded`] writes every
//! component sketch as `shard-NNN.<component>.nsk2` next to a
//! `manifest.nskm` that records the plan, the aggregate, and each
//! artifact's relative path + FNV-1a checksum; [`load_sharded`]
//! verifies and reassembles the whole deployment. Layout
//! (little-endian):
//!
//! ```text
//! magic       u32 = 0x4D4B_534E ("NSKM")
//! version     u32 = 2             (v1, without the generation, still reads)
//! generation  u64                 (v2+ only; a v1 manifest is generation 0)
//! aggregate   u8: 0 = COUNT, 1 = SUM, 2 = AVG, 3 = STD
//! plan tag    u8: 0 = round-robin, 1 = blocks, 2 = hash
//! plan shards u32;  hash only: seed u64
//! shard_count u32                (must equal plan shards)
//! per shard, per moment slot (n, Σ, Σ²):
//!   present u8: 0 | 1
//!   present only: checksum u64, path_len u16, path (utf-8, relative)
//! ```
//!
//! **Generations** are what make live maintenance's partial refresh
//! atomic: [`save_refreshed`] writes fresh artifacts *only* for the
//! replaced shards, under names suffixed with the new generation
//! (`shard-NNN.<component>.gG.nsk2`), reuses the previous manifest's
//! entries for every untouched shard verbatim, and lands a new
//! `manifest.nskm` with the generation bumped — by the same
//! write-fsync-rename dance as [`save_sharded`]. Generation `G`'s bytes
//! are never touched, so a refresh torn at any point (new artifacts on
//! disk, manifest rename never landed) leaves generation `G` fully
//! loadable; once the rename lands, every load is `G + 1`.
//! `docs/maintenance.md` covers the operator side (old-generation
//! garbage collection, rollback).
//!
//! Failure modes are typed like NSK2's: a manifest entry whose file is
//! gone is [`PersistError::MissingShard`], an artifact whose bytes
//! changed since the manifest was written is
//! [`PersistError::ChecksumMismatch`], and structural damage —
//! unknown aggregate/plan tags, shard-count mismatch, moment slots that
//! do not match the aggregate, absolute or traversing paths — is
//! [`PersistError::Corrupt`]. `docs/scaling.md` walks the operator-side
//! handling of each.

use crate::router::{DqdRouter, RoutingPolicy};
use crate::shard::{ShardPlan, ShardSketch, ShardedSketch};
use crate::sketch::{LeafModel, NeuroSketch};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nn::QuantMode;
use query::aggregate::{Aggregate, MomentKind};
use spatial::kdtree::{FlatNode, FlatTreeError};
use spatial::KdTree;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// NSK2 container magic ("NSK2" little-endian).
pub const NSK2_MAGIC: u32 = 0x4E53_4B32;

/// Newest container version this build reads and writes. Versions 1
/// and 2 — the pre-quantization layout without the per-model mode byte
/// and trailing checksum — still decode.
pub const NSK2_VERSION: u32 = 3;

/// Oldest container version carrying the per-model quant byte and the
/// trailing FNV-1a checksum.
const NSK2_V3: u32 = 3;

/// Why a persisted sketch could not be read.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The buffer ended before the named section was complete.
    Truncated(&'static str),
    /// The first four bytes were not the NSK2 magic.
    BadMagic {
        /// The magic actually found.
        found: u32,
    },
    /// The container version is newer than this build understands.
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The kd-tree section failed structural validation.
    Tree(FlatTreeError),
    /// An embedded NSK1 model blob failed to decode.
    Model(String),
    /// A cross-section invariant was violated (model/leaf mismatch,
    /// non-finite scaler, wrong input dimensionality, ...).
    Corrupt(String),
    /// An NSKM manifest references a shard artifact that does not exist
    /// on disk.
    MissingShard {
        /// The manifest-relative path of the missing artifact.
        path: String,
    },
    /// A version-3 NSK2 container's trailing end-to-end checksum does
    /// not match its bytes (partial write, bit rot, or tampering) —
    /// detected before any section is parsed.
    TrailerMismatch {
        /// Checksum the trailer records.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// A shard artifact's bytes do not hash to the checksum its NSKM
    /// manifest recorded (partial write, bit rot, or a swapped file).
    ChecksumMismatch {
        /// The manifest-relative path of the damaged artifact.
        path: String,
        /// Checksum the manifest expects.
        expected: u64,
        /// Checksum of the bytes actually on disk.
        found: u64,
    },
    /// Reading or writing the backing file failed.
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated(section) => write!(f, "truncated {section}"),
            PersistError::BadMagic { found } => {
                write!(f, "bad magic {found:#010x} (want {NSK2_MAGIC:#010x})")
            }
            PersistError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported NSK2 version {found} (newest known: {NSK2_VERSION})"
                )
            }
            PersistError::Tree(e) => write!(f, "corrupt kd-tree section: {e}"),
            PersistError::Model(e) => write!(f, "corrupt model blob: {e}"),
            PersistError::Corrupt(e) => write!(f, "corrupt container: {e}"),
            PersistError::MissingShard { path } => {
                write!(f, "missing shard artifact `{path}`")
            }
            PersistError::TrailerMismatch { expected, found } => write!(
                f,
                "NSK2 trailing checksum mismatch: trailer says {expected:#018x}, bytes hash to {found:#018x}"
            ),
            PersistError::ChecksumMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch on `{path}`: manifest says {expected:#018x}, file hashes to {found:#018x}"
            ),
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<FlatTreeError> for PersistError {
    fn from(e: FlatTreeError) -> Self {
        PersistError::Tree(e)
    }
}

/// A decoded NSK2 container: the sketch, plus the router metadata when
/// the artifact was saved from a [`DqdRouter`].
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The sketch, ready to answer queries.
    pub sketch: NeuroSketch,
    /// Per-partition AQCs + routing thresholds, if persisted.
    pub router: Option<RouterMeta>,
}

/// Router metadata persisted alongside a sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterMeta {
    /// AQC per partition, in the sketch's leaf order.
    pub leaf_aqcs: Vec<f64>,
    /// The routing thresholds the sketch was deployed with.
    pub policy: RoutingPolicy,
}

impl Artifact {
    /// Reassemble a [`DqdRouter`]. Without persisted router metadata the
    /// router is fully permissive (every query routes to the sketch).
    pub fn into_router(self) -> DqdRouter {
        match self.router {
            Some(meta) => DqdRouter::new(self.sketch, meta.leaf_aqcs, meta.policy),
            None => {
                let aqcs = vec![0.0; self.sketch.partitions()];
                DqdRouter::new(self.sketch, aqcs, RoutingPolicy::default())
            }
        }
    }
}

/// Exact byte size [`encode_sketch`] produces for this sketch (in its
/// carried [`NeuroSketch::quant_mode`]) — the figure to compare against
/// [`NeuroSketch::storage_bytes`] (the paper's accounting). Parameters
/// dominate: the fixed overhead is 25 bytes of header/trailer, 21 bytes
/// per internal node, 1 per leaf, and 29 bytes + the model-blob header
/// per model.
pub fn encoded_len(sketch: &NeuroSketch) -> usize {
    encoded_len_with(sketch, sketch.quant_mode())
}

/// Exact byte size [`encode_sketch_with`] produces for this sketch in
/// the given parameter encoding — the capacity-planning primitive
/// (`docs/scaling.md`): per-replica artifact bytes at 4/2/1 bytes per
/// parameter for f32/f16/i8.
pub fn encoded_len_with(sketch: &NeuroSketch, mode: QuantMode) -> usize {
    let leaves = sketch.partitions();
    let internals = leaves.saturating_sub(1);
    let models: usize = sketch
        .models()
        .values()
        .map(|m| 25 + nn::binary::encoded_len_with(&m.mlp, mode))
        .sum();
    12 + 4 + internals * 21 + leaves + 4 + models + 1 + 8
}

/// Encode a sketch (no router section) into an NSK2 container, in the
/// sketch's carried [`NeuroSketch::quant_mode`] — `F32` for freshly
/// built sketches, the artifact's recorded mode for loaded ones (which
/// is what makes load → re-encode byte-idempotent for every mode).
pub fn encode_sketch(sketch: &NeuroSketch) -> Bytes {
    encode(sketch, None, sketch.quant_mode())
}

/// Encode a sketch with an explicit parameter encoding — the save-API
/// entry point for choosing f16/i8 storage. The decoded artifact
/// answers bitwise identically to `sketch.quantized_to(mode)`.
pub fn encode_sketch_with(sketch: &NeuroSketch, mode: QuantMode) -> Bytes {
    encode(sketch, None, mode)
}

/// Encode a router — sketch + AQCs + policy — into an NSK2 container,
/// in the sketch's carried quant mode.
pub fn encode_router(router: &DqdRouter) -> Bytes {
    encode_router_with(router, router.sketch().quant_mode())
}

/// Encode a router with an explicit parameter encoding.
pub fn encode_router_with(router: &DqdRouter, mode: QuantMode) -> Bytes {
    encode(
        router.sketch(),
        Some(&RouterMeta {
            leaf_aqcs: router.leaf_aqcs().to_vec(),
            policy: router.policy(),
        }),
        mode,
    )
}

fn encode(sketch: &NeuroSketch, router: Option<&RouterMeta>, mode: QuantMode) -> Bytes {
    let flat = sketch.tree().to_flat();
    let mut buf = BytesMut::with_capacity(
        encoded_len_with(sketch, mode) + router.map_or(0, |m| 20 + 8 * m.leaf_aqcs.len()),
    );
    buf.put_u32_le(NSK2_MAGIC);
    buf.put_u32_le(NSK2_VERSION);
    buf.put_u32_le(sketch.query_dim() as u32);

    buf.put_u32_le(flat.len() as u32);
    for node in &flat {
        match *node {
            FlatNode::Internal {
                dim,
                val,
                left,
                right,
            } => {
                buf.put_u8(0);
                buf.put_u32_le(dim as u32);
                buf.put_f64_le(val);
                buf.put_u32_le(left as u32);
                buf.put_u32_le(right as u32);
            }
            FlatNode::Leaf => buf.put_u8(1),
        }
    }

    // The k-th leaf of the arena tree (leaf order) is the k-th Leaf slot
    // of the preorder flat table: both walks are depth-first, left child
    // first. Models are written in that shared order.
    let flat_leaves: Vec<usize> = flat
        .iter()
        .enumerate()
        .filter_map(|(i, n)| matches!(n, FlatNode::Leaf).then_some(i))
        .collect();
    let arena_leaves = sketch.tree().leaf_ids();
    debug_assert_eq!(flat_leaves.len(), arena_leaves.len());
    buf.put_u32_le(flat_leaves.len() as u32);
    for (&flat_leaf, arena_leaf) in flat_leaves.iter().zip(arena_leaves) {
        let model = &sketch.models()[&arena_leaf];
        buf.put_u32_le(flat_leaf as u32);
        buf.put_f64_le(model.y_mean);
        buf.put_f64_le(model.y_std);
        buf.put_u8(mode.tag());
        let blob = nn::binary::encode_with(&model.mlp, mode);
        buf.put_u32_le(blob.len() as u32);
        buf.put_slice(&blob);
    }

    match router {
        None => buf.put_u8(0),
        Some(meta) => {
            buf.put_u8(1);
            buf.put_f64_le(meta.policy.min_range_volume);
            buf.put_f64_le(meta.policy.max_leaf_aqc);
            buf.put_u32_le(meta.leaf_aqcs.len() as u32);
            for &a in &meta.leaf_aqcs {
                buf.put_f64_le(a);
            }
        }
    }
    // End-to-end trailer: FNV-1a over every byte written so far, NSKM
    // parity for single artifacts.
    let checksum = artifact_checksum(buf.as_ref());
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Decode an NSK2 container produced by [`encode_sketch`] /
/// [`encode_router`] (any version this build reads — see
/// [`NSK2_VERSION`]).
pub fn decode(mut data: Bytes) -> Result<Artifact, PersistError> {
    if data.remaining() < 12 {
        return Err(PersistError::Truncated("header"));
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes"));
    if magic != NSK2_MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if version == 0 || version > NSK2_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    if version >= NSK2_V3 {
        // Verify the end-to-end trailer before parsing anything: a
        // flipped bit anywhere in the container must surface as the
        // integrity error, not as whatever section-level symptom it
        // happens to cause (or worse, a silently-wrong weight).
        if data.remaining() < 12 + 8 {
            return Err(PersistError::Truncated("checksum trailer"));
        }
        let body = data.remaining() - 8;
        let expected = u64::from_le_bytes(data[body..].try_into().expect("8 bytes"));
        let found = artifact_checksum(&data[..body]);
        if found != expected {
            return Err(PersistError::TrailerMismatch { expected, found });
        }
        data = data.split_to(body);
    }
    data.advance(8); // magic + version, validated above
    let query_dim = data.get_u32_le() as usize;

    // kd-tree section.
    if data.remaining() < 4 {
        return Err(PersistError::Truncated("kd-tree section"));
    }
    let node_count = data.get_u32_le() as usize;
    // Each node costs at least 1 byte; an implausible count is caught
    // before any allocation is sized by it.
    if node_count == 0 || node_count > data.remaining() {
        return Err(PersistError::Corrupt(format!(
            "implausible node count {node_count}"
        )));
    }
    let mut flat = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        if data.remaining() < 1 {
            return Err(PersistError::Truncated("kd-tree section"));
        }
        match data.get_u8() {
            0 => {
                if data.remaining() < 20 {
                    return Err(PersistError::Truncated("kd-tree section"));
                }
                let dim = data.get_u32_le() as usize;
                let val = data.get_f64_le();
                let left = data.get_u32_le() as usize;
                let right = data.get_u32_le() as usize;
                flat.push(FlatNode::Internal {
                    dim,
                    val,
                    left,
                    right,
                });
            }
            1 => flat.push(FlatNode::Leaf),
            t => {
                return Err(PersistError::Corrupt(format!("unknown node tag {t}")));
            }
        }
    }
    let tree = KdTree::from_flat(&flat, query_dim)?;
    let leaves = tree.leaf_ids();

    // Model section.
    if data.remaining() < 4 {
        return Err(PersistError::Truncated("model section"));
    }
    let model_count = data.get_u32_le() as usize;
    if model_count != leaves.len() {
        return Err(PersistError::Corrupt(format!(
            "{model_count} models for {} leaves",
            leaves.len()
        )));
    }
    let record_head = if version >= NSK2_V3 { 25 } else { 24 };
    let mut container_mode: Option<QuantMode> = None;
    let mut models = BTreeMap::new();
    for _ in 0..model_count {
        if data.remaining() < record_head {
            return Err(PersistError::Truncated("model section"));
        }
        let leaf = data.get_u32_le() as usize;
        let y_mean = data.get_f64_le();
        let y_std = data.get_f64_le();
        if !y_mean.is_finite() || !y_std.is_finite() || y_std <= 0.0 {
            return Err(PersistError::Corrupt(format!(
                "implausible output scaler (mean {y_mean}, std {y_std})"
            )));
        }
        // from_flat keeps flat indices as node ids, so the stored index
        // addresses the rebuilt arena directly; leaf_ids() of a preorder
        // table is ascending, so membership is a binary search.
        if leaves.binary_search(&leaf).is_err() {
            return Err(PersistError::Corrupt(format!(
                "model attached to non-leaf node {leaf}"
            )));
        }
        let mode = if version >= NSK2_V3 {
            let tag = data.get_u8();
            QuantMode::from_tag(tag)
                .ok_or_else(|| PersistError::Corrupt(format!("unknown quant mode tag {tag}")))?
        } else {
            QuantMode::F32
        };
        // The save API writes one mode for the whole container; a mixed
        // container could not re-encode byte-idempotently, so it is
        // structural corruption, not a feature.
        if *container_mode.get_or_insert(mode) != mode {
            return Err(PersistError::Corrupt(format!(
                "mixed quant modes in one container ({} then {})",
                container_mode.expect("just inserted").name(),
                mode.name()
            )));
        }
        let blob_len = data.get_u32_le() as usize;
        if data.remaining() < blob_len {
            return Err(PersistError::Truncated("model blob"));
        }
        let blob = data.split_to(blob_len);
        let (mlp, blob_mode) =
            nn::binary::decode_any(blob).map_err(|e| PersistError::Model(e.to_string()))?;
        if blob_mode != mode {
            return Err(PersistError::Corrupt(format!(
                "model blob stored as {} but the record declares {}",
                blob_mode.name(),
                mode.name()
            )));
        }
        if mlp.input_dim() != query_dim || mlp.output_dim() != 1 {
            return Err(PersistError::Corrupt(format!(
                "model shape {}→{} does not fit a {query_dim}-dim sketch",
                mlp.input_dim(),
                mlp.output_dim()
            )));
        }
        if models
            .insert(leaf, LeafModel { mlp, y_mean, y_std })
            .is_some()
        {
            return Err(PersistError::Corrupt(format!("two models for leaf {leaf}")));
        }
    }

    // Router section.
    if data.remaining() < 1 {
        return Err(PersistError::Truncated("router section"));
    }
    let router = match data.get_u8() {
        0 => None,
        1 => {
            if data.remaining() < 20 {
                return Err(PersistError::Truncated("router section"));
            }
            let min_range_volume = data.get_f64_le();
            let max_leaf_aqc = data.get_f64_le();
            // `+inf` is legitimate (the default "rule disabled" policy
            // and unboundedly hard leaves), but NaN would make the
            // router's threshold comparisons silently always-false.
            if min_range_volume.is_nan() || max_leaf_aqc.is_nan() {
                return Err(PersistError::Corrupt("NaN routing threshold".to_string()));
            }
            let aqc_count = data.get_u32_le() as usize;
            if aqc_count != leaves.len() {
                return Err(PersistError::Corrupt(format!(
                    "{aqc_count} AQCs for {} leaves",
                    leaves.len()
                )));
            }
            if data.remaining() < aqc_count * 8 {
                return Err(PersistError::Truncated("router section"));
            }
            let leaf_aqcs: Vec<f64> = (0..aqc_count).map(|_| data.get_f64_le()).collect();
            if leaf_aqcs.iter().any(|a| a.is_nan()) {
                return Err(PersistError::Corrupt("NaN leaf AQC".to_string()));
            }
            Some(RouterMeta {
                leaf_aqcs,
                policy: RoutingPolicy {
                    min_range_volume,
                    max_leaf_aqc,
                },
            })
        }
        t => {
            return Err(PersistError::Corrupt(format!("unknown router tag {t}")));
        }
    };

    // A well-formed container ends exactly here; trailing bytes mean a
    // concatenated/partially-overwritten artifact and must not be
    // silently ignored (re-encoding would not reproduce the input).
    if data.remaining() != 0 {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after the router section",
            data.remaining()
        )));
    }

    Ok(Artifact {
        sketch: NeuroSketch::from_parts(
            tree,
            models,
            query_dim,
            container_mode.unwrap_or(QuantMode::F32),
        ),
        router,
    })
}

/// Write a sketch with an explicit parameter encoding — the on-disk
/// counterpart of [`encode_sketch_with`].
pub fn save_sketch_with(
    path: impl AsRef<Path>,
    sketch: &NeuroSketch,
    mode: QuantMode,
) -> Result<(), PersistError> {
    std::fs::write(path, encode_sketch_with(sketch, mode))
        .map_err(|e| PersistError::Io(e.to_string()))
}

/// Encode a sketch in the **legacy version-1 layout**: f32 parameters,
/// no per-model quant byte, no trailing checksum. Today's builds only
/// ever write version 3 ([`encode_sketch`]); this writer exists so
/// backward-compatibility tests (and interop with a pre-v3 reader)
/// can produce genuine old-format bytes instead of hand-patched ones.
pub fn encode_sketch_legacy_v1(sketch: &NeuroSketch) -> Bytes {
    let flat = sketch.tree().to_flat();
    let mut buf = BytesMut::with_capacity(encoded_len_with(sketch, QuantMode::F32));
    buf.put_u32_le(NSK2_MAGIC);
    buf.put_u32_le(1);
    buf.put_u32_le(sketch.query_dim() as u32);
    buf.put_u32_le(flat.len() as u32);
    for node in &flat {
        match *node {
            FlatNode::Internal {
                dim,
                val,
                left,
                right,
            } => {
                buf.put_u8(0);
                buf.put_u32_le(dim as u32);
                buf.put_f64_le(val);
                buf.put_u32_le(left as u32);
                buf.put_u32_le(right as u32);
            }
            FlatNode::Leaf => buf.put_u8(1),
        }
    }
    let flat_leaves: Vec<usize> = flat
        .iter()
        .enumerate()
        .filter_map(|(i, n)| matches!(n, FlatNode::Leaf).then_some(i))
        .collect();
    let arena_leaves = sketch.tree().leaf_ids();
    buf.put_u32_le(flat_leaves.len() as u32);
    for (&flat_leaf, arena_leaf) in flat_leaves.iter().zip(arena_leaves) {
        let model = &sketch.models()[&arena_leaf];
        buf.put_u32_le(flat_leaf as u32);
        buf.put_f64_le(model.y_mean);
        buf.put_f64_le(model.y_std);
        let blob = nn::binary::encode(&model.mlp);
        buf.put_u32_le(blob.len() as u32);
        buf.put_slice(&blob);
    }
    buf.put_u8(0);
    buf.freeze()
}

/// Write a sketch to `path` in NSK2 form.
pub fn save_sketch(path: impl AsRef<Path>, sketch: &NeuroSketch) -> Result<(), PersistError> {
    std::fs::write(path, encode_sketch(sketch)).map_err(|e| PersistError::Io(e.to_string()))
}

/// Write a router (sketch + AQCs + policy) to `path` in NSK2 form.
pub fn save_router(path: impl AsRef<Path>, router: &DqdRouter) -> Result<(), PersistError> {
    std::fs::write(path, encode_router(router)).map_err(|e| PersistError::Io(e.to_string()))
}

/// Write a router with an explicit parameter encoding — the on-disk
/// counterpart of [`encode_router_with`].
pub fn save_router_with(
    path: impl AsRef<Path>,
    router: &DqdRouter,
    mode: QuantMode,
) -> Result<(), PersistError> {
    std::fs::write(path, encode_router_with(router, mode))
        .map_err(|e| PersistError::Io(e.to_string()))
}

/// Read an NSK2 container from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<Artifact, PersistError> {
    let raw = std::fs::read(path).map_err(|e| PersistError::Io(e.to_string()))?;
    decode(Bytes::from(raw))
}

// ---------------------------------------------------------------------
// NSKM: the sharded-deployment manifest.
// ---------------------------------------------------------------------

/// NSKM manifest magic ("NSKM" little-endian).
pub const NSKM_MAGIC: u32 = 0x4D4B_534E;

/// Newest manifest version this build writes. Version 1 — identical
/// except for the absence of the generation field — still decodes (as
/// generation 0).
pub const NSKM_VERSION: u32 = 2;

/// FNV-1a 64-bit hash of an artifact's bytes — the checksum the NSKM
/// manifest records per shard artifact (the workspace-shared
/// [`query::exec::fnv1a_64`]). Not cryptographic: it detects
/// truncation, bit rot and file swaps, which is the integrity model a
/// trusted deployment directory needs.
pub fn artifact_checksum(bytes: &[u8]) -> u64 {
    query::exec::fnv1a_64(bytes.iter().copied())
}

/// One shard artifact the manifest references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardArtifactRef {
    /// Moment component the artifact's sketch predicts.
    pub kind: MomentKind,
    /// Path relative to the manifest file.
    pub path: String,
    /// [`artifact_checksum`] of the artifact's bytes.
    pub checksum: u64,
}

/// A decoded NSKM manifest: everything needed to reassemble a sharded
/// deployment from its per-shard NSK2 artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// The aggregate the deployment serves.
    pub aggregate: Aggregate,
    /// The row-assignment plan.
    pub plan: ShardPlan,
    /// Deployment generation: 0 for a fresh [`save_sharded`], bumped by
    /// one per [`save_refreshed`]. A version-1 manifest (written before
    /// generations existed) decodes as generation 0.
    pub generation: u64,
    /// Per shard (in shard order), the artifact references in moment
    /// slot order.
    pub shards: Vec<Vec<ShardArtifactRef>>,
}

fn aggregate_tag(agg: Aggregate) -> Result<u8, PersistError> {
    match agg {
        Aggregate::Count => Ok(0),
        Aggregate::Sum => Ok(1),
        Aggregate::Avg => Ok(2),
        Aggregate::Std => Ok(3),
        // build_sharded refuses MEDIAN, but ShardManifest is plain
        // public data — a hand-built one must get the typed error the
        // module contract promises, not a panic.
        Aggregate::Median => Err(PersistError::Corrupt(
            "MEDIAN is not moment-composable and has no NSKM encoding".to_string(),
        )),
    }
}

fn aggregate_from_tag(tag: u8) -> Option<Aggregate> {
    match tag {
        0 => Some(Aggregate::Count),
        1 => Some(Aggregate::Sum),
        2 => Some(Aggregate::Avg),
        3 => Some(Aggregate::Std),
        _ => None,
    }
}

/// Encode a manifest into NSKM bytes. Fails (typed, no truncation) if
/// an artifact path exceeds the format's `u16` length field.
pub fn encode_manifest(manifest: &ShardManifest) -> Result<Bytes, PersistError> {
    let mut buf = BytesMut::with_capacity(64 + 64 * manifest.shards.len());
    buf.put_u32_le(NSKM_MAGIC);
    buf.put_u32_le(NSKM_VERSION);
    buf.put_u64_le(manifest.generation);
    buf.put_u8(aggregate_tag(manifest.aggregate)?);
    // Same uniform hardening as the path length below: counts that do
    // not fit the format's fields are a typed refusal, never a
    // silently-truncating cast.
    let as_u32 = |n: usize, what: &str| -> Result<u32, PersistError> {
        n.try_into().map_err(|_| {
            PersistError::Corrupt(format!("{what} {n} exceeds the format's u32 field"))
        })
    };
    match manifest.plan {
        ShardPlan::RoundRobin { shards } => {
            buf.put_u8(0);
            buf.put_u32_le(as_u32(shards, "plan shard count")?);
        }
        ShardPlan::Blocks { shards } => {
            buf.put_u8(1);
            buf.put_u32_le(as_u32(shards, "plan shard count")?);
        }
        ShardPlan::Hash { shards, seed } => {
            buf.put_u8(2);
            buf.put_u32_le(as_u32(shards, "plan shard count")?);
            buf.put_u64_le(seed);
        }
    }
    // The same consistency decode enforces: catching a malformed
    // hand-built manifest here keeps the error at encode time, not on
    // the deployed artifact at load time.
    if manifest.shards.len() != manifest.plan.shards() {
        return Err(PersistError::Corrupt(format!(
            "manifest lists {} shards but the plan has {}",
            manifest.shards.len(),
            manifest.plan.shards()
        )));
    }
    buf.put_u32_le(as_u32(manifest.shards.len(), "manifest shard count")?);
    for shard in &manifest.shards {
        for kind in MomentKind::ALL {
            match shard.iter().find(|a| a.kind == kind) {
                None => buf.put_u8(0),
                Some(a) => {
                    let len: u16 = a.path.len().try_into().map_err(|_| {
                        PersistError::Corrupt(format!(
                            "artifact path of {} bytes exceeds the format's u16 length field",
                            a.path.len()
                        ))
                    })?;
                    buf.put_u8(1);
                    buf.put_u64_le(a.checksum);
                    buf.put_u16_le(len);
                    buf.put_slice(a.path.as_bytes());
                }
            }
        }
    }
    Ok(buf.freeze())
}

/// Decode and structurally validate an NSKM manifest produced by
/// [`encode_manifest`]. Artifact files are *not* touched here —
/// existence and checksums are verified by [`load_sharded`].
pub fn decode_manifest(mut data: Bytes) -> Result<ShardManifest, PersistError> {
    if data.remaining() < 8 {
        return Err(PersistError::Truncated("manifest header"));
    }
    let magic = data.get_u32_le();
    if magic != NSKM_MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = data.get_u32_le();
    if version == 0 || version > NSKM_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    // Version 1 predates generations; everything after the generation
    // field is byte-identical across versions.
    let generation = if version >= 2 {
        if data.remaining() < 8 {
            return Err(PersistError::Truncated("manifest generation"));
        }
        data.get_u64_le()
    } else {
        0
    };
    if data.remaining() < 6 {
        return Err(PersistError::Truncated("manifest plan"));
    }
    let agg_tag = data.get_u8();
    let aggregate = aggregate_from_tag(agg_tag)
        .ok_or_else(|| PersistError::Corrupt(format!("unknown aggregate tag {agg_tag}")))?;
    let required = aggregate
        .required_moments()
        .expect("manifest aggregates are moment-composable");
    let plan_tag = data.get_u8();
    let shards = data.get_u32_le() as usize;
    let plan = match plan_tag {
        0 => ShardPlan::RoundRobin { shards },
        1 => ShardPlan::Blocks { shards },
        2 => {
            if data.remaining() < 8 {
                return Err(PersistError::Truncated("manifest plan"));
            }
            ShardPlan::Hash {
                shards,
                seed: data.get_u64_le(),
            }
        }
        t => {
            return Err(PersistError::Corrupt(format!("unknown plan tag {t}")));
        }
    };
    if shards == 0 {
        return Err(PersistError::Corrupt("plan with zero shards".to_string()));
    }
    if data.remaining() < 4 {
        return Err(PersistError::Truncated("manifest shard table"));
    }
    let shard_count = data.get_u32_le() as usize;
    if shard_count != shards {
        return Err(PersistError::Corrupt(format!(
            "manifest lists {shard_count} shards but the plan has {shards}"
        )));
    }
    // Each shard costs at least 3 presence bytes; an implausible count
    // is caught before any allocation is sized by it (mirrors the NSK2
    // node-count guard).
    if shard_count * MomentKind::ALL.len() > data.remaining() {
        return Err(PersistError::Corrupt(format!(
            "implausible shard count {shard_count}"
        )));
    }
    let mut table = Vec::with_capacity(shard_count);
    for shard_idx in 0..shard_count {
        let mut artifacts = Vec::with_capacity(required.len());
        for kind in MomentKind::ALL {
            if data.remaining() < 1 {
                return Err(PersistError::Truncated("manifest shard table"));
            }
            match data.get_u8() {
                0 => {}
                1 => {
                    if data.remaining() < 10 {
                        return Err(PersistError::Truncated("manifest artifact entry"));
                    }
                    let checksum = data.get_u64_le();
                    let path_len = data.get_u16_le() as usize;
                    if data.remaining() < path_len {
                        return Err(PersistError::Truncated("manifest artifact path"));
                    }
                    let raw = data.split_to(path_len);
                    let path = std::str::from_utf8(&raw)
                        .map_err(|_| {
                            PersistError::Corrupt("artifact path is not utf-8".to_string())
                        })?
                        .to_string();
                    // Paths are manifest-relative by contract; an
                    // absolute or parent-escaping path would let a
                    // tampered manifest read outside its directory.
                    // Backslashes and colons are rejected outright so
                    // Windows-style escapes (`..\\x`, `C:\\x`) cannot
                    // slip past the '/'-based checks; save_sharded only
                    // ever writes flat `shard-NNN.<component>.nsk2`
                    // names, so no legitimate manifest loses anything.
                    if path.is_empty()
                        || path.starts_with('/')
                        || path.contains('\\')
                        || path.contains(':')
                        || path.split('/').any(|seg| seg == "..")
                    {
                        return Err(PersistError::Corrupt(format!(
                            "implausible artifact path `{path}`"
                        )));
                    }
                    artifacts.push(ShardArtifactRef {
                        kind,
                        path,
                        checksum,
                    });
                }
                t => {
                    return Err(PersistError::Corrupt(format!(
                        "unknown artifact presence tag {t}"
                    )));
                }
            }
        }
        let present: Vec<MomentKind> = artifacts.iter().map(|a| a.kind).collect();
        if present != required {
            return Err(PersistError::Corrupt(format!(
                "shard {shard_idx} stores components {present:?} but {} needs {required:?}",
                aggregate.name()
            )));
        }
        table.push(artifacts);
    }
    if data.remaining() != 0 {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after the manifest shard table",
            data.remaining()
        )));
    }
    Ok(ShardManifest {
        aggregate,
        plan,
        generation,
        shards: table,
    })
}

/// File name of one shard's component artifact inside a deployment
/// directory: `shard-NNN.<component>.nsk2`.
pub fn shard_artifact_name(shard: usize, kind: MomentKind) -> String {
    format!("shard-{shard:03}.{}.nsk2", kind.name())
}

/// Generation-qualified artifact name: generation 0 keeps the plain
/// [`shard_artifact_name`]; later generations append `.gG` before the
/// extension (`shard-NNN.<component>.gG.nsk2`), so a refresh never
/// writes over a byte the previous generation's manifest checksums.
pub fn shard_artifact_name_gen(shard: usize, kind: MomentKind, generation: u64) -> String {
    if generation == 0 {
        shard_artifact_name(shard, kind)
    } else {
        format!("shard-{shard:03}.{}.g{generation}.nsk2", kind.name())
    }
}

/// File name of the manifest inside a deployment directory.
pub const MANIFEST_NAME: &str = "manifest.nskm";

/// Write a sharded deployment into `dir` as one loadable unit: every
/// component sketch as an NSK2 artifact plus the NSKM manifest tying
/// them together. Returns the manifest path (hand it to
/// [`load_sharded`]).
pub fn save_sharded(
    dir: impl AsRef<Path>,
    sketch: &ShardedSketch,
) -> Result<PathBuf, PersistError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(|e| PersistError::Io(e.to_string()))?;
    let mut table = Vec::with_capacity(sketch.shard_count());
    for (shard_idx, shard) in sketch.shards().iter().enumerate() {
        let mut artifacts = Vec::new();
        for kind in MomentKind::ALL {
            let Some(model) = shard.model(kind) else {
                continue;
            };
            let bytes = encode_sketch(model);
            let name = shard_artifact_name(shard_idx, kind);
            write_synced(&dir.join(&name), &bytes)?;
            artifacts.push(ShardArtifactRef {
                kind,
                path: name,
                checksum: artifact_checksum(&bytes),
            });
        }
        table.push(artifacts);
    }
    let manifest = ShardManifest {
        aggregate: sketch.aggregate(),
        plan: sketch.plan(),
        generation: 0,
        shards: table,
    };
    // Artifacts first, manifest last. Note the fresh-save path writes
    // artifacts under fixed generation-0 names, so re-running it into a
    // live deployment directory overwrites bytes the old manifest
    // checksums — save each *initial* build into its own directory.
    // In-place evolution of a live directory is what [`save_refreshed`]
    // (generation-suffixed names) is for.
    land_manifest(dir, &manifest)
}

/// Land a **partial refresh** of an on-disk sharded deployment: write
/// fresh NSK2 artifacts only for the shards in `replaced` (taken from
/// `sketch`, which holds the refreshed deployment), reuse the existing
/// manifest's entries verbatim for every other shard, and land a new
/// manifest with the generation bumped by one. Returns the manifest
/// path.
///
/// Atomicity: replaced shards' artifacts are written under
/// generation-suffixed names ([`shard_artifact_name_gen`]) and fsynced
/// *before* the manifest lands by the same write-fsync-rename dance as
/// [`save_sharded`] — no byte of generation `G` is ever overwritten. A
/// refresh torn anywhere before the rename leaves the gen-`G` manifest
/// pointing at intact gen-`G` artifacts; after the rename every load
/// sees `G + 1`. Superseded artifacts are *not* deleted (a serving
/// process may still be draining batches on `G`): garbage-collect them
/// once the swap is confirmed, as `docs/maintenance.md` describes.
///
/// Errors: a manifest whose plan or aggregate disagrees with `sketch`,
/// a `replaced` index out of range, an *untouched* shard whose
/// in-memory models do not checksum-match the artifacts the old
/// manifest would be reused for (the caller's deployment disagrees
/// with the directory — pass the shard in `replaced` or reload before
/// refreshing), and every I/O or decode failure the manifest round
/// trip can produce.
pub fn save_refreshed(
    manifest_path: impl AsRef<Path>,
    sketch: &ShardedSketch,
    replaced: &[usize],
) -> Result<PathBuf, PersistError> {
    let manifest_path = manifest_path.as_ref();
    let raw = std::fs::read(manifest_path).map_err(|e| PersistError::Io(e.to_string()))?;
    let old = decode_manifest(Bytes::from(raw))?;
    if old.plan != sketch.plan() || old.aggregate != sketch.aggregate() {
        return Err(PersistError::Corrupt(format!(
            "refresh of a {:?}/{} deployment with a {:?}/{} sketch",
            old.plan,
            old.aggregate.name(),
            sketch.plan(),
            sketch.aggregate().name()
        )));
    }
    if old.shards.len() != sketch.shard_count() {
        return Err(PersistError::Corrupt(format!(
            "manifest lists {} shards but the sketch has {}",
            old.shards.len(),
            sketch.shard_count()
        )));
    }
    let generation = old
        .generation
        .checked_add(1)
        .ok_or_else(|| PersistError::Corrupt("generation counter overflowed u64".to_string()))?;
    // Before touching the disk: every shard the caller claims is
    // untouched must actually encode to the artifacts whose manifest
    // entries are about to be reused. Without this, a caller holding a
    // deployment that diverged from the directory (rebuilt in memory,
    // wrong directory, ...) would land a manifest that silently
    // disagrees with what they think they saved. Encoding is CPU-only
    // (no reads), and encode-after-quantize is byte-idempotent, so a
    // loaded-then-refreshed deployment always passes. Deliberate cost:
    // this serializes every untouched shard's models — linear in
    // deployment size, milliseconds of memcpy-and-cast per refresh —
    // which is noise next to retraining even one shard; what partial
    // refresh avoids is the *retraining*, and that stays O(stale).
    for (idx, artifacts) in old.shards.iter().enumerate() {
        if replaced.contains(&idx) {
            continue;
        }
        let shard = &sketch.shards()[idx];
        for a in artifacts {
            let matches = shard
                .model(a.kind)
                .is_some_and(|m| artifact_checksum(&encode_sketch(m)) == a.checksum);
            if !matches {
                return Err(PersistError::Corrupt(format!(
                    "shard {idx} is not listed as replaced but its in-memory {} model does not \
                     match the on-disk artifact `{}` — pass it in `replaced`, or reload the \
                     deployment from this manifest before refreshing",
                    a.kind.name(),
                    a.path
                )));
            }
        }
    }
    let dir = manifest_path.parent().unwrap_or(Path::new("."));
    let mut table = old.shards;
    for &idx in replaced {
        let Some(shard) = sketch.shards().get(idx) else {
            return Err(PersistError::Corrupt(format!(
                "replaced shard {idx} out of range for {} shards",
                sketch.shard_count()
            )));
        };
        let mut artifacts = Vec::new();
        for kind in MomentKind::ALL {
            let Some(model) = shard.model(kind) else {
                continue;
            };
            let bytes = encode_sketch(model);
            let name = shard_artifact_name_gen(idx, kind, generation);
            write_synced(&dir.join(&name), &bytes)?;
            artifacts.push(ShardArtifactRef {
                kind,
                path: name,
                checksum: artifact_checksum(&bytes),
            });
        }
        table[idx] = artifacts;
    }
    let manifest = ShardManifest {
        aggregate: old.aggregate,
        plan: old.plan,
        generation,
        shards: table,
    };
    land_manifest(dir, &manifest)
}

/// Write `manifest` into `dir` as `manifest.nskm`, fsynced via a
/// same-directory rename so a crash mid-save never leaves a truncated
/// or half-old manifest. Shared tail of [`save_sharded`] and
/// [`save_refreshed`].
fn land_manifest(dir: &Path, manifest: &ShardManifest) -> Result<PathBuf, PersistError> {
    let path = dir.join(MANIFEST_NAME);
    let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
    write_synced(&tmp, &encode_manifest(manifest)?)?;
    std::fs::rename(&tmp, &path).map_err(|e| PersistError::Io(e.to_string()))?;
    // Make the rename itself durable where the platform allows opening
    // a directory handle (POSIX); elsewhere the data is still synced
    // and a torn save remains typed-detectable at load. Failures
    // propagate like every other I/O error here — a silently skipped
    // sync would quietly downgrade the durability contract.
    #[cfg(unix)]
    {
        let d = std::fs::File::open(dir).map_err(|e| PersistError::Io(e.to_string()))?;
        d.sync_all().map_err(|e| PersistError::Io(e.to_string()))?;
    }
    Ok(path)
}

/// Write bytes and fsync before returning: every artifact must be
/// durable before the manifest that checksums it lands, or a power loss
/// could persist the fsynced manifest while artifact data blocks are
/// still unflushed — a durable manifest over truncated shards.
fn write_synced(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    use std::io::Write;
    let mut f = std::fs::File::create(path).map_err(|e| PersistError::Io(e.to_string()))?;
    f.write_all(bytes)
        .map_err(|e| PersistError::Io(e.to_string()))?;
    f.sync_all().map_err(|e| PersistError::Io(e.to_string()))?;
    Ok(())
}

/// Load a sharded deployment from its NSKM manifest: decode and
/// validate the manifest, then read every referenced artifact
/// (manifest-relative), verify its checksum, and decode it. The result
/// answers bitwise identically to
/// [`ShardedSketch::quantized`][crate::shard::ShardedSketch::quantized]
/// of the deployment that was saved.
pub fn load_sharded(manifest_path: impl AsRef<Path>) -> Result<ShardedSketch, PersistError> {
    load_sharded_with_manifest(manifest_path).map(|(sketch, _)| sketch)
}

/// [`load_sharded`], also returning the decoded manifest the artifacts
/// were resolved against. The manifest is read and decoded **once**, so
/// the (deployment, generation) pair is guaranteed consistent even when
/// a concurrent [`save_refreshed`] lands between calls — the property
/// [`crate::deploy::LiveDeployment::reload_sharded`] relies on to
/// report the generation it actually serves.
pub fn load_sharded_with_manifest(
    manifest_path: impl AsRef<Path>,
) -> Result<(ShardedSketch, ShardManifest), PersistError> {
    let manifest_path = manifest_path.as_ref();
    let raw = std::fs::read(manifest_path).map_err(|e| PersistError::Io(e.to_string()))?;
    let manifest = decode_manifest(Bytes::from(raw))?;
    let dir = manifest_path.parent().unwrap_or(Path::new("."));
    let mut shards = Vec::with_capacity(manifest.shards.len());
    let mut query_dim: Option<usize> = None;
    for artifacts in &manifest.shards {
        shards.push(load_shard_models(dir, artifacts, &mut query_dim)?);
    }
    let sketch = ShardedSketch::from_parts(manifest.plan, manifest.aggregate, shards);
    Ok((sketch, manifest))
}

/// Load **one** shard of a manifested deployment: decode the manifest,
/// then read, checksum-verify and decode only shard `shard`'s
/// artifacts. Returns the shard sketch together with the decoded
/// manifest (same one-read consistency contract as
/// [`load_sharded_with_manifest`]), so the caller knows which
/// generation the shard belongs to. This is the per-replica loading
/// unit [`crate::cluster`]'s rolling upgrades use — a cluster of
/// `K × N` replicas never has to read `K × N × K` artifacts to bring
/// one replica to a new generation.
pub fn load_shard(
    manifest_path: impl AsRef<Path>,
    shard: usize,
) -> Result<(ShardSketch, ShardManifest), PersistError> {
    let manifest_path = manifest_path.as_ref();
    let raw = std::fs::read(manifest_path).map_err(|e| PersistError::Io(e.to_string()))?;
    let manifest = decode_manifest(Bytes::from(raw))?;
    let Some(artifacts) = manifest.shards.get(shard) else {
        return Err(PersistError::Corrupt(format!(
            "shard {shard} out of range for a {}-shard manifest",
            manifest.shards.len()
        )));
    };
    let dir = manifest_path.parent().unwrap_or(Path::new("."));
    let sketch = load_shard_models(dir, artifacts, &mut None)?;
    Ok((sketch, manifest))
}

/// Read, checksum-verify and decode one shard's artifact set — the
/// per-shard unit shared by [`load_sharded_with_manifest`] (which
/// threads `query_dim` across shards to enforce cross-shard dimension
/// agreement) and [`load_shard`].
fn load_shard_models(
    dir: &Path,
    artifacts: &[ShardArtifactRef],
    query_dim: &mut Option<usize>,
) -> Result<ShardSketch, PersistError> {
    let mut models: [Option<NeuroSketch>; 3] = [None, None, None];
    for a in artifacts {
        let path = dir.join(&a.path);
        // Read first and classify by error kind — an exists()
        // pre-check would race with concurrent deletion and
        // misreport unreadable-but-present files as missing.
        let bytes = std::fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                PersistError::MissingShard {
                    path: a.path.clone(),
                }
            } else {
                PersistError::Io(e.to_string())
            }
        })?;
        let found = artifact_checksum(&bytes);
        if found != a.checksum {
            return Err(PersistError::ChecksumMismatch {
                path: a.path.clone(),
                expected: a.checksum,
                found,
            });
        }
        let artifact = decode(Bytes::from(bytes))?;
        let dim = artifact.sketch.query_dim();
        if *query_dim.get_or_insert(dim) != dim {
            return Err(PersistError::Corrupt(format!(
                "shard artifact `{}` expects {dim}-dim queries, others disagree",
                a.path
            )));
        }
        models[a.kind.slot()] = Some(artifact.sketch);
    }
    Ok(ShardSketch::from_models(models))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::NeuroSketchConfig;

    fn trained_sketch() -> (NeuroSketch, Vec<f64>) {
        let qs: Vec<Vec<f64>> = (0..240)
            .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
            .collect();
        let labels: Vec<f64> = qs.iter().map(|q| 40.0 * q[0] + 11.0 * q[1]).collect();
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 3;
        cfg.target_partitions = 5;
        cfg.train.epochs = 15;
        let (s, r) = NeuroSketch::build_from_labeled(&qs, &labels, &cfg).unwrap();
        (s, r.leaf_aqcs)
    }

    /// Recompute a v3 blob's trailing checksum after test corruption of
    /// its body, so the corruption under test — not the trailer — is
    /// what the decoder trips on.
    fn patch_trailer(blob: &mut [u8]) {
        let body = blob.len() - 8;
        let c = artifact_checksum(&blob[..body]);
        blob[body..].copy_from_slice(&c.to_le_bytes());
    }

    #[test]
    fn roundtrip_matches_quantized_sketch_bitwise() {
        let (sketch, _) = trained_sketch();
        let blob = encode_sketch(&sketch);
        assert_eq!(blob.len(), encoded_len(&sketch));
        let loaded = decode(blob).unwrap();
        assert!(loaded.router.is_none());
        let q = sketch.quantized();
        assert_eq!(loaded.sketch.partitions(), sketch.partitions());
        for i in 0..50 {
            let query = vec![(i as f64 * 0.137) % 1.0, (i as f64 * 0.311) % 1.0];
            assert_eq!(loaded.sketch.answer(&query), q.answer(&query));
        }
    }

    #[test]
    fn second_roundtrip_is_byte_identical() {
        let (sketch, _) = trained_sketch();
        let once = encode_sketch(&sketch);
        let decoded = decode(once.clone()).unwrap();
        let twice = encode_sketch(&decoded.sketch);
        assert_eq!(&once[..], &twice[..]);
    }

    #[test]
    fn router_metadata_roundtrips() {
        let (sketch, aqcs) = trained_sketch();
        let policy = RoutingPolicy {
            min_range_volume: 0.015,
            max_leaf_aqc: 42.5,
        };
        let router = DqdRouter::new(sketch, aqcs.clone(), policy);
        let artifact = decode(encode_router(&router)).unwrap();
        let meta = artifact.router.clone().expect("router section present");
        assert_eq!(meta.leaf_aqcs, aqcs);
        assert_eq!(meta.policy, policy);
        let rebuilt = artifact.into_router();
        assert_eq!(rebuilt.policy(), policy);
        assert_eq!(rebuilt.leaf_aqcs(), &aqcs[..]);
    }

    #[test]
    fn size_accounting_tracks_the_paper_model() {
        let (sketch, _) = trained_sketch();
        let len = encode_sketch(&sketch).len();
        // Dominated by 4 bytes per parameter...
        assert!(len >= sketch.param_count() * 4);
        // ...with overhead well under the paper-accounted figure + a
        // small per-partition constant.
        assert!(
            len <= sketch.storage_bytes() + 80 * sketch.partitions() + 64,
            "len {len} vs accounted {}",
            sketch.storage_bytes()
        );
    }

    #[test]
    fn file_roundtrip() {
        let (sketch, aqcs) = trained_sketch();
        let router = DqdRouter::new(sketch, aqcs, RoutingPolicy::default());
        let path = std::env::temp_dir().join("nsk2_file_roundtrip_test.nsk2");
        save_router(&path, &router).unwrap();
        let artifact = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let query = [0.3, 0.8];
        assert_eq!(
            artifact.sketch.answer(&query),
            router.sketch().quantized().answer(&query)
        );
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load("/definitely/not/a/real/path.nsk2").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let (sketch, _) = trained_sketch();
        let blob = encode_sketch(&sketch);

        assert!(matches!(
            decode(Bytes::from_static(b"shrt")),
            Err(PersistError::Truncated(_))
        ));

        let mut bad_magic = blob.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode(Bytes::from(bad_magic)),
            Err(PersistError::BadMagic { .. })
        ));

        let mut future = blob.to_vec();
        future[4] = 0xEE; // version 0x..EE
        assert!(matches!(
            decode(Bytes::from(future)),
            Err(PersistError::UnsupportedVersion { .. })
        ));

        // Every strict prefix must fail with a typed error, never panic.
        for cut in [12, 13, 20, blob.len() / 2, blob.len() - 1] {
            let err = decode(blob.slice(0..cut)).unwrap_err();
            assert!(
                !matches!(err, PersistError::BadMagic { .. }),
                "prefix of a valid blob keeps its magic"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let (sketch, _) = trained_sketch();
        // v3: appended bytes shift the trailer window, so the end-to-end
        // checksum is what trips.
        let mut blob = encode_sketch(&sketch).to_vec();
        blob.extend_from_slice(b"leftover");
        let err = decode(Bytes::from(blob)).unwrap_err();
        assert!(
            matches!(err, PersistError::TrailerMismatch { .. }),
            "expected trailer mismatch, got {err}"
        );
        // Legacy v1 has no trailer; the structural trailing-bytes check
        // still catches concatenation.
        let mut v1 = encode_sketch_legacy_v1(&sketch).to_vec();
        v1.extend_from_slice(b"leftover");
        let err = decode(Bytes::from(v1)).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("trailing")),
            "expected trailing-bytes error, got {err}"
        );
    }

    #[test]
    fn rejects_nan_router_metadata() {
        let (sketch, aqcs) = trained_sketch();
        let router = DqdRouter::new(sketch, aqcs, RoutingPolicy::default());
        let blob = encode_router(&router).to_vec();
        // The router section sits just before the 8-byte trailer: tag
        // byte, two policy f64s, count u32, then the AQC array.
        let n_aqcs = router.leaf_aqcs().len();
        let aqc_array = blob.len() - 8 - 8 * n_aqcs;
        let policy_floats = aqc_array - 4 - 16;
        for offset in [policy_floats, policy_floats + 8, aqc_array] {
            let mut bad = blob.clone();
            bad[offset..offset + 8].copy_from_slice(&f64::NAN.to_le_bytes());
            patch_trailer(&mut bad);
            let err = decode(Bytes::from(bad)).unwrap_err();
            assert!(
                matches!(&err, PersistError::Corrupt(m) if m.contains("NaN")),
                "offset {offset}: expected NaN rejection, got {err}"
            );
        }
    }

    #[test]
    fn sharded_deployment_roundtrips_through_manifest() {
        use crate::shard::{build_sharded, ShardPlan};
        use datagen::Dataset;
        use query::aggregate::Aggregate;
        use query::predicate::Range;

        let rows: Vec<Vec<f64>> = (0..240)
            .map(|i| vec![(i as f64 * 0.377) % 1.0, (i as f64 * 0.713) % 1.0])
            .collect();
        let data = Dataset::from_rows(vec!["a".into(), "m".into()], &rows).unwrap();
        let pred = Range::new(vec![0], 2).unwrap();
        let queries: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i as f64 * 0.549) % 0.8, 0.1 + (i as f64 * 0.211) % 0.2])
            .collect();
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 6;
        let plan = ShardPlan::Hash { shards: 2, seed: 3 };
        let (sharded, _) =
            build_sharded(&data, 1, &plan, &pred, Aggregate::Avg, &queries, &cfg).unwrap();

        let dir = std::env::temp_dir().join("nskm_roundtrip_test");
        std::fs::remove_dir_all(&dir).ok();
        let manifest_path = save_sharded(&dir, &sharded).unwrap();
        assert_eq!(manifest_path.file_name().unwrap(), MANIFEST_NAME);
        let loaded = load_sharded(&manifest_path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(loaded.plan(), plan);
        assert_eq!(loaded.aggregate(), Aggregate::Avg);
        assert_eq!(loaded.shard_count(), 2);
        // Save is lossy exactly once (f32 storage): the loaded
        // deployment answers bitwise like the quantized source.
        let quantized = sharded.quantized();
        for q in queries.iter().take(20) {
            assert_eq!(loaded.answer(q), quantized.answer(q));
        }
    }

    #[test]
    fn manifest_encoding_roundtrips_and_validates() {
        use crate::shard::ShardPlan;
        use query::aggregate::{Aggregate, MomentKind};

        let manifest = ShardManifest {
            aggregate: Aggregate::Avg,
            plan: ShardPlan::Hash { shards: 2, seed: 9 },
            generation: 7,
            shards: (0..2)
                .map(|s| {
                    vec![
                        ShardArtifactRef {
                            kind: MomentKind::Count,
                            path: shard_artifact_name(s, MomentKind::Count),
                            checksum: 0x1234 + s as u64,
                        },
                        ShardArtifactRef {
                            kind: MomentKind::Sum,
                            path: shard_artifact_name(s, MomentKind::Sum),
                            checksum: 0x9876 - s as u64,
                        },
                    ]
                })
                .collect(),
        };
        let blob = encode_manifest(&manifest).unwrap();
        assert_eq!(decode_manifest(blob.clone()).unwrap(), manifest);

        // A version-1 manifest — same bytes minus the generation field —
        // still decodes, as generation 0.
        let mut v1 = blob.to_vec();
        v1.drain(8..16);
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let decoded = decode_manifest(Bytes::from(v1)).unwrap();
        assert_eq!(decoded.generation, 0);
        assert_eq!(decoded.shards, manifest.shards);
        assert_eq!(decoded.plan, manifest.plan);

        // Versions beyond the newest known stay a typed refusal.
        let mut future = blob.to_vec();
        future[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            decode_manifest(Bytes::from(future)),
            Err(PersistError::UnsupportedVersion { found: 9 })
        ));

        // Wrong component set for the aggregate is structural corruption.
        let mut wrong = manifest.clone();
        wrong.shards[1].pop();
        assert!(matches!(
            decode_manifest(encode_manifest(&wrong).unwrap()),
            Err(PersistError::Corrupt(m)) if m.contains("components")
        ));

        // A path longer than the u16 length field refuses to encode
        // (typed), never truncates into a misaligned manifest.
        let mut long = manifest.clone();
        long.shards[0][0].path = "x".repeat(u16::MAX as usize + 1);
        assert!(matches!(
            encode_manifest(&long),
            Err(PersistError::Corrupt(m)) if m.contains("u16")
        ));

        // A hand-built MEDIAN manifest is a typed refusal, not a panic.
        let mut median = manifest.clone();
        median.aggregate = Aggregate::Median;
        assert!(matches!(
            encode_manifest(&median),
            Err(PersistError::Corrupt(m)) if m.contains("MEDIAN")
        ));

        // Every strict prefix fails typed, never panics.
        for cut in 0..blob.len() {
            assert!(decode_manifest(blob.slice(0..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn manifest_rejects_implausible_shard_count_before_allocating() {
        // Valid header, COUNT, round-robin, plan shards = table count =
        // u32::MAX: consistent, but the buffer can't possibly hold that
        // many shard entries — must be a typed error, not a ~100 GB
        // Vec::with_capacity abort.
        let mut blob = Vec::new();
        blob.extend_from_slice(&NSKM_MAGIC.to_le_bytes());
        blob.extend_from_slice(&NSKM_VERSION.to_le_bytes());
        blob.extend_from_slice(&0u64.to_le_bytes()); // generation
        blob.push(0); // COUNT
        blob.push(0); // round-robin
        blob.extend_from_slice(&u32::MAX.to_le_bytes());
        blob.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_manifest(Bytes::from(blob)),
            Err(PersistError::Corrupt(m)) if m.contains("implausible shard count")
        ));
    }

    #[test]
    fn manifest_rejects_escaping_paths() {
        use crate::shard::ShardPlan;
        use query::aggregate::{Aggregate, MomentKind};
        for bad in [
            "/etc/passwd",
            "../outside.nsk2",
            "a/../../b.nsk2",
            "",
            "..\\outside.nsk2",
            "C:\\other\\x.nsk2",
        ] {
            let manifest = ShardManifest {
                aggregate: Aggregate::Count,
                plan: ShardPlan::RoundRobin { shards: 1 },
                generation: 0,
                shards: vec![vec![ShardArtifactRef {
                    kind: MomentKind::Count,
                    path: bad.to_string(),
                    checksum: 1,
                }]],
            };
            assert!(
                matches!(
                    decode_manifest(encode_manifest(&manifest).unwrap()),
                    Err(PersistError::Corrupt(m)) if m.contains("path")
                ),
                "path `{bad}` was accepted"
            );
        }
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(artifact_checksum(b""), 0xcbf2_9ce4_8422_2325);
        let a = artifact_checksum(b"neurosketch");
        let mut flipped = b"neurosketch".to_vec();
        flipped[3] ^= 1;
        assert_ne!(a, artifact_checksum(&flipped));
        assert_eq!(a, artifact_checksum(b"neurosketch"));
    }

    #[test]
    fn rejects_cross_section_corruption() {
        let (sketch, _) = trained_sketch();
        let blob = encode_sketch(&sketch).to_vec();

        // Zero the node count: structurally empty tree.
        let mut no_nodes = blob.clone();
        no_nodes[12..16].copy_from_slice(&0u32.to_le_bytes());
        patch_trailer(&mut no_nodes);
        assert!(decode(Bytes::from(no_nodes)).is_err());

        // Corrupt the first internal node's left-child pointer.
        let mut bad_child = blob.clone();
        // header(12) + node_count(4) + tag(1) + dim(4) + val(8) = 29.
        bad_child[29..33].copy_from_slice(&u32::MAX.to_le_bytes());
        patch_trailer(&mut bad_child);
        assert!(matches!(
            decode(Bytes::from(bad_child)),
            Err(PersistError::Tree(_))
        ));
    }

    #[test]
    fn quantized_modes_roundtrip_and_reencode_byte_idempotently() {
        let (sketch, _) = trained_sketch();
        let f32_len = encoded_len_with(&sketch, QuantMode::F32);
        for mode in QuantMode::ALL {
            let blob = encode_sketch_with(&sketch, mode);
            assert_eq!(blob.len(), encoded_len_with(&sketch, mode), "{mode:?}");
            let loaded = decode(blob.clone()).unwrap().sketch;
            assert_eq!(loaded.quant_mode(), mode);
            // The artifact answers exactly like the in-memory
            // quantization of its source...
            let q = sketch.quantized_to(mode);
            for i in 0..40 {
                let query = vec![(i as f64 * 0.173) % 1.0, (i as f64 * 0.419) % 1.0];
                assert_eq!(loaded.answer(&query), q.answer(&query), "{mode:?}");
            }
            // ...re-encodes to the same bytes without the caller naming
            // the mode (the sketch carries it)...
            assert_eq!(&encode_sketch(&loaded)[..], &blob[..], "{mode:?}");
            // ...and a second load is bitwise-reproducible.
            let again = decode(blob).unwrap().sketch;
            let query = [0.31, 0.77];
            assert_eq!(loaded.answer(&query), again.answer(&query));
        }
        // The size ordering that motivates the whole feature.
        assert!(
            encoded_len_with(&sketch, QuantMode::I8) < encoded_len_with(&sketch, QuantMode::F16)
        );
        assert!(encoded_len_with(&sketch, QuantMode::F16) < f32_len);
    }

    #[test]
    fn legacy_v1_and_v2_artifacts_still_decode() {
        let (sketch, _) = trained_sketch();
        let v1 = encode_sketch_legacy_v1(&sketch);
        let loaded = decode(v1.clone()).unwrap().sketch;
        assert_eq!(loaded.quant_mode(), QuantMode::F32);
        let q = sketch.quantized();
        for i in 0..40 {
            let query = vec![(i as f64 * 0.137) % 1.0, (i as f64 * 0.311) % 1.0];
            assert_eq!(loaded.answer(&query), q.answer(&query), "v1 query {i}");
        }
        // v2 shares the v1 layout; only the version field differs.
        let mut v2 = v1.to_vec();
        v2[4..8].copy_from_slice(&2u32.to_le_bytes());
        let loaded2 = decode(Bytes::from(v2)).unwrap().sketch;
        let query = [0.5, 0.25];
        assert_eq!(loaded2.answer(&query), q.answer(&query));
        // Re-encoding a legacy load writes today's v3 container, which
        // still answers identically.
        let upgraded = decode(encode_sketch(&loaded)).unwrap().sketch;
        assert_eq!(upgraded.answer(&query), q.answer(&query));
        // Version 0 stays a typed refusal.
        let mut v0 = v1.to_vec();
        v0[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode(Bytes::from(v0)),
            Err(PersistError::UnsupportedVersion { found: 0 })
        ));
    }

    #[test]
    fn trailer_catches_every_single_byte_flip() {
        let (sketch, _) = trained_sketch();
        let blob = encode_sketch_with(&sketch, QuantMode::I8).to_vec();
        let body = blob.len() - 8;
        // Stride through the body; every flip must be the integrity
        // error specifically — the trailer runs before section parsing.
        for offset in (0..body).step_by(37) {
            let mut bad = blob.clone();
            bad[offset] ^= 0x40;
            let err = decode(Bytes::from(bad)).unwrap_err();
            if offset < 8 {
                // Magic/version damage is classified before the trailer.
                assert!(
                    matches!(
                        err,
                        PersistError::BadMagic { .. } | PersistError::UnsupportedVersion { .. }
                    ),
                    "offset {offset}: got {err}"
                );
            } else {
                assert!(
                    matches!(err, PersistError::TrailerMismatch { .. }),
                    "offset {offset}: got {err}"
                );
            }
        }
    }
}
