//! Classic histogram AQP — the non-learned synopsis family the paper's
//! related-work section positions NeuroSketch against (Cormode et al.,
//! "Synopses for Massive Data").
//!
//! Per-attribute equi-width histograms with the attribute-value-
//! independence (AVI) assumption used by most engine optimizers: the
//! selectivity of a conjunctive range is the product of per-attribute
//! selectivities, and the measure's mean is estimated from the measure
//! histogram of the *most selective* constrained attribute (a common
//! single-column heuristic). Cheap, tiny, and exact in 1-D up to bin
//! resolution — but its independence assumption breaks on correlated
//! attributes, which is precisely the gap the learned engines close.

use crate::{AqpEngine, Unsupported};
use datagen::Dataset;
use query::aggregate::Aggregate;
use query::predicate::PredicateFn;

/// Per-attribute histogram: bin counts plus per-bin measure sums.
#[derive(Debug, Clone)]
struct ColumnHist {
    lo: f64,
    hi: f64,
    counts: Vec<f64>,
    measure_sums: Vec<f64>,
}

impl ColumnHist {
    /// `(fraction_of_rows, measure_sum)` within `[qlo, qhi)`, assuming
    /// uniform mass within each bin.
    fn range(&self, qlo: f64, qhi: f64, n: f64) -> (f64, f64) {
        let bins = self.counts.len();
        let width = if self.hi > self.lo {
            (self.hi - self.lo) / bins as f64
        } else {
            1.0
        };
        let (mut cnt, mut sum) = (0.0, 0.0);
        for b in 0..bins {
            let b0 = self.lo + b as f64 * width;
            let b1 = b0 + width;
            let overlap = (qhi.min(b1) - qlo.max(b0)).max(0.0) / width;
            if overlap > 0.0 {
                cnt += overlap * self.counts[b];
                sum += overlap * self.measure_sums[b];
            }
        }
        (cnt / n, sum)
    }
}

/// AVI histogram engine.
#[derive(Debug, Clone)]
pub struct AviHistogram {
    hists: Vec<ColumnHist>,
    n: f64,
    global_measure_mean: f64,
}

impl AviHistogram {
    /// Build per-attribute histograms with `bins` buckets each.
    ///
    /// # Panics
    /// Panics on empty data, zero bins, or a bad measure column.
    pub fn build(data: &Dataset, measure: usize, bins: usize) -> AviHistogram {
        assert!(data.rows() > 0, "empty dataset");
        assert!(bins > 0, "need at least one bin");
        assert!(measure < data.dims(), "measure column out of range");
        let ranges = data.column_ranges();
        let mut hists: Vec<ColumnHist> = ranges
            .iter()
            .map(|&(lo, hi)| ColumnHist {
                lo,
                hi,
                counts: vec![0.0; bins],
                measure_sums: vec![0.0; bins],
            })
            .collect();
        for row in data.iter_rows() {
            let m = row[measure];
            for (c, h) in hists.iter_mut().enumerate() {
                let width = if h.hi > h.lo {
                    (h.hi - h.lo) / bins as f64
                } else {
                    1.0
                };
                let b = (((row[c] - h.lo) / width) as usize).min(bins - 1);
                h.counts[b] += 1.0;
                h.measure_sums[b] += m;
            }
        }
        let n = data.rows() as f64;
        let global_measure_mean = data.column(measure).iter().sum::<f64>() / n;
        AviHistogram {
            hists,
            n,
            global_measure_mean,
        }
    }
}

impl AqpEngine for AviHistogram {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn answer(
        &self,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
    ) -> Result<f64, Unsupported> {
        if !matches!(agg, Aggregate::Count | Aggregate::Sum | Aggregate::Avg) {
            return Err(Unsupported::Aggregate(agg));
        }
        // The bounds must fully define the predicate here — bounding-box
        // pruning hints (rotated rectangles, spheres) are not enough.
        let Some(bounds) = pred.exact_axis_bounds(q) else {
            return Err(Unsupported::Predicate("non-axis-aligned predicate".into()));
        };
        // AVI: selectivity = product over constrained attrs; AVG from the
        // most selective attribute's measure histogram.
        let mut selectivity = 1.0;
        let mut best: Option<(f64, f64)> = None; // (sel, measure_sum)
        for &(a, lo, hi) in &bounds {
            let h = &self.hists[a];
            let (sel, msum) = h.range(lo.max(h.lo), hi.min(h.hi + 1e-12), self.n);
            selectivity *= sel;
            if best.is_none_or(|(s, _)| sel < s) {
                best = Some((sel, msum));
            }
        }
        let count = self.n * selectivity;
        let avg = match best {
            Some((sel, msum)) if sel > 1e-12 => msum / (self.n * sel),
            _ => self.global_measure_mean,
        };
        Ok(match agg {
            Aggregate::Count => count,
            Aggregate::Sum => count * avg,
            Aggregate::Avg => {
                if count > 1e-9 {
                    avg
                } else {
                    0.0
                }
            }
            _ => unreachable!("filtered above"),
        })
    }

    fn storage_bytes(&self) -> usize {
        self.hists.iter().map(|h| h.counts.len() * 16 + 16).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::simple::uniform;
    use query::predicate::Range;
    use query::QueryEngine;

    #[test]
    fn one_dim_count_is_bin_exact() {
        let data = uniform(10_000, 2, 1);
        let engine = QueryEngine::new(&data, 1);
        let hist = AviHistogram::build(&data, 1, 64);
        let pred = Range::new(vec![0], 2).unwrap();
        for q in [[0.1, 0.3], [0.5, 0.4], [0.0, 1.0]] {
            let exact = engine.answer(&pred, Aggregate::Count, &q);
            let est = hist.answer(&pred, Aggregate::Count, &q).unwrap();
            assert!(
                (exact - est).abs() / exact < 0.05,
                "q {q:?} exact {exact} est {est}"
            );
        }
    }

    #[test]
    fn avi_is_good_on_independent_attributes() {
        let data = uniform(20_000, 3, 2);
        let engine = QueryEngine::new(&data, 2);
        let hist = AviHistogram::build(&data, 2, 64);
        let pred = Range::new(vec![0, 1], 3).unwrap();
        let q = [0.2, 0.3, 0.4, 0.5]; // independent uniforms: sel = 0.4*0.5
        let exact = engine.answer(&pred, Aggregate::Count, &q);
        let est = hist.answer(&pred, Aggregate::Count, &q).unwrap();
        assert!(
            (exact - est).abs() / exact < 0.08,
            "exact {exact} est {est}"
        );
    }

    #[test]
    fn avi_breaks_on_correlated_attributes() {
        // x1 == x0: true selectivity of (x0 in [0,0.5)) AND (x1 in [0.5,1))
        // is 0, but AVI predicts 0.25 — the documented failure mode.
        let rows: Vec<Vec<f64>> = (0..5000)
            .map(|i| {
                let x = (i as f64 + 0.5) / 5000.0;
                vec![x, x, 1.0]
            })
            .collect();
        let data = Dataset::from_rows(vec!["a".into(), "b".into(), "m".into()], &rows).unwrap();
        let hist = AviHistogram::build(&data, 2, 32);
        let pred = Range::new(vec![0, 1], 3).unwrap();
        let q = [0.0, 0.5, 0.5, 0.5];
        let est = hist.answer(&pred, Aggregate::Count, &q).unwrap();
        assert!(
            est > 1000.0,
            "AVI should (wrongly) predict ~1250, got {est}"
        );
    }

    #[test]
    fn declines_unsupported() {
        let data = uniform(100, 2, 3);
        let hist = AviHistogram::build(&data, 1, 8);
        let pred = Range::new(vec![0], 2).unwrap();
        assert!(hist.answer(&pred, Aggregate::Median, &[0.0, 1.0]).is_err());
        let rect = query::predicate::RotatedRect::new(0, 1, 2).unwrap();
        assert!(hist
            .answer(&rect, Aggregate::Count, &[0.1, 0.1, 0.5, 0.5, 0.1])
            .is_err());
    }

    #[test]
    fn storage_is_tiny() {
        let data = uniform(50_000, 4, 4);
        let hist = AviHistogram::build(&data, 3, 32);
        assert!(hist.storage_bytes() < 4096, "{}", hist.storage_bytes());
    }
}
