//! A minimal columnar-metadata, row-major-storage table and min–max
//! normalization.
//!
//! NeuroSketch's problem setting (Sec. 2 of the paper) assumes every
//! attribute lies in `[0,1]`; real data is min–max normalized first. The
//! [`Normalizer`] retains the original ranges so answers and queries can be
//! mapped back and forth.

use crate::DataError;
use serde::{Deserialize, Serialize};

/// An in-memory table: `rows x dims` of `f64`, row-major, with column names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    columns: Vec<String>,
    data: Vec<f64>,
}

impl Dataset {
    /// Build from column names and a flat row-major buffer.
    ///
    /// Rejects non-finite values: NaN would poison every ordering-based
    /// operation downstream (median splits, quantile strata, sorting),
    /// so the boundary enforces finiteness once instead of every
    /// consumer re-checking.
    pub fn new(columns: Vec<String>, data: Vec<f64>) -> Result<Self, DataError> {
        if columns.is_empty() {
            return Err(DataError::BadConfig("no columns".into()));
        }
        if !data.len().is_multiple_of(columns.len()) {
            return Err(DataError::ShapeMismatch {
                expected: columns.len(),
                got: data.len() % columns.len(),
            });
        }
        if let Some(pos) = data.iter().position(|v| !v.is_finite()) {
            return Err(DataError::BadConfig(format!(
                "non-finite value at flat index {pos}"
            )));
        }
        Ok(Dataset { columns, data })
    }

    /// Build from rows of equal width.
    pub fn from_rows(columns: Vec<String>, rows: &[Vec<f64>]) -> Result<Self, DataError> {
        let dims = columns.len();
        let mut data = Vec::with_capacity(rows.len() * dims);
        for r in rows {
            if r.len() != dims {
                return Err(DataError::ShapeMismatch {
                    expected: dims,
                    got: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Dataset::new(columns, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len() / self.columns.len()
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// Column names.
    pub fn column_names(&self) -> &[String] {
        &self.columns
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Result<usize, DataError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| DataError::NoSuchColumn(name.to_string()))
    }

    /// One attribute value.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> f64 {
        debug_assert!(col < self.dims());
        self.data[row * self.columns.len() + col]
    }

    /// A full row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        let d = self.columns.len();
        &self.data[row * d..(row + 1) * d]
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.columns.len())
    }

    /// The flat row-major buffer.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// All values of one column, materialized.
    pub fn column(&self, col: usize) -> Vec<f64> {
        assert!(col < self.dims(), "column {col} out of range");
        self.iter_rows().map(|r| r[col]).collect()
    }

    /// Per-column `(min, max)`.
    pub fn column_ranges(&self) -> Vec<(f64, f64)> {
        let d = self.dims();
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); d];
        for row in self.iter_rows() {
            for (range, v) in ranges.iter_mut().zip(row) {
                range.0 = range.0.min(*v);
                range.1 = range.1.max(*v);
            }
        }
        ranges
    }

    /// Min–max normalize every column into `[0,1]`. Constant columns map
    /// to 0. Returns the normalized dataset and the [`Normalizer`] that
    /// inverts the mapping.
    pub fn normalized(&self) -> (Dataset, Normalizer) {
        let ranges = self.column_ranges();
        let norm = Normalizer {
            ranges: ranges.clone(),
        };
        let d = self.dims();
        let mut data = Vec::with_capacity(self.data.len());
        for row in self.iter_rows() {
            for (c, v) in row.iter().enumerate().take(d) {
                data.push(norm.forward(c, *v));
            }
        }
        (
            Dataset {
                columns: self.columns.clone(),
                data,
            },
            norm,
        )
    }

    /// Project onto a subset of columns (Fig. 15's 2-D subsets).
    pub fn project(&self, cols: &[usize]) -> Result<Dataset, DataError> {
        for &c in cols {
            if c >= self.dims() {
                return Err(DataError::NoSuchColumn(format!("index {c}")));
            }
        }
        if cols.is_empty() {
            return Err(DataError::BadConfig("empty projection".into()));
        }
        let columns = cols.iter().map(|&c| self.columns[c].clone()).collect();
        let mut data = Vec::with_capacity(self.rows() * cols.len());
        for row in self.iter_rows() {
            for &c in cols {
                data.push(row[c]);
            }
        }
        Ok(Dataset { columns, data })
    }

    /// Keep only the first `n` rows (prefix sample — rows are i.i.d. for
    /// every generator in this crate, so a prefix is an unbiased sample).
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.rows());
        Dataset {
            columns: self.columns.clone(),
            data: self.data[..n * self.dims()].to_vec(),
        }
    }

    /// The rows at the given indices, in the given order (duplicates
    /// allowed) — how a shard plan materializes its per-shard tables.
    ///
    /// # Panics
    /// Panics if any index is out of range — shard assignment indices
    /// come from iterating the same dataset, so a bad index is a
    /// programming error, not user input.
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let d = self.dims();
        let n = self.rows();
        let mut data = Vec::with_capacity(rows.len() * d);
        for &r in rows {
            assert!(r < n, "row {r} out of range for {n} rows");
            data.extend_from_slice(self.row(r));
        }
        Dataset {
            columns: self.columns.clone(),
            data,
        }
    }

    /// Append another dataset's rows in place (schemas must match) — the
    /// ingestion primitive behind live maintenance: existing rows keep
    /// their indices, the delta's rows land after them, so row-stable
    /// shard plans and index snapshots (`query`'s incremental reindex)
    /// survive the append untouched.
    pub fn append(&mut self, other: &Dataset) -> Result<(), DataError> {
        if self.columns != other.columns {
            return Err(DataError::BadConfig("column schemas differ".into()));
        }
        self.data.extend_from_slice(&other.data);
        Ok(())
    }

    /// Append another dataset's rows (schemas must match) — the
    /// non-consuming sibling of [`Dataset::append`], used to simulate
    /// data arriving over time for the dynamic-data experiments.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset, DataError> {
        let mut out = self.clone();
        out.append(other)?;
        Ok(out)
    }

    /// Mean and (population) standard deviation of one column.
    pub fn column_stats(&self, col: usize) -> (f64, f64) {
        let n = self.rows();
        assert!(n > 0, "empty dataset");
        let vals = self.column(col);
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var.sqrt())
    }

    /// Histogram of one column over `bins` equal-width buckets (Fig. 5).
    /// Returns `(bucket_left_edges, normalized_frequencies)`.
    pub fn histogram(&self, col: usize, bins: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(bins > 0, "need at least one bin");
        let vals = self.column(col);
        let (lo, hi) = vals
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        let width = if hi > lo {
            (hi - lo) / bins as f64
        } else {
            1.0
        };
        let mut counts = vec![0usize; bins];
        for v in &vals {
            let b = (((v - lo) / width) as usize).min(bins - 1);
            counts[b] += 1;
        }
        let edges = (0..bins).map(|b| lo + b as f64 * width).collect();
        let freqs = counts
            .iter()
            .map(|&c| c as f64 / vals.len() as f64)
            .collect();
        (edges, freqs)
    }
}

/// Per-column min–max ranges for mapping between raw and `[0,1]` space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    ranges: Vec<(f64, f64)>,
}

impl Normalizer {
    /// Map a raw value of column `col` into `[0,1]`, clamping outside
    /// values to the boundary.
    pub fn forward(&self, col: usize, v: f64) -> f64 {
        let (lo, hi) = self.ranges[col];
        if hi > lo {
            ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Map a normalized value back to raw units.
    pub fn inverse(&self, col: usize, v: f64) -> f64 {
        let (lo, hi) = self.ranges[col];
        lo + v * (hi - lo)
    }

    /// The per-column `(min, max)` ranges.
    pub fn ranges(&self) -> &[(f64, f64)] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(
            vec!["a".into(), "b".into()],
            &[
                vec![1.0, 10.0],
                vec![2.0, 20.0],
                vec![3.0, 30.0],
                vec![4.0, 40.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn shape_accessors() {
        let d = sample();
        assert_eq!(d.rows(), 4);
        assert_eq!(d.dims(), 2);
        assert_eq!(d.value(2, 1), 30.0);
        assert_eq!(d.row(1), &[2.0, 20.0]);
        assert_eq!(d.column(0), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.column_index("b").unwrap(), 1);
        assert!(d.column_index("zzz").is_err());
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let r = Dataset::from_rows(vec!["a".into()], &[vec![1.0], vec![bad]]);
            assert!(matches!(r, Err(DataError::BadConfig(_))), "{bad}");
        }
    }

    #[test]
    fn rejects_ragged_rows() {
        let r = Dataset::from_rows(vec!["a".into()], &[vec![1.0], vec![1.0, 2.0]]);
        assert!(matches!(r, Err(DataError::ShapeMismatch { .. })));
    }

    #[test]
    fn normalization_roundtrip() {
        let d = sample();
        let (norm_d, norm) = d.normalized();
        assert_eq!(norm_d.value(0, 0), 0.0);
        assert_eq!(norm_d.value(3, 0), 1.0);
        for r in 0..d.rows() {
            for c in 0..d.dims() {
                let back = norm.inverse(c, norm_d.value(r, c));
                assert!((back - d.value(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn normalizer_clamps_out_of_range() {
        let (_, norm) = sample().normalized();
        assert_eq!(norm.forward(0, -100.0), 0.0);
        assert_eq!(norm.forward(0, 100.0), 1.0);
    }

    #[test]
    fn constant_column_normalizes_to_zero() {
        let d = Dataset::from_rows(vec!["c".into()], &[vec![5.0], vec![5.0]]).unwrap();
        let (nd, _) = d.normalized();
        assert_eq!(nd.column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn projection_selects_columns() {
        let d = sample();
        let p = d.project(&[1]).unwrap();
        assert_eq!(p.dims(), 1);
        assert_eq!(p.column(0), vec![10.0, 20.0, 30.0, 40.0]);
        assert!(d.project(&[5]).is_err());
        assert!(d.project(&[]).is_err());
    }

    #[test]
    fn take_prefixes() {
        let d = sample();
        assert_eq!(d.take(2).rows(), 2);
        assert_eq!(d.take(100).rows(), 4);
    }

    #[test]
    fn histogram_sums_to_one() {
        let d = sample();
        let (edges, freqs) = d.histogram(0, 3);
        assert_eq!(edges.len(), 3);
        assert!((freqs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let d = sample();
        let s = d.select_rows(&[3, 0, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), d.row(3));
        assert_eq!(s.row(1), d.row(0));
        assert_eq!(s.row(2), d.row(0));
        assert!(d.select_rows(&[]).rows() == 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_rows_checks_bounds() {
        let _ = sample().select_rows(&[4]);
    }

    #[test]
    fn concat_appends_rows() {
        let d = sample();
        let both = d.concat(&d).unwrap();
        assert_eq!(both.rows(), 8);
        assert_eq!(both.row(4), d.row(0));
        let other = Dataset::from_rows(vec!["z".into()], &[vec![1.0]]).unwrap();
        assert!(d.concat(&other).is_err());
    }

    #[test]
    fn append_grows_in_place_and_preserves_prefix() {
        let mut d = sample();
        let delta = Dataset::from_rows(
            vec!["a".into(), "b".into()],
            &[vec![9.0, 90.0], vec![8.0, 80.0]],
        )
        .unwrap();
        let before = d.clone();
        d.append(&delta).unwrap();
        assert_eq!(d.rows(), 6);
        // Existing rows keep their indices and bytes...
        for r in 0..before.rows() {
            assert_eq!(d.row(r), before.row(r));
        }
        // ...and the delta lands after them, in delta order.
        assert_eq!(d.row(4), delta.row(0));
        assert_eq!(d.row(5), delta.row(1));
        // Schema mismatch is a typed refusal that leaves `d` untouched.
        let other = Dataset::from_rows(vec!["z".into()], &[vec![1.0]]).unwrap();
        assert!(d.append(&other).is_err());
        assert_eq!(d.rows(), 6);
    }

    #[test]
    fn column_stats_match_manual() {
        let d = sample();
        let (mean, std) = d.column_stats(0);
        assert!((mean - 2.5).abs() < 1e-12);
        assert!((std - (1.25f64).sqrt()).abs() < 1e-12);
    }
}
