//! Adversarial tests for the NSK2 persistent sketch format: every
//! corruption of a valid artifact — truncation anywhere, arbitrary byte
//! damage, implausible embedded dimensions — must come back as a typed
//! [`PersistError`], never a panic, and successful decodes must always
//! yield a servable sketch.

use bytes::Bytes;
use neurosketch::persist::{self, PersistError};
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use proptest::prelude::*;

/// A small trained sketch and its NSK2 encoding (built once, shared
/// across all property cases).
fn artifact_bytes(partitions: usize) -> Vec<u8> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<usize, Vec<u8>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().unwrap();
    cache
        .entry(partitions)
        .or_insert_with(|| {
            let qs: Vec<Vec<f64>> = (0..160)
                .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
                .collect();
            let labels: Vec<f64> = qs.iter().map(|q| 7.0 * q[0] - 3.0 * q[1]).collect();
            let mut cfg = NeuroSketchConfig::small();
            cfg.tree_height = 2;
            cfg.target_partitions = partitions;
            cfg.train.epochs = 5;
            let (sketch, _) = NeuroSketch::build_from_labeled(&qs, &labels, &cfg).unwrap();
            persist::encode_sketch(&sketch).to_vec()
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any strict prefix of a valid artifact is missing *something*;
    /// decode must report a typed error (and never a bad-magic error
    /// once the magic survived the cut).
    #[test]
    fn truncation_always_yields_typed_error(frac in 0.0f64..1.0) {
        let blob = artifact_bytes(4);
        let cut = ((blob.len() - 1) as f64 * frac) as usize;
        let err = persist::decode(Bytes::from(blob[..cut].to_vec())).unwrap_err();
        if cut >= 12 {
            prop_assert!(
                !matches!(err, PersistError::BadMagic { .. }),
                "magic was intact at cut {cut}: {err}"
            );
        }
    }

    /// Arbitrary single-byte damage never panics: decode returns a typed
    /// error, or — when the flipped byte only moved a stored float — a
    /// sketch that still serves queries.
    #[test]
    fn byte_flips_never_panic(pos_frac in 0.0f64..1.0, flip in 1u32..256) {
        let mut blob = artifact_bytes(2);
        let pos = ((blob.len() - 1) as f64 * pos_frac) as usize;
        blob[pos] ^= flip as u8;
        // A typed rejection is fine; a surviving decode must still
        // *serve* (the flip can only have landed in a stored float's
        // payload).
        if let Ok(artifact) = persist::decode(Bytes::from(blob)) {
            prop_assert!(artifact.sketch.partitions() > 0);
            let _ = artifact.sketch.answer(&[0.25, 0.75]);
        }
    }

    /// Garbage of any length is rejected, not mis-parsed into a panic.
    #[test]
    fn random_garbage_is_rejected(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        // Random garbage virtually never carries the NSK2 magic; if it
        // does, decode must still fail somewhere later — a 4-leaf model
        // section cannot appear by chance.
        prop_assert!(persist::decode(Bytes::from(raw)).is_err());
    }
}

/// The embedded NSK1 model blob declaring absurd layer dimensions is a
/// typed model error (checked size math), not an allocation attempt.
#[test]
fn embedded_layer_dim_overflow_is_typed() {
    // A single-partition sketch has the simplest layout: the first model
    // blob starts right after one leaf node and the model header.
    let qs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0, 0.5]).collect();
    let labels: Vec<f64> = qs.iter().map(|q| q[0]).collect();
    let mut cfg = NeuroSketchConfig::small();
    cfg.tree_height = 0;
    cfg.target_partitions = 1;
    cfg.train.epochs = 2;
    let (sketch, _) = NeuroSketch::build_from_labeled(&qs, &labels, &cfg).unwrap();
    let mut blob = persist::encode_sketch(&sketch).to_vec();
    // Layout: header 12 + node_count 4 + leaf tag 1 + model_count 4 +
    // leaf u32 4 + y_mean 8 + y_std 8 + blob_len 4 = offset 45; the NSK1
    // blob's layer table (out, in) sits 8 bytes further.
    let first_dims = 45 + 8;
    blob[first_dims..first_dims + 8].copy_from_slice(&[0xFF; 8]);
    let err = persist::decode(Bytes::from(blob)).unwrap_err();
    match err {
        PersistError::Model(msg) => {
            assert!(
                msg.contains("overflow") || msg.contains("truncated"),
                "unexpected model error: {msg}"
            );
        }
        other => panic!("expected a model error, got {other}"),
    }
}

/// A version bump is refused up front with the found version reported.
#[test]
fn future_version_reports_found_version() {
    let mut blob = artifact_bytes(2);
    blob[4..8].copy_from_slice(&7u32.to_le_bytes());
    match persist::decode(Bytes::from(blob)).unwrap_err() {
        PersistError::UnsupportedVersion { found } => assert_eq!(found, 7),
        other => panic!("expected UnsupportedVersion, got {other}"),
    }
}
