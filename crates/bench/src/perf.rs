//! Machine-readable performance tracking: `BENCH_build.json` /
//! `BENCH_query.json`.
//!
//! Every entry is a named scenario timed over `reps` repetitions with
//! median and p95 wall-clock recorded. The committed files in the repo
//! root are the baseline; the `perfbench` binary re-runs the suites and
//! (with `--check`) fails when any median regresses more than 2x, so the
//! perf trajectory of the build and query paths is tracked from PR to PR.
//!
//! The scenarios deliberately mirror the criterion benches in
//! `crates/bench/benches/` (which reuse [`scenarios`]): exact labeling,
//! partition+merge, per-leaf training (batched **and** the per-example
//! reference, so the batched-kernel speedup is recorded as data), the
//! full sketch build, per-query answer latency, the serving engine's
//! `serve_throughput` scenario (the same query stream through the
//! single-query loop and the batched `SketchServer`, so the recorded
//! ratio is the serving-throughput multiplier), the scatter/gather
//! `serve_sharded_k{1,4}` scenarios (the same stream through a
//! `ShardedServer` over 1 and 4 data shards — the k1/k4 ratio is the
//! per-query cost of scattering to more shards on one box; in a real
//! deployment each shard runs on its own hardware), the padded-layout
//! and quantized serving entries (`serve_layout_padded` vs the plain
//! `serve_throughput_batched_t1` tracks the pre-transposed GEMM win;
//! `serve_batched_{f16,i8}` pin that quantized models serve at full
//! speed) with the `artifact_bytes_{f32,f16,i8}` size curve, and the
//! maintenance-path `refresh_full` vs `refresh_partial_1of4` pair
//! (rebuild all four shards of a drifted deployment vs only the stale
//! one; same iters, so the median ratio is the tracked partial-refresh
//! speedup).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One timed scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfEntry {
    /// Scenario name, stable across PRs.
    pub name: String,
    /// Median wall-clock per repetition, milliseconds. One repetition
    /// executes the scenario `iters` times, so fast scenarios still
    /// produce medians comfortably above timer noise.
    pub median_ms: f64,
    /// 95th-percentile wall-clock per repetition, milliseconds.
    pub p95_ms: f64,
    /// Repetitions timed.
    pub reps: usize,
    /// Scenario executions per repetition.
    pub iters: usize,
}

/// A suite of timed scenarios, serialized as `BENCH_<suite>.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Suite name ("build" or "query").
    pub suite: String,
    /// Whether the suite ran at `--fast` scale.
    pub fast: bool,
    /// The timed scenarios.
    pub entries: Vec<PerfEntry>,
}

impl PerfReport {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Parse a report written by [`PerfReport::to_json`].
    pub fn from_json(s: &str) -> Result<PerfReport, String> {
        serde_json::from_str(s).map_err(|e| format!("bad perf report: {e}"))
    }

    /// Median of the named entry, if present.
    pub fn median_of(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.median_ms)
    }

    /// Whether `baseline` was produced at the same scale: comparing a
    /// `--fast` run against a full-scale baseline (or vice versa)
    /// measures the scale difference, not the code.
    pub fn comparable_to(&self, baseline: &PerfReport) -> bool {
        self.suite == baseline.suite && self.fast == baseline.fast
    }

    /// Compare against a baseline: every scenario present in both whose
    /// median regressed by more than `factor` is reported. Skipped as
    /// incomparable: sub-millisecond baseline medians (at that scale the
    /// comparison measures timer noise, not the code — the suites size
    /// `iters` so no tracked scenario lands under the floor in practice)
    /// and entries whose per-repetition `iters` changed (the medians then
    /// measure different amounts of work).
    pub fn regressions_vs(&self, baseline: &PerfReport, factor: f64) -> Vec<String> {
        let mut out = Vec::new();
        for base in &baseline.entries {
            if base.median_ms < 1.0 {
                continue;
            }
            let Some(cur) = self.entries.iter().find(|e| e.name == base.name) else {
                continue;
            };
            if cur.iters != base.iters {
                continue;
            }
            if cur.median_ms > base.median_ms * factor {
                out.push(format!(
                    "{}: {:.2} ms vs baseline {:.2} ms ({:.1}x)",
                    base.name,
                    cur.median_ms,
                    base.median_ms,
                    cur.median_ms / base.median_ms
                ));
            }
        }
        out
    }
}

/// Queries per iteration in the `serve_throughput` scenarios of
/// [`run_query_suite`]. Shared with `perfbench`'s queries/sec math so
/// the two can never drift apart.
pub const SERVE_STREAM_LEN: usize = 2_000;

/// Time `f` over `reps` repetitions; returns `(median_ms, p95_ms)`.
pub fn time_reps(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    // One untimed warm-up so first-touch effects (page faults, lazy
    // allocations) don't land in the median.
    f();
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    sample_stats(samples)
}

/// Time two closures over `reps` *interleaved* repetitions (`a` then
/// `b`, each rep, after one untimed warm-up of each); returns each
/// closure's `(median_ms, p95_ms)`.
///
/// Interleaving makes both sample the same drift profile (frequency
/// scaling, co-tenancy), so the **ratio** of the two medians is far
/// more stable than timing one after the other — use it for entry
/// pairs whose tracked number is their comparison.
pub fn time_paired(
    reps: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> ((f64, f64), (f64, f64)) {
    let reps = reps.max(1);
    let mut sa = Vec::with_capacity(reps);
    let mut sb = Vec::with_capacity(reps);
    a();
    b();
    for _ in 0..reps {
        let t = Instant::now();
        a();
        sa.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        b();
        sb.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (sample_stats(sa), sample_stats(sb))
}

fn sample_stats(mut samples: Vec<f64>) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    let p95 = samples[((samples.len() as f64 * 0.95).ceil() as usize - 1).min(samples.len() - 1)];
    (median, p95)
}

/// The fixed workloads the perf suites and the criterion benches share.
pub mod scenarios {
    use datagen::simple::uniform;
    use datagen::Dataset;
    use query::aggregate::Aggregate;
    use query::exec::QueryEngine;
    use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

    /// The build-side scenario: a 2-d uniform table, an AVG workload,
    /// and its exact labels.
    pub struct BuildScenario {
        /// The dataset (measure = column 1).
        pub data: Dataset,
        /// The training workload.
        pub wl: Workload,
        /// Exact labels for `wl.queries`.
        pub labels: Vec<f64>,
    }

    /// Build the scenario behind `BENCH_build.json` and
    /// `benches/build_time.rs`. `fast` shrinks it to CI-smoke size.
    pub fn build_scenario(fast: bool) -> BuildScenario {
        let (rows, queries) = if fast { (2_000, 300) } else { (5_000, 600) };
        let data = uniform(rows, 2, 3);
        let engine = QueryEngine::new(&data, 1);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: queries,
            seed: 2,
        })
        .expect("workload");
        let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &wl.queries, 4);
        BuildScenario { data, wl, labels }
    }

    /// The query-side scenario: a 3-d uniform table and an AVG workload
    /// split into train/test.
    pub struct QueryScenario {
        /// The dataset.
        pub data: Dataset,
        /// Measure column.
        pub measure: usize,
        /// The workload.
        pub wl: Workload,
        /// Train split.
        pub train: Vec<Vec<f64>>,
        /// Labels for the train split.
        pub labels: Vec<f64>,
        /// Test split.
        pub test: Vec<Vec<f64>>,
    }

    /// Build the scenario behind `BENCH_query.json` and
    /// `benches/query_time.rs`.
    pub fn query_scenario(fast: bool) -> QueryScenario {
        let (rows, queries) = if fast { (5_000, 500) } else { (20_000, 1_200) };
        let data = uniform(rows, 3, 7);
        let measure = 2;
        let engine = QueryEngine::new(&data, measure);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 3,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: queries,
            seed: 1,
        })
        .expect("workload");
        let (train, test) = wl.split(queries / 6);
        let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &train, 4);
        QueryScenario {
            data,
            measure,
            wl,
            train,
            labels,
            test,
        }
    }
}

/// Run the build-side suite: labeling, partitioning+merging, per-leaf
/// training on both paths, and the full sketch build.
pub fn run_build_suite(fast: bool, reps: usize) -> PerfReport {
    use neurosketch::aqc::aqc_sampled;
    use neurosketch::{NeuroSketch, NeuroSketchConfig};
    use nn::train::{train, train_per_example, TrainConfig};
    use nn::Mlp;
    use query::aggregate::Aggregate;
    use query::exec::QueryEngine;
    use spatial::KdTree;

    let sc = scenarios::build_scenario(fast);
    let engine = QueryEngine::new(&sc.data, 1);
    let mut entries = Vec::new();
    let mut push = |name: &str, iters: usize, (median_ms, p95_ms): (f64, f64)| {
        entries.push(PerfEntry {
            name: name.into(),
            median_ms,
            p95_ms,
            reps,
            iters,
        });
    };

    // Fast scenarios run many iterations per repetition so every tracked
    // median lands in the 5-15 ms range — far above both the regression
    // check's 1 ms noise floor and CI-runner scheduling jitter.
    let iters = 60;
    push(
        "label_queries_exact",
        iters,
        time_reps(reps, || {
            for _ in 0..iters {
                std::hint::black_box(engine.label_batch(
                    &sc.wl.predicate,
                    Aggregate::Avg,
                    &sc.wl.queries,
                    4,
                ));
            }
        }),
    );

    let iters = 24;
    push(
        "partition_merge_aqc",
        iters,
        time_reps(reps, || {
            for _ in 0..iters {
                let mut tree = KdTree::build(&sc.wl.queries, 4);
                tree.merge_leaves(
                    |qids| {
                        let qs: Vec<Vec<f64>> =
                            qids.iter().map(|&i| sc.wl.queries[i].clone()).collect();
                        let vs: Vec<f64> = qids.iter().map(|&i| sc.labels[i]).collect();
                        aqc_sampled(&qs, &vs, 2_000)
                    },
                    8,
                    4,
                );
                std::hint::black_box(tree.leaf_count());
            }
        }),
    );

    // Per-leaf training at the paper's architecture, batched vs the
    // per-example reference — the recorded ratio IS the batched-kernel
    // speedup this PR's tentpole delivers.
    let train_cfg = TrainConfig {
        epochs: if fast { 15 } else { 40 },
        patience: 0,
        ..TrainConfig::default()
    };
    let sizes = [2usize, 60, 30, 30, 1];
    push(
        "train_leaf_batched",
        1,
        time_reps(reps, || {
            let mut mlp = Mlp::new(&sizes, 9);
            std::hint::black_box(train(&mut mlp, &sc.wl.queries, &sc.labels, &train_cfg));
        }),
    );
    push(
        "train_leaf_per_example",
        1,
        time_reps(reps, || {
            let mut mlp = Mlp::new(&sizes, 9);
            std::hint::black_box(train_per_example(
                &mut mlp,
                &sc.wl.queries,
                &sc.labels,
                &train_cfg,
            ));
        }),
    );

    let iters = 6;
    push(
        "build_sketch_h2",
        iters,
        time_reps(reps, || {
            for _ in 0..iters {
                let mut cfg = NeuroSketchConfig::small();
                cfg.tree_height = 2;
                cfg.target_partitions = 4;
                cfg.train.epochs = 15;
                std::hint::black_box(
                    NeuroSketch::build_from_labeled(&sc.wl.queries, &sc.labels, &cfg).unwrap(),
                );
            }
        }),
    );

    // Partial vs full refresh of a 4-shard COUNT deployment after a
    // drifted delta lands (`refresh_full` rebuilds all four shards,
    // `refresh_partial_1of4` only the stale one). Same iters, so the
    // median ratio IS the partial-refresh speedup the maintenance path
    // delivers — each stale shard relabels and retrains only its own
    // rows, fresh shards are never touched.
    {
        use datagen::simple::drift_batch;
        use neurosketch::maintenance::retrain_shards;
        use neurosketch::shard::{build_sharded, ShardPlan};

        let mut refresh_cfg = NeuroSketchConfig::small();
        refresh_cfg.tree_height = 2;
        refresh_cfg.target_partitions = 4;
        refresh_cfg.train.epochs = 15;
        let plan = ShardPlan::RoundRobin { shards: 4 };
        let (sharded, _) = build_sharded(
            &sc.data,
            1,
            &plan,
            &sc.wl.predicate,
            Aggregate::Count,
            &sc.wl.queries,
            &refresh_cfg,
        )
        .expect("sharded build for refresh suite");
        let mut grown = sc.data.clone();
        grown
            .append(&drift_batch(sc.data.rows() / 4, 2, 1.0, 0.2, 5))
            .expect("drift delta");
        let iters = 3;
        for (name, stale) in [
            ("refresh_full", &[0usize, 1, 2, 3][..]),
            ("refresh_partial_1of4", &[0usize][..]),
        ] {
            // Clone once *outside* the timed region (an in-region clone
            // would add the same constant to both entries and bias the
            // tracked ratio toward 1). Repeated retrains into the same
            // deployment redo identical work: rebuilds depend only on
            // the data and seeds, not on the current models.
            let mut s = sharded.clone();
            push(
                name,
                iters,
                time_reps(reps, || {
                    for _ in 0..iters {
                        retrain_shards(
                            &mut s,
                            &grown,
                            1,
                            &sc.wl.predicate,
                            &sc.wl.queries,
                            &refresh_cfg,
                            stale,
                        )
                        .expect("refresh");
                        std::hint::black_box(s.param_count());
                    }
                }),
            );
        }
    }

    PerfReport {
        suite: "build".into(),
        fast,
        entries,
    }
}

/// Run the query-side suite: per-query latency of the sketch's hot path
/// and of the exact engine it is sketching.
pub fn run_query_suite(fast: bool, reps: usize) -> PerfReport {
    use neurosketch::cache::{AnswerCache, CachePolicy, CachedDeployment};
    use neurosketch::deploy::Deployment;
    use neurosketch::router::{DqdRouter, RoutingPolicy};
    use neurosketch::serve::{ServeOptions, SketchServer};
    use neurosketch::{NeuroSketch, NeuroSketchConfig};
    use query::aggregate::Aggregate;
    use query::exec::QueryEngine;

    let sc = scenarios::query_scenario(fast);
    let engine = QueryEngine::new(&sc.data, sc.measure);
    let mut ns_cfg = NeuroSketchConfig::default();
    ns_cfg.train.epochs = if fast { 20 } else { 60 };
    let (sketch, build_report) = NeuroSketch::build_from_labeled(&sc.train, &sc.labels, &ns_cfg)
        .expect("sketch build for query suite");

    let mut entries = Vec::new();
    let mut push = |name: &str, iters: usize, (median_ms, p95_ms): (f64, f64)| {
        entries.push(PerfEntry {
            name: name.into(),
            median_ms,
            p95_ms,
            reps,
            iters,
        });
    };

    let mut ws = nn::mlp::Workspace::default();
    let iters = 40;
    push(
        "neurosketch_answer_testset",
        iters,
        time_reps(reps, || {
            for _ in 0..iters {
                for q in &sc.test {
                    std::hint::black_box(sketch.answer_with(&mut ws, q));
                }
            }
        }),
    );

    // Serving throughput (`serve_throughput`): a fixed [`SERVE_STREAM_LEN`]-query
    // stream answered (a) one query at a time — the pre-serving
    // deployment model — and (b) through the batched `SketchServer` at
    // 1 and 2 worker threads (t1 is timed further down, paired with the
    // cold-cache entry). All three entries time the *same* total work,
    // so throughput ratios are just inverse median ratios
    // (qps = queries x iters / median); `perfbench` prints both.
    let serve_queries: Vec<Vec<f64>> = sc
        .wl
        .queries
        .iter()
        .cycle()
        .take(SERVE_STREAM_LEN)
        .cloned()
        .collect();
    let iters = 4;
    push(
        "serve_single_query_loop",
        iters,
        time_reps(reps, || {
            for _ in 0..iters {
                for q in &serve_queries {
                    std::hint::black_box(sketch.answer_with(&mut ws, q));
                }
            }
        }),
    );
    // `serve_throughput_batched_t1` itself is timed inside the
    // answer-cache block below, interleaved rep-for-rep with
    // `serve_cached_cold` — their ratio is the tracked cold-overhead
    // number, and paired sampling keeps that ratio out of the noise.
    {
        let router = DqdRouter::new(
            sketch.clone(),
            build_report.leaf_aqcs.clone(),
            RoutingPolicy::default(),
        );
        let server = SketchServer::new(
            router,
            ServeOptions {
                threads: 2,
                max_shard: 1024,
                active_attrs: None,
                // Pinned to the plain per-batch-transpose path so these
                // entries keep measuring what their committed baselines
                // measured; `serve_layout_padded` tracks the layout win.
                layout: false,
                cache: CachePolicy::OFF,
            },
        );
        // Served through the unified `Deployment` surface — what every
        // batch consumer (monitor, examples, front ends) calls.
        let server: &dyn Deployment = &server;
        push(
            "serve_throughput_batched_t2",
            iters,
            time_reps(reps, || {
                for _ in 0..iters {
                    std::hint::black_box(server.answer_batch(&serve_queries));
                }
            }),
        );
    }

    // Answer-cache serving (`serve_cached_cold` / `serve_cached_hot` /
    // `serve_dedup_batch`): the generation-keyed answer cache and the
    // in-batch dedup front over the same t1 plain-path server as
    // `serve_throughput_batched_t1`, so the medians decompose cleanly
    // (the block runs back-to-back with the t1/t2 entries so the
    // compared medians also share the machine state of the moment):
    //
    //   * `serve_cached_cold` serves the *same* fixed batch as the t1
    //     baseline (identical compute and memory profile), but each
    //     batch goes through a `CachedDeployment` stamped with a fresh
    //     generation — by construction not one lookup can hit (that is
    //     the generation-keying contract), so every repetition is the
    //     cache's worst case and the delta vs t1 IS the tracked
    //     steady-state front overhead on uncacheable traffic
    //     (budget: <= 5%). The byte budget fills during the warm-up
    //     repetition; after that the admission doorkeeper holds the
    //     never-repeated keys out, so the steady state performs no
    //     inserts or evictions — just hash, dedup probe, index probe,
    //     and doorkeeper marks.
    //   * `serve_cached_hot` streams 64 distinct queries cycled to the
    //     full stream length; `time_reps`'s untimed warm-up populates
    //     the cache, so every timed repetition is ~100% hits — the
    //     median ratio vs cold is the tracked repeat-workload win.
    //   * `serve_dedup_batch` turns caching off (capacity 0) and dedup
    //     on over a stream with 100 distinct queries: the server
    //     computes ~100 per batch and fans the rest out.
    {
        let cache_opts = |cache: CachePolicy| ServeOptions {
            threads: 1,
            max_shard: 1024,
            active_attrs: None,
            // Plain path, comparable to `serve_throughput_batched_t1`.
            layout: false,
            cache,
        };
        let mk_server = |cache: CachePolicy| {
            SketchServer::new(
                DqdRouter::new(
                    sketch.clone(),
                    build_report.leaf_aqcs.clone(),
                    RoutingPolicy::default(),
                ),
                cache_opts(cache),
            )
        };

        // Cold: the t1 stream, de-duplicated by a sub-ulp-of-routing
        // nudge so the batch is 2000 *distinct* keys (the cycled stream
        // repeats each query ~4x, which in-batch dedup would collapse),
        // served under a fresh generation per batch. The batch itself
        // is reused every iteration — exactly like the t1 baseline — so
        // the only difference between the two entries is the front.
        let cold_queries: Vec<Vec<f64>> = serve_queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let mut q = q.clone();
                // ~1e-12 per step: unique bits, same routing.
                q[0] += (i + 1) as f64 * 1e-12;
                q
            })
            .collect();
        // `inner` doubles as the `serve_throughput_batched_t1` server:
        // same options as the cache-fronted servers minus the front, so
        // the paired timing below compares exactly "front on" vs
        // "front off" over the same code path.
        let inner = std::sync::Arc::new(mk_server(CachePolicy::OFF));
        let cold_cache = AnswerCache::from_policy(&CachePolicy::cached(256 << 10));
        let generation = std::cell::Cell::new(0u64);
        // More samples than the suite default: the tracked number here
        // is a ~5% *ratio*, which needs tighter medians than a plain
        // throughput entry does.
        let (t1_stats, cold_stats) = time_paired(
            reps * 2 + 1,
            || {
                for _ in 0..iters {
                    let server: &dyn Deployment = &*inner;
                    std::hint::black_box(server.answer_batch(&serve_queries));
                }
            },
            || {
                for _ in 0..iters {
                    let gen = generation.get();
                    generation.set(gen + 1);
                    let dep = CachedDeployment::new(inner.clone(), cold_cache.clone(), gen);
                    std::hint::black_box(dep.answer_batch(&cold_queries));
                }
            },
        );
        push("serve_throughput_batched_t1", iters, t1_stats);
        push("serve_cached_cold", iters, cold_stats);

        let hot_queries: Vec<Vec<f64>> = serve_queries
            .iter()
            .take(64)
            .cycle()
            .take(SERVE_STREAM_LEN)
            .cloned()
            .collect();
        let server = mk_server(CachePolicy::cached(1 << 20));
        let server: &dyn Deployment = &server;
        push(
            "serve_cached_hot",
            iters,
            time_reps(reps, || {
                for _ in 0..iters {
                    std::hint::black_box(server.answer_batch(&hot_queries));
                }
            }),
        );

        let dedup_queries: Vec<Vec<f64>> = serve_queries
            .iter()
            .take(100)
            .cycle()
            .take(SERVE_STREAM_LEN)
            .cloned()
            .collect();
        let server = mk_server(CachePolicy::dedup_only());
        let server: &dyn Deployment = &server;
        push(
            "serve_dedup_batch",
            iters,
            time_reps(reps, || {
                for _ in 0..iters {
                    std::hint::black_box(server.answer_batch(&dedup_queries));
                }
            }),
        );
    }

    // The same t1 stream through the pre-transposed, block-padded
    // serving layout (the `ServeOptions::layout` default): the median
    // delta vs `serve_throughput_batched_t1` IS the tracked layout win —
    // batches skip every per-batch weight transpose and run the dense
    // padded GEMM kernel. `serve_batched_{f16,i8}` then serve the
    // quantized sketches through the identical front, so the recorded
    // medians document that quantization changes artifact size, not
    // serving cost (both decode to plain f64 models at load).
    {
        use nn::QuantMode;
        for (name, model) in [
            ("serve_layout_padded", sketch.clone()),
            ("serve_batched_f16", sketch.quantized_to(QuantMode::F16)),
            ("serve_batched_i8", sketch.quantized_to(QuantMode::I8)),
        ] {
            let router = DqdRouter::new(
                model,
                build_report.leaf_aqcs.clone(),
                RoutingPolicy::default(),
            );
            let server = SketchServer::new(
                router,
                ServeOptions {
                    threads: 1,
                    max_shard: 1024,
                    active_attrs: None,
                    layout: true,
                    cache: CachePolicy::OFF,
                },
            );
            let server: &dyn Deployment = &server;
            push(
                name,
                iters,
                time_reps(reps, || {
                    for _ in 0..iters {
                        std::hint::black_box(server.answer_batch(&serve_queries));
                    }
                }),
            );
        }
    }

    // Artifact size report (`artifact_bytes_{f32,f16,i8}`): exact NSK2
    // bytes of this suite's sketch per parameter mode, recorded as
    // "median" so the size curve rides the same tracked report as the
    // timings. Deterministic — byte-stable across runs and machines.
    for mode in nn::QuantMode::ALL {
        let bytes = neurosketch::persist::encoded_len_with(&sketch, mode) as f64;
        push(
            &format!("artifact_bytes_{}", mode.name()),
            1,
            (bytes, bytes),
        );
    }

    // Scatter/gather serving over data shards (`serve_sharded_k{1,4}`):
    // the same stream through a `ShardedServer` whose per-shard AVG
    // deployments (count + sum model per shard) were built at the same
    // architecture as the monolithic sketch. All shards run on this one
    // box, so k4 pays ~4x the model evaluations of k1 — the number to
    // watch is per-shard serving cost staying flat as K grows.
    for k in [1usize, 4] {
        use neurosketch::shard::{build_sharded, ShardPlan, ShardedServer};
        let plan = ShardPlan::RoundRobin { shards: k };
        let (sharded, _) = build_sharded(
            &sc.data,
            sc.measure,
            &plan,
            &sc.wl.predicate,
            Aggregate::Avg,
            &sc.train,
            &ns_cfg,
        )
        .expect("sharded build for query suite");
        let server = ShardedServer::new(
            sharded,
            ServeOptions {
                threads: 2,
                max_shard: 1024,
                active_attrs: None,
                // Plain path, matching the committed k1/k4 baselines.
                layout: false,
                cache: CachePolicy::OFF,
            },
        );
        let server: &dyn Deployment = &server;
        push(
            &format!("serve_sharded_k{k}"),
            iters,
            time_reps(reps, || {
                for _ in 0..iters {
                    std::hint::black_box(server.answer_batch(&serve_queries));
                }
            }),
        );
    }

    // Replicated cluster serving (`serve_replicated_k4x2`): the same
    // stream through a `Cluster` of 4 shard groups x 2 replicas under
    // round-robin routing. Versus `serve_sharded_k4` the delta is the
    // coordinator overhead per batch — generation selection, routing,
    // and the failover re-validation — on top of the identical
    // scatter/gather; the answers themselves are bitwise the same.
    {
        use neurosketch::cluster::{Cluster, ClusterOptions, RoutePolicy};
        use neurosketch::shard::{build_sharded, ShardPlan};
        let (sharded, _) = build_sharded(
            &sc.data,
            sc.measure,
            &ShardPlan::RoundRobin { shards: 4 },
            &sc.wl.predicate,
            Aggregate::Avg,
            &sc.train,
            &ns_cfg,
        )
        .expect("sharded build for cluster suite");
        let mut cluster = Cluster::new(
            &sharded,
            2,
            0,
            RoutePolicy::RoundRobin,
            ClusterOptions {
                threads: 2,
                quorum: 1.0,
                ..ClusterOptions::default()
            },
        )
        .expect("cluster for query suite");
        push(
            "serve_replicated_k4x2",
            iters,
            time_reps(reps, || {
                for _ in 0..iters {
                    std::hint::black_box(
                        cluster
                            .answer_batch(&serve_queries)
                            .expect("healthy cluster batch"),
                    );
                }
            }),
        );
    }

    // Network serving (`net_serial_loop` / `net_saturation_qps`): the
    // same [`SERVE_STREAM_LEN`]-query stream through the NSKW protocol
    // server over TCP loopback — once as a strict request-per-round-trip
    // serial connection (window 1, the pre-coalescing service model) and
    // once as 4 pipelined clients the server coalesces into adaptive
    // micro-batches. Both entries time identical total work, so the
    // median ratio IS the tracked coalescing win; `net_p50`/`net_p99`
    // record the saturation run's per-request latency percentiles
    // (median across reps), riding the report like `artifact_bytes_*`.
    {
        use crate::netload;
        use neurosketch::deploy::LiveDeployment;
        use neurosketch::net::NetOptions;
        use std::sync::Arc;

        let router = DqdRouter::new(
            sketch.clone(),
            build_report.leaf_aqcs.clone(),
            RoutingPolicy::default(),
        );
        let server = SketchServer::new(
            router,
            ServeOptions {
                threads: 2,
                ..ServeOptions::default()
            },
        );
        let live = Arc::new(LiveDeployment::new(server, 0));
        let dims = serve_queries[0].len();
        let under_test = netload::spawn_server(live, dims, NetOptions::default());
        let addr = under_test.addr;

        let iters = 1;
        push(
            "net_serial_loop",
            iters,
            time_reps(reps, || {
                std::hint::black_box(netload::run_load(addr, &serve_queries, 1, 1));
            }),
        );
        let mut p50s = Vec::new();
        let mut p99s = Vec::new();
        push(
            "net_saturation_qps",
            iters,
            time_reps(reps, || {
                let report = netload::run_load(addr, &serve_queries, 4, 64);
                assert_eq!(report.rejected, 0, "saturation run must not shed load");
                p50s.push(report.p50_ms);
                p99s.push(report.p99_ms);
            }),
        );
        let median = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite percentiles"));
            v[v.len() / 2]
        };
        let p50 = median(&mut p50s);
        let p99 = median(&mut p99s);
        push("net_p50", 1, (p50, p50));
        push("net_p99", 1, (p99, p99));

        // Repeat-heavy traffic (`net_repeat_traffic`): the saturation
        // run again, but over a stream cycling 64 distinct queries — the
        // server's in-batch dedup (`NetOptions::dedup`, on by default)
        // collapses each coalesced micro-batch to its distinct queries,
        // so the median vs `net_saturation_qps` is the tracked dedup win
        // on repeat workloads (identical total work on the wire).
        let repeat_queries: Vec<Vec<f64>> = serve_queries
            .iter()
            .take(64)
            .cycle()
            .take(SERVE_STREAM_LEN)
            .cloned()
            .collect();
        push(
            "net_repeat_traffic",
            iters,
            time_reps(reps, || {
                let report = netload::run_load(addr, &repeat_queries, 4, 64);
                assert_eq!(report.rejected, 0, "repeat run must not shed load");
            }),
        );
        under_test.stop();
    }

    let mut scratch = Vec::new();
    let iters = 1200;
    push(
        "exact_answer_testset",
        iters,
        time_reps(reps, || {
            for _ in 0..iters {
                for q in &sc.test {
                    std::hint::black_box(engine.answer_with(
                        &mut scratch,
                        &sc.wl.predicate,
                        Aggregate::Avg,
                        q,
                    ));
                }
            }
        }),
    );

    PerfReport {
        suite: "query".into(),
        fast,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let r = PerfReport {
            suite: "build".into(),
            fast: true,
            entries: vec![PerfEntry {
                name: "x".into(),
                median_ms: 1.5,
                p95_ms: 2.0,
                reps: 5,
                iters: 1,
            }],
        };
        let r2 = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r2.suite, "build");
        assert_eq!(r2.entries.len(), 1);
        assert_eq!(r2.median_of("x"), Some(1.5));
        assert_eq!(r2.median_of("y"), None);
    }

    #[test]
    fn regressions_flag_slowdowns_only() {
        let base = PerfReport {
            suite: "build".into(),
            fast: true,
            entries: vec![
                PerfEntry {
                    name: "a".into(),
                    median_ms: 10.0,
                    p95_ms: 12.0,
                    reps: 5,
                    iters: 1,
                },
                PerfEntry {
                    name: "tiny".into(),
                    median_ms: 0.01,
                    p95_ms: 0.02,
                    reps: 5,
                    iters: 1,
                },
            ],
        };
        let mut cur = base.clone();
        cur.entries[0].median_ms = 15.0; // 1.5x: fine
        assert!(cur.regressions_vs(&base, 2.0).is_empty());
        cur.entries[0].median_ms = 25.0; // 2.5x: flagged
        assert_eq!(cur.regressions_vs(&base, 2.0).len(), 1);
        // Sub-ms baselines are never flagged (noise).
        cur.entries[1].median_ms = 9.0;
        assert_eq!(cur.regressions_vs(&base, 2.0).len(), 1);
        // A retuned iters count makes the medians incomparable.
        cur.entries[0].iters = 2;
        assert!(cur.regressions_vs(&base, 2.0).is_empty());
    }

    #[test]
    fn comparability_requires_matching_suite_and_scale() {
        let mk = |suite: &str, fast: bool| PerfReport {
            suite: suite.into(),
            fast,
            entries: vec![],
        };
        assert!(mk("build", true).comparable_to(&mk("build", true)));
        assert!(!mk("build", true).comparable_to(&mk("build", false)));
        assert!(!mk("build", true).comparable_to(&mk("query", true)));
    }

    #[test]
    fn time_reps_returns_ordered_stats() {
        let (median, p95) = time_reps(9, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(median >= 0.0 && p95 >= median);
    }
}
