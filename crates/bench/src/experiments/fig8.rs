//! Fig. 8: impact of the number of active attributes (TPC1, AVG,
//! 1–3 random active attributes, uniform ranges). Shape to check: every
//! engine's error grows with more active attributes (fewer matching
//! points ⇒ larger sampling error), NeuroSketch stays fastest.

use crate::common::{print_rows, run_comparison, EngineRow, ExperimentContext};
use datagen::PaperDataset;
use query::aggregate::Aggregate;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

/// Results for one active-attribute count.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Number of active attributes.
    pub active: usize,
    /// Engine rows.
    pub engines: Vec<EngineRow>,
}

/// Run the sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<Fig8Row> {
    let (data, measure) = ctx.dataset(PaperDataset::Tpc1);
    (1..=3)
        .map(|k| {
            let wl = Workload::generate(&WorkloadConfig {
                dims: data.dims(),
                active: ActiveMode::Random(k),
                range: RangeMode::Uniform,
                count: ctx.train_queries() + ctx.test_queries(),
                seed: ctx.seed.wrapping_add(k as u64),
            })
            .expect("valid workload");
            let engines = run_comparison(
                &data,
                measure,
                &wl,
                Aggregate::Avg,
                ctx,
                &ctx.ns_config(),
                false,
            );
            Fig8Row { active: k, engines }
        })
        .collect()
}

/// Print one block per attribute count.
pub fn print(rows: &[Fig8Row]) {
    println!("\n==== Fig. 8: varying number of active attributes (TPC1, AVG) ====");
    for row in rows {
        print_rows(&format!("{} active attribute(s)", row.active), &row.engines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_counts_produce_finite_neurosketch_errors() {
        let ctx = ExperimentContext::fast();
        let rows = run(&ctx);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.engines[0].nmae.is_finite(), "{} active", r.active);
            assert_eq!(r.engines[0].support, 1.0);
        }
    }
}
