//! Live maintenance lifecycle: **ingest → drift check → partial
//! refresh → atomic hot-swap**.
//!
//! The paper's Sec. 7 proposal — "frequently test NeuroSketch, and
//! re-train the neural networks whose accuracy falls below a certain
//! threshold" — as an operational loop, in two acts:
//!
//! **Act 1 (monolithic, per-partition).** A localized delta (a blob of
//! new rows at x ≈ 0.2) is appended with [`datagen::Dataset::append`]
//! and the exact oracle follows *incrementally*
//! ([`query::exec::QueryEngine::resume`] merges the delta into its
//! sorted-column index instead of re-sorting). The
//! [`MaintenancePlan`] then scores every kd-tree partition on the probe
//! workload: only partitions whose queries cover the blob go stale,
//! only those retrain, and every fresh partition's answers are verified
//! **bitwise unchanged**.
//!
//! **Act 2 (sharded, hot-swap).** A 4-shard deployment is persisted
//! (NSKM generation 0) and served behind a [`LiveDeployment`] handle.
//! More drift arrives; the per-shard check finds all shards stale, and
//! a refresh *budget* of one retrains only the worst shard this cycle
//! (the rolling-refresh pattern). [`persist::save_refreshed`] lands the
//! rebuilt shard's artifacts under generation-1 names plus a new
//! manifest by atomic rename — generation 0's bytes are never touched —
//! and `reload_sharded` swaps the serving handle to generation 1
//! without dropping a batch.
//!
//! ```text
//! cargo run --release --example live_refresh            # full scale
//! cargo run --release --example live_refresh -- --fast  # CI smoke
//! ```

use datagen::simple::{drift_batch, uniform};
use neurosketch::deploy::Deployment;
use neurosketch::maintenance::{DriftMonitor, MaintenancePlan};
use neurosketch::serve::ServeOptions;
use neurosketch::shard::{build_sharded, ShardPlan, ShardedServer};
use neurosketch::{persist, LiveDeployment, NeuroSketch, NeuroSketchConfig};
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};
use std::time::Instant;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (rows, delta_rows) = if fast {
        (4_000, 2_000)
    } else {
        (16_000, 8_000)
    };

    // ---- Act 1: monolithic, per-partition partial refresh ----------
    let mut data = uniform(rows, 1, 1);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 1,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::WidthBetween(0.2, 0.6),
        count: 400,
        seed: 5,
    })
    .expect("workload");
    let mut cfg = NeuroSketchConfig::small();
    cfg.tree_height = 2;
    cfg.target_partitions = 4;
    cfg.train.epochs = 120;
    let engine = QueryEngine::new(&data, 0);
    let (mut sketch, _) =
        NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
            .expect("build");
    println!("[mono] built: {}", Deployment::describe(&sketch));

    // Ingest: append a localized blob, reindex incrementally.
    let t0 = Instant::now();
    let snapshot = engine.into_snapshot();
    data.append(&drift_batch(delta_rows, 1, 1.0, 0.2, 7))
        .expect("append");
    let engine = QueryEngine::resume(snapshot, &data).expect("incremental reindex");
    println!(
        "[mono] ingested {delta_rows} drifted rows (blob at x=0.2), reindexed incrementally in {:?}",
        t0.elapsed()
    );

    // Detect per partition + retrain only the stale ones.
    let monitor = DriftMonitor::new(wl.queries[..200].to_vec(), 0.15).expect("monitor");
    let plan = MaintenancePlan::new(monitor, cfg.clone());
    let before: Vec<f64> = wl.queries.iter().map(|q| sketch.answer(q)).collect();
    let report = plan
        .refresh_monolithic(
            &mut sketch,
            &engine,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
        )
        .expect("refresh");
    for u in &report.units {
        println!(
            "[mono]   partition {}: {} probes, NMAE {:.3} -> {}",
            u.unit,
            u.probes,
            u.nmae,
            if u.stale { "STALE, retrained" } else { "fresh" }
        );
    }
    assert!(
        !report.retrained.is_empty() && report.retrained.len() < sketch.partitions(),
        "localized drift should stale some but not all partitions: {:?}",
        report.units
    );
    // Fresh partitions answer bitwise as before the refresh.
    let mut fresh_checked = 0;
    for (q, b) in wl.queries.iter().zip(&before) {
        if !report.retrained.contains(&sketch.leaf_index_of(q)) {
            assert_eq!(sketch.answer(q), *b, "fresh partition drifted at {q:?}");
            fresh_checked += 1;
        }
    }
    println!(
        "[mono] partial refresh: {}/{} partitions retrained (check {:?}, retrain {:?}); \
         {fresh_checked} fresh-partition answers verified bitwise unchanged",
        report.retrained.len(),
        sketch.partitions(),
        report.check,
        report.retrain
    );

    // ---- Act 2: sharded, budgeted refresh + atomic hot-swap --------
    let wl2 = Workload::generate(&WorkloadConfig {
        dims: 2,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: 300,
        seed: 6,
    })
    .expect("workload");
    let mut table = uniform(rows, 2, 17);
    let mut shard_cfg = NeuroSketchConfig::small();
    shard_cfg.tree_height = 2;
    shard_cfg.target_partitions = 4;
    shard_cfg.train.epochs = if fast { 100 } else { 150 };
    let shard_plan = ShardPlan::RoundRobin { shards: 4 };
    let (sharded, _) = build_sharded(
        &table,
        1,
        &shard_plan,
        &wl2.predicate,
        Aggregate::Count,
        &wl2.queries,
        &shard_cfg,
    )
    .expect("sharded build");

    // Persist generation 0 and serve it behind a live handle.
    let dir = std::env::temp_dir().join("neurosketch_live_refresh_demo");
    std::fs::remove_dir_all(&dir).ok();
    let manifest = persist::save_sharded(&dir, &sharded).expect("save gen 0");
    let live = LiveDeployment::new(
        ShardedServer::new(
            persist::load_sharded(&manifest).expect("load gen 0"),
            ServeOptions::default(),
        ),
        0,
    );
    println!("[shard] serving {}", live.describe());

    // Drift arrives across the whole table (data sharding spreads an
    // i.i.d. delta over every shard).
    table
        .append(&drift_batch(delta_rows, 2, 1.0, 0.7, 23))
        .expect("append");
    let engine2 = QueryEngine::new(&table, 1);
    let monitor = DriftMonitor::new(wl2.queries[..150].to_vec(), 0.08).expect("monitor");
    let drifted = monitor.check(&live, &engine2, &wl2.predicate, Aggregate::Count);
    println!(
        "[shard] drift check on the live handle: NMAE {:.3} ({})",
        drifted.nmae,
        if drifted.stale { "stale" } else { "healthy" }
    );

    // Budgeted refresh: all four shards drifted, but this cycle's
    // budget rebuilds only the worst one (rolling refresh).
    let mut refreshed = persist::load_sharded(&manifest).expect("load for refresh");
    let mut plan = MaintenancePlan::new(monitor, shard_cfg.clone());
    plan.max_retrain = Some(1);
    let report = plan
        .refresh_sharded(&mut refreshed, &table, 1, &wl2.predicate, &wl2.queries)
        .expect("sharded refresh");
    for u in &report.units {
        println!(
            "[shard]   shard {}: NMAE {:.3} -> {}",
            u.unit,
            u.nmae,
            if report.retrained.contains(&u.unit) {
                "STALE, rebuilt this cycle"
            } else if u.stale {
                "stale, deferred (budget)"
            } else {
                "fresh"
            }
        );
    }
    assert_eq!(
        report.retrained.len(),
        1,
        "budget of 1 must rebuild 1 shard"
    );

    // Land generation 1 (only the rebuilt shard's artifacts are
    // written; generation 0 stays intact on disk) and hot-swap.
    let t1 = Instant::now();
    persist::save_refreshed(&manifest, &refreshed, &report.retrained).expect("save gen 1");
    let now_live = live
        .reload_sharded(&manifest, ServeOptions::default())
        .expect("reload");
    println!(
        "[shard] refreshed shard {:?} -> generation {now_live}, swapped in {:?}; now {}",
        report.retrained,
        t1.elapsed(),
        live.describe()
    );
    assert_eq!(now_live, 1);
    assert_eq!(live.describe().generation, Some(1));

    // The swapped-in generation answers exactly like the refreshed
    // deployment (quantized once by f32 storage), and the drift error
    // improved even under the one-shard budget.
    let (live_answers, _) = live.answer_batch(&wl2.queries);
    let expect = ShardedServer::new(refreshed.quantized(), ServeOptions::default());
    assert_eq!(
        live_answers,
        Deployment::answer_batch(&expect, &wl2.queries).0,
        "live handle diverged from the refreshed deployment"
    );
    let after = plan
        .monitor
        .check(&live, &engine2, &wl2.predicate, Aggregate::Count);
    assert!(
        after.nmae < drifted.nmae,
        "refreshing the worst shard did not reduce drift: {} -> {}",
        drifted.nmae,
        after.nmae
    );
    println!(
        "[shard] drift after one-shard refresh: NMAE {:.3} -> {:.3} \
         ({} shards deferred to the next cycle)",
        drifted.nmae,
        after.nmae,
        report.deferred.len()
    );
    std::fs::remove_dir_all(&dir).ok();
    println!("ingest -> detect -> partial refresh -> hot-swap lifecycle verified");
}
