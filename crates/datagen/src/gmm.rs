//! Gaussian mixture model generator for the paper's G5 / G10 / G20
//! synthetics: 100 components with random means and covariances (Sec. 5.1).
//!
//! We sample each component's covariance implicitly through a random mixing
//! matrix `A`: drawing `z ~ N(0, I)` and emitting `mu + A z` yields
//! covariance `A Aᵀ`, which is a random symmetric PSD matrix — no explicit
//! Cholesky factorization needed.

use crate::dataset::Dataset;
use crate::simple::standard_normal;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of a synthetic GMM dataset.
#[derive(Debug, Clone)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub components: usize,
    /// Data dimensionality.
    pub dims: usize,
    /// Number of rows to sample.
    pub rows: usize,
    /// Scale of the random mixing matrices (controls component spread).
    pub spread: f64,
}

impl GmmConfig {
    /// The paper's setup: 100 components, random mean and covariance.
    pub fn paper_gmm(dims: usize, rows: usize) -> Self {
        GmmConfig {
            components: 100,
            dims,
            rows,
            spread: 0.05,
        }
    }
}

struct Component {
    weight_cum: f64,
    mean: Vec<f64>,
    /// Row-major `dims x dims` mixing matrix.
    mix: Vec<f64>,
}

/// Sample a GMM dataset. Values are clamped to `[0,1]` per the paper's
/// attribute-domain assumption.
pub fn generate(cfg: &GmmConfig, seed: u64) -> Dataset {
    assert!(cfg.components > 0 && cfg.dims > 0, "degenerate GMM config");
    let mut rng = StdRng::seed_from_u64(seed);
    let d = cfg.dims;

    // Random weights, normalized into a cumulative distribution.
    let raw_w: Vec<f64> = (0..cfg.components)
        .map(|_| rng.random_range(0.2..1.0))
        .collect();
    let total: f64 = raw_w.iter().sum();
    let mut cum = 0.0;
    let comps: Vec<Component> = raw_w
        .iter()
        .map(|w| {
            cum += w / total;
            let mean = (0..d).map(|_| rng.random_range(0.15..0.85)).collect();
            let mix = (0..d * d)
                .map(|_| standard_normal(&mut rng) * cfg.spread / (d as f64).sqrt())
                .collect();
            Component {
                weight_cum: cum,
                mean,
                mix,
            }
        })
        .collect();

    let columns = (0..d).map(|i| format!("x{i}")).collect();
    let mut data = Vec::with_capacity(cfg.rows * d);
    let mut z = vec![0.0; d];
    for _ in 0..cfg.rows {
        let u: f64 = rng.random();
        let comp = comps
            .iter()
            .find(|c| u <= c.weight_cum)
            .unwrap_or(comps.last().expect("nonempty"));
        for zi in &mut z {
            *zi = standard_normal(&mut rng);
        }
        for r in 0..d {
            let mut v = comp.mean[r];
            let row = &comp.mix[r * d..(r + 1) * d];
            for (m, zi) in row.iter().zip(&z) {
                v += m * zi;
            }
            data.push(v.clamp(0.0, 1.0));
        }
    }
    Dataset::new(columns, data).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_bounds() {
        let d = generate(&GmmConfig::paper_gmm(5, 1000), 1);
        assert_eq!(d.rows(), 1000);
        assert_eq!(d.dims(), 5);
        assert!(d.raw().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn is_multimodal_not_uniform() {
        // With 100 tight components the histogram of a single coordinate is
        // far from flat: its max/min bucket ratio must exceed uniform's.
        let d = generate(&GmmConfig::paper_gmm(2, 20_000), 2);
        let (_, freqs) = d.histogram(0, 20);
        let max = freqs.iter().cloned().fold(0.0, f64::max);
        let min = freqs.iter().cloned().fold(1.0, f64::min);
        assert!(max / (min + 1e-9) > 2.0, "ratio {}", max / (min + 1e-9));
    }

    #[test]
    fn deterministic() {
        let cfg = GmmConfig::paper_gmm(3, 200);
        assert_eq!(generate(&cfg, 5).raw(), generate(&cfg, 5).raw());
        assert_ne!(generate(&cfg, 5).raw(), generate(&cfg, 6).raw());
    }

    #[test]
    fn components_have_different_locations() {
        // Two different seeds produce different mixtures.
        let cfg = GmmConfig {
            components: 3,
            dims: 2,
            rows: 500,
            spread: 0.02,
        };
        let a = generate(&cfg, 10);
        let b = generate(&cfg, 11);
        let (ma, _) = a.column_stats(0);
        let (mb, _) = b.column_stats(0);
        assert!((ma - mb).abs() > 1e-4);
    }
}
