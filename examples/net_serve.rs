//! Network serving lifecycle: **build → bind → concurrent clients →
//! hot swap mid-traffic → drain**.
//!
//! Every other example drives a deployment in-process; this one makes
//! the library-to-service jump from `docs/serving.md` §network: a
//! [`NetServer`] owns a [`LiveDeployment`] and speaks the NSKW frame
//! protocol over TCP loopback while concurrent pipelined clients load
//! it:
//!
//! 1. build a sketch, wrap it in a [`SketchServer`] behind a
//!    [`LiveDeployment`], and bind an ephemeral loopback port,
//! 2. drive it with concurrent pipelined clients and verify every
//!    answer is **bitwise identical** to calling
//!    [`Deployment::answer_batch`] directly — coalescing into adaptive
//!    micro-batches is invisible in the values,
//! 3. swap in a retrained generation **mid-traffic**: every response
//!    carries the generation that answered it, each one is exactly
//!    that generation's bitwise answer, never a blend,
//! 4. shut down and read the server's tallies (batches coalesced,
//!    largest micro-batch, answer-cache hits/misses and in-batch
//!    dedup collapses, zero protocol errors).
//!
//! ```text
//! cargo run --release --example net_serve            # full scale
//! cargo run --release --example net_serve -- --fast  # CI smoke
//! ```

use neurosketch::cache::CachePolicy;
use neurosketch::deploy::LiveDeployment;
use neurosketch::net::{NetClient, NetOptions, NetResponse, NetServer};
use neurosketch::router::{DqdRouter, RoutingPolicy};
use neurosketch::serve::{ServeOptions, SketchServer};
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (rows, n_queries) = if fast { (2_000, 200) } else { (12_000, 800) };
    let clients = 4;

    let data = datagen::simple::uniform(rows, 2, 23);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 2,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: n_queries,
        seed: 8,
    })
    .expect("workload");
    let engine = QueryEngine::new(&data, 1);
    let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &wl.queries, 4);
    let mut cfg = NeuroSketchConfig::small();
    cfg.tree_height = 2;
    cfg.target_partitions = 4;
    cfg.train.epochs = if fast { 40 } else { 120 };
    cfg.threads = 4;

    // 1. Build generation 0 and a retrained generation 1 (more
    // epochs — a stand-in for any refresh), and precompute both
    // generations' direct answers for the parity checks.
    let build = |epochs: usize| {
        let mut c = cfg.clone();
        c.train.epochs = epochs;
        let (sketch, report) =
            NeuroSketch::build_from_labeled(&wl.queries, &labels, &c).expect("sketch build");
        let router = DqdRouter::new(sketch, report.leaf_aqcs, RoutingPolicy::default());
        // The production cache setting: the flooder below replays the
        // workload, so the tallies at the end show real hits — and the
        // bitwise parity asserts double as a cache-parity check over
        // the wire.
        SketchServer::new(
            router,
            ServeOptions {
                threads: 2,
                cache: CachePolicy::cached(256 << 10),
                ..ServeOptions::default()
            },
        )
    };
    let gen0 = build(cfg.train.epochs);
    let gen1 = build(cfg.train.epochs + 7);
    // These direct calls also warm each server's embedded answer cache,
    // so the tallies at the end show the network traffic hitting it.
    let (expect0, _) = gen0.answer_batch(&wl.queries);
    let (expect1, _) = gen1.answer_batch(&wl.queries);

    let live = Arc::new(LiveDeployment::new(gen0, 0));
    let dims = wl.queries[0].len();
    let mut server = NetServer::bind("127.0.0.1:0", live.clone(), dims, NetOptions::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    println!("serving generation 0 on {addr}");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let serve_thread = std::thread::spawn(move || {
        server.serve(&flag);
        server
    });

    // 2. Concurrent pipelined clients; every answer bitwise-checked
    // against the direct deployment call.
    let per_client = wl.queries.len() / clients;
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let slice = wl.queries[c * per_client..(c + 1) * per_client].to_vec();
            let expect = expect0[c * per_client..(c + 1) * per_client].to_vec();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                client
                    .set_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");
                let responses = client.query_stream(&slice, 16).expect("stream");
                for r in &responses {
                    match r {
                        NetResponse::Answered(a) => {
                            assert_eq!(a.generation, 0);
                            assert_eq!(
                                a.value.to_bits(),
                                expect[a.id as usize].to_bits(),
                                "network answer drifted from the direct call"
                            );
                        }
                        NetResponse::Rejected { id, code } => {
                            panic!("request {id} rejected ({code}) under light load")
                        }
                    }
                }
                responses.len()
            })
        })
        .collect();
    let served: usize = workers.into_iter().map(|w| w.join().expect("client")).sum();
    println!("{served} answers over {clients} connections, all bitwise = direct answer_batch");

    // 3. Hot swap mid-traffic: a flooder streams across the swap;
    // every response must be exactly one generation's bitwise answer.
    let (fa, fb) = (expect0.clone(), expect1.clone());
    let stream: Vec<Vec<f64>> = (0..wl.queries.len() * 4)
        .map(|i| wl.queries[i % wl.queries.len()].clone())
        .collect();
    let flood_len = stream.len();
    let qlen = wl.queries.len();
    let flooder = std::thread::spawn(move || {
        let mut client = NetClient::connect(addr).expect("connect flooder");
        client
            .set_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let responses = client.query_stream(&stream, 32).expect("flood stream");
        let mut by_gen = [0usize; 2];
        for r in responses {
            if let NetResponse::Answered(a) = r {
                let qi = (a.id as usize) % qlen;
                let want = if a.generation == 0 { fa[qi] } else { fb[qi] };
                assert_eq!(
                    a.value.to_bits(),
                    want.to_bits(),
                    "a response blended generations"
                );
                by_gen[a.generation as usize] += 1;
            }
        }
        by_gen
    });
    live.swap(gen1, 1);
    println!("swapped in generation 1 mid-traffic");
    let by_gen = flooder.join().expect("flooder");
    println!(
        "flooder: {} answers from generation 0, {} from generation 1, zero blends (of {})",
        by_gen[0], by_gen[1], flood_len
    );

    // 4. Drain and read the tallies.
    shutdown.store(true, Ordering::Relaxed);
    let server = serve_thread.join().expect("server thread");
    let stats = server.stats();
    println!(
        "server: {} queries in {} micro-batches (largest {}), {} rejected, {} protocol errors",
        stats.answered, stats.batches, stats.largest_batch, stats.rejected, stats.protocol_errors
    );
    println!(
        "answer front: {} cache hits, {} cache misses, {} collapsed onto an in-batch duplicate",
        stats.cache_hits, stats.cache_misses, stats.deduped
    );
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.answered as usize, served + flood_len);
    println!("net_serve: OK");
}
