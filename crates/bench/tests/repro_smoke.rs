//! Smoke coverage for the `repro` CLI's experiment entry points: the
//! fig5 and table2 experiments must run at `--fast` scale and return
//! non-empty, finite rows. This is exactly what
//! `cargo run -p bench --bin repro -- --fast fig5` executes, minus the
//! printing.

use bench::common::ExperimentContext;
use bench::experiments::{fig5, table2};

#[test]
fn fig5_fast_returns_nonempty_finite_rows() {
    let ctx = ExperimentContext::fast();
    let rows = fig5::run(&ctx);
    assert!(!rows.is_empty(), "fig5 returned no rows");
    for r in &rows {
        assert!(!r.dataset.is_empty());
        assert!(!r.freqs.is_empty(), "{}: empty histogram", r.dataset);
        assert_eq!(
            r.edges.len(),
            r.freqs.len(),
            "{}: histogram left edges/freqs mismatch",
            r.dataset
        );
        assert!(
            r.edges.iter().all(|e| e.is_finite()),
            "{}: non-finite bin edge",
            r.dataset
        );
        // Frequencies form a (sub-)distribution: finite, nonnegative,
        // summing to ~1 over the recorded support.
        let sum: f64 = r.freqs.iter().sum();
        assert!(
            r.freqs.iter().all(|f| f.is_finite() && *f >= 0.0),
            "{}: bad frequency",
            r.dataset
        );
        assert!(
            (0.0..=1.0 + 1e-9).contains(&sum),
            "{}: freq sum {sum}",
            r.dataset
        );
    }
}

#[test]
fn table2_fast_returns_all_engines_with_finite_supported_rows() {
    let ctx = ExperimentContext::fast();
    let rows = table2::run(&ctx);
    assert!(!rows.is_empty(), "table2 returned no rows");
    // The paper's table lists every engine, supported or not.
    assert!(rows.iter().any(|r| r.engine == "NeuroSketch"));
    let mut supported = 0;
    for r in &rows {
        assert!(
            (0.0..=1.0).contains(&r.support),
            "{}: support {}",
            r.engine,
            r.support
        );
        if r.support > 0.0 {
            supported += 1;
            assert!(r.nmae.is_finite(), "{}: non-finite nMAE", r.engine);
            assert!(
                r.query_us.is_finite() && r.query_us >= 0.0,
                "{}: bad query time",
                r.engine
            );
            assert!(
                r.storage_kib.is_finite() && r.storage_kib > 0.0,
                "{}: bad storage",
                r.engine
            );
        }
    }
    assert!(supported > 0, "no engine answered the table2 workload");
}
