//! Fig. 5: histograms of the measure-column values for PM, TPC, VS and a
//! GMM dataset, printed as text bars. The shapes to check against the
//! paper: PM right-skewed from ~0; TPC net-profit centered on 0 with both
//! tails; VS visit durations right-skewed with a sub-hour mode; GMM
//! multi-modal.

use crate::common::ExperimentContext;
use datagen::PaperDataset;

/// One dataset's histogram.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Bucket left edges (raw units).
    pub edges: Vec<f64>,
    /// Normalized frequencies (sum to 1).
    pub freqs: Vec<f64>,
}

/// Compute the four histograms of Fig. 5.
pub fn run(ctx: &ExperimentContext) -> Vec<Fig5Row> {
    let targets = [
        PaperDataset::Pm,
        PaperDataset::Tpc1,
        PaperDataset::Vs,
        PaperDataset::G5,
    ];
    targets
        .iter()
        .map(|&ds| {
            // Raw (unnormalized) data: the paper plots physical units.
            let scale = if ctx.fast { 0.05 } else { ctx.scale };
            let raw = ds.generate(scale, ctx.seed);
            let (edges, freqs) = raw.histogram(ds.measure_column(), 20);
            Fig5Row {
                dataset: ds.name(),
                edges,
                freqs,
            }
        })
        .collect()
}

/// Print text-bar histograms.
pub fn print(rows: &[Fig5Row]) {
    println!("\n== Fig. 5: measure column distributions ==");
    for row in rows {
        println!("\n[{}]", row.dataset);
        let max = row.freqs.iter().cloned().fold(0.0, f64::max).max(1e-12);
        for (e, f) in row.edges.iter().zip(&row.freqs) {
            let bar = "#".repeat(((f / max) * 40.0).round() as usize);
            println!("{e:>12.2} | {bar} {:.3}", f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let rows = run(&ExperimentContext::fast());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            let total: f64 = r.freqs.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", r.dataset);
        }
        // PM: mode in the lower third (right-skew).
        let pm = &rows[0];
        let argmax = pm
            .freqs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(argmax < 7, "PM mode at bucket {argmax}");
        // TPC: both negative and positive profit buckets populated.
        let tpc = &rows[1];
        let has_neg = tpc
            .edges
            .iter()
            .zip(&tpc.freqs)
            .any(|(e, f)| *e < 0.0 && *f > 0.0);
        let has_pos = tpc
            .edges
            .iter()
            .zip(&tpc.freqs)
            .any(|(e, f)| *e > 0.0 && *f > 0.0);
        assert!(has_neg && has_pos);
    }
}
