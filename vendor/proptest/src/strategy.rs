//! Input-generation strategies (no shrinking in this stub).

use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::Range;

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`, mirroring
    /// `Strategy::prop_map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, f32, usize, u64, u32, i64, i32);

/// `Just`-style constant strategy (handy for composing).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Collection sizes accepted by [`crate::prop::collection::vec`]:
/// either an exact length or a half-open range of lengths.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    /// Draw a length.
    pub fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            rng.random_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// The strategy returned by [`crate::prop::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

// Allow strategies behind references (the proptest! macro takes
// `&strategy`, and users may nest references when composing).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}
