//! One module per table/figure of the paper's evaluation section.
//!
//! | Module | Paper artifact | What it shows |
//! |---|---|---|
//! | [`fig5`]  | Fig. 5   | measure-column marginal distributions |
//! | [`fig6`]  | Fig. 6   | error / query time / storage across datasets |
//! | [`fig7`]  | Fig. 7   | query-range sweep |
//! | [`fig8`]  | Fig. 8   | active-attribute sweep |
//! | [`fig9`]  | Fig. 9   | aggregation-function sweep |
//! | [`table2`]| Table 2  | rotated-rectangle MEDIAN query |
//! | [`fig10`] | Fig. 10  | time/space/accuracy trade-off curves |
//! | [`fig11`] | Fig. 11  | learned-function visualization |
//! | [`fig12`] | Fig. 12  | generalization vs training size + dist-NTQ |
//! | [`table3`]| Table 3  | partitioning/merging ablation |
//! | [`fig13`] | Fig. 13  | preprocessing-time study |
//! | [`fig14`] | Fig. 14  | DQD bound on synthetic distributions |
//! | [`fig16`] | Fig. 15/16 + Table 4 | 2-D query functions, AQC vs error |
//! | [`fig19`] | Fig. 19  | construction (CS/CS+SGD) vs plain SGD |
//! | [`ablation`] | (extension) | merge-score and pruning ablations |

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig16;
pub mod fig19;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table2;
pub mod table3;
