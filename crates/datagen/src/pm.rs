//! Beijing-PM2.5-like air-quality generator.
//!
//! The paper's PM dataset (Liang et al. 2015) has ~41.7k hourly records
//! with four numeric attributes; the measure is the PM2.5 concentration.
//! Its properties that matter for the experiments: a heavily right-skewed
//! PM2.5 marginal peaking near zero and tailing past 900 µg/m³ (Fig. 5),
//! and a *smooth* dependence of mean PM2.5 on temperature (Fig. 16b —
//! low AQC, winter-heating pollution at low temperatures).
//!
//! The generator simulates hourly weather with seasonal and diurnal
//! temperature cycles, pressure and dew point coupled to temperature, and
//! PM2.5 as a lognormal baseline modulated by cold weather (heating) with
//! occasional severe-episode spikes.

use crate::dataset::Dataset;
use crate::simple::standard_normal;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Column order: the measure (PM2.5) first, matching
/// [`crate::PaperDataset::measure_column`].
pub const COLUMNS: [&str; 4] = ["pm25", "temp_c", "pressure_hpa", "dewpoint_c"];

/// Generate `rows` hourly air-quality records.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows * 4);
    // AR(1) state for slow synoptic weather variation.
    let mut synoptic = 0.0f64;
    for h in 0..rows {
        let hour_of_day = (h % 24) as f64;
        let day_of_year = ((h / 24) % 365) as f64;
        synoptic = 0.98 * synoptic + 0.2 * standard_normal(&mut rng);

        // Beijing-like seasonal swing: −5°C January to 27°C July, ±4°C daily.
        let seasonal = 11.0 - 16.0 * (std::f64::consts::TAU * (day_of_year + 15.0) / 365.0).cos();
        let diurnal = 4.0 * (std::f64::consts::TAU * (hour_of_day - 15.0) / 24.0).cos();
        let temp = seasonal - diurnal + 2.0 * synoptic + standard_normal(&mut rng);

        let pressure = 1016.0 - 0.6 * temp + 3.0 * synoptic + standard_normal(&mut rng);
        let dewpoint = temp - rng.random_range(2.0..15.0);

        // Heating-season pollution: colder -> higher baseline, plus
        // stagnation episodes (high pressure anomaly) and lognormal noise.
        let heating = (12.0 - temp).max(0.0) / 12.0; // 0 in summer, ~1.4 deep winter
        let stagnation = (synoptic).max(0.0);
        let base = 35.0 + 90.0 * heating + 40.0 * stagnation;
        let mut pm25 = base * (0.7 * standard_normal(&mut rng)).exp();
        if rng.random::<f64>() < 0.01 {
            // Severe episode spike.
            pm25 += rng.random_range(200.0..600.0);
        }
        let pm25 = pm25.clamp(0.0, 994.0);
        data.extend_from_slice(&[pm25, temp, pressure, dewpoint]);
    }
    Dataset::new(COLUMNS.iter().map(|s| s.to_string()).collect(), data)
        .expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let d = generate(1000, 1);
        assert_eq!(d.dims(), 4);
        assert_eq!(d.rows(), 1000);
    }

    #[test]
    fn pm25_is_right_skewed_and_bounded() {
        let d = generate(20_000, 2);
        let vals = d.column(0);
        assert!(vals.iter().all(|v| (0.0..=994.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = sorted[sorted.len() / 2];
        assert!(median < mean, "median {median} >= mean {mean}");
        // The tail should reach past 500 µg/m³ (severe episodes).
        assert!(*sorted.last().unwrap() > 500.0);
    }

    #[test]
    fn cold_weather_raises_pollution() {
        // Fig. 16b: mean PM2.5 falls smoothly as temperature rises.
        let d = generate(30_000, 3);
        let (mut cold_sum, mut cold_n, mut warm_sum, mut warm_n) = (0.0, 0usize, 0.0, 0usize);
        for row in d.iter_rows() {
            if row[1] < 0.0 {
                cold_sum += row[0];
                cold_n += 1;
            } else if row[1] > 20.0 {
                warm_sum += row[0];
                warm_n += 1;
            }
        }
        assert!(cold_n > 100 && warm_n > 100);
        let (cold, warm) = (cold_sum / cold_n as f64, warm_sum / warm_n as f64);
        assert!(cold > 1.5 * warm, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn temperature_has_seasonal_range() {
        let d = generate(24 * 365, 4);
        let temps = d.column(1);
        let lo = temps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < 0.0, "min temp {lo}");
        assert!(hi > 25.0, "max temp {hi}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(100, 5).raw(), generate(100, 5).raw());
    }
}
