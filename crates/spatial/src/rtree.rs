//! A bulk-loaded R-tree over data points — the index behind the paper's
//! TREE-AGG baseline.
//!
//! Construction is a recursive sort-tile variant: at each level the points
//! are sorted along the axis with the largest spread and cut into `FANOUT`
//! slabs; minimum bounding rectangles are computed bottom-up. Range search
//! takes per-attribute half-open interval bounds `(attr, lo, hi)` and
//! visits every point inside all of them, pruning subtrees whose MBR
//! misses any bound.

use serde::{Deserialize, Serialize};

/// Maximum children per internal node / points per leaf.
const FANOUT: usize = 16;

/// Bulk-loaded R-tree holding its own copy of the indexed points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RTree {
    dims: usize,
    /// Row-major point storage.
    points: Vec<f64>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    /// Per-dimension (min, max) bounds of everything below.
    mbr_lo: Vec<f64>,
    mbr_hi: Vec<f64>,
    kind: NodeKind,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum NodeKind {
    Internal(Vec<usize>),
    /// Point ids (row indices into `points`).
    Leaf(Vec<usize>),
}

impl RTree {
    /// Bulk load from rows (each of width `dims`). Rows are copied.
    ///
    /// # Panics
    /// Panics on ragged rows or `dims == 0`.
    pub fn bulk_load(rows: &[Vec<f64>], dims: usize) -> RTree {
        assert!(dims > 0, "dims must be positive");
        assert!(rows.iter().all(|r| r.len() == dims), "ragged rows");
        let mut points = Vec::with_capacity(rows.len() * dims);
        for r in rows {
            points.extend_from_slice(r);
        }
        Self::bulk_load_flat(points, dims)
    }

    /// Bulk load from an already-flat row-major buffer.
    pub fn bulk_load_flat(points: Vec<f64>, dims: usize) -> RTree {
        assert!(dims > 0, "dims must be positive");
        assert_eq!(points.len() % dims, 0, "buffer not a multiple of dims");
        let n = points.len() / dims;
        let mut tree = RTree {
            dims,
            points,
            nodes: Vec::new(),
            root: None,
        };
        if n > 0 {
            let mut ids: Vec<usize> = (0..n).collect();
            let root = tree.build(&mut ids);
            tree.root = Some(root);
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len() / self.dims
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Point dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// A stored point by id.
    pub fn point(&self, id: usize) -> &[f64] {
        &self.points[id * self.dims..(id + 1) * self.dims]
    }

    fn build(&mut self, ids: &mut [usize]) -> usize {
        if ids.len() <= FANOUT {
            let (lo, hi) = self.mbr_of_points(ids);
            let id = self.nodes.len();
            self.nodes.push(Node {
                mbr_lo: lo,
                mbr_hi: hi,
                kind: NodeKind::Leaf(ids.to_vec()),
            });
            return id;
        }
        // Split along the widest axis into FANOUT slabs.
        let axis = self.widest_axis(ids);
        ids.sort_unstable_by(|&a, &b| {
            self.points[a * self.dims + axis]
                .partial_cmp(&self.points[b * self.dims + axis])
                .expect("no NaN")
        });
        let slab = ids.len().div_ceil(FANOUT).max(FANOUT);
        let mut children = Vec::new();
        let mut start = 0;
        while start < ids.len() {
            let end = (start + slab).min(ids.len());
            // Recurse on an owned copy to satisfy the borrow checker.
            let mut sub: Vec<usize> = ids[start..end].to_vec();
            children.push(self.build(&mut sub));
            start = end;
        }
        let (lo, hi) = self.mbr_of_children(&children);
        let id = self.nodes.len();
        self.nodes.push(Node {
            mbr_lo: lo,
            mbr_hi: hi,
            kind: NodeKind::Internal(children),
        });
        id
    }

    fn widest_axis(&self, ids: &[usize]) -> usize {
        let (lo, hi) = self.mbr_of_points(ids);
        (0..self.dims)
            .max_by(|&a, &b| {
                (hi[a] - lo[a])
                    .partial_cmp(&(hi[b] - lo[b]))
                    .expect("no NaN")
            })
            .unwrap_or(0)
    }

    fn mbr_of_points(&self, ids: &[usize]) -> (Vec<f64>, Vec<f64>) {
        let mut lo = vec![f64::INFINITY; self.dims];
        let mut hi = vec![f64::NEG_INFINITY; self.dims];
        for &i in ids {
            let p = self.point(i);
            for d in 0..self.dims {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        (lo, hi)
    }

    fn mbr_of_children(&self, children: &[usize]) -> (Vec<f64>, Vec<f64>) {
        let mut lo = vec![f64::INFINITY; self.dims];
        let mut hi = vec![f64::NEG_INFINITY; self.dims];
        for &c in children {
            for d in 0..self.dims {
                lo[d] = lo[d].min(self.nodes[c].mbr_lo[d]);
                hi[d] = hi[d].max(self.nodes[c].mbr_hi[d]);
            }
        }
        (lo, hi)
    }

    /// Visit every point id whose coordinates satisfy all half-open
    /// bounds `(attr, lo, hi)`: `lo ≤ x[attr] < hi`.
    pub fn search(&self, bounds: &[(usize, f64, f64)], mut visit: impl FnMut(usize)) {
        debug_assert!(
            bounds.iter().all(|&(a, _, _)| a < self.dims),
            "bad bound attr"
        );
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(nid) = stack.pop() {
            let node = &self.nodes[nid];
            // Prune: MBR must intersect every bound.
            let overlaps = bounds
                .iter()
                .all(|&(a, lo, hi)| node.mbr_lo[a] < hi && node.mbr_hi[a] >= lo);
            if !overlaps {
                continue;
            }
            match &node.kind {
                NodeKind::Internal(children) => stack.extend_from_slice(children),
                NodeKind::Leaf(ids) => {
                    for &i in ids {
                        let p = self.point(i);
                        if bounds.iter().all(|&(a, lo, hi)| p[a] >= lo && p[a] < hi) {
                            visit(i);
                        }
                    }
                }
            }
        }
    }

    /// Collect matching point ids (convenience over [`RTree::search`]).
    pub fn query(&self, bounds: &[(usize, f64, f64)]) -> Vec<usize> {
        let mut out = Vec::new();
        self.search(bounds, |i| out.push(i));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dims).map(|_| rng.random::<f64>()).collect())
            .collect()
    }

    fn brute_force(rows: &[Vec<f64>], bounds: &[(usize, f64, f64)]) -> Vec<usize> {
        rows.iter()
            .enumerate()
            .filter(|(_, r)| bounds.iter().all(|&(a, lo, hi)| r[a] >= lo && r[a] < hi))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let rows = random_points(2000, 3, 1);
        let tree = RTree::bulk_load(&rows, 3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let a = rng.random_range(0..3);
            let lo: f64 = rng.random_range(0.0..0.8);
            let hi = lo + rng.random_range(0.01..0.2);
            let bounds = vec![(a, lo, hi)];
            let mut got = tree.query(&bounds);
            got.sort_unstable();
            assert_eq!(got, brute_force(&rows, &bounds));
        }
    }

    #[test]
    fn multi_bound_queries() {
        let rows = random_points(1000, 2, 3);
        let tree = RTree::bulk_load(&rows, 2);
        let bounds = vec![(0, 0.2, 0.5), (1, 0.4, 0.9)];
        let mut got = tree.query(&bounds);
        got.sort_unstable();
        assert_eq!(got, brute_force(&rows, &bounds));
    }

    #[test]
    fn empty_bounds_returns_everything() {
        let rows = random_points(100, 2, 4);
        let tree = RTree::bulk_load(&rows, 2);
        assert_eq!(tree.query(&[]).len(), 100);
    }

    #[test]
    fn empty_tree() {
        let tree = RTree::bulk_load(&[], 2);
        assert!(tree.is_empty());
        assert_eq!(tree.query(&[(0, 0.0, 1.0)]), Vec::<usize>::new());
    }

    #[test]
    fn half_open_boundary_semantics() {
        let rows = vec![vec![0.5], vec![0.7]];
        let tree = RTree::bulk_load(&rows, 1);
        assert_eq!(tree.query(&[(0, 0.5, 0.7)]), vec![0]); // hi excluded
        let mut both = tree.query(&[(0, 0.5, 0.700001)]);
        both.sort_unstable();
        assert_eq!(both, vec![0, 1]); // lo included
    }

    #[test]
    fn point_accessor_roundtrip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let tree = RTree::bulk_load(&rows, 2);
        assert_eq!(tree.point(1), &[3.0, 4.0]);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn large_tree_has_internal_structure() {
        // More than FANOUT^2 points forces at least 3 levels.
        let rows = random_points(1000, 2, 5);
        let tree = RTree::bulk_load(&rows, 2);
        assert!(tree.nodes.len() > 64, "nodes {}", tree.nodes.len());
        // Full-range query still returns all points exactly once.
        let got = tree.query(&[(0, 0.0, 1.1), (1, 0.0, 1.1)]);
        assert_eq!(got.len(), 1000);
        let unique: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(unique.len(), 1000);
    }
}
