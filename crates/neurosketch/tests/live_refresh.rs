//! Live-refresh invariants over the persisted NSKM lifecycle:
//!
//! * a **partial refresh** leaves every non-stale unit's answers
//!   bitwise unchanged (property-tested over all stale subsets);
//! * a refreshed deployment's NSKM **generation round-trips**
//!   quantized-bitwise, untouched shards keep their generation-0
//!   artifacts, and a [`neurosketch::deploy::LiveDeployment`] adopts
//!   the new generation atomically via `reload_sharded`;
//! * a **torn refresh** — new artifacts written, manifest rename never
//!   landed — still loads generation `G` cleanly.

use bytes::Bytes;
use datagen::simple::{drift_batch, uniform};
use datagen::Dataset;
use neurosketch::deploy::Deployment;
use neurosketch::maintenance::retrain_shards;
use neurosketch::persist;
use neurosketch::serve::ServeOptions;
use neurosketch::shard::{build_sharded, ShardPlan, ShardedServer, ShardedSketch};
use neurosketch::{LiveDeployment, NeuroSketchConfig};
use proptest::prelude::*;
use query::aggregate::{Aggregate, MomentKind};
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};
use std::sync::OnceLock;

const SHARDS: usize = 4;

fn cfg() -> NeuroSketchConfig {
    let mut cfg = NeuroSketchConfig::small();
    cfg.train.epochs = 8;
    cfg
}

/// One 4-shard COUNT deployment over a uniform table, plus the grown
/// (drifted) table a refresh retrains against. Built once, shared by
/// every test and property case.
struct Base {
    wl: Workload,
    sharded: ShardedSketch,
    grown: Dataset,
}

fn base() -> &'static Base {
    static BASE: OnceLock<Base> = OnceLock::new();
    BASE.get_or_init(|| {
        let mut data = uniform(600, 2, 21);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: 100,
            seed: 3,
        })
        .unwrap();
        let (sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: SHARDS },
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg(),
        )
        .unwrap();
        data.append(&drift_batch(300, 2, 1.0, 0.3, 33)).unwrap();
        Base {
            wl,
            sharded,
            grown: data,
        }
    })
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn generation_roundtrips_quantized_bitwise_and_swaps_live() {
    let b = base();
    let dir = fresh_dir("nskm_generation_roundtrip_test");
    let manifest = persist::save_sharded(&dir, &b.sharded).unwrap();

    // Serve generation 0 behind a live handle.
    let live = LiveDeployment::new(
        ShardedServer::new(
            persist::load_sharded(&manifest).unwrap(),
            ServeOptions::default(),
        ),
        0,
    );
    let (gen0_answers, _) = live.answer_batch(&b.wl.queries);
    assert_eq!(live.describe().generation, Some(0));

    // Refresh shards 1 and 2 against the drifted table and land gen 1.
    let mut refreshed = b.sharded.clone();
    retrain_shards(
        &mut refreshed,
        &b.grown,
        1,
        &b.wl.predicate,
        &b.wl.queries,
        &cfg(),
        &[1, 2],
    )
    .unwrap();
    let landed = persist::save_refreshed(&manifest, &refreshed, &[1, 2]).unwrap();
    assert_eq!(landed, manifest, "refresh lands at the same manifest path");

    // The manifest bumped its generation; untouched shards still point
    // at their generation-0 artifacts, replaced ones at gen-1 names.
    let decoded = persist::decode_manifest(Bytes::from(std::fs::read(&manifest).unwrap())).unwrap();
    assert_eq!(decoded.generation, 1);
    assert_eq!(
        decoded.shards[0][0].path,
        persist::shard_artifact_name(0, MomentKind::Count)
    );
    assert_eq!(
        decoded.shards[1][0].path,
        persist::shard_artifact_name_gen(1, MomentKind::Count, 1)
    );

    // The reloaded generation answers bitwise like the quantized
    // refreshed deployment (save is lossy exactly once).
    let loaded = persist::load_sharded(&manifest).unwrap();
    let quantized = refreshed.quantized();
    for q in b.wl.queries.iter().take(30) {
        assert_eq!(loaded.answer(q), quantized.answer(q));
    }

    // And the live handle hot-swaps to it: generation bumps, answers
    // flip wholesale to the new generation's.
    let now_live = live
        .reload_sharded(&manifest, ServeOptions::default())
        .unwrap();
    assert_eq!(now_live, 1);
    assert_eq!(live.describe().generation, Some(1));
    let (gen1_answers, _) = live.answer_batch(&b.wl.queries);
    let expect = ShardedServer::new(quantized, ServeOptions::default()).answer_batch(&b.wl.queries);
    assert_eq!(gen1_answers, expect.0);
    assert_ne!(gen0_answers, gen1_answers, "refresh changed nothing");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_refresh_still_loads_generation_zero_cleanly() {
    let b = base();
    let dir = fresh_dir("nskm_torn_refresh_test");
    let manifest = persist::save_sharded(&dir, &b.sharded).unwrap();
    let gen0_manifest_bytes = std::fs::read(&manifest).unwrap();

    let mut refreshed = b.sharded.clone();
    retrain_shards(
        &mut refreshed,
        &b.grown,
        1,
        &b.wl.predicate,
        &b.wl.queries,
        &cfg(),
        &[0],
    )
    .unwrap();
    persist::save_refreshed(&manifest, &refreshed, &[0]).unwrap();

    // Tear the refresh: the gen-1 artifacts are on disk, but the
    // manifest rename "never landed" — the directory still holds the
    // gen-0 manifest. Loading must come up on generation 0 with the
    // original answers; no gen-0 byte was overwritten by the refresh.
    std::fs::write(&manifest, &gen0_manifest_bytes).unwrap();
    let decoded = persist::decode_manifest(Bytes::from(std::fs::read(&manifest).unwrap())).unwrap();
    assert_eq!(decoded.generation, 0);
    let loaded = persist::load_sharded(&manifest).unwrap();
    let quantized = b.sharded.quantized();
    for q in b.wl.queries.iter().take(30) {
        assert_eq!(loaded.answer(q), quantized.answer(q));
    }

    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every subset of stale shards, a partial refresh rebuilds
    /// exactly that subset: every other shard's model answers bitwise
    /// as before the refresh.
    #[test]
    fn partial_refresh_preserves_non_stale_units_bitwise(mask in 0usize..(1 << SHARDS)) {
        let b = base();
        let stale: Vec<usize> = (0..SHARDS).filter(|k| mask & (1 << k) != 0).collect();
        let mut refreshed = b.sharded.clone();
        retrain_shards(
            &mut refreshed,
            &b.grown,
            1,
            &b.wl.predicate,
            &b.wl.queries,
            &cfg(),
            &stale,
        )
        .unwrap();
        for k in 0..SHARDS {
            if stale.contains(&k) {
                continue;
            }
            let before = b.sharded.shards()[k].model(MomentKind::Count).unwrap();
            let after = refreshed.shards()[k].model(MomentKind::Count).unwrap();
            for q in b.wl.queries.iter().take(15) {
                prop_assert_eq!(after.answer(q), before.answer(q), "shard {} drifted", k);
            }
        }
    }
}
