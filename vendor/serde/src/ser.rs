//! Serialization helpers shared by derived and hand-written
//! [`crate::Serialize`] impls.

/// Append `s` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a quoted object key followed by `:`.
pub fn write_key(out: &mut String, key: &str) {
    write_string(out, key);
    out.push(':');
}
