//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, exposing the 0.9-flavoured subset this workspace uses:
//!
//! - [`Rng`] — the core entropy source trait (`next_u64`).
//! - [`RngExt`] — extension methods: [`RngExt::random`],
//!   [`RngExt::random_range`], [`RngExt::random_bool`]; blanket-implemented
//!   for every [`Rng`].
//! - [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — a deterministic
//!   xoshiro256++ generator.
//! - [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffling.
//!
//! Determinism is part of the contract: the same seed always yields the
//! same stream, across platforms, so experiment results and tests are
//! reproducible.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let u: f64 = rng.random();
//! assert!((0.0..1.0).contains(&u));
//! let k = rng.random_range(0..10usize);
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. The only method generators must
/// implement; everything else is derived in [`RngExt`].
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`] without extra
/// parameters (the `Standard`/`StandardUniform` distribution of real
/// `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the spans used
                // here; acceptable for a test/experiment stub.
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform sample of `T` (e.g. `f64` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator (state expanded from the
    /// seed with SplitMix64). Not cryptographically secure — which is
    /// fine: it backs experiments and tests, not key material.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.random()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..8).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let k: usize = r.random_range(3..17);
            assert!((3..17).contains(&k));
            let v: i32 = r.random_range(1..=100);
            assert!((1..=100).contains(&v));
            let f: f64 = r.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}
