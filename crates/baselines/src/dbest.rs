//! DBEst-style model-of-data AQP (Ma & Triantafillou, SIGMOD 2019).
//!
//! DBEst answers single-active-attribute RAQs from two learned models per
//! query template: a *density* model of the active attribute and a
//! *regression* model `E[measure | x]`, combined by numeric integration:
//!
//! ```text
//!   COUNT(c, r) ≈ n ∫_c^{c+r} pdf(x) dx
//!   SUM(c, r)   ≈ n ∫_c^{c+r} pdf(x) · reg(x) dx
//!   AVG(c, r)   ≈ SUM / COUNT
//! ```
//!
//! DBEst uses mixture density networks; we use a Gaussian KDE for the
//! density and an `nn` MLP for the regression — the same model *class*
//! shape (density + regression), which is what the comparison exercises.
//! Capability parity with the paper: COUNT/SUM/AVG only, exactly one
//! active attribute ("DBEst does not support multiple active attributes").

use crate::{AqpEngine, Unsupported};
use datagen::Dataset;
use nn::train::{train, TrainConfig};
use nn::Mlp;
use query::aggregate::Aggregate;
use query::predicate::PredicateFn;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Gaussian kernel density estimate over a 1-D sample.
#[derive(Debug, Clone)]
struct Kde {
    centers: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    fn fit(values: &[f64], max_centers: usize, seed: u64) -> Kde {
        assert!(!values.is_empty(), "KDE needs data");
        let mut centers = values.to_vec();
        if centers.len() > max_centers {
            let mut rng = StdRng::seed_from_u64(seed);
            centers.shuffle(&mut rng);
            centers.truncate(max_centers);
        }
        let n = centers.len() as f64;
        let mean = centers.iter().sum::<f64>() / n;
        let std = (centers.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
        // Scott's rule, floored to stay usable on near-degenerate data.
        let bandwidth = (1.06 * std * n.powf(-0.2)).max(1e-4);
        Kde { centers, bandwidth }
    }

    fn pdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((self.centers.len() as f64) * h * (std::f64::consts::TAU).sqrt());
        self.centers
            .iter()
            .map(|c| (-0.5 * ((x - c) / h).powi(2)).exp())
            .sum::<f64>()
            * norm
    }
}

/// One (active attribute → measure) DBEst model.
#[derive(Debug, Clone)]
pub struct DbEst {
    attr: usize,
    n: f64,
    density: Kde,
    reg: Mlp,
    y_mean: f64,
    y_std: f64,
    /// Integration resolution over the query range.
    grid: usize,
}

/// Training options for [`DbEst`].
#[derive(Debug, Clone)]
pub struct DbEstConfig {
    /// Max KDE centers retained.
    pub kde_centers: usize,
    /// Regression training subsample size.
    pub reg_samples: usize,
    /// Regression net hidden width.
    pub reg_width: usize,
    /// Regression training config.
    pub train: TrainConfig,
    /// Numeric-integration grid points per query.
    pub grid: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for DbEstConfig {
    fn default() -> Self {
        DbEstConfig {
            kde_centers: 512,
            reg_samples: 4_000,
            reg_width: 32,
            train: TrainConfig {
                epochs: 120,
                patience: 12,
                ..TrainConfig::default()
            },
            grid: 64,
            seed: 0,
        }
    }
}

impl DbEst {
    /// Fit density + regression models for queries whose single active
    /// attribute is `attr` and measure is `measure`.
    ///
    /// # Panics
    /// Panics on empty data or out-of-range columns.
    pub fn build(data: &Dataset, attr: usize, measure: usize, cfg: &DbEstConfig) -> DbEst {
        assert!(data.rows() > 0, "empty dataset");
        assert!(
            attr < data.dims() && measure < data.dims(),
            "column out of range"
        );
        let xs_all = data.column(attr);
        let density = Kde::fit(&xs_all, cfg.kde_centers, cfg.seed);

        // Regression subsample.
        let mut ids: Vec<usize> = (0..data.rows()).collect();
        if ids.len() > cfg.reg_samples {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD8E5);
            ids.shuffle(&mut rng);
            ids.truncate(cfg.reg_samples);
        }
        let xs: Vec<Vec<f64>> = ids.iter().map(|&i| vec![data.value(i, attr)]).collect();
        let ys_raw: Vec<f64> = ids.iter().map(|&i| data.value(i, measure)).collect();
        let m = ys_raw.len() as f64;
        let y_mean = ys_raw.iter().sum::<f64>() / m;
        let y_std = (ys_raw.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / m)
            .sqrt()
            .max(1e-12);
        let ys: Vec<f64> = ys_raw.iter().map(|y| (y - y_mean) / y_std).collect();
        let mut reg = Mlp::new(&[1, cfg.reg_width, cfg.reg_width, 1], cfg.seed);
        let mut tcfg = cfg.train.clone();
        tcfg.seed = cfg.seed;
        train(&mut reg, &xs, &ys, &tcfg);

        DbEst {
            attr,
            n: data.rows() as f64,
            density,
            reg,
            y_mean,
            y_std,
            grid: cfg.grid.max(4),
        }
    }

    /// The active attribute this model answers for.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// Trapezoidal integration of `pdf` and `pdf·reg` over `[lo, hi]`.
    fn integrate(&self, lo: f64, hi: f64) -> (f64, f64) {
        if hi <= lo {
            return (0.0, 0.0);
        }
        let steps = self.grid;
        let h = (hi - lo) / steps as f64;
        let mut ws = nn::mlp::Workspace::default();
        let (mut mass, mut weighted) = (0.0, 0.0);
        for i in 0..=steps {
            let x = lo + i as f64 * h;
            let p = self.density.pdf(x);
            let r = self.reg.predict_with(&mut ws, &[x]) * self.y_std + self.y_mean;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            mass += w * p;
            weighted += w * p * r;
        }
        (mass * h, weighted * h)
    }

    /// Extract the single active `(lo, hi)` for this model's attribute,
    /// or explain why the query is unsupported.
    fn single_active_bound(
        &self,
        pred: &dyn PredicateFn,
        q: &[f64],
    ) -> Result<(f64, f64), Unsupported> {
        // The bounds must fully define the predicate here — bounding-box
        // pruning hints (rotated rectangles, spheres) are not enough.
        let Some(bounds) = pred.exact_axis_bounds(q) else {
            return Err(Unsupported::Predicate("non-axis-aligned predicate".into()));
        };
        // A bound is "active" if it actually constrains [0,1].
        let active: Vec<&(usize, f64, f64)> = bounds
            .iter()
            .filter(|&&(_, lo, hi)| lo > 0.0 || hi < 1.0)
            .collect();
        match active.as_slice() {
            [&(a, lo, hi)] if a == self.attr => Ok((lo, hi)),
            [_] => Err(Unsupported::QueryShape(
                "active attribute not modeled".into(),
            )),
            _ => Err(Unsupported::QueryShape(format!(
                "DBEst supports exactly one active attribute, got {}",
                active.len()
            ))),
        }
    }
}

impl AqpEngine for DbEst {
    fn name(&self) -> &'static str {
        "DBEst"
    }

    fn answer(
        &self,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
    ) -> Result<f64, Unsupported> {
        if !matches!(agg, Aggregate::Count | Aggregate::Sum | Aggregate::Avg) {
            return Err(Unsupported::Aggregate(agg));
        }
        let (lo, hi) = self.single_active_bound(pred, q)?;
        let (mass, weighted) = self.integrate(lo, hi);
        Ok(match agg {
            Aggregate::Count => self.n * mass,
            Aggregate::Sum => self.n * weighted,
            Aggregate::Avg => {
                if mass > 1e-12 {
                    weighted / mass
                } else {
                    0.0
                }
            }
            _ => unreachable!("filtered above"),
        })
    }

    fn storage_bytes(&self) -> usize {
        self.density.centers.len() * 8 + self.reg.storage_bytes() + 24
    }
}

/// One DBEst model per attribute, dispatching on the query's active
/// attribute — how DBEst handles workloads that activate different
/// attributes per query.
pub struct DbEstEnsemble {
    models: Vec<DbEst>,
}

impl DbEstEnsemble {
    /// Build one model per non-measure attribute.
    pub fn build(data: &Dataset, measure: usize, cfg: &DbEstConfig) -> DbEstEnsemble {
        Self::build_for(data, measure, cfg, |a| a != measure)
    }

    /// Build one model per attribute, including ranges on the measure
    /// itself (needed for workloads that activate a random attribute).
    pub fn build_all(data: &Dataset, measure: usize, cfg: &DbEstConfig) -> DbEstEnsemble {
        Self::build_for(data, measure, cfg, |_| true)
    }

    fn build_for(
        data: &Dataset,
        measure: usize,
        cfg: &DbEstConfig,
        keep: impl Fn(usize) -> bool,
    ) -> DbEstEnsemble {
        let models = (0..data.dims())
            .filter(|&a| keep(a))
            .map(|a| {
                let mut c = cfg.clone();
                c.seed = cfg.seed.wrapping_add(a as u64);
                DbEst::build(data, a, measure, &c)
            })
            .collect();
        DbEstEnsemble { models }
    }
}

impl AqpEngine for DbEstEnsemble {
    fn name(&self) -> &'static str {
        "DBEst"
    }

    fn answer(
        &self,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
    ) -> Result<f64, Unsupported> {
        let mut last_err = Unsupported::QueryShape("no models".into());
        for m in &self.models {
            match m.answer(pred, agg, q) {
                Ok(v) => return Ok(v),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn storage_bytes(&self) -> usize {
        self.models.iter().map(|m| m.storage_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::simple::uniform;
    use query::predicate::{Range, RotatedRect};
    use query::QueryEngine;

    fn fast_cfg() -> DbEstConfig {
        DbEstConfig {
            kde_centers: 256,
            reg_samples: 1_000,
            reg_width: 16,
            train: TrainConfig {
                epochs: 60,
                ..TrainConfig::default()
            },
            grid: 32,
            seed: 0,
        }
    }

    #[test]
    fn count_on_uniform_data_is_close() {
        let data = uniform(5_000, 2, 1);
        let engine = QueryEngine::new(&data, 1);
        let model = DbEst::build(&data, 0, 1, &fast_cfg());
        let pred = Range::new(vec![0], 2).unwrap();
        for q in [[0.1, 0.5], [0.3, 0.3], [0.05, 0.9]] {
            let exact = engine.answer(&pred, Aggregate::Count, &q);
            let est = model.answer(&pred, Aggregate::Count, &q).unwrap();
            assert!(
                (exact - est).abs() / exact < 0.15,
                "q {q:?}: exact {exact} est {est}"
            );
        }
    }

    #[test]
    fn avg_tracks_conditional_mean() {
        // measure = 2*x + noise-free: AVG over [c, c+r] = c + r (in
        // measure units 2 * midpoint).
        let rows: Vec<Vec<f64>> = (0..4000)
            .map(|i| {
                let x = (i as f64 + 0.5) / 4000.0;
                vec![x, 2.0 * x]
            })
            .collect();
        let data = Dataset::from_rows(vec!["x".into(), "m".into()], &rows).unwrap();
        let model = DbEst::build(&data, 0, 1, &fast_cfg());
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.4, 0.2]; // x in [0.4, 0.6) -> AVG(m) = 1.0
        let est = model.answer(&pred, Aggregate::Avg, &q).unwrap();
        assert!((est - 1.0).abs() < 0.1, "est {est}");
    }

    #[test]
    fn declines_unsupported_shapes() {
        let data = uniform(500, 3, 2);
        let model = DbEst::build(&data, 0, 2, &fast_cfg());
        let two_active = Range::new(vec![0, 1], 3).unwrap();
        assert!(matches!(
            model.answer(&two_active, Aggregate::Count, &[0.1, 0.1, 0.3, 0.3]),
            Err(Unsupported::QueryShape(_))
        ));
        let rect = RotatedRect::new(0, 1, 3).unwrap();
        assert!(matches!(
            model.answer(&rect, Aggregate::Count, &[0.1, 0.1, 0.5, 0.5, 0.2]),
            Err(Unsupported::Predicate(_))
        ));
        let one_active = Range::new(vec![0], 3).unwrap();
        assert!(matches!(
            model.answer(&one_active, Aggregate::Median, &[0.1, 0.5]),
            Err(Unsupported::Aggregate(_))
        ));
    }

    #[test]
    fn ensemble_dispatches_by_active_attribute() {
        let data = uniform(2_000, 3, 3);
        let ens = DbEstEnsemble::build(&data, 2, &fast_cfg());
        let engine = QueryEngine::new(&data, 2);
        // Full (c, r) query vector over all 3 attrs, one active.
        let pred = Range::all(3);
        let mut q = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        q[1] = 0.2; // attr 1 active: [0.2, 0.2+0.4)
        q[4] = 0.4;
        let exact = engine.answer(&pred, Aggregate::Count, &q);
        let est = ens.answer(&pred, Aggregate::Count, &q).unwrap();
        assert!(
            (exact - est).abs() / exact < 0.15,
            "exact {exact} est {est}"
        );
    }

    #[test]
    fn kde_integrates_to_one_on_unit_interval() {
        let data = uniform(3_000, 1, 4);
        let kde = Kde::fit(&data.column(0), 512, 0);
        let steps = 400;
        let mass: f64 = (0..=steps)
            .map(|i| {
                let x = i as f64 / steps as f64;
                let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
                w * kde.pdf(x)
            })
            .sum::<f64>()
            / steps as f64;
        // Some mass bleeds outside [0,1] from boundary kernels.
        assert!((0.9..=1.05).contains(&mass), "mass {mass}");
    }
}
