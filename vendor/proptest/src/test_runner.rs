//! The deterministic RNG driving input generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wrapper around the vendored [`StdRng`], seeded from the test's
/// fully qualified name so each property gets an independent but
/// reproducible stream.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from a test identifier (FNV-1a over the name).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
