//! DeepDB-style sum-product network (Hilprecht et al., VLDB 2020).
//!
//! DeepDB learns a *relational sum-product network* over the data: sum
//! nodes split rows into clusters, product nodes split columns into
//! (approximately) independent groups, and leaves hold univariate
//! histograms. RAQs are answered by a bottom-up pass computing range
//! probabilities and conditional moments — no data access at query time,
//! but the traversal touches every histogram, so it is orders of
//! magnitude slower than a NeuroSketch forward pass and its size grows
//! with data complexity, matching the trends in the paper's Fig. 6.
//!
//! Simplifications vs. DeepDB: independence testing uses Spearman rank
//! correlation with threshold `corr_threshold` (standing in for the RDC
//! threshold the paper tunes), and row clustering is seeded 2-means.

use crate::{AqpEngine, Unsupported};
use datagen::Dataset;
use query::aggregate::Aggregate;
use query::predicate::PredicateFn;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// SPN structure-learning options.
#[derive(Debug, Clone)]
pub struct SpnConfig {
    /// Stop row-splitting below this many rows.
    pub min_rows: usize,
    /// Absolute Spearman correlation above which two columns are
    /// dependent (the RDC-threshold analog; paper Fig. 10 tunes it).
    pub corr_threshold: f64,
    /// Histogram bins per leaf.
    pub bins: usize,
    /// Maximum sum-node recursion depth.
    pub max_depth: usize,
    /// Row subsample used for correlation tests and clustering.
    pub probe_rows: usize,
    /// Seed for clustering.
    pub seed: u64,
}

impl Default for SpnConfig {
    fn default() -> Self {
        SpnConfig {
            min_rows: 500,
            corr_threshold: 0.3,
            bins: 32,
            max_depth: 6,
            probe_rows: 500,
            seed: 0,
        }
    }
}

/// Per-bin mass, mean and second moment of one column.
#[derive(Debug, Clone)]
struct Histogram {
    col: usize,
    lo: f64,
    hi: f64,
    probs: Vec<f64>,
    means: Vec<f64>,
    m2s: Vec<f64>,
}

impl Histogram {
    fn fit(data: &Dataset, rows: &[usize], col: usize, lo: f64, hi: f64, bins: usize) -> Self {
        let width = if hi > lo {
            (hi - lo) / bins as f64
        } else {
            1.0
        };
        let mut counts = vec![0usize; bins];
        let mut sums = vec![0.0f64; bins];
        let mut sums2 = vec![0.0f64; bins];
        for &r in rows {
            let v = data.value(r, col);
            let b = (((v - lo) / width) as usize).min(bins - 1);
            counts[b] += 1;
            sums[b] += v;
            sums2[b] += v * v;
        }
        let n = rows.len().max(1) as f64;
        let probs = counts.iter().map(|&c| c as f64 / n).collect();
        let means = counts
            .iter()
            .zip(&sums)
            .enumerate()
            .map(|(b, (&c, &s))| {
                if c > 0 {
                    s / c as f64
                } else {
                    lo + (b as f64 + 0.5) * width
                }
            })
            .collect();
        let m2s = counts
            .iter()
            .zip(&sums2)
            .enumerate()
            .map(|(b, (&c, &s2))| {
                if c > 0 {
                    s2 / c as f64
                } else {
                    let m = lo + (b as f64 + 0.5) * width;
                    m * m
                }
            })
            .collect();
        Histogram {
            col,
            lo,
            hi,
            probs,
            means,
            m2s,
        }
    }

    /// `(P, E[v·1], E[v²·1])` of this column restricted to `[qlo, qhi)`,
    /// assuming uniform mass within each bin.
    fn range_moments(&self, qlo: f64, qhi: f64) -> (f64, f64, f64) {
        let bins = self.probs.len();
        let width = if self.hi > self.lo {
            (self.hi - self.lo) / bins as f64
        } else {
            1.0
        };
        let (mut p, mut e1, mut e2) = (0.0, 0.0, 0.0);
        for b in 0..bins {
            let b0 = self.lo + b as f64 * width;
            let b1 = b0 + width;
            let overlap = (qhi.min(b1) - qlo.max(b0)).max(0.0) / width;
            if overlap > 0.0 {
                let mass = overlap * self.probs[b];
                p += mass;
                e1 += mass * self.means[b];
                e2 += mass * self.m2s[b];
            }
        }
        (p, e1, e2)
    }

    fn storage_bytes(&self) -> usize {
        self.probs.len() * 3 * 8 + 24
    }
}

#[derive(Debug, Clone)]
enum Node {
    Sum { children: Vec<(f64, usize)> },
    Product { children: Vec<usize> },
    Leaf(Histogram),
}

/// A learned sum-product network over a dataset.
pub struct Spn {
    nodes: Vec<Node>,
    root: usize,
    n: f64,
    measure: usize,
    /// Global per-column (lo, hi) used for histogram domains.
    ranges: Vec<(f64, f64)>,
}

/// Moments propagated bottom-up: probability of the range restricted to
/// the node's scope, and (if the measure is in scope) restricted first
/// and second moments.
#[derive(Clone, Copy)]
struct Moments {
    p: f64,
    e1: Option<f64>,
    e2: Option<f64>,
}

impl Spn {
    /// Learn an SPN over `data` with the given measure column.
    ///
    /// # Panics
    /// Panics on empty data or a bad measure column.
    pub fn build(data: &Dataset, measure: usize, cfg: &SpnConfig) -> Spn {
        assert!(data.rows() > 0, "empty dataset");
        assert!(measure < data.dims(), "measure column out of range");
        let ranges = data.column_ranges();
        let mut spn = Spn {
            nodes: Vec::new(),
            root: 0,
            n: data.rows() as f64,
            measure,
            ranges,
        };
        let rows: Vec<usize> = (0..data.rows()).collect();
        let cols: Vec<usize> = (0..data.dims()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        spn.root = spn.learn(data, rows, cols, cfg, 0, &mut rng);
        spn
    }

    fn leaf(&mut self, data: &Dataset, rows: &[usize], col: usize, cfg: &SpnConfig) -> usize {
        let (lo, hi) = self.ranges[col];
        let h = Histogram::fit(data, rows, col, lo, hi, cfg.bins);
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf(h));
        id
    }

    fn factorized(
        &mut self,
        data: &Dataset,
        rows: &[usize],
        cols: &[usize],
        cfg: &SpnConfig,
    ) -> usize {
        let children: Vec<usize> = cols
            .iter()
            .map(|&c| self.leaf(data, rows, c, cfg))
            .collect();
        if children.len() == 1 {
            return children[0];
        }
        let id = self.nodes.len();
        self.nodes.push(Node::Product { children });
        id
    }

    fn learn(
        &mut self,
        data: &Dataset,
        rows: Vec<usize>,
        cols: Vec<usize>,
        cfg: &SpnConfig,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        if cols.len() == 1 {
            return self.leaf(data, &rows, cols[0], cfg);
        }
        if rows.len() < cfg.min_rows || depth >= cfg.max_depth {
            return self.factorized(data, &rows, &cols, cfg);
        }

        // Try a product split: connected components of the dependency
        // graph (|spearman| >= threshold) over a row subsample.
        let probe: Vec<usize> = if rows.len() > cfg.probe_rows {
            let stride = rows.len() / cfg.probe_rows;
            rows.iter().step_by(stride.max(1)).copied().collect()
        } else {
            rows.clone()
        };
        let comps = dependency_components(data, &probe, &cols, cfg.corr_threshold);
        if comps.len() > 1 {
            let children: Vec<usize> = comps
                .into_iter()
                .map(|group| self.learn(data, rows.clone(), group, cfg, depth + 1, rng))
                .collect();
            let id = self.nodes.len();
            self.nodes.push(Node::Product { children });
            return id;
        }

        // Otherwise a sum split: 2-means over the rows.
        match two_means(data, &rows, &cols, &self.ranges, rng) {
            Some((a, b)) => {
                let (wa, wb) = (
                    a.len() as f64 / rows.len() as f64,
                    b.len() as f64 / rows.len() as f64,
                );
                let ca = self.learn(data, a, cols.clone(), cfg, depth + 1, rng);
                let cb = self.learn(data, b, cols, cfg, depth + 1, rng);
                let id = self.nodes.len();
                self.nodes.push(Node::Sum {
                    children: vec![(wa, ca), (wb, cb)],
                });
                id
            }
            None => self.factorized(data, &rows, &cols, cfg),
        }
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Bottom-up moment computation for a set of axis bounds.
    fn moments(&self, node: usize, bounds: &[(usize, f64, f64)]) -> Moments {
        match &self.nodes[node] {
            Node::Leaf(h) => {
                let (qlo, qhi) = bounds
                    .iter()
                    .find(|&&(a, _, _)| a == h.col)
                    .map(|&(_, lo, hi)| (lo, hi))
                    .unwrap_or((f64::NEG_INFINITY, f64::INFINITY));
                let (p, e1, e2) = h.range_moments(qlo.max(h.lo), qhi.min(h.hi + 1e-12));
                if h.col == self.measure {
                    Moments {
                        p,
                        e1: Some(e1),
                        e2: Some(e2),
                    }
                } else {
                    Moments {
                        p,
                        e1: None,
                        e2: None,
                    }
                }
            }
            Node::Product { children } => {
                let mut p = 1.0;
                let mut e1 = None;
                let mut e2 = None;
                for &c in children {
                    let m = self.moments(c, bounds);
                    p *= m.p;
                    if m.e1.is_some() {
                        e1 = m.e1;
                        e2 = m.e2;
                    }
                }
                // E[v·1_all] = E[v·1_branch] · Π_other P — multiply the
                // measure branch's conditional moments by the other
                // branches' probabilities.
                match (e1, e2) {
                    (Some(a), Some(b)) => {
                        // p currently includes the measure branch's own p;
                        // moments already carry that restriction, so the
                        // factor is p / p_measure_branch... easier: find it
                        // again.
                        let mut others = 1.0;
                        for &c in children {
                            let m = self.moments(c, bounds);
                            if m.e1.is_none() {
                                others *= m.p;
                            }
                        }
                        Moments {
                            p,
                            e1: Some(a * others),
                            e2: Some(b * others),
                        }
                    }
                    _ => Moments {
                        p,
                        e1: None,
                        e2: None,
                    },
                }
            }
            Node::Sum { children } => {
                let mut p = 0.0;
                let (mut e1, mut e2) = (0.0, 0.0);
                let mut has_measure = false;
                for &(w, c) in children {
                    let m = self.moments(c, bounds);
                    p += w * m.p;
                    if let (Some(a), Some(b)) = (m.e1, m.e2) {
                        has_measure = true;
                        e1 += w * a;
                        e2 += w * b;
                    }
                }
                Moments {
                    p,
                    e1: if has_measure { Some(e1) } else { None },
                    e2: if has_measure { Some(e2) } else { None },
                }
            }
        }
    }
}

impl AqpEngine for Spn {
    fn name(&self) -> &'static str {
        "DeepDB"
    }

    fn answer(
        &self,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
    ) -> Result<f64, Unsupported> {
        // Paper parity: the DeepDB implementation supports COUNT/SUM/AVG
        // (not STDEV), axis-aligned predicates only.
        if !matches!(agg, Aggregate::Count | Aggregate::Sum | Aggregate::Avg) {
            return Err(Unsupported::Aggregate(agg));
        }
        // The bounds must fully define the predicate here — bounding-box
        // pruning hints (rotated rectangles, spheres) are not enough.
        let Some(bounds) = pred.exact_axis_bounds(q) else {
            return Err(Unsupported::Predicate("non-axis-aligned predicate".into()));
        };
        let m = self.moments(self.root, &bounds);
        let e1 = m.e1.expect("measure column is always in the root scope");
        Ok(match agg {
            Aggregate::Count => self.n * m.p,
            Aggregate::Sum => self.n * e1,
            Aggregate::Avg => {
                if m.p > 1e-12 {
                    e1 / m.p
                } else {
                    0.0
                }
            }
            _ => unreachable!("filtered above"),
        })
    }

    fn storage_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf(h) => h.storage_bytes(),
                Node::Product { children } => 16 + 8 * children.len(),
                Node::Sum { children } => 16 + 16 * children.len(),
            })
            .sum()
    }
}

/// Connected components of the column dependency graph under
/// `|spearman| >= threshold`.
fn dependency_components(
    data: &Dataset,
    rows: &[usize],
    cols: &[usize],
    threshold: f64,
) -> Vec<Vec<usize>> {
    let k = cols.len();
    let mut adj = vec![vec![]; k];
    for i in 0..k {
        for j in (i + 1)..k {
            let r = spearman(data, rows, cols[i], cols[j]).abs();
            if r >= threshold {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut comp = vec![usize::MAX; k];
    let mut ncomp = 0;
    for start in 0..k {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            if comp[v] != usize::MAX {
                continue;
            }
            comp[v] = ncomp;
            stack.extend(adj[v].iter().copied());
        }
        ncomp += 1;
    }
    let mut out = vec![vec![]; ncomp];
    for (i, &c) in comp.iter().enumerate() {
        out[c].push(cols[i]);
    }
    out
}

/// Spearman rank correlation of two columns over the given rows.
fn spearman(data: &Dataset, rows: &[usize], a: usize, b: usize) -> f64 {
    let n = rows.len();
    if n < 3 {
        return 0.0;
    }
    let rank = |col: usize| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&x, &y| {
            data.value(rows[x], col)
                .partial_cmp(&data.value(rows[y], col))
                .expect("no NaN")
        });
        // Tied-average ranks: constant or heavily-tied columns must not
        // fabricate correlation.
        let mut ranks = vec![0.0; n];
        let mut i = 0;
        while i < n {
            let v = data.value(rows[idx[i]], col);
            let mut j = i;
            while j < n && data.value(rows[idx[j]], col) == v {
                j += 1;
            }
            let avg = (i + j - 1) as f64 / 2.0;
            for &k in &idx[i..j] {
                ranks[k] = avg;
            }
            i = j;
        }
        ranks
    };
    let (ra, rb) = (rank(a), rank(b));
    let mean = (n as f64 - 1.0) / 2.0;
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let (da, db) = (ra[i] - mean, rb[i] - mean);
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Seeded 2-means over rows (columns normalized by global ranges).
/// Returns `None` when the rows cannot be split into two nonempty
/// clusters (e.g. identical rows).
fn two_means(
    data: &Dataset,
    rows: &[usize],
    cols: &[usize],
    ranges: &[(f64, f64)],
    rng: &mut StdRng,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let norm = |r: usize, c: usize| -> f64 {
        let (lo, hi) = ranges[c];
        if hi > lo {
            (data.value(r, c) - lo) / (hi - lo)
        } else {
            0.0
        }
    };
    let mut c0: Vec<f64> = cols
        .iter()
        .map(|&c| norm(rows[rng.random_range(0..rows.len())], c))
        .collect();
    let mut c1: Vec<f64> = cols
        .iter()
        .map(|&c| norm(rows[rng.random_range(0..rows.len())], c))
        .collect();
    if c0 == c1 {
        // Nudge the second centroid to break ties.
        for v in &mut c1 {
            *v += 0.1;
        }
    }
    let mut assign = vec![false; rows.len()];
    for _ in 0..5 {
        // Assignment step.
        for (i, &r) in rows.iter().enumerate() {
            let (mut d0, mut d1) = (0.0, 0.0);
            for (j, &c) in cols.iter().enumerate() {
                let v = norm(r, c);
                d0 += (v - c0[j]) * (v - c0[j]);
                d1 += (v - c1[j]) * (v - c1[j]);
            }
            assign[i] = d1 < d0;
        }
        // Update step.
        let (mut s0, mut s1) = (vec![0.0; cols.len()], vec![0.0; cols.len()]);
        let (mut n0, mut n1) = (0usize, 0usize);
        for (i, &r) in rows.iter().enumerate() {
            let (s, n) = if assign[i] {
                (&mut s1, &mut n1)
            } else {
                (&mut s0, &mut n0)
            };
            for (j, &c) in cols.iter().enumerate() {
                s[j] += norm(r, c);
            }
            *n += 1;
        }
        if n0 == 0 || n1 == 0 {
            return None;
        }
        for j in 0..cols.len() {
            c0[j] = s0[j] / n0 as f64;
            c1[j] = s1[j] / n1 as f64;
        }
    }
    let a: Vec<usize> = rows
        .iter()
        .zip(&assign)
        .filter(|(_, &s)| !s)
        .map(|(&r, _)| r)
        .collect();
    let b: Vec<usize> = rows
        .iter()
        .zip(&assign)
        .filter(|(_, &s)| s)
        .map(|(&r, _)| r)
        .collect();
    if a.is_empty() || b.is_empty() {
        None
    } else {
        Some((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::simple::{gmm2, uniform};
    use query::predicate::{Range, RotatedRect};
    use query::QueryEngine;

    #[test]
    fn count_close_on_uniform_data() {
        let data = uniform(8_000, 3, 1);
        let engine = QueryEngine::new(&data, 2);
        let spn = Spn::build(&data, 2, &SpnConfig::default());
        let pred = Range::new(vec![0], 3).unwrap();
        for q in [[0.1, 0.4], [0.5, 0.3], [0.0, 0.9]] {
            let exact = engine.answer(&pred, Aggregate::Count, &q);
            let est = spn.answer(&pred, Aggregate::Count, &q).unwrap();
            assert!(
                (exact - est).abs() / exact < 0.12,
                "q {q:?}: exact {exact} est {est}"
            );
        }
    }

    #[test]
    fn sum_and_avg_consistent() {
        let data = uniform(5_000, 2, 2);
        let spn = Spn::build(&data, 1, &SpnConfig::default());
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.2, 0.5];
        let count = spn.answer(&pred, Aggregate::Count, &q).unwrap();
        let sum = spn.answer(&pred, Aggregate::Sum, &q).unwrap();
        let avg = spn.answer(&pred, Aggregate::Avg, &q).unwrap();
        assert!((sum / count - avg).abs() < 1e-9);
        // Uniform measure in [0,1]: AVG about 0.5.
        assert!((avg - 0.5).abs() < 0.08, "avg {avg}");
    }

    #[test]
    fn handles_clustered_data_with_sum_nodes() {
        // Bimodal data: a pure product-of-histograms would still fit 1-D
        // marginals, but the SPN should build sum nodes; either way the
        // COUNT estimate must track the empty trough.
        let data = gmm2(6_000, 0.25, 0.75, 0.04, 3);
        let engine = QueryEngine::new(&data, 0);
        let spn = Spn::build(
            &data,
            0,
            &SpnConfig {
                min_rows: 300,
                ..SpnConfig::default()
            },
        );
        let pred = Range::new(vec![0], 1).unwrap();
        let trough = spn.answer(&pred, Aggregate::Count, &[0.45, 0.1]).unwrap();
        let mode = spn.answer(&pred, Aggregate::Count, &[0.2, 0.1]).unwrap();
        let exact_trough = engine.answer(&pred, Aggregate::Count, &[0.45, 0.1]);
        assert!(mode > 5.0 * trough.max(1.0), "mode {mode} trough {trough}");
        assert!((trough - exact_trough).abs() < 0.05 * 6000.0);
    }

    #[test]
    fn correlated_columns_stay_grouped() {
        // x and m = x are perfectly dependent: independence factorization
        // must not separate them, so AVG(m | x in [a,b)) tracks the window
        // (a product-of-marginals would answer the global mean 0.5).
        let rows: Vec<Vec<f64>> = (0..6000)
            .map(|i| {
                let x = (i as f64 + 0.5) / 6000.0;
                vec![x, x]
            })
            .collect();
        let data = Dataset::from_rows(vec!["x".into(), "m".into()], &rows).unwrap();
        let spn = Spn::build(
            &data,
            1,
            &SpnConfig {
                min_rows: 200,
                ..SpnConfig::default()
            },
        );
        let pred = Range::new(vec![0], 2).unwrap();
        let avg = spn.answer(&pred, Aggregate::Avg, &[0.8, 0.2]).unwrap();
        assert!((avg - 0.9).abs() < 0.1, "avg {avg} should be near 0.9");
    }

    #[test]
    fn declines_non_axis_predicates_and_std() {
        let data = uniform(500, 3, 5);
        let spn = Spn::build(&data, 2, &SpnConfig::default());
        let rect = RotatedRect::new(0, 1, 3).unwrap();
        assert!(spn
            .answer(&rect, Aggregate::Count, &[0.1, 0.1, 0.5, 0.5, 0.2])
            .is_err());
        let pred = Range::new(vec![0], 3).unwrap();
        assert!(spn.answer(&pred, Aggregate::Std, &[0.0, 1.0]).is_err());
        assert!(spn.answer(&pred, Aggregate::Median, &[0.0, 1.0]).is_err());
    }

    #[test]
    fn storage_grows_with_data_complexity() {
        let simple = uniform(1_000, 2, 6);
        let complex = datagen::gmm::generate(&datagen::GmmConfig::paper_gmm(2, 20_000), 7);
        let cfg = SpnConfig {
            min_rows: 200,
            ..SpnConfig::default()
        };
        let s1 = Spn::build(&simple, 1, &cfg);
        let s2 = Spn::build(&complex, 1, &cfg);
        assert!(s2.node_count() >= s1.node_count());
        assert!(s2.storage_bytes() >= s1.storage_bytes());
    }

    #[test]
    fn spearman_detects_monotone_dependence() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let x = i as f64 / 100.0;
                vec![x, x * x, 1.0 - x, 0.5]
            })
            .collect();
        let data = Dataset::from_rows(vec!["a".into(), "b".into(), "c".into(), "d".into()], &rows)
            .unwrap();
        let rows_idx: Vec<usize> = (0..100).collect();
        assert!(spearman(&data, &rows_idx, 0, 1) > 0.99);
        assert!(spearman(&data, &rows_idx, 0, 2) < -0.99);
        assert_eq!(spearman(&data, &rows_idx, 0, 3), 0.0);
    }
}
