//! `perfbench` — run the tracked perf suites and write
//! `BENCH_build.json` / `BENCH_query.json`.
//!
//! ```text
//! perfbench                    # full scale, write BENCH_*.json to .
//! perfbench --fast             # CI-smoke scale
//! perfbench --fast --check     # also fail (exit 1) if any median
//!                              # regressed >2x vs the committed files
//! perfbench --out target/perf  # write elsewhere
//! ```
//!
//! The committed `BENCH_*.json` at the repo root are the baseline; CI's
//! `bench-smoke` job runs `perfbench --fast --check` on every push.

use bench::perf::{run_build_suite, run_query_suite, PerfReport};

const USAGE: &str = "usage: perfbench [--fast] [--check] [--out DIR] [--reps N]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut check = false;
    let mut out_dir = String::from(".");
    let mut reps = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => fast = true,
            "--check" => check = true,
            "--out" => {
                i += 1;
                out_dir = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--out needs a directory"));
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs an integer"));
            }
            other => die(&format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    if reps == 0 {
        reps = if fast { 5 } else { 9 };
    }

    let mut failed = false;
    for (file, report) in [
        ("BENCH_build.json", run_build_suite(fast, reps)),
        ("BENCH_query.json", run_query_suite(fast, reps)),
    ] {
        println!(
            "== {} suite ({} reps{}) ==",
            report.suite,
            reps,
            if fast { ", --fast" } else { "" }
        );
        for e in &report.entries {
            println!(
                "  {:<28} median {:>9.3} ms   p95 {:>9.3} ms",
                e.name, e.median_ms, e.p95_ms
            );
        }
        if let (Some(batched), Some(scalar)) = (
            report.median_of("train_leaf_batched"),
            report.median_of("train_leaf_per_example"),
        ) {
            println!("  batched training speedup: {:.2}x", scalar / batched);
        }
        if let (Some(full), Some(partial)) = (
            report.median_of("refresh_full"),
            report.median_of("refresh_partial_1of4"),
        ) {
            println!(
                "  partial refresh (1 of 4 shards): {:.2}x of a full rebuild ({:.2}x faster)",
                partial / full,
                full / partial
            );
        }
        // queries/sec falls out of the recorded median latency and the
        // suite's fixed per-iteration stream length.
        let qps = |e: &bench::PerfEntry| {
            bench::perf::SERVE_STREAM_LEN as f64 * e.iters as f64 / (e.median_ms / 1e3)
        };
        let entry = |name: &str| report.entries.iter().find(|e| e.name == name);
        if let (Some(single), Some(t2)) = (
            entry("serve_single_query_loop"),
            entry("serve_throughput_batched_t2"),
        ) {
            println!(
                "  serve throughput: {:.0} qps single-query loop, {:.0} qps batched t2 ({:.2}x)",
                qps(single),
                qps(t2),
                single.median_ms / t2.median_ms
            );
        }
        if let (Some(t1), Some(padded)) = (
            entry("serve_throughput_batched_t1"),
            entry("serve_layout_padded"),
        ) {
            println!(
                "  padded serving layout: {:.0} qps plain t1, {:.0} qps padded ({:.2}x)",
                qps(t1),
                qps(padded),
                t1.median_ms / padded.median_ms
            );
        }
        if let (Some(f32b), Some(f16b), Some(i8b)) = (
            report.median_of("artifact_bytes_f32"),
            report.median_of("artifact_bytes_f16"),
            report.median_of("artifact_bytes_i8"),
        ) {
            println!(
                "  artifact bytes: f32 {:.0}, f16 {:.0} ({:.2}x), i8 {:.0} ({:.2}x)",
                f32b,
                f16b,
                f16b / f32b,
                i8b,
                i8b / f32b
            );
        }
        if let (Some(t1), Some(cold), Some(hot)) = (
            entry("serve_throughput_batched_t1"),
            entry("serve_cached_cold"),
            entry("serve_cached_hot"),
        ) {
            println!(
                "  answer cache: cold {:.0} qps ({:+.1}% vs uncached t1), hot {:.0} qps ({:.2}x cold)",
                qps(cold),
                (cold.median_ms / t1.median_ms - 1.0) * 100.0,
                qps(hot),
                cold.median_ms / hot.median_ms
            );
        }
        if let (Some(t1), Some(dedup)) = (
            entry("serve_throughput_batched_t1"),
            entry("serve_dedup_batch"),
        ) {
            println!(
                "  in-batch dedup (100 distinct per {}): {:.0} qps ({:.2}x uncached t1)",
                bench::perf::SERVE_STREAM_LEN,
                qps(dedup),
                t1.median_ms / dedup.median_ms
            );
        }
        if let (Some(serial), Some(coalesced)) =
            (entry("net_serial_loop"), entry("net_saturation_qps"))
        {
            println!(
                "  network serving: {:.0} qps serial loop, {:.0} qps coalesced ({:.2}x)",
                qps(serial),
                qps(coalesced),
                serial.median_ms / coalesced.median_ms
            );
        }
        if let (Some(p50), Some(p99)) = (report.median_of("net_p50"), report.median_of("net_p99")) {
            println!("  network latency under saturation: p50 {p50:.3} ms, p99 {p99:.3} ms");
        }
        if let (Some(sat), Some(repeat)) =
            (entry("net_saturation_qps"), entry("net_repeat_traffic"))
        {
            println!(
                "  network repeat traffic (64 distinct): {:.0} qps ({:.2}x coalesced-unique)",
                qps(repeat),
                sat.median_ms / repeat.median_ms
            );
        }
        if let (Some(k1), Some(k4)) = (entry("serve_sharded_k1"), entry("serve_sharded_k4")) {
            println!(
                "  sharded scatter/gather: {:.0} qps k=1, {:.0} qps k=4 \
                 ({:.2}x cost for 4x the shards on one box)",
                qps(k1),
                qps(k4),
                k4.median_ms / k1.median_ms
            );
        }

        let path = format!("{out_dir}/{file}");
        if check {
            match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|s| PerfReport::from_json(&s))
            {
                Ok(baseline) if report.comparable_to(&baseline) => {
                    let regressions = report.regressions_vs(&baseline, 2.0);
                    for r in &regressions {
                        eprintln!("REGRESSION {r}");
                    }
                    failed |= !regressions.is_empty();
                }
                Ok(baseline) => {
                    eprintln!(
                        "baseline at {path} was written at {} scale but this run is {} scale; \
                         skipping the comparison and rewriting",
                        if baseline.fast { "--fast" } else { "full" },
                        if fast { "--fast" } else { "full" },
                    );
                }
                Err(e) => {
                    eprintln!("no usable baseline at {path} ({e}); writing a fresh one");
                }
            }
        }
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("  wrote {path}");
    }
    if failed {
        eprintln!("perfbench: median regression(s) beyond 2x — failing");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
