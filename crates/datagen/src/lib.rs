//! # datagen — dataset substrate for the NeuroSketch reproduction
//!
//! The paper evaluates on seven datasets (Table 1): GMM synthetics (G5, G10,
//! G20), the Beijing PM2.5 dataset, TPC-DS `store_sales` at scale factors 1
//! and 10, and a proprietary Veraset location-visit dataset. The real and
//! proprietary datasets are not shippable, so this crate provides *faithful
//! synthetic equivalents* — generators tuned to reproduce the structural
//! properties the paper's experiments actually exercise (marginal shapes in
//! Fig. 5, spatial skew and sharp query-function changes in Figs. 1/16,
//! column dependence structure of TPC). DESIGN.md §3 documents each
//! substitution.
//!
//! All generators are deterministic given a seed. Data is held in a simple
//! row-major [`Dataset`] with min–max [`normalize`](Dataset::normalized)
//! support, since NeuroSketch assumes attributes in `[0,1]`.

pub mod dataset;
pub mod gmm;
pub mod pm;
pub mod simple;
pub mod tpc;
pub mod veraset;

pub use dataset::{Dataset, Normalizer};
pub use gmm::GmmConfig;

/// Errors produced by dataset construction.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Mismatched row width vs. declared columns.
    ShapeMismatch { expected: usize, got: usize },
    /// A named column does not exist.
    NoSuchColumn(String),
    /// Degenerate configuration (zero rows, zero dims, ...).
    BadConfig(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::ShapeMismatch { expected, got } => {
                write!(f, "row width {got} does not match column count {expected}")
            }
            DataError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DataError::BadConfig(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for DataError {}

/// The seven evaluation datasets of the paper's Table 1, at a uniform
/// reduced scale suitable for laptop reproduction. `scale` multiplies the
/// row counts (1.0 reproduces our defaults; 10.0 approaches paper sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// 5-dimensional, 100-component Gaussian mixture (10^5 rows).
    G5,
    /// 10-dimensional GMM.
    G10,
    /// 20-dimensional GMM.
    G20,
    /// Beijing-PM2.5-like air-quality data (4 attrs, ~41.7k rows).
    Pm,
    /// TPC-DS-like store_sales, scale 1 (13 numeric attrs).
    Tpc1,
    /// TPC-DS-like store_sales, scale 10.
    Tpc10,
    /// Veraset-like spatial visits (lat, lon, duration; 10^5 rows).
    Vs,
}

impl PaperDataset {
    /// All seven datasets in the order the paper's Fig. 6 lists them.
    pub const ALL: [PaperDataset; 7] = [
        PaperDataset::Pm,
        PaperDataset::Vs,
        PaperDataset::G5,
        PaperDataset::G10,
        PaperDataset::G20,
        PaperDataset::Tpc1,
        PaperDataset::Tpc10,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::G5 => "G5",
            PaperDataset::G10 => "G10",
            PaperDataset::G20 => "G20",
            PaperDataset::Pm => "PM",
            PaperDataset::Tpc1 => "TPC1",
            PaperDataset::Tpc10 => "TPC10",
            PaperDataset::Vs => "VS",
        }
    }

    /// Index of the measure attribute used in the paper's experiments.
    pub fn measure_column(&self) -> usize {
        match self {
            // GMMs: last dimension is the measure.
            PaperDataset::G5 => 4,
            PaperDataset::G10 => 9,
            PaperDataset::G20 => 19,
            // PM2.5 concentration.
            PaperDataset::Pm => 0,
            // net_profit is the last of the 13 numeric store_sales columns.
            PaperDataset::Tpc1 | PaperDataset::Tpc10 => 12,
            // visit duration.
            PaperDataset::Vs => 2,
        }
    }

    /// Generate the dataset at reduced default scale times `scale`.
    pub fn generate(&self, scale: f64, seed: u64) -> Dataset {
        let rows = |base: usize| ((base as f64 * scale).round() as usize).max(100);
        match self {
            PaperDataset::G5 => gmm::generate(&GmmConfig::paper_gmm(5, rows(20_000)), seed),
            PaperDataset::G10 => gmm::generate(&GmmConfig::paper_gmm(10, rows(20_000)), seed),
            PaperDataset::G20 => gmm::generate(&GmmConfig::paper_gmm(20, rows(20_000)), seed),
            PaperDataset::Pm => pm::generate(rows(20_000), seed),
            PaperDataset::Tpc1 => tpc::generate(rows(50_000), seed),
            PaperDataset::Tpc10 => tpc::generate(rows(500_000), seed),
            PaperDataset::Vs => veraset::generate(
                &veraset::VerasetConfig::default_with_rows(rows(20_000)),
                seed,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_datasets_generate_and_normalize() {
        for ds in PaperDataset::ALL {
            let d = ds.generate(0.02, 7);
            assert!(d.rows() >= 100, "{}", ds.name());
            assert!(ds.measure_column() < d.dims(), "{}", ds.name());
            let (norm, _) = d.normalized();
            for r in 0..norm.rows() {
                for c in 0..norm.dims() {
                    let v = norm.value(r, c);
                    assert!((0.0..=1.0).contains(&v), "{} [{r},{c}] = {v}", ds.name());
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperDataset::Vs.generate(0.02, 42);
        let b = PaperDataset::Vs.generate(0.02, 42);
        assert_eq!(a.raw(), b.raw());
        let c = PaperDataset::Vs.generate(0.02, 43);
        assert_ne!(a.raw(), c.raw());
    }
}
