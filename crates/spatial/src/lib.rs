//! # spatial — index substrate
//!
//! Two index structures the paper depends on:
//!
//! * [`kdtree::KdTree`] — the query-space partitioning index of
//!   NeuroSketch (Alg. 2 `partition_&_index`) together with the
//!   complexity-guided leaf merging of Alg. 3. The tree is built over
//!   *query instances*, its split values are medians of the training
//!   workload, and each leaf owns the subset of training queries falling
//!   inside it.
//! * [`rtree::RTree`] — a bulk-loaded R-tree over data points, the
//!   backbone of the TREE-AGG sampling baseline ("it builds an R-tree
//!   index on the samples, which is well-suited for range predicates",
//!   Sec. 5.1).
//!
//! For persistence, [`kdtree::KdTree::to_flat`] renders the reachable
//! tree as a dense preorder node table ([`kdtree::FlatNode`]) that the
//! NSK2 sketch container (`neurosketch::persist`) embeds on disk.

pub mod kdtree;
pub mod rtree;

pub use kdtree::{FlatNode, FlatTreeError, KdTree};
pub use rtree::RTree;
