//! # query — range aggregate query (RAQ) substrate
//!
//! Implements the paper's problem setting (Sec. 2) and its general-RAQ
//! extension (Sec. 4.3):
//!
//! * a **query instance** is a parameter vector `q ∈ [0,1]^d` — for the
//!   standard axis-aligned range query, `q = (c, r)` with per-attribute
//!   lower bounds `c_i` and widths `r_i`;
//! * a **predicate function** `P_f(q, x)` decides whether row `x` matches
//!   instance `q` ([`predicate::PredicateFn`], with axis-aligned ranges,
//!   fixed-width ranges, rotated rectangles, half-spaces and circles);
//! * an **aggregation function** reduces the measure values of matching
//!   rows ([`aggregate::Aggregate`]: COUNT, SUM, AVG, STD, MEDIAN);
//! * the **query function** `f_D(q) = AGG({x ∈ D : P_f(q,x)=1})` is
//!   evaluated exactly by [`exec::QueryEngine`] — the ground-truth oracle
//!   used both for training labels and for evaluation;
//! * [`workload`] generates the paper's query distributions (uniform
//!   ranges, fixed active attributes or random ones, range-percentage
//!   sweeps) with train/test splits.

#![deny(missing_docs)]

pub mod aggregate;
pub mod error;
pub mod exec;
pub mod predicate;
pub mod sql;
pub mod workload;

pub use aggregate::{Aggregate, MomentKind, Moments};
pub use exec::{IndexSnapshot, QueryEngine, ResumeError};
pub use predicate::{
    DisjunctiveThresholds, FixedWidthRange, HalfSpace, HyperSphere, PredicateFn, Range, RotatedRect,
};
pub use workload::{ActiveMode, Workload, WorkloadConfig};

/// Errors produced by the query layer.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A query vector's length doesn't match the predicate's declared dim.
    BadQueryDim {
        /// Length the predicate expects.
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// Configuration refers to attributes outside the dataset.
    BadAttribute {
        /// The out-of-range attribute index.
        attr: usize,
        /// The dataset's dimensionality.
        dims: usize,
    },
    /// Degenerate workload configuration.
    BadConfig(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BadQueryDim { expected, got } => {
                write!(f, "query vector length {got}, predicate expects {expected}")
            }
            QueryError::BadAttribute { attr, dims } => {
                write!(f, "attribute {attr} out of range for {dims}-dim data")
            }
            QueryError::BadConfig(s) => write!(f, "bad workload config: {s}"),
        }
    }
}

impl std::error::Error for QueryError {}
