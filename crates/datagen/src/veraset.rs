//! Veraset-like spatial visit generator.
//!
//! The paper's VS dataset is proprietary: 100k stay-points extracted from
//! cell-phone location signals in downtown Houston, with columns
//! (latitude, longitude, visit duration in hours). What the experiments
//! exercise is its *structure*:
//!
//! * strong spatial skew — visits cluster around points of interest,
//! * **sharp spatial changes in mean visit duration** (Fig. 1 / Fig. 16a):
//!   adjacent POIs can have very different duration regimes (a coffee shop
//!   next to an office tower), giving the query function a large LDQ/AQC,
//! * right-skewed durations between 15 minutes and ~20 hours (Fig. 5).
//!
//! This generator reproduces all three: POI centers from a cluster process
//! over the Houston downtown bounding box, Zipf-like POI popularity, tight
//! per-POI spatial spread, and per-POI duration regimes drawn from discrete
//! categories (retail/food/office/residential) so neighbouring regions have
//! abruptly different means.

use crate::dataset::Dataset;
use crate::simple::standard_normal;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the spatial-visit generator.
#[derive(Debug, Clone)]
pub struct VerasetConfig {
    /// Number of visit records.
    pub rows: usize,
    /// Number of points of interest.
    pub pois: usize,
    /// Bounding box (lat_min, lat_max).
    pub lat_range: (f64, f64),
    /// Bounding box (lon_min, lon_max).
    pub lon_range: (f64, f64),
    /// Per-POI spatial standard deviation, as a fraction of the box size.
    pub poi_spread: f64,
    /// Zipf exponent for POI popularity.
    pub zipf_s: f64,
}

impl VerasetConfig {
    /// Downtown-Houston-like defaults with the given row count.
    pub fn default_with_rows(rows: usize) -> Self {
        VerasetConfig {
            rows,
            pois: 120,
            lat_range: (29.73, 29.80),
            lon_range: (-95.39, -95.33),
            poi_spread: 0.035,
            zipf_s: 1.05,
        }
    }
}

/// Duration regimes (mean hours, lognormal sigma) for POI categories —
/// the sharp regime differences are what give VS its high AQC.
const REGIMES: [(f64, f64); 4] = [
    (0.4, 0.5),  // quick retail / coffee
    (1.5, 0.6),  // dining, errands
    (8.0, 0.3),  // office
    (11.0, 0.4), // residential / overnight
];

/// Maximum recorded visit duration (hours), matching Fig. 5's VS x-axis.
const MAX_DURATION_H: f64 = 20.0;

/// Category mix of a downtown: mostly short-stay retail/food, fewer
/// office/residential POIs. Biasing the mix toward the short regimes
/// makes the global duration distribution right-skewed (Fig. 5) by
/// construction instead of by luck of the per-POI regime draws.
const REGIME_WEIGHTS: [f64; 4] = [0.35, 0.30, 0.20, 0.15];

fn sample_regime(rng: &mut StdRng) -> usize {
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (i, w) in REGIME_WEIGHTS.iter().enumerate() {
        acc += w;
        if u <= acc {
            return i;
        }
    }
    REGIMES.len() - 1
}

struct Poi {
    lat: f64,
    lon: f64,
    regime: usize,
    popularity_cum: f64,
}

/// Generate a visit dataset with columns `lat`, `lon`, `duration_h`.
pub fn generate(cfg: &VerasetConfig, seed: u64) -> Dataset {
    assert!(cfg.pois > 0 && cfg.rows > 0, "degenerate veraset config");
    let mut rng = StdRng::seed_from_u64(seed);
    let (lat0, lat1) = cfg.lat_range;
    let (lon0, lon1) = cfg.lon_range;

    // Zipf popularity over POIs.
    let weights: Vec<f64> = (1..=cfg.pois)
        .map(|r| 1.0 / (r as f64).powf(cfg.zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cum = 0.0;
    let pois: Vec<Poi> = weights
        .iter()
        .map(|w| {
            cum += w / total;
            Poi {
                lat: rng.random_range(lat0..lat1),
                lon: rng.random_range(lon0..lon1),
                regime: sample_regime(&mut rng),
                popularity_cum: cum,
            }
        })
        .collect();

    let spread_lat = (lat1 - lat0) * cfg.poi_spread;
    let spread_lon = (lon1 - lon0) * cfg.poi_spread;
    let mut data = Vec::with_capacity(cfg.rows * 3);
    for _ in 0..cfg.rows {
        let u: f64 = rng.random();
        let poi = pois
            .iter()
            .find(|p| u <= p.popularity_cum)
            .unwrap_or(pois.last().expect("nonempty"));
        let lat = (poi.lat + spread_lat * standard_normal(&mut rng)).clamp(lat0, lat1);
        let lon = (poi.lon + spread_lon * standard_normal(&mut rng)).clamp(lon0, lon1);
        // Mostly the POI's own regime, with a 25% mix-in of arbitrary
        // regimes (real visits mix: an office tower has couriers, a cafe
        // has laptop campers) — keeps the spatial AQC high without
        // making the query function a step function.
        let regime = if rng.random::<f64>() < 0.75 {
            poi.regime
        } else {
            sample_regime(&mut rng)
        };
        let (mean_h, sigma) = REGIMES[regime];
        // Lognormal around the regime mean; stay-point extraction floors
        // visits at 15 minutes.
        let dur = (mean_h * (sigma * standard_normal(&mut rng)).exp()).clamp(0.25, MAX_DURATION_H);
        data.extend_from_slice(&[lat, lon, dur]);
    }
    Dataset::new(vec!["lat".into(), "lon".into(), "duration_h".into()], data)
        .expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate(&VerasetConfig::default_with_rows(5000), 7)
    }

    #[test]
    fn columns_and_bounds() {
        let d = small();
        assert_eq!(d.dims(), 3);
        let cfg = VerasetConfig::default_with_rows(1);
        for row in d.iter_rows() {
            assert!(row[0] >= cfg.lat_range.0 && row[0] <= cfg.lat_range.1);
            assert!(row[1] >= cfg.lon_range.0 && row[1] <= cfg.lon_range.1);
            assert!(row[2] >= 0.25 && row[2] <= 20.0);
        }
    }

    #[test]
    fn durations_are_right_skewed() {
        // Fig. 5: the VS duration histogram has a mode well below the mean.
        let d = small();
        let durs = d.column(2);
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        let mut sorted = durs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = sorted[sorted.len() / 2];
        assert!(median < mean, "median {median} >= mean {mean}");
    }

    #[test]
    fn spatially_clustered() {
        // The top 10% densest cells of a 20x20 grid should hold far more
        // than 10% of points (Zipf popularity + tight POI spread).
        let d = small();
        let cfg = VerasetConfig::default_with_rows(1);
        let mut counts = vec![0usize; 400];
        for row in d.iter_rows() {
            let gx = (((row[0] - cfg.lat_range.0) / (cfg.lat_range.1 - cfg.lat_range.0)) * 20.0)
                .min(19.0) as usize;
            let gy = (((row[1] - cfg.lon_range.0) / (cfg.lon_range.1 - cfg.lon_range.0)) * 20.0)
                .min(19.0) as usize;
            counts[gx * 20 + gy] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top40: usize = sorted.iter().take(40).sum();
        assert!(top40 as f64 > 0.5 * d.rows() as f64, "top40 {top40}");
    }

    #[test]
    fn regimes_make_duration_spatially_discontinuous() {
        // Mean duration conditioned on location varies strongly by cell.
        let d = generate(&VerasetConfig::default_with_rows(20_000), 11);
        let cfg = VerasetConfig::default_with_rows(1);
        let mut sums = vec![(0.0f64, 0usize); 100];
        for row in d.iter_rows() {
            let gx = (((row[0] - cfg.lat_range.0) / (cfg.lat_range.1 - cfg.lat_range.0)) * 10.0)
                .min(9.0) as usize;
            let gy = (((row[1] - cfg.lon_range.0) / (cfg.lon_range.1 - cfg.lon_range.0)) * 10.0)
                .min(9.0) as usize;
            let cell = &mut sums[gx * 10 + gy];
            cell.0 += row[2];
            cell.1 += 1;
        }
        let means: Vec<f64> = sums
            .iter()
            .filter(|(_, c)| *c >= 30)
            .map(|(s, c)| s / *c as f64)
            .collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo > 2.0, "cell means too uniform: {lo}..{hi}");
    }

    #[test]
    fn deterministic() {
        let cfg = VerasetConfig::default_with_rows(100);
        assert_eq!(generate(&cfg, 1).raw(), generate(&cfg, 1).raw());
    }
}
