//! Query workload generation (Sec. 5.1 "Query Distribution").
//!
//! The paper's workloads: pick `r` active attributes uniformly at random
//! per query (or use a fixed set, e.g. lat/lon for VS), then draw a
//! uniform range for each active attribute. Inactive attributes get
//! `(c, r) = (0, 1)`. For the range-size sweep (Fig. 7) widths are fixed
//! to a percentage of the attribute's domain and only the position is
//! random.
//!
//! Training/test sets are disjoint by construction: we generate one pool
//! and split it, deduplicating exact query-vector collisions.
//!
//! Workloads feed the whole pipeline: ground-truth labeling goes through
//! [`crate::exec::QueryEngine::label_batch`], and the resulting
//! `(queries, labels)` pairs drive sketch construction
//! (`neurosketch::NeuroSketch::build_from_labeled`) and the tracked perf
//! suites (`bench::perf::scenarios`).

use crate::predicate::Range;
use crate::QueryError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How active attributes are chosen for each query.
#[derive(Debug, Clone, PartialEq)]
pub enum ActiveMode {
    /// The same attributes are active in every query; the query vector
    /// contains only their `(c, r)` pairs (lower NN input dim).
    Fixed(Vec<usize>),
    /// `k` attributes chosen uniformly at random per query; the query
    /// vector spans all `dims` attributes, inactive ones set to `(0, 1)`.
    Random(usize),
}

/// How each active attribute's range is drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RangeMode {
    /// Uniform: both endpoints uniform (width `r ~ U(0, 1−c)`), the
    /// paper's default.
    Uniform,
    /// Fixed width as a fraction of the domain; position uniform
    /// (Fig. 7's `x%` ranges).
    FixedWidth(f64),
    /// Width uniform within `[lo, hi]` fractions of the domain.
    WidthBetween(f64, f64),
    /// Workload skew: fixed width, positions Gaussian around `center`
    /// with std `sigma` (truncated to the domain). Models the "workload
    /// distribution" of Sec. 4.2 — NeuroSketch's equi-probable kd-tree
    /// partitions adapt to it, diverting capacity to hot regions.
    Hotspot {
        /// Fixed range width.
        width: f64,
        /// Center of query-position mass.
        center: f64,
        /// Std of query positions.
        sigma: f64,
    },
}

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Dataset dimensionality `d̄`.
    pub dims: usize,
    /// Active-attribute selection.
    pub active: ActiveMode,
    /// Range drawing mode.
    pub range: RangeMode,
    /// Number of queries to generate.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A generated workload: the predicate shared by all queries plus the
/// query vectors.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The range predicate all query vectors are interpreted against.
    pub predicate: Range,
    /// Query instance vectors.
    pub queries: Vec<Vec<f64>>,
}

impl Workload {
    /// Generate a workload per the configuration.
    pub fn generate(cfg: &WorkloadConfig) -> Result<Workload, QueryError> {
        if cfg.dims == 0 || cfg.count == 0 {
            return Err(QueryError::BadConfig(
                "dims and count must be positive".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        match &cfg.active {
            ActiveMode::Fixed(attrs) => {
                let predicate = Range::new(attrs.clone(), cfg.dims)?;
                let k = attrs.len();
                let queries = (0..cfg.count)
                    .map(|_| {
                        let mut q = vec![0.0; 2 * k];
                        for i in 0..k {
                            let (c, r) = draw_range(&mut rng, cfg.range);
                            q[i] = c;
                            q[k + i] = r;
                        }
                        q
                    })
                    .collect();
                Ok(Workload { predicate, queries })
            }
            ActiveMode::Random(k) => {
                let k = *k;
                if k == 0 || k > cfg.dims {
                    return Err(QueryError::BadConfig(format!(
                        "{k} active attributes out of {} dims",
                        cfg.dims
                    )));
                }
                let predicate = Range::all(cfg.dims);
                let d = cfg.dims;
                let queries = (0..cfg.count)
                    .map(|_| {
                        let mut q = vec![0.0; 2 * d];
                        // Inactive default: (c, r) = (0, 1).
                        for r in 0..d {
                            q[d + r] = 1.0;
                        }
                        // Choose k distinct active attributes.
                        let mut chosen: Vec<usize> = (0..d).collect();
                        for i in 0..k {
                            let j = rng.random_range(i..d);
                            chosen.swap(i, j);
                        }
                        for &a in &chosen[..k] {
                            let (c, r) = draw_range(&mut rng, cfg.range);
                            q[a] = c;
                            q[d + a] = r;
                        }
                        q
                    })
                    .collect();
                Ok(Workload { predicate, queries })
            }
        }
    }

    /// Split into disjoint (train, test) sets: the first
    /// `total − test_count` queries train, the last `test_count` test,
    /// with exact-duplicate test queries removed (the paper "ensures that
    /// none of the test queries are in the training set").
    pub fn split(&self, test_count: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let test_count = test_count.min(self.queries.len() / 2);
        let cut = self.queries.len() - test_count;
        let train: Vec<Vec<f64>> = self.queries[..cut].to_vec();
        let test: Vec<Vec<f64>> = self.queries[cut..]
            .iter()
            .filter(|q| !train.contains(q))
            .cloned()
            .collect();
        (train, test)
    }
}

/// Draw one `(c, r)` pair in `[0,1]` with `c + r ≤ 1`.
fn draw_range(rng: &mut StdRng, mode: RangeMode) -> (f64, f64) {
    match mode {
        RangeMode::Uniform => {
            let c: f64 = rng.random();
            let r: f64 = rng.random_range(0.0..(1.0 - c).max(f64::MIN_POSITIVE));
            (c, r)
        }
        RangeMode::FixedWidth(w) => {
            let w = w.clamp(0.0, 1.0);
            let c: f64 = rng.random_range(0.0..(1.0 - w).max(f64::MIN_POSITIVE));
            (c, w)
        }
        RangeMode::WidthBetween(lo, hi) => {
            let w: f64 = rng.random_range(lo.clamp(0.0, 1.0)..hi.clamp(0.0, 1.0));
            let c: f64 = rng.random_range(0.0..(1.0 - w).max(f64::MIN_POSITIVE));
            (c, w)
        }
        RangeMode::Hotspot {
            width,
            center,
            sigma,
        } => {
            let w = width.clamp(0.0, 1.0);
            // Box–Muller normal, truncated into the feasible corner range.
            let u1: f64 = 1.0 - rng.random::<f64>();
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let c = (center + sigma * z).clamp(0.0, (1.0 - w).max(0.0));
            (c, w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PredicateFn;

    #[test]
    fn fixed_mode_compact_vectors() {
        let cfg = WorkloadConfig {
            dims: 3,
            active: ActiveMode::Fixed(vec![0, 1]),
            range: RangeMode::Uniform,
            count: 100,
            seed: 1,
        };
        let w = Workload::generate(&cfg).unwrap();
        assert_eq!(w.queries.len(), 100);
        assert_eq!(w.predicate.query_dim(), 4);
        for q in &w.queries {
            assert_eq!(q.len(), 4);
            for i in 0..2 {
                assert!(q[i] >= 0.0 && q[i] + q[2 + i] <= 1.0 + 1e-12, "{q:?}");
            }
        }
    }

    #[test]
    fn random_mode_full_vectors_with_inactive_defaults() {
        let cfg = WorkloadConfig {
            dims: 5,
            active: ActiveMode::Random(2),
            range: RangeMode::Uniform,
            count: 200,
            seed: 2,
        };
        let w = Workload::generate(&cfg).unwrap();
        assert_eq!(w.predicate.query_dim(), 10);
        for q in &w.queries {
            assert_eq!(q.len(), 10);
            // Exactly 2 attributes should deviate from (0, 1).
            let active = (0..5).filter(|&a| q[a] != 0.0 || q[5 + a] != 1.0).count();
            assert!(active <= 2, "{q:?}");
        }
        // On average close to 2 active (c=0 draws are measure-zero).
        let avg: f64 = w
            .queries
            .iter()
            .map(|q| (0..5).filter(|&a| q[a] != 0.0 || q[5 + a] != 1.0).count() as f64)
            .sum::<f64>()
            / 200.0;
        assert!(avg > 1.9, "avg active {avg}");
    }

    #[test]
    fn fixed_width_mode_produces_constant_widths() {
        let cfg = WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::FixedWidth(0.05),
            count: 50,
            seed: 3,
        };
        let w = Workload::generate(&cfg).unwrap();
        for q in &w.queries {
            assert_eq!(q[1], 0.05);
            assert!(q[0] + 0.05 <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn hotspot_mode_concentrates_positions() {
        let cfg = WorkloadConfig {
            dims: 1,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Hotspot {
                width: 0.1,
                center: 0.3,
                sigma: 0.05,
            },
            count: 2000,
            seed: 5,
        };
        let w = Workload::generate(&cfg).unwrap();
        let near = w
            .queries
            .iter()
            .filter(|q| (q[0] - 0.3).abs() < 0.15)
            .count();
        assert!(near > 1800, "only {near} of 2000 near the hotspot");
        for q in &w.queries {
            assert_eq!(q[1], 0.1);
            assert!(q[0] >= 0.0 && q[0] + 0.1 <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn split_is_disjoint() {
        let cfg = WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: 100,
            seed: 4,
        };
        let w = Workload::generate(&cfg).unwrap();
        let (train, test) = w.split(20);
        assert_eq!(train.len(), 80);
        assert!(test.len() <= 20);
        for t in &test {
            assert!(!train.contains(t));
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let bad = WorkloadConfig {
            dims: 2,
            active: ActiveMode::Random(3),
            range: RangeMode::Uniform,
            count: 10,
            seed: 0,
        };
        assert!(Workload::generate(&bad).is_err());
        let zero = WorkloadConfig {
            dims: 0,
            active: ActiveMode::Random(1),
            range: RangeMode::Uniform,
            count: 10,
            seed: 0,
        };
        assert!(Workload::generate(&zero).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = WorkloadConfig {
            dims: 3,
            active: ActiveMode::Random(1),
            range: RangeMode::Uniform,
            count: 20,
            seed: 9,
        };
        let a = Workload::generate(&cfg).unwrap();
        let b = Workload::generate(&cfg).unwrap();
        assert_eq!(a.queries, b.queries);
    }
}
