//! TREE-AGG (Sec. 5.1): uniform sampling plus an R-tree.
//!
//! "In a pre-processing step and for a parameter k, TREE-AGG samples k
//! data points from the database uniformly. Then, for performance
//! enhancement and easy pruning, it builds an R-tree index on the
//! samples." COUNT and SUM estimates are scaled by `n/k`; AVG, STD and
//! MEDIAN are computed directly on the matching samples (a uniform sample
//! is unbiased for them).

use crate::{AqpEngine, Unsupported};
use datagen::Dataset;
use query::aggregate::Aggregate;
use query::predicate::PredicateFn;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spatial::RTree;

/// Uniform-sample + R-tree AQP engine.
#[derive(Debug, Clone)]
pub struct TreeAgg {
    tree: RTree,
    measure: usize,
    /// `n / k`: scale factor for extensive aggregates.
    scale: f64,
    sample_rows: usize,
}

impl TreeAgg {
    /// Sample `k` rows uniformly (without replacement) and index them.
    ///
    /// # Panics
    /// Panics if the dataset is empty, `k == 0`, or `measure` is out of
    /// range.
    pub fn build(data: &Dataset, measure: usize, k: usize, seed: u64) -> TreeAgg {
        assert!(data.rows() > 0, "empty dataset");
        assert!(k > 0, "sample size must be positive");
        assert!(measure < data.dims(), "measure column out of range");
        let n = data.rows();
        let k = k.min(n);
        let mut ids: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ids.shuffle(&mut rng);
        ids.truncate(k);
        let mut flat = Vec::with_capacity(k * data.dims());
        for &i in &ids {
            flat.extend_from_slice(data.row(i));
        }
        TreeAgg {
            tree: RTree::bulk_load_flat(flat, data.dims()),
            measure,
            scale: n as f64 / k as f64,
            sample_rows: k,
        }
    }

    /// Number of sampled rows.
    pub fn sample_size(&self) -> usize {
        self.sample_rows
    }

    /// Collect the measure values of samples matching the predicate,
    /// using the R-tree when axis bounds exist and a sample scan
    /// otherwise (e.g. half-spaces).
    fn matching_values(&self, pred: &dyn PredicateFn, q: &[f64]) -> Vec<f64> {
        let mut vals = Vec::new();
        if let Some(mut bounds) = pred.axis_bounds(q) {
            // `axis_bounds` is a necessary condition with endpoints
            // included (a rotated rectangle matches points exactly on
            // its bounding box), while `RTree::search` is half-open —
            // nudge every upper bound one ulp up so the candidate set
            // stays a superset; `pred.matches` below is the exact test.
            for (_, _, hi) in &mut bounds {
                *hi = hi.next_up();
            }
            self.tree.search(&bounds, |id| {
                let row = self.tree.point(id);
                if pred.matches(q, row) {
                    vals.push(row[self.measure]);
                }
            });
        } else {
            for id in 0..self.tree.len() {
                let row = self.tree.point(id);
                if pred.matches(q, row) {
                    vals.push(row[self.measure]);
                }
            }
        }
        vals
    }
}

impl AqpEngine for TreeAgg {
    fn name(&self) -> &'static str {
        "TREE-AGG"
    }

    fn answer(
        &self,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
    ) -> Result<f64, Unsupported> {
        let mut vals = self.matching_values(pred, q);
        let est = agg.apply(&mut vals);
        Ok(if agg.scales_with_n() {
            est * self.scale
        } else {
            est
        })
    }

    fn storage_bytes(&self) -> usize {
        // Sample rows at 8 bytes per value, plus ~40 bytes of MBR/node
        // overhead per FANOUT-sized group (amortized per row).
        self.sample_rows * self.tree.dims() * 8 + self.sample_rows * 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::simple::uniform;
    use query::predicate::{Range, RotatedRect};
    use query::QueryEngine;

    #[test]
    fn full_sample_is_exact() {
        let data = uniform(1000, 2, 1);
        let engine = QueryEngine::new(&data, 1);
        let ta = TreeAgg::build(&data, 1, 1000, 0);
        let pred = Range::new(vec![0], 2).unwrap();
        for q in [[0.1, 0.3], [0.0, 1.0], [0.5, 0.2]] {
            for agg in Aggregate::ALL {
                let exact = engine.answer(&pred, agg, &q);
                let est = ta.answer(&pred, agg, &q).unwrap();
                assert!(
                    (exact - est).abs() < 1e-9,
                    "{} exact {exact} est {est}",
                    agg.name()
                );
            }
        }
    }

    /// A sampled point lying exactly on a rotated rectangle's bounding-box
    /// upper edge matches the predicate (inclusive endpoints) and must be
    /// counted even though the R-tree candidate search is half-open.
    #[test]
    fn rotated_rect_counts_points_on_bbox_edge() {
        let rows: Vec<Vec<f64>> = vec![
            vec![0.6, 0.6, 1.0], // exactly the bbox max corner
            vec![0.4, 0.4, 1.0], // interior
            vec![0.9, 0.9, 1.0], // outside
        ];
        let data =
            datagen::Dataset::from_rows(vec!["x".into(), "y".into(), "m".into()], &rows).unwrap();
        let ta = TreeAgg::build(&data, 2, 3, 0);
        let pred = RotatedRect::new(0, 1, 3).unwrap();
        // Axis-aligned rectangle (phi = 0) spanning [0.2,0.6] x [0.2,0.6].
        let q = [0.2, 0.2, 0.6, 0.6, 0.0];
        assert_eq!(ta.answer(&pred, Aggregate::Count, &q).unwrap(), 2.0);
    }

    #[test]
    fn subsample_approximates_count() {
        let data = uniform(20_000, 2, 2);
        let engine = QueryEngine::new(&data, 1);
        let ta = TreeAgg::build(&data, 1, 2_000, 3);
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.2, 0.4];
        let exact = engine.answer(&pred, Aggregate::Count, &q);
        let est = ta.answer(&pred, Aggregate::Count, &q).unwrap();
        assert!((exact - est).abs() / exact < 0.1, "exact {exact} est {est}");
    }

    #[test]
    fn avg_is_not_scaled() {
        let data = uniform(10_000, 2, 4);
        let engine = QueryEngine::new(&data, 1);
        let ta = TreeAgg::build(&data, 1, 1_000, 5);
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.0, 1.0];
        let exact = engine.answer(&pred, Aggregate::Avg, &q);
        let est = ta.answer(&pred, Aggregate::Avg, &q).unwrap();
        assert!((exact - est).abs() < 0.05, "exact {exact} est {est}");
    }

    #[test]
    fn supports_rotated_rectangles() {
        // TREE-AGG can answer Table 2's query (NeuroSketch's only
        // competitor there).
        let data = uniform(5_000, 3, 6);
        let ta = TreeAgg::build(&data, 2, 5_000, 7);
        let pred = RotatedRect::new(0, 1, 3).unwrap();
        let q = [0.3, 0.3, 0.7, 0.6, 0.3];
        let est = ta.answer(&pred, Aggregate::Median, &q).unwrap();
        let engine = QueryEngine::new(&data, 2);
        let exact = engine.answer(&pred, Aggregate::Median, &q);
        assert!((exact - est).abs() < 1e-9);
    }

    #[test]
    fn storage_scales_with_sample_size() {
        let data = uniform(10_000, 3, 8);
        let small = TreeAgg::build(&data, 2, 100, 0);
        let large = TreeAgg::build(&data, 2, 5_000, 0);
        assert!(large.storage_bytes() > 10 * small.storage_bytes());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = uniform(1000, 2, 9);
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.25, 0.3];
        let a = TreeAgg::build(&data, 1, 200, 11)
            .answer(&pred, Aggregate::Sum, &q)
            .unwrap();
        let b = TreeAgg::build(&data, 1, 200, 11)
            .answer(&pred, Aggregate::Sum, &q)
            .unwrap();
        assert_eq!(a, b);
    }
}
