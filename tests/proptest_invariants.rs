//! Property-based tests on the core data structures and the paper's
//! invariants, using proptest.

use nn::construction::{vertex_digits, GridNet, SlopeMode};
use proptest::prelude::*;
use query::aggregate::Aggregate;
use query::predicate::{PredicateFn, Range};
use spatial::{KdTree, RTree};

/// Strategy: a point in [0,1]^d.
fn unit_point(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, d)
}

/// Strategy: a valid (c, r) query over `k` active attrs.
fn range_query(k: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), k).prop_map(|pairs| {
        let mut q = vec![0.0; 2 * pairs.len()];
        for (i, (a, b)) in pairs.iter().enumerate() {
            let c = a.min(1.0 - 1e-9);
            let r = b * (1.0 - c);
            q[i] = c;
            q[pairs.len() + i] = r;
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Widening a range can only gain matches (monotonicity of the range
    /// predicate, the heart of COUNT monotonicity).
    #[test]
    fn range_predicate_is_monotone(
        q in range_query(2),
        x in unit_point(2),
        grow in 0.0f64..0.2,
    ) {
        let pred = Range::new(vec![0, 1], 2).unwrap();
        let mut wider = q.clone();
        // Extend both widths (clamped to the domain).
        for i in 0..2 {
            wider[2 + i] = (wider[2 + i] + grow).min(1.0 - wider[i]);
        }
        if pred.matches(&q, &x) {
            prop_assert!(pred.matches(&wider, &x), "widening lost a match");
        }
    }

    /// COUNT of matching rows equals the sum of the indicator — the
    /// aggregate layer must agree with a manual count, and SUM/AVG must
    /// satisfy SUM = AVG * COUNT.
    #[test]
    fn aggregate_identities(values in prop::collection::vec(0.0f64..10.0, 1..50)) {
        let mut v1 = values.clone();
        let mut v2 = values.clone();
        let mut v3 = values.clone();
        let count = Aggregate::Count.apply(&mut v1);
        let sum = Aggregate::Sum.apply(&mut v2);
        let avg = Aggregate::Avg.apply(&mut v3);
        prop_assert_eq!(count as usize, values.len());
        prop_assert!((sum - avg * count).abs() < 1e-9 * (1.0 + sum.abs()));
        // STD is nonnegative and zero for constant inputs.
        let mut v4 = values.clone();
        let std = Aggregate::Std.apply(&mut v4);
        prop_assert!(std >= 0.0);
        // MEDIAN is an element of the multiset.
        let mut v5 = values.clone();
        let med = Aggregate::Median.apply(&mut v5);
        prop_assert!(values.iter().any(|v| (*v - med).abs() < 1e-12));
    }

    /// Scatter/gather recombination over (n, Σ, Σ²) is exact for random
    /// splits: partition a random value multiset into random shards,
    /// accumulate per-shard moments, merge — COUNT recombines bitwise,
    /// and SUM/AVG/STD match the whole-set computation within ulps
    /// (f64 addition is commutative-up-to-rounding, never lossy beyond
    /// that). This is the invariant `neurosketch::shard`'s gather step
    /// rests on.
    #[test]
    fn moment_recombination_is_exact_for_random_splits(
        values in prop::collection::vec(-100.0f64..100.0, 1..80),
        shard_of in prop::collection::vec(0usize..5, 80),
    ) {
        use query::aggregate::Moments;
        let shards = 5;
        let mut parts: Vec<Vec<f64>> = vec![Vec::new(); shards];
        for (i, v) in values.iter().enumerate() {
            parts[shard_of[i % shard_of.len()] % shards].push(*v);
        }
        let gathered = parts
            .iter()
            .map(|p| Moments::of(p.iter().copied()))
            .fold(Moments::ZERO, Moments::merge);
        let whole = Moments::of(values.iter().copied());
        // COUNT is integer-valued f64 arithmetic: bitwise exact.
        prop_assert_eq!(gathered.n, whole.n);
        prop_assert_eq!(gathered.finish(Aggregate::Count), whole.finish(Aggregate::Count));
        // Σ and Σ² reassociate: exact up to accumulated rounding.
        let s_tol = f64::EPSILON * values.iter().map(|v| v.abs()).sum::<f64>() * values.len() as f64;
        prop_assert!((gathered.s - whole.s).abs() <= s_tol,
            "Σ: {} vs {}", gathered.s, whole.s);
        let s2_tol = f64::EPSILON * values.iter().map(|v| v * v).sum::<f64>() * values.len() as f64;
        prop_assert!((gathered.s2 - whole.s2).abs() <= s2_tol,
            "Σ²: {} vs {}", gathered.s2, whole.s2);
        for agg in [Aggregate::Sum, Aggregate::Avg] {
            let (g, w) = (
                gathered.finish(agg).unwrap(),
                whole.finish(agg).unwrap(),
            );
            prop_assert!(
                (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                "{}: gathered {} vs whole {}", agg.name(), g, w
            );
        }
        // STD: sqrt amplifies cancellation noise when the variance is
        // ~0, so the tight comparison is between the *variances* the
        // two sides feed into the sqrt.
        let (g, w) = (
            gathered.finish(Aggregate::Std).unwrap(),
            whole.finish(Aggregate::Std).unwrap(),
        );
        prop_assert!(
            (g * g - w * w).abs() <= 1e-9 * (1.0 + w * w),
            "STD²: gathered {} vs whole {}", g * g, w * w
        );
    }

    /// R-tree range search agrees exactly with a brute-force scan.
    #[test]
    fn rtree_matches_brute_force(
        pts in prop::collection::vec(unit_point(2), 1..120),
        lo0 in 0.0f64..0.9,
        w0 in 0.01f64..0.5,
        lo1 in 0.0f64..0.9,
        w1 in 0.01f64..0.5,
    ) {
        let tree = RTree::bulk_load(&pts, 2);
        let bounds = vec![(0, lo0, lo0 + w0), (1, lo1, lo1 + w1)];
        let mut got = tree.query(&bounds);
        got.sort_unstable();
        let expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p[0] >= lo0 && p[0] < lo0 + w0 && p[1] >= lo1 && p[1] < lo1 + w1
            })
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// kd-tree leaves partition the query set and locate() routes every
    /// training query to its owning leaf, at any height.
    #[test]
    fn kdtree_partitions_and_routes(
        qs in prop::collection::vec(unit_point(3), 2..80),
        height in 0usize..5,
    ) {
        let tree = KdTree::build(&qs, height);
        let mut seen = vec![false; qs.len()];
        for leaf in tree.leaf_ids() {
            for &qi in tree.leaf_queries(leaf) {
                prop_assert!(!seen[qi]);
                seen[qi] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        for (i, q) in qs.iter().enumerate() {
            let leaf = tree.locate(q);
            prop_assert!(tree.leaf_queries(leaf).contains(&i));
        }
    }

    /// kd-tree merging hits any feasible target leaf count.
    #[test]
    fn kdtree_merging_reaches_target(
        qs in prop::collection::vec(unit_point(2), 16..100),
        target in 1usize..8,
    ) {
        let mut tree = KdTree::build(&qs, 3);
        let before = tree.leaf_count();
        tree.merge_leaves(|ids| ids.len() as f64, target, 2);
        prop_assert!(tree.leaf_count() <= before);
        prop_assert!(tree.leaf_count() <= target.max(1).max(tree.leaf_count().min(target)));
        // Coverage is preserved.
        let total: usize = tree.leaf_ids().iter().map(|&l| tree.leaf_queries(l).len()).sum();
        prop_assert_eq!(total, qs.len());
    }

    /// The Algorithm-1 construction memorizes every grid vertex of any
    /// random linear (hence Lipschitz) function exactly.
    #[test]
    fn construction_memorizes_random_linear(
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        c in -1.0f64..1.0,
        t in 1usize..6,
    ) {
        let f = move |x: &[f64]| a * x[0] + b * x[1] + c;
        let net = GridNet::construct(&f, 2, t, SlopeMode::Unit).unwrap();
        for i in 0..(t + 1) * (t + 1) {
            let dig = vertex_digits(i, t, 2);
            let p: Vec<f64> = dig.iter().map(|&v| v as f64 / t as f64).collect();
            prop_assert!((net.forward(&p) - f(&p)).abs() < 1e-8);
        }
    }

    /// Min-max normalization maps into [0,1] and inverts exactly.
    #[test]
    fn normalization_roundtrip(rows in prop::collection::vec(
        prop::collection::vec(-100.0f64..100.0, 3), 2..40)) {
        let data = datagen::Dataset::from_rows(
            vec!["a".into(), "b".into(), "c".into()],
            &rows,
        ).unwrap();
        let (norm_d, norm) = data.normalized();
        for r in 0..data.rows() {
            for c in 0..3 {
                let v = norm_d.value(r, c);
                prop_assert!((0.0..=1.0).contains(&v));
                let back = norm.inverse(c, v);
                prop_assert!((back - data.value(r, c)).abs() < 1e-9);
            }
        }
    }

    /// SPN probabilities are proper: `P ∈ [0, 1]` and monotone in range
    /// width; COUNT over the full domain recovers ~n.
    #[test]
    fn spn_probability_axioms(
        seed in 0u64..20,
        lo in 0.0f64..0.7,
        w in 0.05f64..0.3,
        grow in 0.0f64..0.2,
    ) {
        let data = datagen::simple::uniform(600, 2, seed);
        let spn = baselines::deepdb::Spn::build(
            &data,
            1,
            &baselines::deepdb::SpnConfig { min_rows: 100, ..Default::default() },
        );
        let pred = Range::new(vec![0], 2).unwrap();
        use baselines::AqpEngine;
        let narrow = spn.answer(&pred, Aggregate::Count, &[lo, w]).unwrap();
        let wide = spn
            .answer(&pred, Aggregate::Count, &[lo, (w + grow).min(1.0 - lo)])
            .unwrap();
        prop_assert!((-1e-9..=600.0 + 1e-6).contains(&narrow));
        prop_assert!(wide + 1e-9 >= narrow, "count not monotone: {narrow} > {wide}");
        let all = spn.answer(&pred, Aggregate::Count, &[0.0, 1.0]).unwrap();
        prop_assert!((all - 600.0).abs() < 6.0, "full-domain count {all}");
    }

    /// TREE-AGG with a full sample is exact for every aggregate on any
    /// range (its R-tree path must not lose or duplicate matches).
    #[test]
    fn tree_agg_full_sample_exact(
        seed in 0u64..20,
        lo in 0.0f64..0.8,
        w in 0.01f64..0.2,
    ) {
        let data = datagen::simple::uniform(300, 2, seed);
        let engine = query::QueryEngine::new(&data, 1);
        let ta = baselines::tree_agg::TreeAgg::build(&data, 1, 300, 0);
        let pred = Range::new(vec![0], 2).unwrap();
        use baselines::AqpEngine;
        for agg in Aggregate::ALL {
            let exact = engine.answer(&pred, agg, &[lo, w]);
            let est = ta.answer(&pred, agg, &[lo, w]).unwrap();
            prop_assert!((exact - est).abs() < 1e-9, "{}: {exact} vs {est}", agg.name());
        }
    }

    /// The binary model codec round-trips any architecture to f32
    /// precision.
    #[test]
    fn binary_codec_roundtrip(
        w1 in 1usize..20,
        w2 in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mlp = nn::Mlp::new(&[2, w1, w2, 1], seed);
        let back = nn::binary::decode(nn::binary::encode(&mlp)).unwrap();
        prop_assert_eq!(back.param_count(), mlp.param_count());
        let x = [0.37, 0.61];
        prop_assert!((back.predict(&x) - mlp.predict(&x)).abs() < 1e-3);
    }

    /// The exact engine's COUNT is monotone in range width.
    #[test]
    fn exact_count_monotone_in_width(
        data_seed in 0u64..50,
        c in 0.0f64..0.8,
        w1 in 0.01f64..0.2,
        extra in 0.0f64..0.2,
    ) {
        let data = datagen::simple::uniform(300, 1, data_seed);
        let engine = query::QueryEngine::new(&data, 0);
        let pred = Range::new(vec![0], 1).unwrap();
        let narrow = engine.answer(&pred, Aggregate::Count, &[c, w1]);
        let wide = engine.answer(&pred, Aggregate::Count, &[c, (w1 + extra).min(1.0 - c)]);
        prop_assert!(wide >= narrow);
    }
}
