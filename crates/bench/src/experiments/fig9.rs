//! Fig. 9: impact of the aggregation function (TPC1, one active
//! attribute; AVG, SUM, STD). Shape to check: NeuroSketch answers all
//! three with similar latency; VerdictDB and DeepDB decline STD (as in
//! the paper), TREE-AGG answers everything.

use crate::common::{print_rows, run_comparison, EngineRow, ExperimentContext};
use datagen::PaperDataset;
use query::aggregate::Aggregate;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

/// Results for one aggregate.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Aggregation function.
    pub agg: Aggregate,
    /// Engine rows.
    pub engines: Vec<EngineRow>,
}

/// Run AVG / SUM / STD on TPC1.
pub fn run(ctx: &ExperimentContext) -> Vec<Fig9Row> {
    let (data, measure) = ctx.dataset(PaperDataset::Tpc1);
    [Aggregate::Avg, Aggregate::Sum, Aggregate::Std]
        .into_iter()
        .map(|agg| {
            let wl = Workload::generate(&WorkloadConfig {
                dims: data.dims(),
                active: ActiveMode::Random(1),
                range: RangeMode::Uniform,
                count: ctx.train_queries() + ctx.test_queries(),
                seed: ctx.seed,
            })
            .expect("valid workload");
            let engines = run_comparison(&data, measure, &wl, agg, ctx, &ctx.ns_config(), false);
            Fig9Row { agg, engines }
        })
        .collect()
}

/// Print one block per aggregate.
pub fn print(rows: &[Fig9Row]) {
    println!("\n==== Fig. 9: varying aggregation function (TPC1) ====");
    for row in rows {
        print_rows(row.agg.name(), &row.engines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_parity_with_paper() {
        let ctx = ExperimentContext::fast();
        let rows = run(&ctx);
        let std_row = rows.iter().find(|r| r.agg == Aggregate::Std).unwrap();
        // NeuroSketch and TREE-AGG answer STD; VerdictDB and DeepDB do not.
        let by_name = |n: &str| std_row.engines.iter().find(|e| e.engine == n).unwrap();
        assert_eq!(by_name("NeuroSketch").support, 1.0);
        assert_eq!(by_name("TREE-AGG").support, 1.0);
        assert_eq!(by_name("VerdictDB").support, 0.0);
        assert_eq!(by_name("DeepDB").support, 0.0);
    }
}
