//! # nn — feed-forward neural network substrate
//!
//! A small, dependency-light neural network library built from scratch for
//! the NeuroSketch reproduction. It provides exactly what the paper needs:
//!
//! * dense [`Mlp`] models with ReLU hidden layers and a linear output,
//!   with allocation-free inference via [`Mlp::infer_with`] and a reused
//!   [`mlp::Workspace`],
//! * mini-batch training with MSE loss and the [`optimizer::Adam`] optimizer
//!   (Alg. 4 of the paper), executed as whole-batch GEMMs
//!   ([`Mlp::forward_batch`] / [`Mlp::backward_batch`] over the blocked
//!   kernels in [`linalg`]) with a bit-compatible per-example reference
//!   path ([`train::train_per_example`]) for verification and baselining,
//! * the explicit **memorization construction** of Theorem 3.4 / Algorithm 1
//!   ([`construction`]), usable directly ("CS") or as an initialization for
//!   SGD ("CS+SGD", Sec. A.5),
//! * parameter/storage accounting used by the paper's space-complexity
//!   arguments.
//!
//! Everything is `f64`; storage is *reported* as if parameters were stored
//! as `f32` (4 bytes each), matching how the paper counts model size.
//!
//! ```
//! use nn::{Mlp, train::{train, TrainConfig}};
//!
//! // Learn y = x0 + x1 on a tiny synthetic set.
//! let xs: Vec<Vec<f64>> = (0..64)
//!     .map(|i| vec![(i % 8) as f64 / 8.0, (i / 8) as f64 / 8.0])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|x| x[0] + x[1]).collect();
//! let mut mlp = Mlp::new(&[2, 16, 16, 1], 7);
//! let cfg = TrainConfig { epochs: 300, ..TrainConfig::default() };
//! let report = train(&mut mlp, &xs, &ys, &cfg);
//! assert!(report.final_loss < 1e-2);
//! ```

#![deny(missing_docs)]

pub mod activation;
pub mod binary;
pub mod construction;
pub mod init;
pub mod linalg;
pub mod loss;
pub mod mlp;
pub mod optimizer;
pub mod prune;
pub mod train;

pub use activation::Activation;
pub use binary::QuantMode;
pub use linalg::Matrix;
pub use mlp::{Mlp, ServingLayout};

/// Errors produced by the nn crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Layer sizes are inconsistent with the provided input.
    ShapeMismatch {
        /// Dimensionality the layer expected.
        expected: usize,
        /// Dimensionality it was given.
        got: usize,
    },
    /// An architecture description was empty or degenerate.
    BadArchitecture(String),
    /// Model (de)serialization failed.
    Serde(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            NnError::BadArchitecture(s) => write!(f, "bad architecture: {s}"),
            NnError::Serde(s) => write!(f, "serialization error: {s}"),
        }
    }
}

impl std::error::Error for NnError {}
