//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! median-of-samples timer instead of criterion's full statistical
//! machinery. Good enough to print comparable per-iteration times;
//! not a replacement for real criterion when rigorous statistics
//! matter.
//!
//! Benches using this stub must set `harness = false` (as real
//! criterion requires too).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_bench(name, self.sample_size, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Finish the group (no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

fn run_bench(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 0,
    };
    // Warm-up + auto-calibration pass.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample.max(1) as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "  {name:<32} median {} (min {}, max {}) over {} samples",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        per_iter.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`, auto-scaling the inner iteration count so one sample
    /// takes at least ~1 ms.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.iters_per_sample == 0 {
            // Calibrate: grow until the batch takes >= 1 ms.
            let mut n = 1u64;
            loop {
                let start = Instant::now();
                for _ in 0..n {
                    std::hint::black_box(f());
                }
                let el = start.elapsed();
                if el >= Duration::from_millis(1) || n >= 1 << 20 {
                    self.iters_per_sample = n;
                    self.samples.push(el);
                    return;
                }
                n *= 2;
            }
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

/// Re-export for call sites written against newer criterion versions.
pub use std::hint::black_box;

/// Declare a benchmark group function, mirroring
/// `criterion::criterion_group!`. Both the `name = ...; config = ...;
/// targets = ...` form and the positional form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("stub");
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
