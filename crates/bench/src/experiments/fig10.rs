//! Fig. 10: time/space/accuracy trade-offs across model architectures.
//!
//! Sweeps NeuroSketch's kd-tree height, width and depth (lines labelled
//! `(h, w, d)` as in the paper) against the baselines at several sampling
//! rates / RDC thresholds. Shapes to check: accuracy improves with width,
//! depth and height up to a plateau; partitioning (height) improves
//! accuracy at almost no query-time cost; over-deep narrow networks get
//! *worse* (the paper's red line); TREE-AGG wins only when near-exact
//! answers are required.

use crate::common::ExperimentContext;
use baselines::deepdb::{Spn, SpnConfig};
use baselines::tree_agg::TreeAgg;
use baselines::verdict::StratifiedSampler;
use baselines::AqpEngine;
use datagen::PaperDataset;
use neurosketch::NeuroSketch;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use std::time::Instant;

/// One configuration's position in the trade-off space.
#[derive(Debug, Clone)]
pub struct TradeoffPoint {
    /// Line label, e.g. `(h,60,5)` or `TREE-AGG 20%`.
    pub label: String,
    /// Varied hyperparameter value.
    pub x: f64,
    /// Mean query latency (µs).
    pub query_us: f64,
    /// Storage as a fraction of the (normalized f64) data size.
    pub space_frac: f64,
    /// Normalized MAE.
    pub nmae: f64,
}

/// Run the sweep on VS.
pub fn run(ctx: &ExperimentContext) -> Vec<TradeoffPoint> {
    let (data, measure) = ctx.dataset(PaperDataset::Vs);
    let engine = QueryEngine::new(&data, measure);
    let wl = crate::common::default_workload(
        PaperDataset::Vs,
        data.dims(),
        ctx.train_queries() + ctx.test_queries(),
        ctx.seed,
    );
    let (train, test) = wl.split(ctx.test_queries());
    let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &train, 4);
    let truth = engine.label_batch(&wl.predicate, Aggregate::Avg, &test, 4);
    let data_bytes = (data.rows() * data.dims() * 8) as f64;

    let mut points = Vec::new();
    let mut eval_sketch = |label: String, x: f64, h: usize, w: usize, d: usize| {
        let mut cfg = ctx.ns_config();
        cfg.tree_height = h;
        cfg.target_partitions = 1 << h; // no merging in this study
        cfg.l_first = w;
        cfg.l_rest = w;
        cfg.depth = d;
        let Ok((sketch, _)) = NeuroSketch::build_from_labeled(&train, &labels, &cfg) else {
            return;
        };
        let mut ws = nn::mlp::Workspace::default();
        let (preds, us) = crate::common::time_queries(&test, |q| sketch.answer_with(&mut ws, q));
        points.push(TradeoffPoint {
            label,
            x,
            query_us: us,
            space_frac: sketch.storage_bytes() as f64 / data_bytes,
            nmae: normalized_mae(&truth, &preds),
        });
    };

    let heights: Vec<usize> = if ctx.fast {
        vec![0, 2]
    } else {
        vec![0, 1, 2, 3, 4]
    };
    let widths: Vec<usize> = if ctx.fast {
        vec![15, 60]
    } else {
        vec![15, 30, 60, 120]
    };
    let depths: Vec<usize> = if ctx.fast {
        vec![2, 5]
    } else {
        vec![2, 5, 10, 20]
    };

    for &h in &heights {
        eval_sketch(format!("(h,120,5) h={h}"), h as f64, h, 120, 5);
        eval_sketch(format!("(h,30,5) h={h}"), h as f64, h, 30, 5);
    }
    for &w in &widths {
        eval_sketch(format!("(0,w,5) w={w}"), w as f64, 0, w, 5);
    }
    for &d in &depths {
        eval_sketch(format!("(0,30,d) d={d}"), d as f64, 0, 30, d);
        eval_sketch(format!("(0,120,d) d={d}"), d as f64, 0, 120, d);
    }

    // Baselines at several budgets.
    let fracs: &[f64] = if ctx.fast {
        &[1.0, 0.1]
    } else {
        &[1.0, 0.5, 0.2, 0.1]
    };
    for &f in fracs {
        let k = ((data.rows() as f64 * f) as usize).max(50);
        let ta = TreeAgg::build(&data, measure, k, ctx.seed);
        points.push(eval_baseline(
            format!("TREE-AGG {:.0}%", f * 100.0),
            f,
            &ta,
            &wl.predicate,
            &test,
            &truth,
            data_bytes,
        ));
        let vd = StratifiedSampler::build(&data, measure, k, 32, ctx.seed);
        points.push(eval_baseline(
            format!("VerdictDB {:.0}%", f * 100.0),
            f,
            &vd,
            &wl.predicate,
            &test,
            &truth,
            data_bytes,
        ));
    }
    let thresholds: &[f64] = if ctx.fast { &[0.3] } else { &[0.1, 0.3, 0.5] };
    for &t in thresholds {
        let spn = Spn::build(
            &data,
            measure,
            &SpnConfig {
                corr_threshold: t,
                seed: ctx.seed,
                ..SpnConfig::default()
            },
        );
        points.push(eval_baseline(
            format!("DeepDB rdc={t}"),
            t,
            &spn,
            &wl.predicate,
            &test,
            &truth,
            data_bytes,
        ));
    }
    points
}

fn eval_baseline(
    label: String,
    x: f64,
    engine: &dyn AqpEngine,
    pred: &dyn query::predicate::PredicateFn,
    test: &[Vec<f64>],
    truth: &[f64],
    data_bytes: f64,
) -> TradeoffPoint {
    let start = Instant::now();
    let preds: Vec<f64> = test
        .iter()
        .map(|q| engine.answer(pred, Aggregate::Avg, q).unwrap_or(0.0))
        .collect();
    let us = start.elapsed().as_secs_f64() * 1e6 / test.len().max(1) as f64;
    TradeoffPoint {
        label,
        x,
        query_us: us,
        space_frac: engine.storage_bytes() as f64 / data_bytes,
        nmae: normalized_mae(truth, &preds),
    }
}

/// Print the trade-off table.
pub fn print(points: &[TradeoffPoint]) {
    println!("\n==== Fig. 10: time/space/accuracy trade-offs (VS, AVG) ====");
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "config", "query (us)", "space frac", "nMAE"
    );
    for p in points {
        println!(
            "{:<22} {:>12.1} {:>12.5} {:>10.4}",
            p.label, p.query_us, p.space_frac, p.nmae
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_is_nearly_free_at_query_time() {
        let ctx = ExperimentContext::fast();
        let points = run(&ctx);
        let h0 = points.iter().find(|p| p.label == "(h,30,5) h=0").unwrap();
        let h2 = points.iter().find(|p| p.label == "(h,30,5) h=2").unwrap();
        // kd-tree descent adds at most a small constant to a forward pass.
        assert!(h2.query_us < h0.query_us * 5.0 + 50.0);
        // More partitions should not hurt storage by more than 4x models.
        assert!(h2.space_frac <= h0.space_frac * 6.0);
    }

    #[test]
    fn full_sample_tree_agg_is_nearly_exact() {
        let ctx = ExperimentContext::fast();
        let points = run(&ctx);
        let exact = points.iter().find(|p| p.label == "TREE-AGG 100%").unwrap();
        assert!(
            exact.nmae < 1e-9,
            "full-sample TREE-AGG nmae {}",
            exact.nmae
        );
    }
}
