//! POI analytics — the paper's running example (Example 2.1).
//!
//! A location-data aggregator wants to publish "average visit duration in
//! a window around (lat, lon)" without shipping the raw data. We train a
//! NeuroSketch for the fixed-window query function, serialize it, and
//! answer queries from the loaded model — including the rotated-
//! rectangle MEDIAN query of Table 2 that model-of-data engines cannot
//! express.
//!
//! ```text
//! cargo run --release --example poi_analytics
//! ```

use datagen::veraset::{generate, VerasetConfig};
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::predicate::FixedWidthRange;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    // Veraset-like visit data: (lat, lon, duration), normalized.
    let raw = generate(&VerasetConfig::default_with_rows(30_000), 11);
    let (data, norm) = raw.normalized();
    let engine = QueryEngine::new(&data, 2);

    // Query function: avg visit duration in a 20%-of-domain window whose
    // corner is the query (the paper's 50m x 50m example, normalized).
    let window = 0.2;
    let pred = FixedWidthRange::new(vec![0, 1], vec![window, window], 3).expect("valid");

    let mut rng = StdRng::seed_from_u64(3);
    let queries: Vec<Vec<f64>> = (0..6_500)
        .map(|_| {
            vec![
                rng.random_range(0.0..1.0 - window),
                rng.random_range(0.0..1.0 - window),
            ]
        })
        .collect();
    let (train, test) = queries.split_at(6_000);

    let cfg = NeuroSketchConfig::default();
    let (sketch, _) =
        NeuroSketch::build(&engine, &pred, Aggregate::Avg, train, &cfg).expect("build succeeds");

    // Publish: serialize the model instead of the data.
    let blob = sketch.to_json().expect("serialize");
    println!(
        "published model: {:.1} KiB vs {:.0} KiB of raw data",
        blob.len() as f64 / 1024.0,
        (data.rows() * data.dims() * 8) as f64 / 1024.0
    );

    // A consumer loads the model and asks about a POI.
    let loaded = NeuroSketch::from_json(&blob).expect("load");
    let truth: Vec<f64> = test
        .iter()
        .map(|q| engine.answer(&pred, Aggregate::Avg, q))
        .collect();
    let preds: Vec<f64> = test.iter().map(|q| loaded.answer(q)).collect();
    println!(
        "held-out normalized MAE: {:.4}",
        normalized_mae(&truth, &preds)
    );

    // Map one answer back to physical units via the normalizer.
    let q = &test[0];
    let est_norm = loaded.answer(q);
    let exact_norm = truth[0];
    // Duration was column 2 of the raw data.
    let to_hours = |v: f64| norm.inverse(2, v);
    println!(
        "\nwindow at (lat={:.4}, lon={:.4}):",
        norm.inverse(0, q[0]),
        norm.inverse(1, q[1])
    );
    println!(
        "  avg visit duration: model {:.2} h, exact {:.2} h",
        to_hours(est_norm),
        to_hours(exact_norm)
    );

    // Bonus: Table 2's general-rectangle MEDIAN on the same data.
    let rect = query::predicate::RotatedRect::new(0, 1, 3).expect("valid");
    let rect_queries: Vec<Vec<f64>> = (0..4_400)
        .map(|_| {
            let px = rng.random_range(0.1..0.6);
            let py = rng.random_range(0.1..0.6);
            let phi = rng.random_range(0.0..std::f64::consts::FRAC_PI_2);
            let (dx, dy) = (rng.random_range(0.15..0.45), rng.random_range(0.15..0.45));
            vec![
                px,
                py,
                px + dx * phi.cos() - dy * phi.sin(),
                py + dx * phi.sin() + dy * phi.cos(),
                phi,
            ]
        })
        .collect();
    let (rtrain, rtest) = rect_queries.split_at(4_000);
    let (median_sketch, _) =
        NeuroSketch::build(&engine, &rect, Aggregate::Median, rtrain, &cfg).expect("build");
    let rtruth: Vec<f64> = rtest
        .iter()
        .map(|q| engine.answer(&rect, Aggregate::Median, q))
        .collect();
    let rpreds: Vec<f64> = rtest.iter().map(|q| median_sketch.answer(q)).collect();
    println!(
        "\nrotated-rectangle MEDIAN (Table 2 query): normalized MAE {:.4}",
        normalized_mae(&rtruth, &rpreds)
    );
}
