//! Live maintenance for dynamic data (Sec. 7 of the paper, made
//! operational).
//!
//! The paper's proposal for dynamic data: "frequently test NeuroSketch,
//! and re-train the neural networks whose accuracy falls below a certain
//! threshold." This module implements the full loop at the granularity
//! that sentence implies — *the networks*, plural, not the deployment:
//!
//! 1. **Ingest.** Rows are appended ([`datagen::Dataset::append`]); the
//!    exact oracle follows incrementally
//!    ([`query::exec::QueryEngine::resume`]) instead of re-sorting.
//! 2. **Check.** A [`DriftMonitor`] holds a probe workload and a
//!    staleness threshold. [`DriftMonitor::check`] scores any
//!    [`Deployment`] whole; a [`MaintenancePlan`] scores it **per
//!    refreshable unit** — per kd-tree partition for a monolithic
//!    deployment, per data shard for a sharded one.
//! 3. **Partial retrain.** Only stale units retrain (on the [`par`]
//!    worker pool, through the batched GEMM training path); every fresh
//!    unit's models are left bitwise untouched. An optional per-cycle
//!    budget ([`MaintenancePlan::max_retrain`]) caps the work, worst
//!    units first — the rolling-refresh pattern.
//! 4. **Hot swap.** For artifact-backed sharded deployments, the
//!    retrained shards land as a new manifest generation
//!    ([`crate::persist::save_refreshed`]) and a serving process
//!    atomically adopts it via
//!    [`crate::deploy::LiveDeployment::reload_sharded`].
//!
//! [`refresh`] remains the degenerate full rebuild — still the right
//! tool when *every* unit is stale, when the query distribution itself
//! moved (the kd-tree partitioning is only retrainable wholesale), or
//! under a non-row-stable shard plan; `docs/maintenance.md` is the
//! operator's guide to choosing.

use crate::deploy::Deployment;
use crate::shard::{build_shard_sketch, ShardedSketch};
use crate::sketch::{BuildReport, NeuroSketch, NeuroSketchConfig};
use crate::SketchError;
use datagen::Dataset;
use query::aggregate::{Aggregate, MomentKind};
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::predicate::PredicateFn;
use std::time::{Duration, Instant};

/// Outcome of one whole-deployment drift check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// Normalized MAE of the deployment against the current data.
    pub nmae: f64,
    /// Whether the error breached the threshold (retrain advised).
    pub stale: bool,
}

/// Periodic accuracy monitor for a deployed sketch.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    probe: Vec<Vec<f64>>,
    threshold: f64,
    threads: usize,
}

impl DriftMonitor {
    /// Monitor with a fixed probe workload and an NMAE threshold above
    /// which a deployment (or one of its units) is declared stale.
    /// Labeling and checking default to two worker threads; tune with
    /// [`DriftMonitor::with_threads`].
    pub fn new(probe: Vec<Vec<f64>>, threshold: f64) -> Result<DriftMonitor, SketchError> {
        if probe.is_empty() {
            return Err(SketchError::EmptyProbe);
        }
        if threshold.is_nan() || threshold <= 0.0 {
            return Err(SketchError::BadThreshold { got: threshold });
        }
        Ok(DriftMonitor {
            probe,
            threshold,
            threads: 2,
        })
    }

    /// Set the worker-thread count the monitor's exact labeling and
    /// batched checking fan out across.
    pub fn with_threads(mut self, threads: usize) -> DriftMonitor {
        self.threads = threads.max(1);
        self
    }

    /// The probe queries.
    pub fn probe(&self) -> &[Vec<f64>] {
        &self.probe
    }

    /// The staleness threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The worker-thread knob.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compare a deployment against the *current* data (via an exact
    /// engine over it) on the probe workload. Works on any
    /// [`Deployment`] — a bare sketch, either server, or a live handle —
    /// and answers the whole probe through the batched serving path.
    pub fn check(
        &self,
        deployment: &dyn Deployment,
        engine: &QueryEngine<'_>,
        pred: &dyn PredicateFn,
        agg: Aggregate,
    ) -> DriftReport {
        let truth = engine.label_batch(pred, agg, &self.probe, self.threads);
        self.score(&truth, deployment)
    }

    /// [`DriftMonitor::check`] over several deployments at once: the
    /// exact labels are computed **once** and every deployment is scored
    /// against them, in input order. This is what a replicated cluster
    /// ([`crate::cluster::Cluster`]) needs — one monitor, one probe
    /// labeling, a [`DriftReport`] per replica handle — without cloning
    /// the probe workload or re-running the exact oracle per replica. A
    /// replica whose report disagrees with its peers' is drifting
    /// *individually* (stale generation, corrupt artifact), which
    /// whole-cluster checks average away.
    pub fn check_many(
        &self,
        deployments: &[&dyn Deployment],
        engine: &QueryEngine<'_>,
        pred: &dyn PredicateFn,
        agg: Aggregate,
    ) -> Vec<DriftReport> {
        let truth = engine.label_batch(pred, agg, &self.probe, self.threads);
        deployments.iter().map(|d| self.score(&truth, *d)).collect()
    }

    /// Score one deployment against already-computed exact labels — the
    /// shared tail of [`DriftMonitor::check`] and
    /// [`DriftMonitor::check_many`].
    fn score(&self, truth: &[f64], deployment: &dyn Deployment) -> DriftReport {
        let (preds, _) = deployment.answer_batch(&self.probe);
        let nmae = normalized_mae(truth, &preds);
        DriftReport {
            nmae,
            stale: nmae > self.threshold,
        }
    }
}

/// One refreshable unit's drift verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitDrift {
    /// Unit index: kd-tree partition (leaf order) or data shard.
    pub unit: usize,
    /// Probe queries that landed in / scored this unit.
    pub probes: usize,
    /// Normalized MAE over those probes (0 when no probe reached the
    /// unit — an unobserved unit is never declared stale).
    pub nmae: f64,
    /// Whether this unit breached the threshold.
    pub stale: bool,
}

/// What one maintenance cycle found and did.
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// Per-unit drift verdicts, in unit order.
    pub units: Vec<UnitDrift>,
    /// Units retrained this cycle, worst first.
    pub retrained: Vec<usize>,
    /// Stale units deferred by the [`MaintenancePlan::max_retrain`]
    /// budget — next cycle's work, worst first.
    pub deferred: Vec<usize>,
    /// Wall-clock of the drift check (labeling + batched answering).
    pub check: Duration,
    /// Wall-clock of relabeling + retraining the stale units.
    pub retrain: Duration,
}

impl MaintenanceReport {
    /// Stale units found this cycle (retrained + deferred).
    pub fn stale_units(&self) -> usize {
        self.units.iter().filter(|u| u.stale).count()
    }
}

/// A per-unit drift check + budgeted partial retrain, in one reusable
/// policy object. The same plan drives both deployment shapes:
/// [`MaintenancePlan::refresh_monolithic`] retrains stale kd-tree
/// partitions in place, [`MaintenancePlan::refresh_sharded`] rebuilds
/// stale data shards — each leaving fresh units' models bitwise
/// untouched.
#[derive(Debug, Clone)]
pub struct MaintenancePlan {
    /// Probe workload, staleness threshold and check-thread knob.
    pub monitor: DriftMonitor,
    /// Configuration stale units retrain with. For bitwise parity with
    /// a from-scratch rebuild (and stable per-unit seeds), use the
    /// configuration the deployment was originally built with.
    pub retrain: NeuroSketchConfig,
    /// Per-cycle retrain budget: at most this many stale units retrain,
    /// worst NMAE first, the rest are deferred to the next cycle.
    /// `None` retrains every stale unit.
    pub max_retrain: Option<usize>,
}

impl MaintenancePlan {
    /// A plan with no retrain budget.
    pub fn new(monitor: DriftMonitor, retrain: NeuroSketchConfig) -> MaintenancePlan {
        MaintenancePlan {
            monitor,
            retrain,
            max_retrain: None,
        }
    }

    /// Split this cycle's stale units into (retrained, deferred) under
    /// the budget, worst NMAE first.
    fn triage(&self, units: &[UnitDrift]) -> (Vec<usize>, Vec<usize>) {
        let mut stale: Vec<&UnitDrift> = units.iter().filter(|u| u.stale).collect();
        stale.sort_by(|a, b| b.nmae.total_cmp(&a.nmae));
        let budget = self.max_retrain.unwrap_or(stale.len());
        let ids: Vec<usize> = stale.iter().map(|u| u.unit).collect();
        let deferred = ids[budget.min(ids.len())..].to_vec();
        let mut retrained = ids;
        retrained.truncate(budget);
        (retrained, deferred)
    }

    /// Check a **monolithic** deployment per kd-tree partition and
    /// retrain only the stale partitions, in place.
    ///
    /// The check answers the whole probe through the batched
    /// [`Deployment`] surface, labels it against `engine` (the exact
    /// oracle over the *current* data), and scores each partition on
    /// the probes that route to it. Stale partitions then relabel their
    /// slice of `train_queries` and retrain on the worker pool with the
    /// batched GEMM path — every fresh partition's model stays bitwise
    /// identical, so answers outside the stale regions are unchanged.
    ///
    /// Errors: a stale partition none of `train_queries` route to
    /// (nothing to retrain it with — widen the workload), and every
    /// training error below.
    pub fn refresh_monolithic(
        &self,
        sketch: &mut NeuroSketch,
        engine: &QueryEngine<'_>,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        train_queries: &[Vec<f64>],
    ) -> Result<MaintenanceReport, SketchError> {
        let t0 = Instant::now();
        let probe = self.monitor.probe();
        let truth = engine.label_batch(pred, agg, probe, self.monitor.threads());
        let (preds, _) = Deployment::answer_batch(&*sketch, probe);
        let mut per_unit: Vec<Vec<usize>> = vec![Vec::new(); sketch.partitions()];
        for (i, q) in probe.iter().enumerate() {
            per_unit[sketch.leaf_index_of(q)].push(i);
        }
        let units: Vec<UnitDrift> = per_unit
            .iter()
            .enumerate()
            .map(|(unit, idxs)| {
                let t: Vec<f64> = idxs.iter().map(|&i| truth[i]).collect();
                let p: Vec<f64> = idxs.iter().map(|&i| preds[i]).collect();
                let nmae = if idxs.is_empty() {
                    0.0
                } else {
                    normalized_mae(&t, &p)
                };
                UnitDrift {
                    unit,
                    probes: idxs.len(),
                    nmae,
                    stale: nmae > self.monitor.threshold(),
                }
            })
            .collect();
        let check = t0.elapsed();

        let (retrained, deferred) = self.triage(&units);
        let t1 = Instant::now();
        // Gather each stale partition's slice of the training workload
        // up front so the per-unit tasks are self-contained.
        let mut slices: Vec<Vec<Vec<f64>>> = vec![Vec::new(); retrained.len()];
        if !retrained.is_empty() {
            for q in train_queries {
                let unit = sketch.leaf_index_of(q);
                if let Some(slot) = retrained.iter().position(|&u| u == unit) {
                    slices[slot].push(q.clone());
                }
            }
        }
        // One task per stale unit on the shared pool; relabeling and
        // training both run inside the task (single-threaded there, so
        // U stale units use U workers).
        let jobs: Vec<(usize, Vec<Vec<f64>>)> = retrained.iter().copied().zip(slices).collect();
        let results = par::par_map(&jobs, self.retrain.threads, |_, (unit, qs)| {
            let labels = engine.label_batch(pred, agg, qs, 1);
            sketch
                .train_partition_model(*unit, qs, &labels, &self.retrain)
                .map(|(model, _)| (*unit, model))
        });
        // All-or-nothing install: surface any per-unit error *before*
        // touching a model, so a failed cycle leaves the deployment
        // exactly as it was — never half-refreshed under an Err.
        let trained = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        for (unit, model) in trained {
            sketch.install_partition_model(unit, model);
        }
        Ok(MaintenanceReport {
            units,
            retrained,
            deferred,
            check,
            retrain: t1.elapsed(),
        })
    }

    /// Check a **sharded** deployment per data shard and rebuild only
    /// the stale shards, in place.
    ///
    /// Each shard is scored against its *own* rows of the current
    /// table: the plan re-splits `data`, a per-shard exact engine
    /// labels the probe with shard-local moments, and the shard's
    /// predicted moments ([`crate::shard::ShardSketch`]'s batched path,
    /// finished with the deployment's aggregate) are compared on
    /// normalized MAE. Stale shards rebuild via [`retrain_shards`] —
    /// same per-(shard, component) seeds as [`crate::shard::build_sharded`],
    /// so a rebuilt shard is bitwise what a full rebuild would have
    /// produced — and fresh shards' models stay bitwise untouched.
    ///
    /// Errors: a plan that is not row-stable (a [`crate::shard::ShardPlan::Blocks`]
    /// table reassigns rows on append, invalidating *every* shard, so a
    /// maintenance cycle — which retrains at most a stale subset —
    /// cannot be sound; refused up front, before any checking work;
    /// full-rebuild territory), an empty shard, and every build error
    /// below.
    pub fn refresh_sharded(
        &self,
        sketch: &mut ShardedSketch,
        data: &Dataset,
        measure: usize,
        pred: &dyn PredicateFn,
        train_queries: &[Vec<f64>],
    ) -> Result<MaintenanceReport, SketchError> {
        let t0 = Instant::now();
        let plan = sketch.plan();
        if !plan.row_stable() {
            return Err(SketchError::BadConfig(format!(
                "{plan:?} is not row-stable: appends reassign rows across shards, so a partial \
                 refresh would leave untouched shards serving rows they never saw — rebuild the \
                 whole deployment instead"
            )));
        }
        plan.validate(data.rows())?;
        let shard_data = plan.split(data);
        if let Some(empty) = shard_data.iter().position(|s| s.rows() == 0) {
            return Err(SketchError::BadConfig(format!(
                "{plan:?} leaves shard {empty} with no rows: every shard needs data"
            )));
        }
        let probe = self.monitor.probe();
        let agg = sketch.aggregate();
        let threshold = self.monitor.threshold();
        let shards = sketch.shards();
        let jobs: Vec<usize> = (0..shards.len()).collect();
        let units: Vec<UnitDrift> = par::par_map_init(
            &jobs,
            self.monitor.threads(),
            crate::sketch::BatchScratch::default,
            |scratch, _, &unit| {
                let engine = QueryEngine::new(&shard_data[unit], measure);
                let truth: Vec<f64> = engine
                    .label_moments_batch(pred, probe, 1)
                    .into_iter()
                    .map(|m| {
                        m.finish(agg)
                            .expect("sharded aggregates are moment-composable")
                    })
                    .collect();
                let preds: Vec<f64> = shards[unit]
                    .moments_batch_with(scratch, probe)
                    .into_iter()
                    .map(|m| sketch.finish_guarded(m))
                    .collect();
                let nmae = normalized_mae(&truth, &preds);
                UnitDrift {
                    unit,
                    probes: probe.len(),
                    nmae,
                    stale: nmae > threshold,
                }
            },
        );
        let check = t0.elapsed();

        let (retrained, deferred) = self.triage(&units);
        let t1 = Instant::now();
        // The check phase already split the table; rebuild straight from
        // those per-shard tables instead of re-materializing them.
        let kinds = required_kinds(sketch)?;
        let jobs: Vec<(usize, &Dataset)> = retrained.iter().map(|&u| (u, &shard_data[u])).collect();
        rebuild_shards(
            sketch,
            &jobs,
            measure,
            pred,
            train_queries,
            &self.retrain,
            kinds,
        )?;
        Ok(MaintenanceReport {
            units,
            retrained,
            deferred,
            check,
            retrain: t1.elapsed(),
        })
    }
}

/// The moment components this deployment's aggregate requires (always
/// present for a constructible [`ShardedSketch`]; typed for hand-built
/// edge cases).
fn required_kinds(sketch: &ShardedSketch) -> Result<&'static [MomentKind], SketchError> {
    sketch.aggregate().required_moments().ok_or_else(|| {
        SketchError::BadConfig(format!(
            "{} is not a function of (n, Σ, Σ²) and cannot be sharded by moment composition",
            sketch.aggregate().name()
        ))
    })
}

/// Rebuild the given (shard index, shard table) pairs in parallel on
/// the worker pool and install the results — the shared tail of
/// [`MaintenancePlan::refresh_sharded`] and [`retrain_shards`].
fn rebuild_shards(
    sketch: &mut ShardedSketch,
    jobs: &[(usize, &Dataset)],
    measure: usize,
    pred: &dyn PredicateFn,
    train_queries: &[Vec<f64>],
    cfg: &NeuroSketchConfig,
    kinds: &'static [MomentKind],
) -> Result<(), SketchError> {
    let built = par::par_map(jobs, cfg.threads, |_, (unit, shard)| {
        build_shard_sketch(*unit, shard, measure, pred, kinds, train_queries, cfg)
            .map(|(s, _, _)| (*unit, s))
    });
    // All-or-nothing install, mirroring the monolithic path: any build
    // error leaves every shard's models exactly as they were.
    let rebuilt = built.into_iter().collect::<Result<Vec<_>, _>>()?;
    for (unit, shard) in rebuilt {
        sketch.replace_shard(unit, shard);
    }
    Ok(())
}

/// Rebuild the given shards of a deployment against the current table,
/// leaving every other shard's models bitwise untouched — the partial
/// refresh mechanism under [`MaintenancePlan::refresh_sharded`],
/// exposed for callers that already know the stale set (benchmarks, an
/// operator forcing a shard). Shards rebuild in parallel on the worker
/// pool with the same per-(shard, component) seed derivation as
/// [`crate::shard::build_sharded`], so with the original build
/// configuration a rebuilt shard is bitwise what a full rebuild over
/// the same table would produce.
///
/// A plan that is not row-stable is refused (typed) unless `stale`
/// covers every shard — under [`crate::shard::ShardPlan::Blocks`],
/// appends reassign rows, so any untouched shard's models would be
/// serving rows they were never trained on.
pub fn retrain_shards(
    sketch: &mut ShardedSketch,
    data: &Dataset,
    measure: usize,
    pred: &dyn PredicateFn,
    train_queries: &[Vec<f64>],
    cfg: &NeuroSketchConfig,
    stale: &[usize],
) -> Result<(), SketchError> {
    let plan = sketch.plan();
    let mut stale: Vec<usize> = stale.to_vec();
    stale.sort_unstable();
    stale.dedup();
    if let Some(&unit) = stale.iter().find(|&&u| u >= sketch.shard_count()) {
        return Err(SketchError::NoSuchUnit {
            unit,
            units: sketch.shard_count(),
        });
    }
    // An empty stale set is a no-op regardless of the plan — a cycle
    // that found nothing stale must not error on a Blocks deployment.
    if stale.is_empty() {
        return Ok(());
    }
    if !plan.row_stable() && stale.len() < sketch.shard_count() {
        return Err(SketchError::BadConfig(format!(
            "{plan:?} is not row-stable: appends reassign rows across shards, so a partial \
             refresh would leave untouched shards serving rows they never saw — rebuild all \
             shards (or the whole deployment) instead"
        )));
    }
    let kinds = required_kinds(sketch)?;
    plan.validate(data.rows())?;
    let assignment = plan.assignment(data.rows());
    if let Some(&empty) = stale.iter().find(|&&u| assignment[u].is_empty()) {
        return Err(SketchError::BadConfig(format!(
            "{plan:?} leaves shard {empty} with no rows: every shard needs data"
        )));
    }
    // Materialize only the stale shards' tables; fresh shards' rows are
    // never touched, read or re-labeled.
    let tables: Vec<(usize, Dataset)> = stale
        .iter()
        .map(|&u| (u, data.select_rows(&assignment[u])))
        .collect();
    let jobs: Vec<(usize, &Dataset)> = tables.iter().map(|(u, d)| (*u, d)).collect();
    rebuild_shards(sketch, &jobs, measure, pred, train_queries, cfg, kinds)
}

/// Retrain a sketch against the current data from scratch: relabel the
/// training workload and rebuild with the same configuration. The
/// degenerate full refresh — right when every unit is stale, when the
/// *query* distribution moved (partitioning is not retrainable per
/// unit), or under a non-row-stable shard plan.
pub fn refresh(
    engine: &QueryEngine<'_>,
    pred: &dyn PredicateFn,
    agg: Aggregate,
    train_queries: &[Vec<f64>],
    cfg: &NeuroSketchConfig,
) -> Result<(NeuroSketch, BuildReport), SketchError> {
    NeuroSketch::build(engine, pred, agg, train_queries, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{build_sharded, ShardPlan};
    use datagen::simple::{drift_batch, gaussian, uniform};
    use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

    fn workload(seed: u64) -> Workload {
        Workload::generate(&WorkloadConfig {
            dims: 1,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::WidthBetween(0.2, 0.6),
            count: 400,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn fresh_sketch_is_not_stale() {
        let data = uniform(3_000, 1, 1);
        let engine = QueryEngine::new(&data, 0);
        let wl = workload(2);
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 120;
        let (sketch, _) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Avg, &wl.queries, &cfg).unwrap();
        let monitor = DriftMonitor::new(wl.queries[..100].to_vec(), 0.2).unwrap();
        let report = monitor.check(&sketch, &engine, &wl.predicate, Aggregate::Avg);
        assert!(
            !report.stale,
            "fresh sketch flagged stale (nmae {})",
            report.nmae
        );
    }

    #[test]
    fn distribution_shift_is_detected_and_refresh_fixes_it() {
        // Train on uniform data, then the data "drifts" to a sharp
        // Gaussian: COUNT answers change drastically.
        let old = uniform(3_000, 1, 1);
        let old_engine = QueryEngine::new(&old, 0);
        let wl = workload(3);
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 120;
        let (sketch, _) = NeuroSketch::build(
            &old_engine,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg,
        )
        .unwrap();

        let new = gaussian(3_000, 1, 0.2, 0.05, 9);
        let new_engine = QueryEngine::new(&new, 0);
        let monitor = DriftMonitor::new(wl.queries[..100].to_vec(), 0.2)
            .unwrap()
            .with_threads(3);
        assert_eq!(monitor.threads(), 3);

        let drifted = monitor.check(&sketch, &new_engine, &wl.predicate, Aggregate::Count);
        assert!(drifted.stale, "drift not detected (nmae {})", drifted.nmae);

        let (fresh, _) = refresh(
            &new_engine,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg,
        )
        .unwrap();
        let fixed = monitor.check(&fresh, &new_engine, &wl.predicate, Aggregate::Count);
        assert!(
            fixed.nmae < drifted.nmae * 0.5,
            "refresh should halve error: {} -> {}",
            drifted.nmae,
            fixed.nmae
        );
    }

    #[test]
    fn monitor_construction_errors_are_typed() {
        assert_eq!(
            DriftMonitor::new(vec![], 0.1).unwrap_err(),
            SketchError::EmptyProbe
        );
        assert_eq!(
            DriftMonitor::new(vec![vec![0.5, 0.5]], 0.0).unwrap_err(),
            SketchError::BadThreshold { got: 0.0 }
        );
        assert!(matches!(
            DriftMonitor::new(vec![vec![0.5, 0.5]], f64::NAN).unwrap_err(),
            SketchError::BadThreshold { .. }
        ));
    }

    /// Localized drift (a blob appended at x ≈ 0.2) must stale only the
    /// query-space partitions whose probes cover the blob; the partial
    /// refresh retrains those and provably leaves every fresh
    /// partition's answers bitwise unchanged.
    #[test]
    fn monolithic_partial_refresh_touches_only_stale_partitions() {
        let mut data = uniform(4_000, 1, 1);
        let wl = workload(5);
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 2;
        cfg.target_partitions = 4;
        cfg.train.epochs = 120;
        let engine = QueryEngine::new(&data, 0);
        let (mut sketch, _) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();

        // Ingest a hard localized shift through the incremental path.
        let snapshot = engine.into_snapshot();
        data.append(&drift_batch(2_000, 1, 1.0, 0.2, 7)).unwrap();
        let engine = QueryEngine::resume(snapshot, &data).unwrap();

        let monitor = DriftMonitor::new(wl.queries[..200].to_vec(), 0.15).unwrap();
        let plan = MaintenancePlan::new(monitor, cfg.clone());
        let before: Vec<f64> = wl.queries.iter().map(|q| sketch.answer(q)).collect();
        let drifted = plan
            .monitor
            .check(&sketch, &engine, &wl.predicate, Aggregate::Count);
        assert!(
            drifted.stale,
            "setup failed to drift (nmae {})",
            drifted.nmae
        );
        let report = plan
            .refresh_monolithic(
                &mut sketch,
                &engine,
                &wl.predicate,
                Aggregate::Count,
                &wl.queries,
            )
            .unwrap();

        assert!(!report.retrained.is_empty(), "no partition went stale");
        assert!(
            report.retrained.len() < sketch.partitions(),
            "drift at one end of the domain staled every partition: {:?}",
            report.units
        );
        assert!(report.deferred.is_empty());
        // Fresh partitions: answers bitwise unchanged for every query
        // routing to them. Stale partitions: actually retrained.
        let mut stale_changed = false;
        for (q, b) in wl.queries.iter().zip(&before) {
            let unit = sketch.leaf_index_of(q);
            let after = sketch.answer(q);
            if report.retrained.contains(&unit) {
                stale_changed |= after != *b;
            } else {
                assert_eq!(after, *b, "fresh partition {unit} drifted");
            }
        }
        assert!(stale_changed, "retraining changed nothing");
        // And the retrain substantially recovered the drifted error
        // (the blob is genuinely harder to fit than uniform data, so
        // assert improvement, not perfection).
        let after_check = plan
            .monitor
            .check(&sketch, &engine, &wl.predicate, Aggregate::Count);
        assert!(
            after_check.nmae < drifted.nmae * 0.6,
            "refresh barely helped: {} -> {}",
            drifted.nmae,
            after_check.nmae
        );
    }

    /// The budget caps a cycle's work at the worst units and defers the
    /// rest, and a stale unit with no training queries is a typed error.
    #[test]
    fn budget_defers_and_missing_train_queries_are_typed() {
        let mut data = uniform(3_000, 1, 2);
        let wl = workload(6);
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 2;
        cfg.target_partitions = 4;
        cfg.train.epochs = 60;
        let engine = QueryEngine::new(&data, 0);
        let (mut sketch, _) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        let snapshot = engine.into_snapshot();
        // Global drift: everything goes stale.
        data.append(&gaussian(6_000, 1, 0.3, 0.05, 11)).unwrap();
        let engine = QueryEngine::resume(snapshot, &data).unwrap();

        let monitor = DriftMonitor::new(wl.queries[..200].to_vec(), 0.05).unwrap();
        let mut plan = MaintenancePlan::new(monitor, cfg.clone());
        plan.max_retrain = Some(1);
        let report = plan
            .refresh_monolithic(
                &mut sketch,
                &engine,
                &wl.predicate,
                Aggregate::Count,
                &wl.queries,
            )
            .unwrap();
        assert_eq!(report.retrained.len(), 1);
        assert!(
            !report.deferred.is_empty(),
            "nothing deferred: {:?}",
            report.units
        );
        assert_eq!(
            report.stale_units(),
            report.retrained.len() + report.deferred.len()
        );
        // The retrained unit is the worst one.
        let worst = report
            .units
            .iter()
            .max_by(|a, b| a.nmae.total_cmp(&b.nmae))
            .unwrap();
        assert_eq!(report.retrained[0], worst.unit);

        // A stale unit whose training slice is empty is a typed error:
        // probe queries reach it but no training query does (here, an
        // empty training workload makes every slice empty).
        let monitor = DriftMonitor::new(wl.queries[..50].to_vec(), 0.05).unwrap();
        let plan = MaintenancePlan::new(monitor, cfg.clone());
        let err = plan
            .refresh_monolithic(&mut sketch, &engine, &wl.predicate, Aggregate::Count, &[])
            .unwrap_err();
        assert!(matches!(err, SketchError::BadWorkload(_)), "{err:?}");
    }

    /// Sharded partial refresh: an explicitly forced stale set rebuilds
    /// exactly those shards — bitwise equal to what a full rebuild
    /// produces for them — and leaves the others' models untouched.
    #[test]
    fn sharded_partial_refresh_is_bitwise_full_rebuild_on_stale_shards() {
        let mut data = uniform(1_200, 2, 3);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: 150,
            seed: 9,
        })
        .unwrap();
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 15;
        let plan = ShardPlan::Hash { shards: 4, seed: 2 };
        let (mut sharded, _) = build_sharded(
            &data,
            1,
            &plan,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg,
        )
        .unwrap();

        data.append(&drift_batch(600, 2, 1.0, 0.25, 13)).unwrap();
        let before: Vec<Vec<f64>> = sharded
            .shards()
            .iter()
            .map(|s| {
                wl.queries
                    .iter()
                    .take(40)
                    .map(|q| {
                        s.model(query::aggregate::MomentKind::Count)
                            .unwrap()
                            .answer(q)
                    })
                    .collect()
            })
            .collect();

        retrain_shards(
            &mut sharded,
            &data,
            1,
            &wl.predicate,
            &wl.queries,
            &cfg,
            &[1, 3],
        )
        .unwrap();

        // Full rebuild over the same grown table for comparison.
        let (full, _) = build_sharded(
            &data,
            1,
            &plan,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg,
        )
        .unwrap();
        for (k, shard) in sharded.shards().iter().enumerate() {
            let model = shard.model(query::aggregate::MomentKind::Count).unwrap();
            for (i, q) in wl.queries.iter().take(40).enumerate() {
                if [1usize, 3].contains(&k) {
                    // Rebuilt: bitwise what the full rebuild trained.
                    let full_model = full.shards()[k]
                        .model(query::aggregate::MomentKind::Count)
                        .unwrap();
                    assert_eq!(model.answer(q), full_model.answer(q), "shard {k}");
                } else {
                    // Untouched: bitwise the pre-refresh model.
                    assert_eq!(model.answer(q), before[k][i], "shard {k}");
                }
            }
        }
    }

    /// refresh_sharded runs the detect half too: with a threshold set
    /// between per-shard errors, only the worst shards rebuild.
    #[test]
    fn sharded_refresh_respects_budget_and_blocks_is_refused() {
        let mut data = uniform(1_000, 2, 5);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: 120,
            seed: 11,
        })
        .unwrap();
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 15;
        let (mut sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: 4 },
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg,
        )
        .unwrap();
        data.append(&drift_batch(500, 2, 1.0, 0.3, 17)).unwrap();

        let monitor = DriftMonitor::new(wl.queries[..80].to_vec(), 0.05).unwrap();
        let mut plan = MaintenancePlan::new(monitor, cfg.clone());
        plan.max_retrain = Some(1);
        let report = plan
            .refresh_sharded(&mut sharded, &data, 1, &wl.predicate, &wl.queries)
            .unwrap();
        assert_eq!(report.units.len(), 4);
        assert!(report.retrained.len() <= 1);

        // Blocks plans reassign rows on append: partial refresh is a
        // typed refusal, full coverage is allowed — and an empty stale
        // set (a cycle that found nothing) is a no-op, never an error.
        let (mut blocks, _) = build_sharded(
            &data,
            1,
            &ShardPlan::Blocks { shards: 2 },
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg,
        )
        .unwrap();
        let err = retrain_shards(
            &mut blocks,
            &data,
            1,
            &wl.predicate,
            &wl.queries,
            &cfg,
            &[0],
        )
        .unwrap_err();
        assert!(matches!(err, SketchError::BadConfig(_)), "{err:?}");
        retrain_shards(&mut blocks, &data, 1, &wl.predicate, &wl.queries, &cfg, &[]).unwrap();
        retrain_shards(
            &mut blocks,
            &data,
            1,
            &wl.predicate,
            &wl.queries,
            &cfg,
            &[0, 1],
        )
        .unwrap();

        // Out-of-range stale units are typed.
        assert_eq!(
            retrain_shards(
                &mut blocks,
                &data,
                1,
                &wl.predicate,
                &wl.queries,
                &cfg,
                &[9],
            )
            .unwrap_err(),
            SketchError::NoSuchUnit { unit: 9, units: 2 }
        );
    }
}
