//! First-order optimizers. The paper trains with Adam (Kingma & Ba, 2014);
//! plain SGD is included for the construction-vs-SGD study (Fig. 19).

use crate::linalg::Matrix;
use crate::mlp::{Gradients, Mlp};

/// A stateful optimizer that applies [`Gradients`] to an [`Mlp`].
pub trait Optimizer {
    /// Apply one update step using `scale * grads`. `grads` must be
    /// shaped like `mlp`.
    ///
    /// The batched training loop hands the optimizer **summed** batch
    /// gradients with `scale = 1/batch_size`; folding the average into
    /// the update avoids a whole extra pass over the gradient buffers
    /// per step, and multiplies in the same order the scale-then-step
    /// path did, so results are bit-identical.
    fn step_scaled(&mut self, mlp: &mut Mlp, grads: &Gradients, scale: f64);

    /// Apply one update step. `grads` must be shaped like `mlp`.
    fn step(&mut self, mlp: &mut Mlp, grads: &Gradients) {
        self.step_scaled(mlp, grads, 1.0);
    }
}

/// Plain stochastic gradient descent with a fixed learning rate.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Optimizer for Sgd {
    fn step_scaled(&mut self, mlp: &mut Mlp, grads: &Gradients, scale: f64) {
        for (layer, (dw, db)) in mlp.layers_mut().iter_mut().zip(&grads.layers) {
            let w = layer.weights.as_mut_slice();
            for (wi, gi) in w.iter_mut().zip(dw.as_slice()) {
                *wi -= self.lr * (gi * scale);
            }
            for (bi, gi) in layer.biases.iter_mut().zip(db) {
                *bi -= self.lr * (gi * scale);
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba 2014) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper/TF default 1e-3).
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    t: u64,
    m: Option<Vec<(Matrix, Vec<f64>)>>,
    v: Option<Vec<(Matrix, Vec<f64>)>>,
}

impl Adam {
    /// Adam with standard hyperparameters and the given learning rate.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: None,
            v: None,
        }
    }

    fn ensure_state(&mut self, grads: &Gradients) {
        if self.m.is_none() {
            let zeros = || {
                grads
                    .layers
                    .iter()
                    .map(|(w, b)| (Matrix::zeros(w.rows(), w.cols()), vec![0.0; b.len()]))
                    .collect::<Vec<_>>()
            };
            self.m = Some(zeros());
            self.v = Some(zeros());
        }
    }
}

impl Optimizer for Adam {
    fn step_scaled(&mut self, mlp: &mut Mlp, grads: &Gradients, scale: f64) {
        self.ensure_state(grads);
        self.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let m = self.m.as_mut().expect("state initialized");
        let v = self.v.as_mut().expect("state initialized");
        for (li, layer) in mlp.layers_mut().iter_mut().enumerate() {
            let (dw, db) = &grads.layers[li];
            let (mw, mb) = &mut m[li];
            let (vw, vb) = &mut v[li];
            let ws = layer.weights.as_mut_slice();
            for (((wi, gi), mi), vi) in ws
                .iter_mut()
                .zip(dw.as_slice())
                .zip(mw.as_mut_slice())
                .zip(vw.as_mut_slice())
            {
                let g = gi * scale;
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *wi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            for (((bi, gi), mi), vi) in layer
                .biases
                .iter_mut()
                .zip(db)
                .zip(mb.iter_mut())
                .zip(vb.iter_mut())
            {
                let g = gi * scale;
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *bi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::accumulate_example_gradient;

    /// One optimizer step on a single example must reduce that example's
    /// loss for a reasonable learning rate.
    fn loss_decreases_with<O: Optimizer>(mut opt: O) {
        let mut mlp = Mlp::new(&[2, 8, 1], 3);
        let x = [0.2, 0.8];
        let y = [2.0];
        let before = {
            let p = mlp.predict(&x);
            (p - y[0]).powi(2)
        };
        for _ in 0..50 {
            let mut g = Gradients::zeros_like(&mlp);
            accumulate_example_gradient(&mlp, &x, &y, &mut g);
            opt.step(&mut mlp, &g);
        }
        let after = {
            let p = mlp.predict(&x);
            (p - y[0]).powi(2)
        };
        assert!(after < before * 0.5, "before {before} after {after}");
    }

    #[test]
    fn sgd_decreases_loss() {
        loss_decreases_with(Sgd { lr: 0.01 });
    }

    #[test]
    fn adam_decreases_loss() {
        loss_decreases_with(Adam::new(0.01));
    }

    #[test]
    fn step_scaled_matches_scale_then_step() {
        // step_scaled(g, s) must equal the two-pass grads.scale(s); step(g)
        // bit for bit — the batched training loop relies on this.
        let mut a = Mlp::new(&[2, 6, 1], 8);
        let mut b = a.clone();
        let x = [0.3, -0.4];
        let y = [0.7];
        let mut adam_a = Adam::new(0.01);
        let mut adam_b = Adam::new(0.01);
        for _ in 0..5 {
            let mut g = Gradients::zeros_like(&a);
            accumulate_example_gradient(&a, &x, &y, &mut g);
            adam_a.step_scaled(&mut a, &g, 0.25);

            let mut g2 = Gradients::zeros_like(&b);
            accumulate_example_gradient(&b, &x, &y, &mut g2);
            g2.scale(0.25);
            adam_b.step(&mut b, &g2);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // With a single constant gradient g on the first step, Adam's update
        // must be lr * g/|g| = lr * sign(g) up to eps.
        let mut mlp = Mlp::with_init(&[1, 1], crate::init::Init::Zeros, 0).unwrap();
        let mut g = Gradients::zeros_like(&mlp);
        g.layers[0].0.set(0, 0, 0.5);
        let mut adam = Adam::new(0.1);
        adam.step(&mut mlp, &g);
        let w = mlp.layers()[0].weights.get(0, 0);
        assert!((w + 0.1).abs() < 1e-6, "w = {w}, expected ~ -0.1");
    }
}
