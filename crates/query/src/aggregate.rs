//! Aggregation functions.
//!
//! The paper's theory covers COUNT, SUM and AVG; NeuroSketch itself makes
//! no assumption on the aggregate and is evaluated on STD and MEDIAN too
//! (Sec. 4.3, Fig. 9, Table 2). The empty-range convention is `0.0` for
//! every aggregate — the same convention the paper's training-label
//! generation implies (a query matching no rows contributes target 0).

use serde::{Deserialize, Serialize};

/// An aggregation function over the measure values of matching rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Aggregate {
    /// Number of matching rows.
    Count,
    /// Sum of the measure attribute.
    Sum,
    /// Mean of the measure attribute.
    Avg,
    /// Population standard deviation of the measure attribute.
    Std,
    /// Median (lower median for even counts) of the measure attribute.
    Median,
}

impl Aggregate {
    /// All aggregates, in the order of Fig. 9 plus MEDIAN.
    pub const ALL: [Aggregate; 5] = [
        Aggregate::Avg,
        Aggregate::Sum,
        Aggregate::Std,
        Aggregate::Count,
        Aggregate::Median,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Std => "STD",
            Aggregate::Median => "MEDIAN",
        }
    }

    /// Whether the aggregate's magnitude grows with data size (true for
    /// COUNT/SUM — the "normalize by n" cases of Sec. 3.1.1).
    pub fn scales_with_n(&self) -> bool {
        matches!(self, Aggregate::Count | Aggregate::Sum)
    }

    /// Apply to a *mutable* buffer of measure values of the matching rows
    /// (MEDIAN reorders the buffer in place; other aggregates leave it
    /// untouched). Empty input yields `0.0`.
    pub fn apply(&self, values: &mut [f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let n = values.len() as f64;
        match self {
            Aggregate::Count => n,
            Aggregate::Sum => values.iter().sum(),
            Aggregate::Avg => values.iter().sum::<f64>() / n,
            Aggregate::Std => {
                let mean = values.iter().sum::<f64>() / n;
                (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).sqrt()
            }
            Aggregate::Median => {
                let mid = (values.len() - 1) / 2;
                let (_, m, _) =
                    values.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("no NaN"));
                *m
            }
        }
    }

    /// Streaming variant for COUNT/SUM/AVG/STD that avoids materializing
    /// the matching values; returns `None` for MEDIAN (which needs them).
    pub fn apply_streaming(&self, it: impl Iterator<Item = f64>) -> Option<f64> {
        match self {
            Aggregate::Median => None,
            _ => {
                let (mut n, mut s, mut s2) = (0.0f64, 0.0f64, 0.0f64);
                for v in it {
                    n += 1.0;
                    s += v;
                    s2 += v * v;
                }
                Some(self.from_moments(n, s, s2).expect("non-median"))
            }
        }
    }

    /// Compute the aggregate from the first three moments of the matching
    /// measure values — `n` (count), `s` (sum), `s2` (sum of squares).
    /// Returns `None` for MEDIAN, which is not a function of moments.
    ///
    /// This is the closed form behind [`Aggregate::apply_streaming`], and
    /// what lets the query engine's sorted-column index answer range
    /// aggregates from prefix-sum differences without touching rows.
    pub fn from_moments(&self, n: f64, s: f64, s2: f64) -> Option<f64> {
        if matches!(self, Aggregate::Median) {
            return None;
        }
        if n == 0.0 {
            return Some(0.0);
        }
        Some(match self {
            Aggregate::Count => n,
            Aggregate::Sum => s,
            Aggregate::Avg => s / n,
            Aggregate::Std => {
                let mean = s / n;
                (s2 / n - mean * mean).max(0.0).sqrt()
            }
            Aggregate::Median => unreachable!(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(agg: Aggregate, vals: &[f64]) -> f64 {
        agg.apply(&mut vals.to_vec())
    }

    #[test]
    fn count_sum_avg() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(apply(Aggregate::Count, &v), 4.0);
        assert_eq!(apply(Aggregate::Sum, &v), 10.0);
        assert_eq!(apply(Aggregate::Avg, &v), 2.5);
    }

    #[test]
    fn std_population() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((apply(Aggregate::Std, &v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(apply(Aggregate::Median, &[5.0, 1.0, 3.0]), 3.0);
        // Lower median for even counts.
        assert_eq!(apply(Aggregate::Median, &[4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(apply(Aggregate::Median, &[9.0]), 9.0);
    }

    #[test]
    fn empty_yields_zero() {
        for agg in Aggregate::ALL {
            assert_eq!(agg.apply(&mut []), 0.0, "{}", agg.name());
        }
    }

    #[test]
    fn streaming_matches_materialized() {
        let v = [1.0, 5.0, 2.0, 8.0, 3.5];
        for agg in [
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::Std,
        ] {
            let a = apply(agg, &v);
            let b = agg.apply_streaming(v.iter().copied()).unwrap();
            assert!((a - b).abs() < 1e-12, "{}", agg.name());
        }
        assert!(Aggregate::Median
            .apply_streaming(v.iter().copied())
            .is_none());
    }

    #[test]
    fn scales_with_n_flags() {
        assert!(Aggregate::Count.scales_with_n());
        assert!(Aggregate::Sum.scales_with_n());
        assert!(!Aggregate::Avg.scales_with_n());
        assert!(!Aggregate::Median.scales_with_n());
    }
}
