//! Compact binary model format.
//!
//! JSON serialization ([`Mlp::to_json`]) is convenient but ~5x larger
//! than the paper's model-size accounting (4 bytes per parameter). This
//! module provides that compact form: a small header, per-layer
//! dimensions, and `f32` parameters — the format a production release of
//! NeuroSketch would actually ship to consumers.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  u32 = 0x4E53_4B31 ("NSK1")
//! layers u32
//! per layer: out u32, in u32, activation u8 (0 = ReLU, 1 = identity)
//! per layer: weights (out*in f32, row-major), biases (out f32)
//! ```

use crate::activation::Activation;
use crate::linalg::Matrix;
use crate::mlp::{Dense, Mlp};
use crate::NnError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x4E53_4B31;

/// Exact size in bytes of [`encode`]'s output for a given model: header,
/// layer table, and 4 bytes per parameter. Used by whole-sketch
/// containers (the NSK2 format in `neurosketch::persist`) to pre-size
/// buffers and to check size accounting against the paper's
/// 4-bytes-per-parameter model-size numbers.
pub fn encoded_len(mlp: &Mlp) -> usize {
    8 + mlp.layers().len() * 9 + mlp.param_count() * 4
}

/// Encode an [`Mlp`] into the compact `f32` binary format.
pub fn encode(mlp: &Mlp) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + mlp.param_count() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(mlp.layers().len() as u32);
    for layer in mlp.layers() {
        buf.put_u32_le(layer.out_dim() as u32);
        buf.put_u32_le(layer.in_dim() as u32);
        buf.put_u8(match layer.activation {
            Activation::Relu => 0,
            Activation::Identity => 1,
        });
    }
    for layer in mlp.layers() {
        for w in layer.weights.as_slice() {
            buf.put_f32_le(*w as f32);
        }
        for b in &layer.biases {
            buf.put_f32_le(*b as f32);
        }
    }
    buf.freeze()
}

/// Decode a model produced by [`encode`]. Parameters come back as the
/// `f32`-rounded values (the paper's storage model).
pub fn decode(mut data: Bytes) -> Result<Mlp, NnError> {
    let fail = |m: &str| NnError::Serde(m.to_string());
    if data.remaining() < 8 {
        return Err(fail("truncated header"));
    }
    if data.get_u32_le() != MAGIC {
        return Err(fail("bad magic"));
    }
    let n_layers = data.get_u32_le() as usize;
    if n_layers == 0 || n_layers > 1024 {
        return Err(fail("implausible layer count"));
    }
    let mut shapes = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        if data.remaining() < 9 {
            return Err(fail("truncated layer table"));
        }
        let out = data.get_u32_le() as usize;
        let inp = data.get_u32_le() as usize;
        let act = match data.get_u8() {
            0 => Activation::Relu,
            1 => Activation::Identity,
            _ => return Err(fail("unknown activation tag")),
        };
        if out == 0 || inp == 0 {
            return Err(fail("zero-sized layer"));
        }
        shapes.push((out, inp, act));
    }
    let mut layers = Vec::with_capacity(n_layers);
    for (out, inp, act) in shapes {
        // Checked size math: a corrupt layer table can declare dimensions
        // whose parameter-byte count overflows `usize` multiplication —
        // wrapping here would defeat the truncation check below and
        // attempt an enormous allocation. Overflow means the declared
        // layer cannot possibly fit in any real buffer: typed error.
        let params = (out as u64)
            .checked_mul(inp as u64)
            .and_then(|wb| wb.checked_add(out as u64))
            .ok_or_else(|| fail("layer dimensions overflow"))?;
        let need = params
            .checked_mul(4)
            .ok_or_else(|| fail("layer dimensions overflow"))?;
        if (data.remaining() as u64) < need {
            return Err(fail("truncated parameters"));
        }
        let mut w = Vec::with_capacity(out * inp);
        for _ in 0..out * inp {
            w.push(data.get_f32_le() as f64);
        }
        let mut b = Vec::with_capacity(out);
        for _ in 0..out {
            b.push(data.get_f32_le() as f64);
        }
        layers.push(Dense {
            weights: Matrix::from_vec(out, inp, w),
            biases: b,
            activation: act,
        });
    }
    Mlp::from_layers(layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_f32_values() {
        let mlp = Mlp::new(&[3, 8, 8, 1], 5);
        let blob = encode(&mlp);
        // Header + layer table + params.
        assert_eq!(blob.len(), 8 + 3 * 9 + mlp.param_count() * 4);
        let back = decode(blob).unwrap();
        assert_eq!(back.input_dim(), 3);
        assert_eq!(back.param_count(), mlp.param_count());
        // Outputs agree to f32 precision.
        for i in 0..20 {
            let x = [i as f64 * 0.05, 0.3, 0.7];
            let a = mlp.predict(&x);
            let b = back.predict(&x);
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let mlp = Mlp::new(&[4, 60, 30, 30, 1], 0);
        let json = mlp.to_json().unwrap().len();
        let bin = encode(&mlp).len();
        assert!(bin * 3 < json, "bin {bin} json {json}");
        // Within 1% of the paper's 4-bytes-per-parameter accounting.
        assert!(bin < mlp.storage_bytes() + 64);
    }

    #[test]
    fn rejects_corrupt_input() {
        let mlp = Mlp::new(&[2, 4, 1], 1);
        let blob = encode(&mlp);
        assert!(decode(Bytes::from_static(b"nope")).is_err());
        let mut bad_magic = blob.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(decode(Bytes::from(bad_magic)).is_err());
        let truncated = blob.slice(0..blob.len() - 10);
        assert!(decode(truncated).is_err());
    }

    #[test]
    fn encoded_len_matches_encode() {
        for sizes in [&[2usize, 4, 1][..], &[4, 60, 30, 30, 1], &[1, 1]] {
            let mlp = Mlp::new(sizes, 3);
            assert_eq!(encode(&mlp).len(), encoded_len(&mlp), "{sizes:?}");
        }
    }

    #[test]
    fn rejects_overflowing_layer_dims_without_panicking() {
        // Hand-craft a header whose single layer declares u32::MAX x
        // u32::MAX parameters: the byte count overflows 64-bit math when
        // multiplied out naively. Must yield a typed error, not a panic
        // or an attempted allocation.
        let mut buf = BytesMut::with_capacity(17);
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(1); // one layer
        buf.put_u32_le(u32::MAX); // out
        buf.put_u32_le(u32::MAX); // in
        buf.put_u8(0); // relu
        let err = decode(buf.freeze()).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("overflow"), "unexpected error: {msg}");
    }

    #[test]
    fn decoded_roundtrips_again_identically() {
        // After one f32 round trip, further round trips are lossless.
        let mlp = Mlp::new(&[2, 6, 1], 9);
        let once = decode(encode(&mlp)).unwrap();
        let twice = decode(encode(&once)).unwrap();
        assert_eq!(once, twice);
    }
}
