//! Test-run configuration.

/// Mirrors `proptest::test_runner::Config` (the fields used here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}
