//! DQD-guided query routing (Sec. 4.3, "NeuroSketch and DQD in
//! Practice").
//!
//! The paper proposes that a query processing engine use the DQD bound
//! *on the fly*: "queries with large ranges (that NeuroSketch answers
//! accurately according to DQD) can be answered by NeuroSketch, while
//! queries with smaller ranges can be asked directly from the database",
//! and during maintenance AQC decides which query functions are too hard
//! to model at all. [`DqdRouter`] implements both rules:
//!
//! * **range rule** — Lemma 3.6's `ξ` (match probability) grows with the
//!   range volume; below a volume threshold, route to the exact engine;
//! * **complexity rule** — if the query lands in a partition whose AQC
//!   exceeds a threshold, route to the exact engine.
//!
//! A router is the unit of deployment: [`crate::persist`] saves and
//! loads it (sketch + AQCs + policy, the NSK2 router section) and
//! [`crate::serve::SketchServer`] applies its rules to whole query
//! batches on the worker pool.

use crate::sketch::NeuroSketch;

/// Why a query was (or wasn't) routed to the sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Answer with the NeuroSketch forward pass.
    Sketch,
    /// Range too small — sampling error would dominate (Lemma 3.6).
    ExactSmallRange,
    /// Partition too complex — approximation error would dominate.
    ExactHardLeaf,
}

/// Routing thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingPolicy {
    /// Minimum fractional range volume (product of active widths) the
    /// sketch accepts. `0.0` disables the range rule.
    pub min_range_volume: f64,
    /// Maximum per-partition AQC the sketch accepts. `f64::INFINITY`
    /// disables the complexity rule.
    pub max_leaf_aqc: f64,
}

impl Default for RoutingPolicy {
    fn default() -> Self {
        RoutingPolicy {
            min_range_volume: 0.0,
            max_leaf_aqc: f64::INFINITY,
        }
    }
}

/// A NeuroSketch paired with per-partition AQC estimates and a policy.
pub struct DqdRouter {
    sketch: NeuroSketch,
    /// AQC per partition, in the sketch's leaf order (as produced by
    /// `BuildReport::leaf_aqcs`).
    leaf_aqcs: Vec<f64>,
    policy: RoutingPolicy,
}

impl DqdRouter {
    /// Pair a sketch with its build-time leaf AQCs (`report.leaf_aqcs`).
    ///
    /// # Panics
    /// Panics if `leaf_aqcs` does not have one entry per partition.
    pub fn new(sketch: NeuroSketch, leaf_aqcs: Vec<f64>, policy: RoutingPolicy) -> DqdRouter {
        assert_eq!(
            leaf_aqcs.len(),
            sketch.partitions(),
            "need one AQC per partition"
        );
        DqdRouter {
            sketch,
            leaf_aqcs,
            policy,
        }
    }

    /// The wrapped sketch.
    pub fn sketch(&self) -> &NeuroSketch {
        &self.sketch
    }

    /// Per-partition AQC estimates, in the sketch's leaf order.
    pub fn leaf_aqcs(&self) -> &[f64] {
        &self.leaf_aqcs
    }

    /// The active routing thresholds.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Unwrap into the sketch, discarding AQCs and policy.
    pub fn into_sketch(self) -> NeuroSketch {
        self.sketch
    }

    /// Decide where a query should go. `range_volume` is the product of
    /// the query's active range widths (`None` when the predicate has no
    /// meaningful volume, e.g. half-spaces — the range rule is skipped).
    pub fn route(&self, q: &[f64], range_volume: Option<f64>) -> Route {
        if let Some(v) = range_volume {
            if v < self.policy.min_range_volume {
                return Route::ExactSmallRange;
            }
        }
        let leaf = self.sketch.leaf_index_of(q);
        if self.leaf_aqcs[leaf] > self.policy.max_leaf_aqc {
            return Route::ExactHardLeaf;
        }
        Route::Sketch
    }

    /// Answer a query, falling back to `exact` when the policy routes
    /// away from the sketch. Returns the answer and the route taken.
    pub fn answer(
        &self,
        q: &[f64],
        range_volume: Option<f64>,
        exact: impl FnOnce(&[f64]) -> f64,
    ) -> (f64, Route) {
        let route = self.route(q, range_volume);
        let v = match route {
            Route::Sketch => self.sketch.answer(q),
            _ => exact(q),
        };
        (v, route)
    }
}

/// Range volume of a `[c..., r...]` query vector over `k` active
/// attributes: the product of the widths.
pub fn range_volume(q: &[f64], k: usize) -> f64 {
    assert!(
        q.len() >= 2 * k,
        "query vector too short for {k} active attrs"
    );
    q[k..2 * k].iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::NeuroSketchConfig;

    fn tiny_sketch() -> (NeuroSketch, Vec<f64>) {
        let qs: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
            .collect();
        let labels: Vec<f64> = qs.iter().map(|q| q[0] + q[1]).collect();
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 1;
        cfg.target_partitions = 2;
        cfg.train.epochs = 10;
        let (s, r) = NeuroSketch::build_from_labeled(&qs, &labels, &cfg).unwrap();
        (s, r.leaf_aqcs)
    }

    #[test]
    fn permissive_policy_always_routes_to_sketch() {
        let (s, aqcs) = tiny_sketch();
        let router = DqdRouter::new(s, aqcs, RoutingPolicy::default());
        assert_eq!(router.route(&[0.3, 0.2], Some(1e-9)), Route::Sketch);
        let (v, route) = router.answer(&[0.3, 0.2], None, |_| panic!("no fallback"));
        assert_eq!(route, Route::Sketch);
        assert!(v.is_finite());
    }

    #[test]
    fn small_ranges_fall_back_to_exact() {
        let (s, aqcs) = tiny_sketch();
        let policy = RoutingPolicy {
            min_range_volume: 0.01,
            ..RoutingPolicy::default()
        };
        let router = DqdRouter::new(s, aqcs, policy);
        assert_eq!(
            router.route(&[0.3, 0.2], Some(0.001)),
            Route::ExactSmallRange
        );
        assert_eq!(router.route(&[0.3, 0.2], Some(0.5)), Route::Sketch);
        // Volume-less predicates skip the range rule.
        assert_eq!(router.route(&[0.3, 0.2], None), Route::Sketch);
        let (v, route) = router.answer(&[0.3, 0.2], Some(0.001), |_| 42.0);
        assert_eq!((v, route), (42.0, Route::ExactSmallRange));
    }

    #[test]
    fn hard_leaves_fall_back_to_exact() {
        let (s, mut aqcs) = tiny_sketch();
        // Make one partition "hard": any query landing in it re-routes.
        let hard = aqcs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for a in &mut aqcs {
            if *a == hard {
                *a = 1e9;
            }
        }
        let policy = RoutingPolicy {
            max_leaf_aqc: 1e6,
            ..RoutingPolicy::default()
        };
        let router = DqdRouter::new(s, aqcs.clone(), policy);
        // Some query must land in the hard partition; probe a grid.
        let mut hit_hard = false;
        let mut hit_easy = false;
        for i in 0..10 {
            for j in 0..10 {
                let q = [i as f64 / 10.0, j as f64 / 10.0];
                match router.route(&q, None) {
                    Route::ExactHardLeaf => hit_hard = true,
                    Route::Sketch => hit_easy = true,
                    Route::ExactSmallRange => unreachable!("range rule disabled"),
                }
            }
        }
        assert!(hit_hard && hit_easy, "hard {hit_hard} easy {hit_easy}");
    }

    #[test]
    fn range_volume_multiplies_widths() {
        assert!((range_volume(&[0.1, 0.2, 0.5, 0.4], 2) - 0.2).abs() < 1e-12);
        assert_eq!(range_volume(&[0.0, 1.0], 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "one AQC per partition")]
    fn mismatched_aqcs_panic() {
        let (s, _) = tiny_sketch();
        let _ = DqdRouter::new(s, vec![1.0], RoutingPolicy::default());
    }
}
