//! Compact binary model format.
//!
//! JSON serialization ([`Mlp::to_json`]) is convenient but ~5x larger
//! than the paper's model-size accounting (4 bytes per parameter). This
//! module provides that compact form — and two opt-in quantized
//! variants below it — the formats a production release of NeuroSketch
//! would actually ship to consumers. The [`QuantMode`] selects the
//! parameter encoding:
//!
//! * [`QuantMode::F32`] — 4 B/param, the paper's storage model. Lossy
//!   exactly once (f64 → f32); further round trips are bitwise.
//! * [`QuantMode::F16`] — 2 B/param IEEE 754 binary16, round-to-nearest
//!   -even with saturation at ±65504 (the encoder never emits
//!   infinities, so any non-finite half in a blob is corruption).
//! * [`QuantMode::I8`] — 1 B/param plus one f32 scale per tensor
//!   (weight matrix or bias vector). The scale is the minimal **power
//!   of two** `p` with `max|v| < 127.5·p`, so `q = round(v/p)` fits in
//!   `[-127, 127]` and the dequantized value `q·p` is *exact* in f32.
//!
//! All three decode to a deterministic dequantized [`Mlp`], so
//! load → re-encode is byte-idempotent for every mode and answers are
//! bitwise reproducible across loads.
//!
//! Layout (little-endian; `magic` selects the mode):
//!
//! ```text
//! magic  u32 = 0x4E53_4B31 (f32) | 0x4E53_4B66 (f16) | 0x4E53_4B71 (i8)
//! layers u32
//! per layer: out u32, in u32, activation u8 (0 = ReLU, 1 = identity)
//! f32: per layer: weights (out*in f32, row-major), biases (out f32)
//! f16: per layer: weights (out*in u16),            biases (out u16)
//! i8:  per layer: wscale f32, weights (out*in i8), bscale f32, biases (out i8)
//! ```

use crate::activation::Activation;
use crate::linalg::Matrix;
use crate::mlp::{Dense, Mlp};
use crate::NnError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

const MAGIC: u32 = 0x4E53_4B31;
const MAGIC_F16: u32 = 0x4E53_4B66;
const MAGIC_I8: u32 = 0x4E53_4B71;

/// Parameter encoding of a model blob. See the module docs for the
/// accuracy contract of each mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantMode {
    /// 4 B/param `f32` — the paper's storage accounting; highest fidelity.
    F32,
    /// 2 B/param IEEE 754 binary16, saturating at ±65504.
    F16,
    /// 1 B/param `i8` with one power-of-two f32 scale per tensor.
    I8,
}

impl QuantMode {
    /// Every mode, in fidelity order (f32 first).
    pub const ALL: [QuantMode; 3] = [QuantMode::F32, QuantMode::F16, QuantMode::I8];

    /// Stable one-byte wire tag (recorded per model in NSK2 v3 headers).
    pub fn tag(self) -> u8 {
        match self {
            QuantMode::F32 => 0,
            QuantMode::F16 => 1,
            QuantMode::I8 => 2,
        }
    }

    /// Inverse of [`QuantMode::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<QuantMode> {
        match tag {
            0 => Some(QuantMode::F32),
            1 => Some(QuantMode::F16),
            2 => Some(QuantMode::I8),
            _ => None,
        }
    }

    /// Lower-case human name (`"f32"` / `"f16"` / `"i8"`), as used by
    /// CLI flags and bench entry names.
    pub fn name(self) -> &'static str {
        match self {
            QuantMode::F32 => "f32",
            QuantMode::F16 => "f16",
            QuantMode::I8 => "i8",
        }
    }

    /// Parse a [`QuantMode::name`] string (case-sensitive).
    pub fn parse(s: &str) -> Option<QuantMode> {
        match s {
            "f32" => Some(QuantMode::F32),
            "f16" => Some(QuantMode::F16),
            "i8" => Some(QuantMode::I8),
            _ => None,
        }
    }

    fn magic(self) -> u32 {
        match self {
            QuantMode::F32 => MAGIC,
            QuantMode::F16 => MAGIC_F16,
            QuantMode::I8 => MAGIC_I8,
        }
    }
}

impl Default for QuantMode {
    /// `F32`: the pre-quantization behavior of every save API.
    fn default() -> Self {
        QuantMode::F32
    }
}

/// Exact size in bytes of [`encode`]'s output for a given model: header,
/// layer table, and 4 bytes per parameter. Used by whole-sketch
/// containers (the NSK2 format in `neurosketch::persist`) to pre-size
/// buffers and to check size accounting against the paper's
/// 4-bytes-per-parameter model-size numbers.
pub fn encoded_len(mlp: &Mlp) -> usize {
    encoded_len_with(mlp, QuantMode::F32)
}

/// Exact size in bytes of [`encode_with`]'s output for a given model
/// and mode. The i8 form pays 8 extra bytes per layer (one f32 scale
/// each for the weight matrix and the bias vector).
pub fn encoded_len_with(mlp: &Mlp, mode: QuantMode) -> usize {
    let header = 8 + mlp.layers().len() * 9;
    match mode {
        QuantMode::F32 => header + mlp.param_count() * 4,
        QuantMode::F16 => header + mlp.param_count() * 2,
        QuantMode::I8 => header + mlp.layers().len() * 8 + mlp.param_count(),
    }
}

/// Encode an [`Mlp`] into the compact `f32` binary format
/// ([`encode_with`] at [`QuantMode::F32`]).
pub fn encode(mlp: &Mlp) -> Bytes {
    encode_with(mlp, QuantMode::F32)
}

/// Encode an [`Mlp`] with the given parameter encoding.
pub fn encode_with(mlp: &Mlp, mode: QuantMode) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len_with(mlp, mode));
    buf.put_u32_le(mode.magic());
    buf.put_u32_le(mlp.layers().len() as u32);
    for layer in mlp.layers() {
        buf.put_u32_le(layer.out_dim() as u32);
        buf.put_u32_le(layer.in_dim() as u32);
        buf.put_u8(match layer.activation {
            Activation::Relu => 0,
            Activation::Identity => 1,
        });
    }
    for layer in mlp.layers() {
        let w = layer.weights.as_slice();
        let b = &layer.biases;
        match mode {
            QuantMode::F32 => {
                for v in w {
                    buf.put_f32_le(*v as f32);
                }
                for v in b {
                    buf.put_f32_le(*v as f32);
                }
            }
            QuantMode::F16 => {
                for v in w {
                    buf.put_u16_le(f32_to_f16_bits(*v as f32));
                }
                for v in b {
                    buf.put_u16_le(f32_to_f16_bits(*v as f32));
                }
            }
            QuantMode::I8 => {
                let ws = pow2_scale(max_abs_f32(w.iter().copied()));
                buf.put_f32_le(ws);
                for v in w {
                    buf.put_u8(i8_quant(*v as f32, ws) as u8);
                }
                let bs = pow2_scale(max_abs_f32(b.iter().copied()));
                buf.put_f32_le(bs);
                for v in b {
                    buf.put_u8(i8_quant(*v as f32, bs) as u8);
                }
            }
        }
    }
    buf.freeze()
}

/// Decode a model produced by [`encode`]. Parameters come back as the
/// `f32`-rounded values (the paper's storage model). Rejects the f16
/// and i8 magics — use [`decode_any`] when the mode is not known.
pub fn decode(mut data: Bytes) -> Result<Mlp, NnError> {
    let fail = |m: &str| NnError::Serde(m.to_string());
    if data.remaining() < 4 {
        return Err(fail("truncated header"));
    }
    if data.get_u32_le() != MAGIC {
        return Err(fail("bad magic"));
    }
    decode_body(data, QuantMode::F32)
}

/// Decode a model blob of any [`QuantMode`], dispatching on the magic.
/// Returns the deterministic dequantized model and the mode it was
/// stored in; re-encoding with that mode reproduces the input bytes.
pub fn decode_any(mut data: Bytes) -> Result<(Mlp, QuantMode), NnError> {
    let fail = |m: &str| NnError::Serde(m.to_string());
    if data.remaining() < 4 {
        return Err(fail("truncated header"));
    }
    let mode = match data.get_u32_le() {
        MAGIC => QuantMode::F32,
        MAGIC_F16 => QuantMode::F16,
        MAGIC_I8 => QuantMode::I8,
        _ => return Err(fail("bad magic")),
    };
    Ok((decode_body(data, mode)?, mode))
}

/// Decode everything after the magic word: the shared layer table, then
/// the mode's parameter sections.
fn decode_body(mut data: Bytes, mode: QuantMode) -> Result<Mlp, NnError> {
    let fail = |m: &str| NnError::Serde(m.to_string());
    if data.remaining() < 4 {
        return Err(fail("truncated header"));
    }
    let n_layers = data.get_u32_le() as usize;
    if n_layers == 0 || n_layers > 1024 {
        return Err(fail("implausible layer count"));
    }
    let mut shapes = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        if data.remaining() < 9 {
            return Err(fail("truncated layer table"));
        }
        let out = data.get_u32_le() as usize;
        let inp = data.get_u32_le() as usize;
        let act = match data.get_u8() {
            0 => Activation::Relu,
            1 => Activation::Identity,
            _ => return Err(fail("unknown activation tag")),
        };
        if out == 0 || inp == 0 {
            return Err(fail("zero-sized layer"));
        }
        shapes.push((out, inp, act));
    }
    let mut layers = Vec::with_capacity(n_layers);
    for (out, inp, act) in shapes {
        // Checked size math: a corrupt layer table can declare dimensions
        // whose parameter-byte count overflows `usize` multiplication —
        // wrapping here would defeat the truncation check below and
        // attempt an enormous allocation. Overflow means the declared
        // layer cannot possibly fit in any real buffer: typed error.
        let params = (out as u64)
            .checked_mul(inp as u64)
            .and_then(|wb| wb.checked_add(out as u64))
            .ok_or_else(|| fail("layer dimensions overflow"))?;
        let need = match mode {
            QuantMode::F32 => params.checked_mul(4),
            QuantMode::F16 => params.checked_mul(2),
            QuantMode::I8 => params.checked_add(8),
        }
        .ok_or_else(|| fail("layer dimensions overflow"))?;
        if (data.remaining() as u64) < need {
            return Err(fail("truncated parameters"));
        }
        let (w, b) = match mode {
            QuantMode::F32 => {
                let w = (0..out * inp).map(|_| data.get_f32_le() as f64).collect();
                let b = (0..out).map(|_| data.get_f32_le() as f64).collect();
                (w, b)
            }
            QuantMode::F16 => {
                let mut read = |n: usize| -> Result<Vec<f64>, NnError> {
                    (0..n)
                        .map(|_| {
                            let bits = data.get_u16_le();
                            if bits & 0x7C00 == 0x7C00 {
                                // Exponent all-ones: NaN or infinity. The
                                // encoder saturates, so this is corruption.
                                return Err(fail("non-finite f16 parameter"));
                            }
                            Ok(f16_bits_to_f32(bits) as f64)
                        })
                        .collect()
                };
                let w = read(out * inp)?;
                let b = read(out)?;
                (w, b)
            }
            QuantMode::I8 => {
                let mut read = |n: usize| -> Result<Vec<f64>, NnError> {
                    let scale = data.get_f32_le();
                    if scale != 0.0 && !is_pow2_f32(scale) {
                        return Err(fail("i8 scale is not a power of two"));
                    }
                    let mut vals = Vec::with_capacity(n);
                    for _ in 0..n {
                        let q = data.get_u8() as i8;
                        // A zero scale means the tensor was all-zero;
                        // nonzero quantized values under it would silently
                        // decode to zeros that re-encode differently —
                        // corruption. Check the raw byte: `q * 0.0` is
                        // `±0.0` and would slip past a value test.
                        if scale == 0.0 && q != 0 {
                            return Err(fail("zero i8 scale with nonzero values"));
                        }
                        vals.push((q as f32 * scale) as f64);
                    }
                    Ok(vals)
                };
                let w = read(out * inp)?;
                let b = read(out)?;
                (w, b)
            }
        };
        layers.push(Dense {
            weights: Matrix::from_vec(out, inp, w),
            biases: b,
            activation: act,
        });
    }
    Mlp::from_layers(layers)
}

// ------------------------------------------------------------ primitives

/// f32 → IEEE 754 binary16 bits, round-to-nearest-even, **saturating**
/// at ±65504 instead of overflowing to infinity — every value the
/// encoder writes decodes to a finite f32, and values already exactly
/// representable in binary16 (e.g. anything that came back from
/// [`f16_bits_to_f32`]) map to their own bit pattern, which is what
/// makes the f16 round trip byte-idempotent.
pub(crate) fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7FFF_FFFF;
    if abs >= 0x7F80_0000 {
        // NaN propagates as a half NaN (decode treats it as corruption);
        // infinity saturates like any other out-of-range magnitude.
        return if abs > 0x7F80_0000 {
            sign | 0x7E00
        } else {
            sign | 0x7BFF
        };
    }
    if abs >= 0x4780_0000 {
        // |x| >= 65536: past the half range before rounding — saturate.
        return sign | 0x7BFF;
    }
    if abs >= 0x3880_0000 {
        // Normal half (|x| >= 2^-14). Round in the f32 bit domain: add
        // (half-ulp - 1) plus the result's would-be LSB, then truncate —
        // ties go to even, exact values pass through untouched.
        let rounded = abs + 0x0FFF + ((abs >> 13) & 1);
        let h = ((rounded - 0x3800_0000) >> 13) as u16;
        if h >= 0x7C00 {
            // Rounded up into the infinity encoding: saturate.
            return sign | 0x7BFF;
        }
        sign | h
    } else {
        // Subnormal half: the value is h·2^-24 for h in 0..1024. Shift
        // the 24-bit significand down with round-to-nearest-even; a
        // carry out of h == 1024 lands exactly on the smallest normal.
        let e = (abs >> 23) as i32;
        if e < 102 {
            // |x| < 2^-25: rounds to (signed) zero.
            return sign;
        }
        let man = (abs & 0x007F_FFFF) | 0x0080_0000;
        let shift = (126 - e) as u32;
        let floor = man >> shift;
        let rem = man & ((1 << shift) - 1);
        let half = 1 << (shift - 1);
        let h = if rem > half || (rem == half && floor & 1 == 1) {
            floor + 1
        } else {
            floor
        };
        sign | h as u16
    }
}

/// IEEE 754 binary16 bits → the exactly-equal f32. Infinities and NaNs
/// (exponent field 31) are mapped too, but the decoder rejects those
/// bit patterns before calling this.
pub(crate) fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = if h & 0x8000 != 0 { -1.0f32 } else { 1.0 };
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x3FF) as f32;
    let mag = if exp == 0 {
        // Subnormal: man · 2^-24.
        man * f32::from_bits(103 << 23)
    } else if exp == 31 {
        if h & 0x3FF != 0 {
            f32::NAN
        } else {
            f32::INFINITY
        }
    } else {
        // Normal: (1024 + man) · 2^(exp - 25); both factors exact.
        (1024.0 + man) * f32::from_bits((102 + exp) << 23)
    };
    sign * mag
}

/// The i8 scale for a tensor with the given max magnitude: the minimal
/// power of two `p` with `max_abs < 127.5·p` (zero for an all-zero
/// tensor). Minimality makes the scale a pure function of the max
/// magnitude — and since the dequantized max is `round(max/p)·p` with
/// `round(max/p)` in `[64, 127]`, re-deriving the scale from the
/// dequantized tensor lands on the same `p`: the i8 round trip is
/// byte-idempotent.
pub(crate) fn pow2_scale(max_abs: f32) -> f32 {
    if max_abs == 0.0 {
        return 0.0;
    }
    let mut p = 1.0f32;
    while max_abs / p >= 127.5 {
        p *= 2.0;
    }
    while p * 0.5 > 0.0 && max_abs / (p * 0.5) < 127.5 {
        p *= 0.5;
    }
    p
}

/// Largest magnitude in the tensor, in f32 (the domain quantization
/// operates in).
pub(crate) fn max_abs_f32(vals: impl Iterator<Item = f64>) -> f32 {
    vals.fold(0.0f32, |m, v| m.max((v as f32).abs()))
}

/// Quantize one value against a [`pow2_scale`]. `v/p` is exact (power-
/// of-two scaling) and below 127.5 in magnitude by construction, so the
/// result always fits.
pub(crate) fn i8_quant(v: f32, p: f32) -> i8 {
    if p == 0.0 {
        0
    } else {
        (v / p).round() as i8
    }
}

/// Whether `s` is a positive, finite power of two — the only scales the
/// i8 encoder emits (subnormal powers of two included).
fn is_pow2_f32(s: f32) -> bool {
    if s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !s.is_finite() {
        return false;
    }
    let bits = s.to_bits();
    let man = bits & 0x007F_FFFF;
    if bits >> 23 == 0 {
        man.count_ones() == 1
    } else {
        man == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_f32_values() {
        let mlp = Mlp::new(&[3, 8, 8, 1], 5);
        let blob = encode(&mlp);
        // Header + layer table + params.
        assert_eq!(blob.len(), 8 + 3 * 9 + mlp.param_count() * 4);
        let back = decode(blob).unwrap();
        assert_eq!(back.input_dim(), 3);
        assert_eq!(back.param_count(), mlp.param_count());
        // Outputs agree to f32 precision.
        for i in 0..20 {
            let x = [i as f64 * 0.05, 0.3, 0.7];
            let a = mlp.predict(&x);
            let b = back.predict(&x);
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let mlp = Mlp::new(&[4, 60, 30, 30, 1], 0);
        let json = mlp.to_json().unwrap().len();
        let bin = encode(&mlp).len();
        assert!(bin * 3 < json, "bin {bin} json {json}");
        // Within 1% of the paper's 4-bytes-per-parameter accounting.
        assert!(bin < mlp.storage_bytes() + 64);
    }

    #[test]
    fn rejects_corrupt_input() {
        let mlp = Mlp::new(&[2, 4, 1], 1);
        let blob = encode(&mlp);
        assert!(decode(Bytes::from_static(b"nope")).is_err());
        let mut bad_magic = blob.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(decode(Bytes::from(bad_magic)).is_err());
        let truncated = blob.slice(0..blob.len() - 10);
        assert!(decode(truncated).is_err());
    }

    #[test]
    fn encoded_len_matches_encode() {
        for sizes in [&[2usize, 4, 1][..], &[4, 60, 30, 30, 1], &[1, 1]] {
            let mlp = Mlp::new(sizes, 3);
            for mode in QuantMode::ALL {
                assert_eq!(
                    encode_with(&mlp, mode).len(),
                    encoded_len_with(&mlp, mode),
                    "{sizes:?} {mode:?}"
                );
            }
        }
    }

    #[test]
    fn rejects_overflowing_layer_dims_without_panicking() {
        // Hand-craft a header whose single layer declares u32::MAX x
        // u32::MAX parameters: the byte count overflows 64-bit math when
        // multiplied out naively. Must yield a typed error, not a panic
        // or an attempted allocation.
        for magic in [MAGIC, MAGIC_F16] {
            let mut buf = BytesMut::with_capacity(17);
            buf.put_u32_le(magic);
            buf.put_u32_le(1); // one layer
            buf.put_u32_le(u32::MAX); // out
            buf.put_u32_le(u32::MAX); // in
            buf.put_u8(0); // relu
            let err = decode_any(buf.freeze()).unwrap_err();
            let msg = format!("{err}");
            assert!(msg.contains("overflow"), "unexpected error: {msg}");
        }
    }

    #[test]
    fn decoded_roundtrips_again_identically() {
        // After one quantizing round trip, further round trips are
        // lossless — for every mode, and at the byte level.
        let mlp = Mlp::new(&[2, 6, 1], 9);
        for mode in QuantMode::ALL {
            let blob = encode_with(&mlp, mode);
            let (once, m) = decode_any(blob.clone()).unwrap();
            assert_eq!(m, mode);
            let again = encode_with(&once, mode);
            assert_eq!(blob.as_ref(), again.as_ref(), "{mode:?}");
            let (twice, _) = decode_any(again).unwrap();
            assert_eq!(once, twice, "{mode:?}");
        }
    }

    #[test]
    fn f16_bits_roundtrip_exhaustively() {
        // Every finite binary16 value decodes to an f32 that encodes
        // back to the same bits — the idempotence the format relies on.
        for h in 0..=u16::MAX {
            if h & 0x7C00 == 0x7C00 {
                continue; // Inf/NaN: rejected by the decoder.
            }
            let v = f16_bits_to_f32(h);
            assert!(v.is_finite());
            assert_eq!(f32_to_f16_bits(v), h, "bits {h:#06x} value {v}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even_and_saturates() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1.0)), 1.0);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-2.5)), -2.5);
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half up
        // (1 + 2^-10): ties to even keeps 1.0.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1.0 + 2f32.powi(-11))), 1.0);
        // Just above the tie rounds up.
        let up = f16_bits_to_f32(f32_to_f16_bits(1.0 + 1.5 * 2f32.powi(-11)));
        assert_eq!(up, 1.0 + 2f32.powi(-10));
        // Saturation: everything past 65504 clamps to 65504, not Inf.
        for x in [65504.0f32, 65520.0, 1e9, f32::MAX, f32::INFINITY] {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(x)), 65504.0, "{x}");
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-x)), -65504.0, "{x}");
        }
        // Subnormal range survives; below 2^-25 rounds to zero.
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(2f32.powi(-24))),
            2f32.powi(-24)
        );
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(2f32.powi(-26))), 0.0);
    }

    #[test]
    fn pow2_scale_is_minimal_and_stable() {
        for m in [
            1e-6f32, 0.03, 0.5, 1.0, 63.74, 63.75, 127.4, 127.5, 500.0, 7e4,
        ] {
            let p = pow2_scale(m);
            assert!(is_pow2_f32(p), "{m}: scale {p} not a power of two");
            assert!(m / p < 127.5, "{m}: scale {p} too small");
            // Minimal: halving it would overflow the i8 range.
            assert!(m / (p * 0.5) >= 127.5, "{m}: scale {p} not minimal");
            // The quantized max dequantizes to a magnitude that re-derives
            // the same scale — the idempotence argument.
            let deq = i8_quant(m, p) as f32 * p;
            assert_eq!(pow2_scale(deq.abs()), p, "{m}");
        }
        assert_eq!(pow2_scale(0.0), 0.0);
    }

    #[test]
    fn i8_blob_rejects_bad_scales_and_zero_scale_payloads() {
        let mlp = Mlp::new(&[2, 3, 1], 4);
        let blob = encode_with(&mlp, QuantMode::I8).to_vec();
        // First tensor scale sits right after the 8-byte header and the
        // two 9-byte layer rows.
        let scale_at = 8 + 2 * 9;
        let mut bad = blob.clone();
        bad[scale_at..scale_at + 4].copy_from_slice(&3.0f32.to_le_bytes());
        let err = decode_any(Bytes::from(bad)).unwrap_err();
        assert!(format!("{err}").contains("power of two"), "{err}");
        let mut nan = blob.clone();
        nan[scale_at..scale_at + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        assert!(decode_any(Bytes::from(nan)).is_err());
        // Zero scale over nonzero quantized values: the values would
        // silently decode to zeros — typed refusal instead.
        let mut zeroed = blob;
        zeroed[scale_at..scale_at + 4].copy_from_slice(&0.0f32.to_le_bytes());
        let err = decode_any(Bytes::from(zeroed)).unwrap_err();
        assert!(format!("{err}").contains("zero i8 scale"), "{err}");
    }

    #[test]
    fn f16_blob_rejects_non_finite_params() {
        let mlp = Mlp::new(&[2, 3, 1], 4);
        let blob = encode_with(&mlp, QuantMode::F16).to_vec();
        let param_at = 8 + 2 * 9;
        let mut bad = blob;
        bad[param_at..param_at + 2].copy_from_slice(&0x7C00u16.to_le_bytes());
        let err = decode_any(Bytes::from(bad)).unwrap_err();
        assert!(format!("{err}").contains("non-finite"), "{err}");
    }

    #[test]
    fn quantized_sizes_hit_the_paper_ratios() {
        // The paper-default architecture: i8 ≤ 0.30x f32, f16 ≤ 0.55x.
        let mlp = Mlp::new(&[2, 60, 30, 30, 1], 0);
        let f32_len = encoded_len_with(&mlp, QuantMode::F32);
        let f16_len = encoded_len_with(&mlp, QuantMode::F16);
        let i8_len = encoded_len_with(&mlp, QuantMode::I8);
        assert!(
            (i8_len as f64) <= 0.30 * f32_len as f64,
            "i8 {i8_len} f32 {f32_len}"
        );
        assert!(
            (f16_len as f64) <= 0.55 * f32_len as f64,
            "f16 {f16_len} f32 {f32_len}"
        );
    }

    #[test]
    fn truncated_quantized_blobs_are_typed() {
        let mlp = Mlp::new(&[3, 8, 1], 2);
        for mode in [QuantMode::F16, QuantMode::I8] {
            let blob = encode_with(&mlp, mode);
            for cut in [blob.len() - 1, blob.len() / 2, 9, 4] {
                assert!(
                    decode_any(blob.slice(0..cut)).is_err(),
                    "{mode:?} cut {cut}"
                );
            }
        }
    }
}
