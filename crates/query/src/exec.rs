//! Exact query execution — the ground-truth oracle.
//!
//! `QueryEngine` evaluates the observed query function
//! `f_D(q) = AGG({x ∈ D : P_f(q,x) = 1})` by a full scan, exactly as the
//! paper's training-set generation does ("the queries are answered by
//! scanning all the database records per query", Sec. 5.6). Batch labeling
//! is parallelized with scoped threads, mirroring the paper's
//! GPU-parallel label generation.

use crate::aggregate::Aggregate;
use crate::predicate::PredicateFn;
use datagen::Dataset;

/// Exact evaluator of query functions over a dataset.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a> {
    data: &'a Dataset,
    measure: usize,
}

impl<'a> QueryEngine<'a> {
    /// Evaluate over `data`, aggregating the `measure` column.
    ///
    /// # Panics
    /// Panics if `measure` is out of range — this is a programming error,
    /// not user input.
    pub fn new(data: &'a Dataset, measure: usize) -> Self {
        assert!(
            measure < data.dims(),
            "measure column {measure} out of range"
        );
        QueryEngine { data, measure }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.data
    }

    /// The measure column index.
    pub fn measure(&self) -> usize {
        self.measure
    }

    /// Exact answer `f_D(q)` by full scan.
    pub fn answer(&self, pred: &dyn PredicateFn, agg: Aggregate, q: &[f64]) -> f64 {
        debug_assert_eq!(q.len(), pred.query_dim());
        match agg {
            Aggregate::Median => {
                let mut vals: Vec<f64> = self
                    .data
                    .iter_rows()
                    .filter(|row| pred.matches(q, row))
                    .map(|row| row[self.measure])
                    .collect();
                agg.apply(&mut vals)
            }
            _ => agg
                .apply_streaming(
                    self.data
                        .iter_rows()
                        .filter(|row| pred.matches(q, row))
                        .map(|row| row[self.measure]),
                )
                .expect("streaming covers all non-median aggregates"),
        }
    }

    /// Label a batch of queries, in parallel across `threads` workers.
    /// Order of results matches the input order.
    pub fn label_batch(
        &self,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        queries: &[Vec<f64>],
        threads: usize,
    ) -> Vec<f64> {
        let threads = threads.max(1);
        if threads == 1 || queries.len() < 2 * threads {
            return queries.iter().map(|q| self.answer(pred, agg, q)).collect();
        }
        let chunk = queries.len().div_ceil(threads);
        let mut out = vec![0.0; queries.len()];
        std::thread::scope(|s| {
            for (qchunk, ochunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (q, o) in qchunk.iter().zip(ochunk.iter_mut()) {
                        *o = self.answer(pred, agg, q);
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Range;
    use datagen::Dataset;

    fn grid_data() -> Dataset {
        // 10 rows: attr0 = i/10, measure = i.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0, i as f64]).collect();
        Dataset::from_rows(vec!["a".into(), "m".into()], &rows).unwrap()
    }

    #[test]
    fn count_and_sum_over_half_range() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        // attr0 in [0, 0.5): rows 0..=4.
        let q = [0.0, 0.5];
        assert_eq!(eng.answer(&pred, Aggregate::Count, &q), 5.0);
        assert_eq!(eng.answer(&pred, Aggregate::Sum, &q), 10.0);
        assert_eq!(eng.answer(&pred, Aggregate::Avg, &q), 2.0);
        assert_eq!(eng.answer(&pred, Aggregate::Median, &q), 2.0);
    }

    #[test]
    fn empty_range_yields_zero() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.95, 0.01];
        for agg in Aggregate::ALL {
            assert_eq!(eng.answer(&pred, agg, &q), 0.0, "{}", agg.name());
        }
    }

    #[test]
    fn batch_labels_match_sequential_and_parallel() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let queries: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 50.0, 0.3]).collect();
        let seq = eng.label_batch(&pred, Aggregate::Sum, &queries, 1);
        let par = eng.label_batch(&pred, Aggregate::Sum, &queries, 4);
        assert_eq!(seq, par);
        assert_eq!(seq[0], eng.answer(&pred, Aggregate::Sum, &queries[0]));
    }

    #[test]
    #[should_panic(expected = "measure column")]
    fn bad_measure_panics() {
        let d = grid_data();
        let _ = QueryEngine::new(&d, 5);
    }
}
