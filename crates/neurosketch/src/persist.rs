//! The NSK2 persistent sketch format ("models are saved after
//! training", Sec. 5.1).
//!
//! [`nn::binary`] ships a *single* MLP (NSK1). A deployed NeuroSketch is
//! more than one model: a kd-tree routing structure, one compact MLP per
//! partition, the per-leaf output scalers, and — when it is served
//! behind a [`DqdRouter`] — the per-partition AQC estimates and routing
//! thresholds. NSK2 is the whole-sketch container: everything a serving
//! process ([`crate::serve`]) needs, in one versioned blob whose size
//! matches the paper's 4-bytes-per-parameter model-size accounting
//! (parameters dominate; the tree and headers are a few dozen bytes per
//! partition).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic      u32 = 0x4E53_4B32 ("NSK2")
//! version    u32 = 1
//! query_dim  u32
//! node_count u32
//! per node, preorder (root = 0):
//!   tag u8: 0 = internal, 1 = leaf
//!   internal only: dim u32, val f64, left u32, right u32
//! model_count u32               (one per leaf, ascending node index)
//! per model:
//!   leaf u32                    (node-table index of its leaf)
//!   y_mean f64, y_std f64       (output de-standardization)
//!   blob_len u32, blob          (the MLP in NSK1 form, nn::binary)
//! router u8: 0 = absent, 1 = present
//! router only:
//!   min_range_volume f64, max_leaf_aqc f64
//!   aqc_count u32, aqc f64 per leaf (sketch leaf order)
//! ```
//!
//! Parameters are stored as `f32` (the paper's storage model), so saving
//! is lossy exactly once: a decoded sketch answers **bitwise
//! identically** to [`NeuroSketch::quantized`] of the sketch it was
//! saved from, and re-encoding a decoded sketch reproduces the byte
//! stream exactly. Corrupt input — truncation, bad magic, an
//! unsupported version, structural tree damage, or implausible layer
//! dimensions — yields a typed [`PersistError`], never a panic.

use crate::router::{DqdRouter, RoutingPolicy};
use crate::sketch::{LeafModel, NeuroSketch};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use spatial::kdtree::{FlatNode, FlatTreeError};
use spatial::KdTree;
use std::collections::BTreeMap;
use std::path::Path;

/// NSK2 container magic ("NSK2" little-endian).
pub const NSK2_MAGIC: u32 = 0x4E53_4B32;

/// Newest container version this build reads and writes.
pub const NSK2_VERSION: u32 = 1;

/// Why a persisted sketch could not be read.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The buffer ended before the named section was complete.
    Truncated(&'static str),
    /// The first four bytes were not the NSK2 magic.
    BadMagic {
        /// The magic actually found.
        found: u32,
    },
    /// The container version is newer than this build understands.
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The kd-tree section failed structural validation.
    Tree(FlatTreeError),
    /// An embedded NSK1 model blob failed to decode.
    Model(String),
    /// A cross-section invariant was violated (model/leaf mismatch,
    /// non-finite scaler, wrong input dimensionality, ...).
    Corrupt(String),
    /// Reading or writing the backing file failed.
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated(section) => write!(f, "truncated {section}"),
            PersistError::BadMagic { found } => {
                write!(f, "bad magic {found:#010x} (want {NSK2_MAGIC:#010x})")
            }
            PersistError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported NSK2 version {found} (newest known: {NSK2_VERSION})"
                )
            }
            PersistError::Tree(e) => write!(f, "corrupt kd-tree section: {e}"),
            PersistError::Model(e) => write!(f, "corrupt model blob: {e}"),
            PersistError::Corrupt(e) => write!(f, "corrupt container: {e}"),
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<FlatTreeError> for PersistError {
    fn from(e: FlatTreeError) -> Self {
        PersistError::Tree(e)
    }
}

/// A decoded NSK2 container: the sketch, plus the router metadata when
/// the artifact was saved from a [`DqdRouter`].
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The sketch, ready to answer queries.
    pub sketch: NeuroSketch,
    /// Per-partition AQCs + routing thresholds, if persisted.
    pub router: Option<RouterMeta>,
}

/// Router metadata persisted alongside a sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterMeta {
    /// AQC per partition, in the sketch's leaf order.
    pub leaf_aqcs: Vec<f64>,
    /// The routing thresholds the sketch was deployed with.
    pub policy: RoutingPolicy,
}

impl Artifact {
    /// Reassemble a [`DqdRouter`]. Without persisted router metadata the
    /// router is fully permissive (every query routes to the sketch).
    pub fn into_router(self) -> DqdRouter {
        match self.router {
            Some(meta) => DqdRouter::new(self.sketch, meta.leaf_aqcs, meta.policy),
            None => {
                let aqcs = vec![0.0; self.sketch.partitions()];
                DqdRouter::new(self.sketch, aqcs, RoutingPolicy::default())
            }
        }
    }
}

/// Exact byte size [`encode_sketch`] produces for this sketch — the
/// figure to compare against [`NeuroSketch::storage_bytes`] (the paper's
/// accounting). Parameters dominate: the fixed overhead is 17 bytes of
/// header/footer, 21 bytes per internal node, 1 per leaf, and 28 bytes +
/// the NSK1 header per model.
pub fn encoded_len(sketch: &NeuroSketch) -> usize {
    let leaves = sketch.partitions();
    let internals = leaves.saturating_sub(1);
    let models: usize = sketch
        .models()
        .values()
        .map(|m| 24 + nn::binary::encoded_len(&m.mlp))
        .sum();
    12 + 4 + internals * 21 + leaves + 4 + models + 1
}

/// Encode a sketch (no router section) into an NSK2 container.
pub fn encode_sketch(sketch: &NeuroSketch) -> Bytes {
    encode(sketch, None)
}

/// Encode a router — sketch + AQCs + policy — into an NSK2 container.
pub fn encode_router(router: &DqdRouter) -> Bytes {
    encode(
        router.sketch(),
        Some(&RouterMeta {
            leaf_aqcs: router.leaf_aqcs().to_vec(),
            policy: router.policy(),
        }),
    )
}

fn encode(sketch: &NeuroSketch, router: Option<&RouterMeta>) -> Bytes {
    let flat = sketch.tree().to_flat();
    let mut buf = BytesMut::with_capacity(
        encoded_len(sketch) + router.map_or(0, |m| 20 + 8 * m.leaf_aqcs.len()),
    );
    buf.put_u32_le(NSK2_MAGIC);
    buf.put_u32_le(NSK2_VERSION);
    buf.put_u32_le(sketch.query_dim() as u32);

    buf.put_u32_le(flat.len() as u32);
    for node in &flat {
        match *node {
            FlatNode::Internal {
                dim,
                val,
                left,
                right,
            } => {
                buf.put_u8(0);
                buf.put_u32_le(dim as u32);
                buf.put_f64_le(val);
                buf.put_u32_le(left as u32);
                buf.put_u32_le(right as u32);
            }
            FlatNode::Leaf => buf.put_u8(1),
        }
    }

    // The k-th leaf of the arena tree (leaf order) is the k-th Leaf slot
    // of the preorder flat table: both walks are depth-first, left child
    // first. Models are written in that shared order.
    let flat_leaves: Vec<usize> = flat
        .iter()
        .enumerate()
        .filter_map(|(i, n)| matches!(n, FlatNode::Leaf).then_some(i))
        .collect();
    let arena_leaves = sketch.tree().leaf_ids();
    debug_assert_eq!(flat_leaves.len(), arena_leaves.len());
    buf.put_u32_le(flat_leaves.len() as u32);
    for (&flat_leaf, arena_leaf) in flat_leaves.iter().zip(arena_leaves) {
        let model = &sketch.models()[&arena_leaf];
        buf.put_u32_le(flat_leaf as u32);
        buf.put_f64_le(model.y_mean);
        buf.put_f64_le(model.y_std);
        let blob = nn::binary::encode(&model.mlp);
        buf.put_u32_le(blob.len() as u32);
        buf.put_slice(&blob);
    }

    match router {
        None => buf.put_u8(0),
        Some(meta) => {
            buf.put_u8(1);
            buf.put_f64_le(meta.policy.min_range_volume);
            buf.put_f64_le(meta.policy.max_leaf_aqc);
            buf.put_u32_le(meta.leaf_aqcs.len() as u32);
            for &a in &meta.leaf_aqcs {
                buf.put_f64_le(a);
            }
        }
    }
    buf.freeze()
}

/// Decode an NSK2 container produced by [`encode_sketch`] /
/// [`encode_router`].
pub fn decode(mut data: Bytes) -> Result<Artifact, PersistError> {
    if data.remaining() < 12 {
        return Err(PersistError::Truncated("header"));
    }
    let magic = data.get_u32_le();
    if magic != NSK2_MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = data.get_u32_le();
    if version != NSK2_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let query_dim = data.get_u32_le() as usize;

    // kd-tree section.
    if data.remaining() < 4 {
        return Err(PersistError::Truncated("kd-tree section"));
    }
    let node_count = data.get_u32_le() as usize;
    // Each node costs at least 1 byte; an implausible count is caught
    // before any allocation is sized by it.
    if node_count == 0 || node_count > data.remaining() {
        return Err(PersistError::Corrupt(format!(
            "implausible node count {node_count}"
        )));
    }
    let mut flat = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        if data.remaining() < 1 {
            return Err(PersistError::Truncated("kd-tree section"));
        }
        match data.get_u8() {
            0 => {
                if data.remaining() < 20 {
                    return Err(PersistError::Truncated("kd-tree section"));
                }
                let dim = data.get_u32_le() as usize;
                let val = data.get_f64_le();
                let left = data.get_u32_le() as usize;
                let right = data.get_u32_le() as usize;
                flat.push(FlatNode::Internal {
                    dim,
                    val,
                    left,
                    right,
                });
            }
            1 => flat.push(FlatNode::Leaf),
            t => {
                return Err(PersistError::Corrupt(format!("unknown node tag {t}")));
            }
        }
    }
    let tree = KdTree::from_flat(&flat, query_dim)?;
    let leaves = tree.leaf_ids();

    // Model section.
    if data.remaining() < 4 {
        return Err(PersistError::Truncated("model section"));
    }
    let model_count = data.get_u32_le() as usize;
    if model_count != leaves.len() {
        return Err(PersistError::Corrupt(format!(
            "{model_count} models for {} leaves",
            leaves.len()
        )));
    }
    let mut models = BTreeMap::new();
    for _ in 0..model_count {
        if data.remaining() < 24 {
            return Err(PersistError::Truncated("model section"));
        }
        let leaf = data.get_u32_le() as usize;
        let y_mean = data.get_f64_le();
        let y_std = data.get_f64_le();
        if !y_mean.is_finite() || !y_std.is_finite() || y_std <= 0.0 {
            return Err(PersistError::Corrupt(format!(
                "implausible output scaler (mean {y_mean}, std {y_std})"
            )));
        }
        // from_flat keeps flat indices as node ids, so the stored index
        // addresses the rebuilt arena directly; leaf_ids() of a preorder
        // table is ascending, so membership is a binary search.
        if leaves.binary_search(&leaf).is_err() {
            return Err(PersistError::Corrupt(format!(
                "model attached to non-leaf node {leaf}"
            )));
        }
        let blob_len = data.get_u32_le() as usize;
        if data.remaining() < blob_len {
            return Err(PersistError::Truncated("model blob"));
        }
        let blob = data.split_to(blob_len);
        let mlp = nn::binary::decode(blob).map_err(|e| PersistError::Model(e.to_string()))?;
        if mlp.input_dim() != query_dim || mlp.output_dim() != 1 {
            return Err(PersistError::Corrupt(format!(
                "model shape {}→{} does not fit a {query_dim}-dim sketch",
                mlp.input_dim(),
                mlp.output_dim()
            )));
        }
        if models
            .insert(leaf, LeafModel { mlp, y_mean, y_std })
            .is_some()
        {
            return Err(PersistError::Corrupt(format!("two models for leaf {leaf}")));
        }
    }

    // Router section.
    if data.remaining() < 1 {
        return Err(PersistError::Truncated("router section"));
    }
    let router = match data.get_u8() {
        0 => None,
        1 => {
            if data.remaining() < 20 {
                return Err(PersistError::Truncated("router section"));
            }
            let min_range_volume = data.get_f64_le();
            let max_leaf_aqc = data.get_f64_le();
            // `+inf` is legitimate (the default "rule disabled" policy
            // and unboundedly hard leaves), but NaN would make the
            // router's threshold comparisons silently always-false.
            if min_range_volume.is_nan() || max_leaf_aqc.is_nan() {
                return Err(PersistError::Corrupt("NaN routing threshold".to_string()));
            }
            let aqc_count = data.get_u32_le() as usize;
            if aqc_count != leaves.len() {
                return Err(PersistError::Corrupt(format!(
                    "{aqc_count} AQCs for {} leaves",
                    leaves.len()
                )));
            }
            if data.remaining() < aqc_count * 8 {
                return Err(PersistError::Truncated("router section"));
            }
            let leaf_aqcs: Vec<f64> = (0..aqc_count).map(|_| data.get_f64_le()).collect();
            if leaf_aqcs.iter().any(|a| a.is_nan()) {
                return Err(PersistError::Corrupt("NaN leaf AQC".to_string()));
            }
            Some(RouterMeta {
                leaf_aqcs,
                policy: RoutingPolicy {
                    min_range_volume,
                    max_leaf_aqc,
                },
            })
        }
        t => {
            return Err(PersistError::Corrupt(format!("unknown router tag {t}")));
        }
    };

    // A well-formed container ends exactly here; trailing bytes mean a
    // concatenated/partially-overwritten artifact and must not be
    // silently ignored (re-encoding would not reproduce the input).
    if data.remaining() != 0 {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after the router section",
            data.remaining()
        )));
    }

    Ok(Artifact {
        sketch: NeuroSketch::from_parts(tree, models, query_dim),
        router,
    })
}

/// Write a sketch to `path` in NSK2 form.
pub fn save_sketch(path: impl AsRef<Path>, sketch: &NeuroSketch) -> Result<(), PersistError> {
    std::fs::write(path, encode_sketch(sketch)).map_err(|e| PersistError::Io(e.to_string()))
}

/// Write a router (sketch + AQCs + policy) to `path` in NSK2 form.
pub fn save_router(path: impl AsRef<Path>, router: &DqdRouter) -> Result<(), PersistError> {
    std::fs::write(path, encode_router(router)).map_err(|e| PersistError::Io(e.to_string()))
}

/// Read an NSK2 container from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<Artifact, PersistError> {
    let raw = std::fs::read(path).map_err(|e| PersistError::Io(e.to_string()))?;
    decode(Bytes::from(raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::NeuroSketchConfig;

    fn trained_sketch() -> (NeuroSketch, Vec<f64>) {
        let qs: Vec<Vec<f64>> = (0..240)
            .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
            .collect();
        let labels: Vec<f64> = qs.iter().map(|q| 40.0 * q[0] + 11.0 * q[1]).collect();
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 3;
        cfg.target_partitions = 5;
        cfg.train.epochs = 15;
        let (s, r) = NeuroSketch::build_from_labeled(&qs, &labels, &cfg).unwrap();
        (s, r.leaf_aqcs)
    }

    #[test]
    fn roundtrip_matches_quantized_sketch_bitwise() {
        let (sketch, _) = trained_sketch();
        let blob = encode_sketch(&sketch);
        assert_eq!(blob.len(), encoded_len(&sketch));
        let loaded = decode(blob).unwrap();
        assert!(loaded.router.is_none());
        let q = sketch.quantized();
        assert_eq!(loaded.sketch.partitions(), sketch.partitions());
        for i in 0..50 {
            let query = vec![(i as f64 * 0.137) % 1.0, (i as f64 * 0.311) % 1.0];
            assert_eq!(loaded.sketch.answer(&query), q.answer(&query));
        }
    }

    #[test]
    fn second_roundtrip_is_byte_identical() {
        let (sketch, _) = trained_sketch();
        let once = encode_sketch(&sketch);
        let decoded = decode(once.clone()).unwrap();
        let twice = encode_sketch(&decoded.sketch);
        assert_eq!(&once[..], &twice[..]);
    }

    #[test]
    fn router_metadata_roundtrips() {
        let (sketch, aqcs) = trained_sketch();
        let policy = RoutingPolicy {
            min_range_volume: 0.015,
            max_leaf_aqc: 42.5,
        };
        let router = DqdRouter::new(sketch, aqcs.clone(), policy);
        let artifact = decode(encode_router(&router)).unwrap();
        let meta = artifact.router.clone().expect("router section present");
        assert_eq!(meta.leaf_aqcs, aqcs);
        assert_eq!(meta.policy, policy);
        let rebuilt = artifact.into_router();
        assert_eq!(rebuilt.policy(), policy);
        assert_eq!(rebuilt.leaf_aqcs(), &aqcs[..]);
    }

    #[test]
    fn size_accounting_tracks_the_paper_model() {
        let (sketch, _) = trained_sketch();
        let len = encode_sketch(&sketch).len();
        // Dominated by 4 bytes per parameter...
        assert!(len >= sketch.param_count() * 4);
        // ...with overhead well under the paper-accounted figure + a
        // small per-partition constant.
        assert!(
            len <= sketch.storage_bytes() + 80 * sketch.partitions() + 64,
            "len {len} vs accounted {}",
            sketch.storage_bytes()
        );
    }

    #[test]
    fn file_roundtrip() {
        let (sketch, aqcs) = trained_sketch();
        let router = DqdRouter::new(sketch, aqcs, RoutingPolicy::default());
        let path = std::env::temp_dir().join("nsk2_file_roundtrip_test.nsk2");
        save_router(&path, &router).unwrap();
        let artifact = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let query = [0.3, 0.8];
        assert_eq!(
            artifact.sketch.answer(&query),
            router.sketch().quantized().answer(&query)
        );
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load("/definitely/not/a/real/path.nsk2").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let (sketch, _) = trained_sketch();
        let blob = encode_sketch(&sketch);

        assert!(matches!(
            decode(Bytes::from_static(b"shrt")),
            Err(PersistError::Truncated(_))
        ));

        let mut bad_magic = blob.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode(Bytes::from(bad_magic)),
            Err(PersistError::BadMagic { .. })
        ));

        let mut future = blob.to_vec();
        future[4] = 0xEE; // version 0x..EE
        assert!(matches!(
            decode(Bytes::from(future)),
            Err(PersistError::UnsupportedVersion { .. })
        ));

        // Every strict prefix must fail with a typed error, never panic.
        for cut in [12, 13, 20, blob.len() / 2, blob.len() - 1] {
            let err = decode(blob.slice(0..cut)).unwrap_err();
            assert!(
                !matches!(err, PersistError::BadMagic { .. }),
                "prefix of a valid blob keeps its magic"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let (sketch, _) = trained_sketch();
        let mut blob = encode_sketch(&sketch).to_vec();
        blob.extend_from_slice(b"leftover");
        let err = decode(Bytes::from(blob)).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("trailing")),
            "expected trailing-bytes error, got {err}"
        );
    }

    #[test]
    fn rejects_nan_router_metadata() {
        let (sketch, aqcs) = trained_sketch();
        let router = DqdRouter::new(sketch, aqcs, RoutingPolicy::default());
        let blob = encode_router(&router).to_vec();
        // The router section sits at the end: tag byte, two policy f64s,
        // count u32, then the AQC array.
        let n_aqcs = router.leaf_aqcs().len();
        let aqc_array = blob.len() - 8 * n_aqcs;
        let policy_floats = aqc_array - 4 - 16;
        for offset in [policy_floats, policy_floats + 8, aqc_array] {
            let mut bad = blob.clone();
            bad[offset..offset + 8].copy_from_slice(&f64::NAN.to_le_bytes());
            let err = decode(Bytes::from(bad)).unwrap_err();
            assert!(
                matches!(&err, PersistError::Corrupt(m) if m.contains("NaN")),
                "offset {offset}: expected NaN rejection, got {err}"
            );
        }
    }

    #[test]
    fn rejects_cross_section_corruption() {
        let (sketch, _) = trained_sketch();
        let blob = encode_sketch(&sketch).to_vec();

        // Zero the node count: structurally empty tree.
        let mut no_nodes = blob.clone();
        no_nodes[12..16].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode(Bytes::from(no_nodes)).is_err());

        // Corrupt the first internal node's left-child pointer.
        let mut bad_child = blob.clone();
        // header(12) + node_count(4) + tag(1) + dim(4) + val(8) = 29.
        bad_child[29..33].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(Bytes::from(bad_child)),
            Err(PersistError::Tree(_))
        ));
    }
}
