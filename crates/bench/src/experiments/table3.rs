//! Table 3: ablation of partitioning and merging.
//!
//! Three settings per dataset: no partitioning (height 0), 8 partitions
//! without merging (height 3), and 16 partitions merged down to 8 with
//! AQC (height 4, s = 8). Reports percentage error improvement over no
//! partitioning plus the normalized AQC STD across leaves; the paper
//! finds improvement strongly correlated with that STD.

use crate::common::{default_workload, ExperimentContext};
use datagen::PaperDataset;
use neurosketch::aqc::normalized_aqc_std;
use neurosketch::NeuroSketch;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;

/// One dataset's ablation results.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Normalized AQC STD across the height-4 tree's leaves.
    pub norm_aqc_std: f64,
    /// Error with no partitioning.
    pub err_none: f64,
    /// Error with merging (16 → 8).
    pub err_merging: f64,
    /// Error with 8 leaves, no merging.
    pub err_no_merging: f64,
    /// % improvement of merging over no partitioning.
    pub improved_merging: f64,
    /// % improvement of plain 8-leaf partitioning over none.
    pub improved_no_merging: f64,
}

/// Run the ablation.
pub fn run(ctx: &ExperimentContext) -> Vec<Table3Row> {
    let datasets: Vec<PaperDataset> = if ctx.fast {
        vec![PaperDataset::Vs, PaperDataset::Pm, PaperDataset::G5]
    } else {
        vec![
            PaperDataset::Vs,
            PaperDataset::Pm,
            PaperDataset::Tpc1,
            PaperDataset::G5,
            PaperDataset::G10,
            PaperDataset::G20,
        ]
    };
    datasets
        .into_iter()
        .map(|ds| {
            let (data, measure) = ctx.dataset(ds);
            let engine = QueryEngine::new(&data, measure);
            let wl = default_workload(
                ds,
                data.dims(),
                ctx.train_queries() + ctx.test_queries(),
                ctx.seed,
            );
            let (train, test) = wl.split(ctx.test_queries());
            let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &train, 4);
            let truth = engine.label_batch(&wl.predicate, Aggregate::Avg, &test, 4);

            let eval = |height: usize, partitions: usize| -> (f64, Vec<f64>) {
                let mut cfg = ctx.ns_config();
                cfg.tree_height = height;
                cfg.target_partitions = partitions;
                let (sketch, report) =
                    NeuroSketch::build_from_labeled(&train, &labels, &cfg).expect("build");
                let preds: Vec<f64> = test.iter().map(|q| sketch.answer(q)).collect();
                (normalized_mae(&truth, &preds), report.leaf_aqcs)
            };

            let (err_none, _) = eval(0, 1);
            let (err_no_merging, _) = eval(3, 8);
            let (err_merging, merged_aqcs) = eval(4, 8);
            // Normalized AQC STD uses the (final, merged) leaves, the
            // quantity Alg. 3 actually acted on.
            let norm_aqc_std = normalized_aqc_std(&merged_aqcs);
            let imp = |e: f64| (err_none - e) / err_none * 100.0;
            Table3Row {
                dataset: ds.name(),
                norm_aqc_std,
                err_none,
                err_merging,
                err_no_merging,
                improved_merging: imp(err_merging),
                improved_no_merging: imp(err_no_merging),
            }
        })
        .collect()
}

/// Pearson correlation between two equal-length slices.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Print the table plus the STD↔improvement correlations.
pub fn print(rows: &[Table3Row]) {
    println!("\n==== Table 3: partitioning ablation ====");
    println!(
        "{:<8} {:>14} {:>16} {:>19}",
        "dataset", "norm AQC STD", "% impr (merge)", "% impr (no merge)"
    );
    for r in rows {
        println!(
            "{:<8} {:>14.3} {:>16.1} {:>19.1}",
            r.dataset, r.norm_aqc_std, r.improved_merging, r.improved_no_merging
        );
    }
    let stds: Vec<f64> = rows.iter().map(|r| r.norm_aqc_std).collect();
    let im: Vec<f64> = rows.iter().map(|r| r.improved_merging).collect();
    let inm: Vec<f64> = rows.iter().map(|r| r.improved_no_merging).collect();
    println!(
        "correlation with STD: merging {:.2}, no-merging {:.2}",
        pearson(&stds, &im),
        pearson(&stds, &inm)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_rows_with_finite_errors() {
        let ctx = ExperimentContext::fast();
        let rows = run(&ctx);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.err_none.is_finite() && r.err_merging.is_finite());
            assert!(r.norm_aqc_std >= 0.0);
        }
    }

    #[test]
    fn pearson_of_identical_is_one() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }
}
