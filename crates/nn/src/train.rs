//! Mini-batch training loop (Alg. 4 of the paper).
//!
//! The paper trains each partition's model by sampling batches from the
//! node's query set and descending the MSE gradient with Adam until
//! convergence. We add a small patience-based stopping rule so "until
//! convergence" is well defined and deterministic.
//!
//! [`train`] runs the batched hot path: each mini-batch is two GEMMs per
//! layer into a reused [`BatchWorkspace`] — zero per-example allocation —
//! and the Adam step consumes the summed batch gradients directly.
//! [`train_per_example`] is the original one-example-at-a-time loop, kept
//! as the bit-compatible reference that the property tests and the
//! `BENCH_build.json` before/after numbers are measured against: both
//! paths consume the shuffle RNG identically and accumulate gradients in
//! the same floating-point order, so for the same seed they produce the
//! same weights bit for bit.

use crate::linalg::Matrix;
use crate::mlp::{accumulate_example_gradient, BatchWorkspace, Gradients, Mlp};
use crate::optimizer::{Adam, Optimizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Stop early when the epoch loss has not improved by at least
    /// `min_delta` (relative) for `patience` consecutive epochs. `0`
    /// disables early stopping.
    pub patience: usize,
    /// Relative improvement threshold for the patience rule.
    pub min_delta: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
    /// Optional hard cap on training wall-clock; `None` means unlimited.
    ///
    /// The budget is checked after every *mini-batch*, not every epoch,
    /// so a single long epoch over a large training set cannot blow
    /// through the cap unnoticed.
    pub time_budget: Option<std::time::Duration>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            batch_size: 64,
            lr: 1e-3,
            patience: 20,
            min_delta: 1e-4,
            seed: 0,
            time_budget: None,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs actually executed.
    pub epochs_run: usize,
    /// Mean squared error on the training set after the final epoch.
    pub final_loss: f64,
    /// Per-epoch mean training loss (useful for Fig. 13c style curves).
    pub loss_curve: Vec<f64>,
    /// Wall-clock spent training.
    pub elapsed: std::time::Duration,
}

/// Train `mlp` on `(xs, ys)` with MSE + Adam — the batched hot path.
///
/// Each mini-batch is gathered into a `batch x d` matrix and pushed
/// through [`Mlp::forward_batch`] / [`Mlp::backward_batch`]; the Adam
/// step consumes the summed batch gradients directly via
/// [`Optimizer::step_scaled`]. All scratch lives in buffers grown once
/// and reused for the whole run.
///
/// Produces bitwise the same model as [`train_per_example`] for the same
/// configuration and seed.
///
/// # Panics
/// Panics if `xs` and `ys` differ in length, `xs` is empty, or any
/// feature vector's length differs from the network's input
/// dimensionality.
pub fn train(mlp: &mut Mlp, xs: &[Vec<f64>], ys: &[f64], cfg: &TrainConfig) -> TrainReport {
    assert_eq!(xs.len(), ys.len(), "features/targets must pair up");
    assert!(!xs.is_empty(), "training set must be nonempty");
    let d = mlp.input_dim();
    assert!(
        xs.iter().all(|x| x.len() == d),
        "feature dim does not match network input dim {d}"
    );
    let start = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..xs.len()).collect();
    let mut adam = Adam::new(cfg.lr);
    let mut grads = Gradients::zeros_like(mlp);
    let mut ws = BatchWorkspace::default();
    let mut xb = Matrix::zeros(0, 0);
    let mut yb = Matrix::zeros(0, 0);
    let mut curve = Vec::with_capacity(cfg.epochs);
    let mut best = f64::INFINITY;
    let mut stale = 0usize;
    let mut epochs_run = 0usize;

    'outer: for _ in 0..cfg.epochs {
        epochs_run += 1;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            xb.resize(chunk.len(), d);
            yb.resize(chunk.len(), 1);
            for (r, &i) in chunk.iter().enumerate() {
                xb.row_mut(r).copy_from_slice(&xs[i]);
                yb.set(r, 0, ys[i]);
            }
            mlp.forward_batch(&mut ws, &xb);
            let batch_loss = mlp.backward_batch(&mut ws, &xb, &yb, &mut grads);
            adam.step_scaled(mlp, &grads, 1.0 / chunk.len() as f64);
            epoch_loss += batch_loss;
            if let Some(budget) = cfg.time_budget {
                if start.elapsed() > budget {
                    curve.push(epoch_loss / xs.len() as f64);
                    break 'outer;
                }
            }
        }
        epoch_loss /= xs.len() as f64;
        curve.push(epoch_loss);
        if cfg.patience > 0 {
            if epoch_loss < best * (1.0 - cfg.min_delta) {
                best = epoch_loss;
                stale = 0;
            } else {
                stale += 1;
                if stale >= cfg.patience {
                    break;
                }
            }
        }
    }

    let final_loss = *curve.last().expect("at least one epoch");
    TrainReport {
        epochs_run,
        final_loss,
        loss_curve: curve,
        elapsed: start.elapsed(),
    }
}

/// The original one-example-at-a-time training loop, kept as the
/// reference implementation.
///
/// It exists for two jobs: the property tests assert [`train`] matches
/// it to floating-point exactness, and the perf harness measures the
/// batched speedup against it (the `train_leaf_per_example` entry in
/// `BENCH_build.json`). It consumes the shuffle RNG identically to
/// [`train`], so both paths see the same batches in the same order.
///
/// # Panics
/// Panics if `xs` and `ys` differ in length or `xs` is empty.
pub fn train_per_example(
    mlp: &mut Mlp,
    xs: &[Vec<f64>],
    ys: &[f64],
    cfg: &TrainConfig,
) -> TrainReport {
    assert_eq!(xs.len(), ys.len(), "features/targets must pair up");
    assert!(!xs.is_empty(), "training set must be nonempty");
    let start = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..xs.len()).collect();
    let mut adam = Adam::new(cfg.lr);
    let mut grads = Gradients::zeros_like(mlp);
    let mut curve = Vec::with_capacity(cfg.epochs);
    let mut best = f64::INFINITY;
    let mut stale = 0usize;
    let mut epochs_run = 0usize;

    'outer: for _ in 0..cfg.epochs {
        epochs_run += 1;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            grads.zero();
            let mut batch_loss = 0.0;
            for &i in chunk {
                batch_loss += accumulate_example_gradient(mlp, &xs[i], &[ys[i]], &mut grads);
            }
            adam.step_scaled(mlp, &grads, 1.0 / chunk.len() as f64);
            epoch_loss += batch_loss;
            if let Some(budget) = cfg.time_budget {
                if start.elapsed() > budget {
                    curve.push(epoch_loss / xs.len() as f64);
                    break 'outer;
                }
            }
        }
        epoch_loss /= xs.len() as f64;
        curve.push(epoch_loss);
        if cfg.patience > 0 {
            if epoch_loss < best * (1.0 - cfg.min_delta) {
                best = epoch_loss;
                stale = 0;
            } else {
                stale += 1;
                if stale >= cfg.patience {
                    break;
                }
            }
        }
    }

    let final_loss = *curve.last().expect("at least one epoch");
    TrainReport {
        epochs_run,
        final_loss,
        loss_curve: curve,
        elapsed: start.elapsed(),
    }
}

/// Evaluate mean squared error of `mlp` on a supervised set without
/// touching its weights.
pub fn evaluate_mse(mlp: &Mlp, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "features/targets must pair up");
    if xs.is_empty() {
        return 0.0;
    }
    let mut ws = crate::mlp::Workspace::default();
    let mut acc = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let p = mlp.predict_with(&mut ws, x);
        acc += (p - y) * (p - y);
    }
    acc / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_linear_set(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 10) as f64 / 10.0, (i / 10) as f64 / (n as f64 / 10.0)])
            .collect();
        let ys = xs.iter().map(|x| 0.5 * x[0] - 0.25 * x[1] + 0.1).collect();
        (xs, ys)
    }

    #[test]
    fn learns_linear_function() {
        let (xs, ys) = make_linear_set(100);
        let mut mlp = Mlp::new(&[2, 16, 1], 5);
        let cfg = TrainConfig {
            epochs: 600,
            lr: 5e-3,
            ..Default::default()
        };
        let report = train(&mut mlp, &xs, &ys, &cfg);
        assert!(report.final_loss < 1e-3, "loss {}", report.final_loss);
        assert!(report.epochs_run <= 600);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (xs, ys) = make_linear_set(50);
        let run = || {
            let mut mlp = Mlp::new(&[2, 8, 1], 11);
            let cfg = TrainConfig {
                epochs: 30,
                patience: 0,
                ..Default::default()
            };
            train(&mut mlp, &xs, &ys, &cfg);
            mlp.predict(&[0.3, 0.3])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn early_stopping_kicks_in() {
        // Constant target: loss hits (numerical) floor almost immediately.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let ys = vec![0.0; 20];
        let mut mlp = Mlp::with_init(&[1, 4, 1], crate::init::Init::Zeros, 0).unwrap();
        let cfg = TrainConfig {
            epochs: 500,
            patience: 3,
            ..Default::default()
        };
        let report = train(&mut mlp, &xs, &ys, &cfg);
        assert!(report.epochs_run < 500, "stopped at {}", report.epochs_run);
    }

    #[test]
    fn loss_curve_has_one_entry_per_epoch() {
        let (xs, ys) = make_linear_set(30);
        let mut mlp = Mlp::new(&[2, 4, 1], 1);
        let cfg = TrainConfig {
            epochs: 7,
            patience: 0,
            ..Default::default()
        };
        let report = train(&mut mlp, &xs, &ys, &cfg);
        assert_eq!(report.loss_curve.len(), 7);
    }

    #[test]
    fn batched_and_per_example_paths_agree_bitwise() {
        let (xs, ys) = make_linear_set(83); // odd size: ragged final batch
        let cfg = TrainConfig {
            epochs: 25,
            batch_size: 16,
            patience: 5,
            ..Default::default()
        };
        let mut batched = Mlp::new(&[2, 12, 6, 1], 77);
        let mut reference = batched.clone();
        let rb = train(&mut batched, &xs, &ys, &cfg);
        let rr = train_per_example(&mut reference, &xs, &ys, &cfg);
        assert_eq!(rb.epochs_run, rr.epochs_run);
        assert_eq!(rb.loss_curve, rr.loss_curve);
        assert_eq!(batched, reference, "weights must match bit for bit");
    }

    #[test]
    fn time_budget_is_checked_per_batch_not_per_epoch() {
        // With a zero budget the loop must stop after the FIRST mini-batch
        // of the first epoch. A per-epoch check would run all batches and
        // land on the same weights as an unbudgeted 1-epoch run — so the
        // two runs differing proves the check fires mid-epoch.
        let (xs, ys) = make_linear_set(10);
        let base = TrainConfig {
            epochs: 1,
            batch_size: 1,
            patience: 0,
            ..Default::default()
        };
        let mut budgeted = Mlp::new(&[2, 8, 1], 4);
        let mut unbudgeted = budgeted.clone();
        let mut cfg = base.clone();
        cfg.time_budget = Some(std::time::Duration::ZERO);
        let report = train(&mut budgeted, &xs, &ys, &cfg);
        train(&mut unbudgeted, &xs, &ys, &base);
        assert_eq!(report.epochs_run, 1);
        assert_eq!(report.loss_curve.len(), 1);
        assert_ne!(
            budgeted, unbudgeted,
            "budgeted run must have stopped before finishing the epoch"
        );
    }

    #[test]
    fn evaluate_mse_matches_training_objective() {
        let (xs, ys) = make_linear_set(30);
        let mlp = Mlp::new(&[2, 4, 1], 2);
        let e = evaluate_mse(&mlp, &xs, &ys);
        let manual: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (mlp.predict(x) - y).powi(2))
            .sum::<f64>()
            / 30.0;
        assert!((e - manual).abs() < 1e-12);
    }
}
