//! Cross-crate integration tests: the full NeuroSketch pipeline from
//! data generation through query answering, plus engine interop.

use baselines::tree_agg::TreeAgg;
use baselines::AqpEngine;
use datagen::PaperDataset;
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use nn::train::TrainConfig;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

fn small_cfg() -> NeuroSketchConfig {
    NeuroSketchConfig {
        tree_height: 2,
        target_partitions: 3,
        depth: 4,
        l_first: 32,
        l_rest: 16,
        train: TrainConfig {
            epochs: 80,
            patience: 10,
            ..TrainConfig::default()
        },
        threads: 2,
        seed: 7,
        aqc_max_pairs: 3_000,
    }
}

/// Full pipeline on a paper dataset: generate, normalize, label, build,
/// answer, serialize, reload — answers must survive the round trip and
/// beat a trivial constant predictor.
#[test]
fn pipeline_on_pm_dataset() {
    let raw = PaperDataset::Pm.generate(0.1, 3);
    let (data, _) = raw.normalized();
    let measure = PaperDataset::Pm.measure_column();
    let engine = QueryEngine::new(&data, measure);
    let wl = Workload::generate(&WorkloadConfig {
        dims: data.dims(),
        active: ActiveMode::Fixed(vec![1]), // temperature ranges
        range: RangeMode::Uniform,
        count: 900,
        seed: 5,
    })
    .unwrap();
    let (train, test) = wl.split(150);
    let (sketch, report) =
        NeuroSketch::build(&engine, &wl.predicate, Aggregate::Avg, &train, &small_cfg()).unwrap();
    assert_eq!(sketch.partitions(), 3);
    assert_eq!(report.leaf_sizes.iter().sum::<usize>(), train.len());

    let truth: Vec<f64> = test
        .iter()
        .map(|q| engine.answer(&wl.predicate, Aggregate::Avg, q))
        .collect();
    let preds: Vec<f64> = test.iter().map(|q| sketch.answer(q)).collect();
    let err = normalized_mae(&truth, &preds);

    // Constant predictor baseline (mean of training labels).
    let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &train, 2);
    let mean = labels.iter().sum::<f64>() / labels.len() as f64;
    let const_preds = vec![mean; test.len()];
    let const_err = normalized_mae(&truth, &const_preds);
    assert!(
        err < const_err,
        "sketch {err} must beat constant {const_err}"
    );

    // Serialization round trip.
    let loaded = NeuroSketch::from_json(&sketch.to_json().unwrap()).unwrap();
    for q in test.iter().take(10) {
        assert_eq!(sketch.answer(q), loaded.answer(q));
    }
}

/// NeuroSketch and TREE-AGG must agree (within sampling noise) with the
/// exact engine on easy COUNT workloads.
#[test]
fn engines_agree_on_easy_count() {
    let data = datagen::simple::uniform(8_000, 2, 1);
    let engine = QueryEngine::new(&data, 1);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 2,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::WidthBetween(0.2, 0.5),
        count: 700,
        seed: 2,
    })
    .unwrap();
    let (train, test) = wl.split(100);
    let (sketch, _) = NeuroSketch::build(
        &engine,
        &wl.predicate,
        Aggregate::Count,
        &train,
        &small_cfg(),
    )
    .unwrap();
    let ta = TreeAgg::build(&data, 1, 2_000, 3);

    for q in test.iter().take(30) {
        let exact = engine.answer(&wl.predicate, Aggregate::Count, q);
        let ns = sketch.answer(q);
        let tree = ta.answer(&wl.predicate, Aggregate::Count, q).unwrap();
        // Wide uniform ranges match thousands of rows: both engines must
        // land within 10% of data size of the exact count.
        assert!(
            (ns - exact).abs() / (data.rows() as f64) < 0.10,
            "sketch {ns} vs exact {exact}"
        );
        assert!(
            (tree - exact).abs() / (data.rows() as f64) < 0.10,
            "tree-agg {tree} vs exact {exact}"
        );
    }
}

/// Merging with a real AQC score changes partition structure but keeps
/// every training query answerable.
#[test]
fn merge_preserves_query_coverage() {
    let data = datagen::simple::gmm2(4_000, 0.25, 0.75, 0.05, 9);
    let engine = QueryEngine::new(&data, 0);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 1,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: 600,
        seed: 11,
    })
    .unwrap();
    let mut cfg = small_cfg();
    cfg.tree_height = 4;
    cfg.target_partitions = 5;
    let (sketch, report) =
        NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg).unwrap();
    assert_eq!(sketch.partitions(), 5);
    assert_eq!(report.leaf_aqcs.len(), 5);
    // Every query (train or new) must route to some model without panic.
    for q in &wl.queries {
        let _ = sketch.answer(q);
    }
    let _ = sketch.answer(&[0.0, 1.0]);
    let _ = sketch.answer(&[0.999, 0.001]);
}

/// Query specialization (Sec. 4.2): with a skewed workload, the median-
/// split kd-tree makes partitions equally *probable*, so leaves near the
/// hotspot are spatially narrower — more model capacity where queries are.
#[test]
fn kdtree_adapts_to_hotspot_workloads() {
    let wl = Workload::generate(&WorkloadConfig {
        dims: 1,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Hotspot {
            width: 0.05,
            center: 0.25,
            sigma: 0.04,
        },
        count: 1024,
        seed: 8,
    })
    .unwrap();
    let tree = spatial::KdTree::build(&wl.queries, 3);
    // Every leaf holds ~1/8 of the queries despite the position skew.
    for leaf in tree.leaf_ids() {
        let n = tree.leaf_queries(leaf).len();
        assert!((100..=160).contains(&n), "leaf size {n} far from 128");
    }
    // Leaves covering the hotspot span a narrower slice of position
    // space than the leaf containing the far tail.
    let width_of = |leaf: usize| {
        let qs = tree.leaf_queries(leaf);
        let lo = qs
            .iter()
            .map(|&i| wl.queries[i][0])
            .fold(f64::INFINITY, f64::min);
        let hi = qs
            .iter()
            .map(|&i| wl.queries[i][0])
            .fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    };
    let hot_leaf = tree.locate(&[0.25, 0.05]);
    let cold_leaf = tree.locate(&[0.9, 0.05]);
    assert!(
        width_of(hot_leaf) < width_of(cold_leaf),
        "hot {} vs cold {}",
        width_of(hot_leaf),
        width_of(cold_leaf)
    );
}

/// The same seed produces byte-identical serialized sketches.
#[test]
fn deterministic_end_to_end() {
    let data = datagen::simple::uniform(1_000, 2, 4);
    let engine = QueryEngine::new(&data, 1);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 2,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: 300,
        seed: 6,
    })
    .unwrap();
    let build = || {
        let (s, _) = NeuroSketch::build(
            &engine,
            &wl.predicate,
            Aggregate::Sum,
            &wl.queries,
            &small_cfg(),
        )
        .unwrap();
        s.to_json().unwrap()
    };
    assert_eq!(build(), build());
}
