//! # neurosketch-repro — workspace umbrella crate
//!
//! This package exists to host the cross-crate integration tests
//! (`tests/`) and the runnable walkthroughs (`examples/`) of the
//! NeuroSketch reproduction. The actual implementation lives in the
//! workspace crates:
//!
//! | crate | role |
//! |---|---|
//! | `nn` | from-scratch MLP: linalg, init, training, pruning, codecs |
//! | `spatial` | kd-tree query partitioning + R-tree data index |
//! | `datagen` | synthetic paper datasets (GMM, TPC, PM, Veraset-like) |
//! | `query` | exact range-aggregate engine, predicates, workloads |
//! | `neurosketch` | the paper's system: partition, merge, train, answer |
//! | `baselines` | TREE-AGG, VerdictDB-, DeepDB-, DBEst-like engines |
//! | `bench` | experiment harness + `repro` binary for tables/figures |
//!
//! See the repository `README.md` for the end-to-end walkthrough and
//! the `repro` command matrix.

// Intentionally empty: all functionality lives in the member crates.
