//! Protocol-level serving battery for [`neurosketch::net`]: loopback
//! parity (server answers bitwise identical to direct
//! [`Deployment::answer_batch`], at any thread count and any
//! micro-batch coalescing schedule), deterministic overload /
//! backpressure, round-robin fairness against a flooding client, and
//! the never-blend-generations contract under a hot swap mid-traffic.

use neurosketch::deploy::LiveDeployment;
use neurosketch::net::{NetClient, NetOptions, NetResponse, NetServer};
use neurosketch::router::{DqdRouter, RoutingPolicy};
use neurosketch::{Deployment, NeuroSketch, NeuroSketchConfig, ServeOptions, SketchServer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic 2-d query workload.
fn workload(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
        .collect()
}

/// A small trained sketch over `queries` labeled by `f`, plus its
/// leaf AQCs (for router construction).
fn trained(queries: &[Vec<f64>], f: impl Fn(&[f64]) -> f64) -> (NeuroSketch, Vec<f64>) {
    let labels: Vec<f64> = queries.iter().map(|q| f(q)).collect();
    let mut cfg = NeuroSketchConfig::small();
    cfg.tree_height = 2;
    cfg.target_partitions = 4;
    cfg.train.epochs = 5;
    let (sketch, report) = NeuroSketch::build_from_labeled(queries, &labels, &cfg).unwrap();
    (sketch, report.leaf_aqcs)
}

type ServerHandle = (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<NetServer>,
);

fn spawn_server(live: Arc<LiveDeployment>, opts: NetOptions) -> ServerHandle {
    let mut server = NetServer::bind("127.0.0.1:0", live, 2, opts).unwrap();
    let addr = server.local_addr();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let handle = std::thread::spawn(move || {
        server.serve(&flag);
        server
    });
    (addr, shutdown, handle)
}

/// N concurrent pipelined clients through the server receive answers
/// bitwise identical to a direct [`Deployment::answer_batch`] on the
/// same queries — across serving thread counts and micro-batch caps
/// (1 = fully serial, 5 = mid-batch coalescing, 1024 = everything
/// pending in one batch). The coalescing schedule under concurrency is
/// nondeterministic by construction; bitwise parity must hold for all
/// of them.
#[test]
fn loopback_parity_any_threads_any_coalescing() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 40;
    let queries = workload(CLIENTS * PER_CLIENT);
    let (sketch, aqcs) = trained(&queries, |q| 7.0 * q[0] - 3.0 * q[1]);

    for threads in [1usize, 4] {
        for max_batch in [1usize, 5, 1024] {
            let router = DqdRouter::new(sketch.clone(), aqcs.clone(), RoutingPolicy::default());
            let deploy = SketchServer::new(
                router,
                ServeOptions {
                    threads,
                    ..ServeOptions::default()
                },
            );
            let (expected, _) = deploy.answer_batch(&queries);
            let live = Arc::new(LiveDeployment::new(deploy, 0));
            let (addr, shutdown, handle) = spawn_server(
                live,
                NetOptions {
                    max_batch,
                    ..NetOptions::default()
                },
            );

            let workers: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let slice = queries[c * PER_CLIENT..(c + 1) * PER_CLIENT].to_vec();
                    std::thread::spawn(move || {
                        let mut client = NetClient::connect(addr).unwrap();
                        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                        client.query_stream(&slice, 16).unwrap()
                    })
                })
                .collect();
            for (c, worker) in workers.into_iter().enumerate() {
                let responses = worker.join().unwrap();
                assert_eq!(responses.len(), PER_CLIENT);
                for resp in responses {
                    match resp {
                        NetResponse::Answered(a) => {
                            let want = expected[c * PER_CLIENT + a.id as usize];
                            assert_eq!(
                                a.value.to_bits(),
                                want.to_bits(),
                                "threads={threads} max_batch={max_batch} client={c} id={}",
                                a.id
                            );
                            assert_eq!(a.generation, 0);
                        }
                        NetResponse::Rejected { id, code } => {
                            panic!("request {id} rejected ({code}) under light load")
                        }
                    }
                }
            }
            shutdown.store(true, Ordering::Relaxed);
            let server = handle.join().unwrap();
            let stats = server.stats();
            assert_eq!(stats.answered, (CLIENTS * PER_CLIENT) as u64);
            assert_eq!(stats.rejected, 0);
            assert_eq!(stats.protocol_errors, 0);
            assert!(stats.largest_batch <= max_batch);
        }
    }
}

/// Deterministic overload: with a queue bound of 4, ten pipelined
/// queries yield exactly six typed [`RejectCode::QueueFull`] frames —
/// no hang, no silent drop — and the four queued ones are still
/// answered. Driven by stepping `pump_io` / `serve_pending_batch`
/// directly so the outcome is exact, not timing-dependent.
#[test]
fn overload_yields_typed_rejections_not_hangs_or_drops() {
    let queries = workload(10);
    let (sketch, _) = trained(&queries, |q| q[0] + q[1]);
    let expected = {
        let (a, _) = Deployment::answer_batch(&sketch, &queries);
        a
    };
    let live = Arc::new(LiveDeployment::new(sketch, 0));
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        live,
        2,
        NetOptions {
            queue_cap: 4,
            max_batch: 64,
            ..NetOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    for q in &queries {
        client.send_query(q).unwrap();
    }

    // Pump until every frame is decoded; the deadline only guards
    // against a wedged kernel, the assertions are exact.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.stats().queries < 10 {
        server.pump_io();
        assert!(std::time::Instant::now() < deadline, "server wedged");
        std::thread::sleep(Duration::from_micros(200));
    }
    assert_eq!(server.stats().rejected, 6, "queries past the bound of 4");
    assert_eq!(server.pending(), 4);

    let batch = server.serve_pending_batch().expect("four queued queries");
    assert_eq!(batch.size, 4, "the whole queue fits one micro-batch");
    assert_eq!(server.pending(), 0);
    server.pump_io(); // flush answers

    let mut answered = Vec::new();
    let mut rejected = Vec::new();
    for _ in 0..10 {
        // Keep the single-threaded server flushing while we read.
        server.pump_io();
        match client.recv() {
            Ok(neurosketch::net::Frame::Answer { id, value, .. }) => {
                answered.push((id, value));
            }
            Ok(neurosketch::net::Frame::Reject { id, code }) => {
                assert_eq!(code, neurosketch::net::RejectCode::QueueFull);
                rejected.push(id);
            }
            Ok(other) => panic!("unexpected frame {other:?}"),
            Err(e) => panic!("client error: {e}"),
        }
    }
    answered.sort_by_key(|&(id, _)| id);
    rejected.sort_unstable();
    assert_eq!(rejected, vec![4, 5, 6, 7, 8, 9]);
    assert_eq!(
        answered.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    for &(id, value) in &answered {
        assert_eq!(value.to_bits(), expected[id as usize].to_bits());
    }
}

/// Round-robin fairness: a client with 64 queries queued cannot starve
/// a client with 4. While both have pending work every micro-batch
/// splits evenly between them; the slow client's entire workload is
/// served in the first batch, not after the flooder's.
#[test]
fn flooding_client_cannot_starve_others() {
    let queries = workload(68);
    let (sketch, _) = trained(&queries, |q| 2.0 * q[0]);
    let live = Arc::new(LiveDeployment::new(sketch, 0));
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        live,
        2,
        NetOptions {
            max_batch: 8,
            ..NetOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut flooder = NetClient::connect(addr).unwrap();
    let mut slow = NetClient::connect(addr).unwrap();
    flooder.set_timeout(Some(Duration::from_secs(30))).unwrap();
    slow.set_timeout(Some(Duration::from_secs(30))).unwrap();
    for q in queries.iter().take(64) {
        flooder.send_query(q).unwrap();
    }
    for q in queries.iter().skip(64) {
        slow.send_query(q).unwrap();
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.stats().queries < 68 {
        server.pump_io();
        assert!(std::time::Instant::now() < deadline, "server wedged");
        std::thread::sleep(Duration::from_micros(200));
    }

    // Batch 1: both clients pending → an even 4/4 split of the 8 slots.
    let b1 = server.serve_pending_batch().expect("work pending");
    assert_eq!(b1.size, 8);
    assert_eq!(b1.per_client.len(), 2, "both clients in the first batch");
    for &(client, taken) in &b1.per_client {
        assert_eq!(taken, 4, "client {client} did not get an even share");
    }

    // Batch 2: the slow client is fully served; the flooder gets the
    // whole batch — fairness is about admission, not throttling.
    let b2 = server.serve_pending_batch().expect("flooder still pending");
    assert_eq!(b2.size, 8);
    assert_eq!(b2.per_client.len(), 1);

    // Drain the rest; the flooder still gets everything it queued.
    let mut total = b1.size + b2.size;
    while let Some(b) = server.serve_pending_batch() {
        total += b.size;
    }
    assert_eq!(total, 68, "no query was dropped");
    server.pump_io();

    // The slow client's 4 answers are all available immediately.
    for _ in 0..4 {
        server.pump_io();
        match slow.recv().unwrap() {
            neurosketch::net::Frame::Answer { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

/// Hot-swap under load: generation G → G+1 lands mid-traffic; every
/// response is answered from exactly one generation — an answer
/// stamped G is bitwise G's, an answer stamped G+1 is bitwise G+1's,
/// and nothing in between. Both generations are provably observed.
#[test]
fn hot_swap_under_load_never_blends_generations() {
    let queries = workload(80);
    let (sketch_a, _) = trained(&queries, |q| 7.0 * q[0] - 3.0 * q[1]);
    let (sketch_b, _) = trained(&queries, |q| 20.0 * q[1] + 5.0);
    let (expected_a, _) = Deployment::answer_batch(&sketch_a, &queries);
    let (expected_b, _) = Deployment::answer_batch(&sketch_b, &queries);
    // The two generations must actually disagree for the test to bite.
    assert!(queries
        .iter()
        .enumerate()
        .any(|(i, _)| expected_a[i].to_bits() != expected_b[i].to_bits()));

    let live = Arc::new(LiveDeployment::new(sketch_a, 0));
    let (addr, shutdown, handle) = spawn_server(live.clone(), NetOptions::default());

    // A background flooder streams across the swap; every response it
    // sees must be internally consistent (stamp ⇒ that generation's
    // bitwise answer).
    let flood_queries = queries.clone();
    let (fa, fb) = (expected_a.clone(), expected_b.clone());
    let flooder = std::thread::spawn(move || {
        let mut client = NetClient::connect(addr).unwrap();
        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
        let stream: Vec<Vec<f64>> = (0..800)
            .map(|i| flood_queries[i % flood_queries.len()].clone())
            .collect();
        let responses = client.query_stream(&stream, 32).unwrap();
        let mut seen = [0usize; 2];
        for r in responses {
            match r {
                NetResponse::Answered(a) => {
                    let qi = (a.id as usize) % flood_queries.len();
                    let want = match a.generation {
                        0 => fa[qi],
                        1 => fb[qi],
                        g => panic!("unknown generation {g}"),
                    };
                    assert_eq!(
                        a.value.to_bits(),
                        want.to_bits(),
                        "id {} stamped gen {} but value is not that generation's",
                        a.id,
                        a.generation
                    );
                    seen[a.generation as usize] += 1;
                }
                NetResponse::Rejected { id, code } => {
                    panic!("request {id} rejected ({code}) under light load")
                }
            }
        }
        seen
    });

    // Phase 1: all responses received before the swap are generation 0.
    let mut client = NetClient::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    for (i, q) in queries.iter().enumerate().take(40) {
        let a = client.query(q).unwrap();
        assert_eq!(a.generation, 0);
        assert_eq!(a.value.to_bits(), expected_a[i].to_bits());
    }

    // The swap: atomic, mid-traffic.
    live.swap(sketch_b, 1);

    // Phase 2: everything sent after the swap is generation 1.
    for (i, q) in queries.iter().enumerate().skip(40) {
        let a = client.query(q).unwrap();
        assert_eq!(a.generation, 1);
        assert_eq!(a.value.to_bits(), expected_b[i].to_bits());
    }

    let seen = flooder.join().unwrap();
    assert_eq!(seen[0] + seen[1], 800);
    shutdown.store(true, Ordering::Relaxed);
    let server = handle.join().unwrap();
    assert_eq!(server.stats().protocol_errors, 0);
}
