//! Async network front end: the jump from *library* to *service*.
//!
//! Every serving layer below this one — [`crate::serve::SketchServer`],
//! the scatter/gather [`crate::shard::ShardedServer`], the replicated
//! [`crate::cluster::Cluster`], the hot-swappable
//! [`crate::deploy::LiveDeployment`] — is driven in-process. This
//! module puts a socket in front: [`NetServer`] owns a
//! [`LiveDeployment`], speaks the small length-prefixed **NSKW** binary
//! frame protocol over TCP, and turns concurrent client traffic into
//! the batched GEMM work the deployment is fastest at.
//!
//! Design points, in the order they matter:
//!
//! * **Hand-rolled readiness loop.** The build container is offline
//!   (no tokio, no mio), so the server is a single-threaded
//!   non-blocking loop over `std::net` sockets: accept until
//!   `WouldBlock`, read every connection until `WouldBlock`, parse
//!   complete frames, serve, flush. Parallelism lives where it pays —
//!   inside the deployment's batched scatter, on the [`par`] pool —
//!   not in per-connection threads.
//! * **Adaptive micro-batching.** Decoded queries queue per
//!   connection; each serving step coalesces *everything pending*
//!   (capped at [`NetOptions::max_batch`]) into one
//!   [`LiveDeployment::answer_batch_tagged`] call. Under light load a
//!   query is answered alone (minimum latency); under heavy load the
//!   batch grows to whatever arrived while the previous batch was
//!   being served (maximum throughput) — the batch size *adapts to the
//!   arrival rate* with no timer and no tuning.
//! * **Bounded queues, typed backpressure, fairness.** Each
//!   connection's pending queue is bounded
//!   ([`NetOptions::queue_cap`]); an over-budget query is answered
//!   with a typed [`Frame::Reject`] frame — never a hang, never a
//!   silent drop. Micro-batches drain connections **round-robin, one
//!   query per turn**, so a flooding client cannot starve others: in a
//!   batch of `B` over `c` active connections every client gets
//!   ⌈B/c⌉-ish slots regardless of how deep the flooder's queue is.
//! * **Generation stamping.** Every answer frame carries the NSKM
//!   generation that served it, taken from the *same*
//!   [`LiveDeployment`] snapshot as the answers — a batch (and hence
//!   every response in it) is answered by exactly one generation even
//!   while [`LiveDeployment::swap`] lands mid-traffic.
//! * **Corruption is typed and contained.** Frame decoding mirrors the
//!   NSK2 container's posture ([`crate::persist`]): magic, version and
//!   declared length are vetted before anything is buffered, an
//!   FNV-1a-64 trailer closes every frame, and every way a frame can
//!   be wrong is a [`NetError`] variant. A protocol violation earns
//!   the offending connection one final [`Frame::Error`] frame and a
//!   close — other connections never notice.
//!
//! # Wire format
//!
//! All integers little-endian, matching NSK2/NSKM:
//!
//! ```text
//! offset size
//! 0      4    magic "NSKW"
//! 4      1    protocol version (1)
//! 5      1    frame kind (see below)
//! 6      4    payload length u32
//! 10     n    payload (kind-specific)
//! 10+n   8    FNV-1a-64 checksum of bytes [0, 10+n)
//! ```
//!
//! | kind | name         | payload                                      |
//! |------|--------------|----------------------------------------------|
//! | 1    | Query        | `id u64, dims u16, dims × f64`               |
//! | 2    | Answer       | `id u64, generation u64, value f64`          |
//! | 3    | Reject       | `id u64, code u8`                            |
//! | 4    | Error        | `code u8, len u16, utf-8 message`            |
//! | 5    | InfoRequest  | (empty)                                      |
//! | 6    | InfoResponse | `dims u16, generation u64, queue_cap u32, max_batch u32` |
//!
//! ```no_run
//! use neurosketch::deploy::LiveDeployment;
//! use neurosketch::net::{NetClient, NetOptions, NetServer};
//! use neurosketch::{NeuroSketch, NeuroSketchConfig};
//! use std::sync::atomic::{AtomicBool, Ordering};
//! use std::sync::Arc;
//!
//! let queries: Vec<Vec<f64>> = (0..120)
//!     .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
//!     .collect();
//! let labels: Vec<f64> = queries.iter().map(|q| 3.0 * q[0] + q[1]).collect();
//! let mut cfg = NeuroSketchConfig::small();
//! cfg.train.epochs = 10;
//! let (sketch, _) = NeuroSketch::build_from_labeled(&queries, &labels, &cfg).unwrap();
//! let live = Arc::new(LiveDeployment::new(sketch, 0));
//!
//! let mut server =
//!     NetServer::bind("127.0.0.1:0", live, 2, NetOptions::default()).unwrap();
//! let addr = server.local_addr();
//! let shutdown = Arc::new(AtomicBool::new(false));
//! let flag = shutdown.clone();
//! let handle = std::thread::spawn(move || {
//!     server.serve(&flag);
//!     server
//! });
//!
//! let mut client = NetClient::connect(addr).unwrap();
//! let answer = client.query(&queries[0]).unwrap();
//! assert_eq!(answer.generation, 0);
//! shutdown.store(true, Ordering::Relaxed);
//! handle.join().unwrap();
//! ```

use crate::deploy::LiveDeployment;
use query::exec::fnv1a_64;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The four magic bytes opening every frame.
pub const NET_MAGIC: [u8; 4] = *b"NSKW";
/// Newest protocol version this build speaks.
pub const NET_VERSION: u8 = 1;
/// Bytes before the payload: magic + version + kind + payload length.
pub const FRAME_HEADER: usize = 10;
/// Bytes after the payload: the FNV-1a-64 end-to-end checksum.
pub const FRAME_TRAILER: usize = 8;
/// Hard ceiling on the query dimensionality a frame may declare —
/// bounds what a `dims` field can make the decoder read, independent
/// of the (configurable) payload cap.
pub const MAX_QUERY_DIMS: usize = 512;

/// Why the server refused to enqueue a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The connection's pending queue is at [`NetOptions::queue_cap`];
    /// retry after draining some in-flight responses.
    QueueFull,
    /// The server is shutting down and no longer serves.
    ShuttingDown,
}

impl RejectCode {
    /// Wire encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            RejectCode::QueueFull => 1,
            RejectCode::ShuttingDown => 2,
        }
    }

    /// Decode a wire byte; `None` for unknown codes.
    pub fn from_u8(code: u8) -> Option<RejectCode> {
        match code {
            1 => Some(RejectCode::QueueFull),
            2 => Some(RejectCode::ShuttingDown),
            _ => None,
        }
    }
}

impl std::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectCode::QueueFull => write!(f, "queue full"),
            RejectCode::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

/// What a server is serving — the [`Frame::InfoResponse`] payload a
/// client (or a load generator pointed at an unknown address) reads
/// before sending queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Query dimensionality every [`Frame::Query`] must carry.
    pub dims: usize,
    /// NSKM generation the next batch will be served by.
    pub generation: u64,
    /// Per-connection pending-queue bound ([`NetOptions::queue_cap`]).
    pub queue_cap: u32,
    /// Micro-batch cap ([`NetOptions::max_batch`]).
    pub max_batch: u32,
}

/// One decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: answer this query.
    Query {
        /// Client-chosen request id, echoed on the response.
        id: u64,
        /// The query vector.
        query: Vec<f64>,
    },
    /// Server → client: the answer to request `id`.
    Answer {
        /// Request id this answers.
        id: u64,
        /// NSKM generation of the deployment snapshot that answered.
        generation: u64,
        /// The predicted aggregate value.
        value: f64,
    },
    /// Server → client: request `id` was refused (backpressure).
    Reject {
        /// Request id this refuses.
        id: u64,
        /// Why.
        code: RejectCode,
    },
    /// Server → client: the connection violated the protocol; this is
    /// the last frame before the server closes it.
    Error {
        /// [`NetError::code`] of the violation.
        code: u8,
        /// The rendered error.
        message: String,
    },
    /// Client → server: describe yourself.
    InfoRequest,
    /// Server → client: the [`ServerInfo`] answer.
    InfoResponse(ServerInfo),
}

/// Everything that can be wrong with a frame, a stream, or a request —
/// the typed-error surface the corruption suite fuzzes. Mirrors
/// [`crate::persist::PersistError`]'s posture: every corruption is a
/// variant, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// The first four bytes were not [`NET_MAGIC`].
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The version byte names a protocol this build does not speak.
    BadVersion {
        /// The version actually found.
        found: u8,
    },
    /// The kind byte names no known frame kind.
    BadKind {
        /// The kind actually found.
        found: u8,
    },
    /// The header declares a payload larger than the negotiated cap —
    /// refused before any of it is buffered.
    Oversized {
        /// Declared payload length.
        declared: u32,
        /// The cap in force.
        max: u32,
    },
    /// The frame's trailing checksum does not match its bytes.
    ChecksumMismatch {
        /// Checksum the trailer records.
        expected: u64,
        /// Checksum of the bytes actually received.
        found: u64,
    },
    /// The declared payload length is inconsistent with the structure
    /// the frame kind requires.
    PayloadMismatch {
        /// Frame kind byte.
        kind: u8,
        /// Payload length the header declared.
        declared: usize,
        /// Payload length the kind's structure requires.
        needed: usize,
    },
    /// A query frame declared an implausible or mismatched
    /// dimensionality.
    BadQueryDim {
        /// Dimensionality the frame carried.
        got: usize,
        /// Dimensionality the server serves (or [`MAX_QUERY_DIMS`] at
        /// decode time, before the server's check).
        expected: usize,
    },
    /// A query coordinate was NaN or infinite.
    NonFinite {
        /// Index of the offending coordinate.
        index: usize,
    },
    /// A reject frame carried an unknown [`RejectCode`].
    BadRejectCode {
        /// The code actually found.
        found: u8,
    },
    /// An error frame's message was not valid UTF-8.
    BadUtf8,
    /// A structurally valid frame arrived in a direction it never
    /// travels (e.g. a client sending [`Frame::Answer`]).
    UnexpectedKind {
        /// The kind byte.
        kind: u8,
    },
    /// The peer closed the stream mid-frame.
    Truncated {
        /// Bytes of the partial frame received.
        have: usize,
        /// Bytes the frame needed (header-derived; 0 when even the
        /// header was incomplete).
        need: usize,
    },
    /// The server is at [`NetOptions::max_clients`] connections.
    ServerFull {
        /// The connection cap in force.
        max: usize,
    },
    /// Client-side: the server rejected the request (backpressure).
    Rejected {
        /// The rejected request id.
        id: u64,
        /// The server's reason.
        code: RejectCode,
    },
    /// Client-side: the server reported a protocol violation and will
    /// close the connection.
    Remote {
        /// The violation's [`NetError::code`].
        code: u8,
        /// The server's rendered error.
        message: String,
    },
    /// A socket operation failed.
    Io(String),
}

impl NetError {
    /// The wire code identifying this variant in a [`Frame::Error`]
    /// payload. Stable: codes are part of the protocol.
    pub fn code(&self) -> u8 {
        match self {
            NetError::BadMagic { .. } => 1,
            NetError::BadVersion { .. } => 2,
            NetError::BadKind { .. } => 3,
            NetError::Oversized { .. } => 4,
            NetError::ChecksumMismatch { .. } => 5,
            NetError::PayloadMismatch { .. } => 6,
            NetError::BadQueryDim { .. } => 7,
            NetError::NonFinite { .. } => 8,
            NetError::BadRejectCode { .. } => 9,
            NetError::BadUtf8 => 10,
            NetError::UnexpectedKind { .. } => 11,
            NetError::Truncated { .. } => 12,
            NetError::ServerFull { .. } => 13,
            NetError::Rejected { .. } => 14,
            NetError::Remote { .. } => 15,
            NetError::Io(_) => 16,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::BadMagic { found } => {
                write!(f, "bad frame magic {found:?} (want {NET_MAGIC:?})")
            }
            NetError::BadVersion { found } => {
                write!(f, "unsupported protocol version {found} (speak {NET_VERSION})")
            }
            NetError::BadKind { found } => write!(f, "unknown frame kind {found}"),
            NetError::Oversized { declared, max } => {
                write!(f, "declared payload {declared} B exceeds the {max} B cap")
            }
            NetError::ChecksumMismatch { expected, found } => write!(
                f,
                "frame checksum mismatch: trailer says {expected:#018x}, bytes hash to {found:#018x}"
            ),
            NetError::PayloadMismatch {
                kind,
                declared,
                needed,
            } => write!(
                f,
                "kind-{kind} frame declares a {declared} B payload but its structure needs {needed} B"
            ),
            NetError::BadQueryDim { got, expected } => {
                write!(f, "query dimensionality {got}, server expects {expected}")
            }
            NetError::NonFinite { index } => {
                write!(f, "query coordinate {index} is not finite")
            }
            NetError::BadRejectCode { found } => write!(f, "unknown reject code {found}"),
            NetError::BadUtf8 => write!(f, "error message is not valid UTF-8"),
            NetError::UnexpectedKind { kind } => {
                write!(f, "kind-{kind} frame is not valid in this direction")
            }
            NetError::Truncated { have, need } => {
                write!(f, "stream closed mid-frame ({have} of {need} bytes)")
            }
            NetError::ServerFull { max } => {
                write!(f, "server at its {max}-connection cap")
            }
            NetError::Rejected { id, code } => write!(f, "request {id} rejected: {code}"),
            NetError::Remote { code, message } => {
                write!(f, "server reported violation {code}: {message}")
            }
            NetError::Io(msg) => write!(f, "socket error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e.to_string())
    }
}

const KIND_QUERY: u8 = 1;
const KIND_ANSWER: u8 = 2;
const KIND_REJECT: u8 = 3;
const KIND_ERROR: u8 = 4;
const KIND_INFO_REQUEST: u8 = 5;
const KIND_INFO_RESPONSE: u8 = 6;

fn kind_of(frame: &Frame) -> u8 {
    match frame {
        Frame::Query { .. } => KIND_QUERY,
        Frame::Answer { .. } => KIND_ANSWER,
        Frame::Reject { .. } => KIND_REJECT,
        Frame::Error { .. } => KIND_ERROR,
        Frame::InfoRequest => KIND_INFO_REQUEST,
        Frame::InfoResponse(_) => KIND_INFO_RESPONSE,
    }
}

/// Encode one frame: header, payload, trailing checksum.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Query { id, query } => {
            payload.extend_from_slice(&id.to_le_bytes());
            payload.extend_from_slice(&(query.len() as u16).to_le_bytes());
            for v in query {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        Frame::Answer {
            id,
            generation,
            value,
        } => {
            payload.extend_from_slice(&id.to_le_bytes());
            payload.extend_from_slice(&generation.to_le_bytes());
            payload.extend_from_slice(&value.to_le_bytes());
        }
        Frame::Reject { id, code } => {
            payload.extend_from_slice(&id.to_le_bytes());
            payload.push(code.to_u8());
        }
        Frame::Error { code, message } => {
            let msg = message.as_bytes();
            let len = msg.len().min(u16::MAX as usize);
            payload.push(*code);
            payload.extend_from_slice(&(len as u16).to_le_bytes());
            payload.extend_from_slice(&msg[..len]);
        }
        Frame::InfoRequest => {}
        Frame::InfoResponse(info) => {
            payload.extend_from_slice(&(info.dims as u16).to_le_bytes());
            payload.extend_from_slice(&info.generation.to_le_bytes());
            payload.extend_from_slice(&info.queue_cap.to_le_bytes());
            payload.extend_from_slice(&info.max_batch.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len() + FRAME_TRAILER);
    out.extend_from_slice(&NET_MAGIC);
    out.push(NET_VERSION);
    out.push(kind_of(frame));
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let sum = fnv1a_64(out.iter().copied());
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn le_f64(b: &[u8]) -> f64 {
    f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn mismatch(kind: u8, declared: usize, needed: usize) -> NetError {
    NetError::PayloadMismatch {
        kind,
        declared,
        needed,
    }
}

fn decode_payload(kind: u8, p: &[u8]) -> Result<Frame, NetError> {
    match kind {
        KIND_QUERY => {
            if p.len() < 10 {
                return Err(mismatch(kind, p.len(), 10));
            }
            let id = le_u64(&p[0..8]);
            let dims = le_u16(&p[8..10]) as usize;
            if dims == 0 || dims > MAX_QUERY_DIMS {
                return Err(NetError::BadQueryDim {
                    got: dims,
                    expected: MAX_QUERY_DIMS,
                });
            }
            let needed = 10 + 8 * dims;
            if p.len() != needed {
                return Err(mismatch(kind, p.len(), needed));
            }
            let mut query = Vec::with_capacity(dims);
            for i in 0..dims {
                let v = le_f64(&p[10 + 8 * i..18 + 8 * i]);
                if !v.is_finite() {
                    return Err(NetError::NonFinite { index: i });
                }
                query.push(v);
            }
            Ok(Frame::Query { id, query })
        }
        KIND_ANSWER => {
            if p.len() != 24 {
                return Err(mismatch(kind, p.len(), 24));
            }
            Ok(Frame::Answer {
                id: le_u64(&p[0..8]),
                generation: le_u64(&p[8..16]),
                value: le_f64(&p[16..24]),
            })
        }
        KIND_REJECT => {
            if p.len() != 9 {
                return Err(mismatch(kind, p.len(), 9));
            }
            let code = RejectCode::from_u8(p[8]).ok_or(NetError::BadRejectCode { found: p[8] })?;
            Ok(Frame::Reject {
                id: le_u64(&p[0..8]),
                code,
            })
        }
        KIND_ERROR => {
            if p.len() < 3 {
                return Err(mismatch(kind, p.len(), 3));
            }
            let code = p[0];
            let len = le_u16(&p[1..3]) as usize;
            if p.len() != 3 + len {
                return Err(mismatch(kind, p.len(), 3 + len));
            }
            let message = std::str::from_utf8(&p[3..]).map_err(|_| NetError::BadUtf8)?;
            Ok(Frame::Error {
                code,
                message: message.to_string(),
            })
        }
        KIND_INFO_REQUEST => {
            if !p.is_empty() {
                return Err(mismatch(kind, p.len(), 0));
            }
            Ok(Frame::InfoRequest)
        }
        KIND_INFO_RESPONSE => {
            if p.len() != 18 {
                return Err(mismatch(kind, p.len(), 18));
            }
            Ok(Frame::InfoResponse(ServerInfo {
                dims: le_u16(&p[0..2]) as usize,
                generation: le_u64(&p[2..10]),
                queue_cap: le_u32(&p[10..14]),
                max_batch: le_u32(&p[14..18]),
            }))
        }
        other => Err(NetError::BadKind { found: other }),
    }
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(Some((frame, consumed)))` — a complete, checksum-valid frame;
///   the caller should drop the first `consumed` bytes.
/// * `Ok(None)` — the bytes so far are a plausible frame prefix; read
///   more.
/// * `Err(_)` — the stream is corrupt at the front of `buf`; the error
///   is typed and the connection should be torn down. Garbage
///   prologues fail as soon as the offending byte is present: bad
///   magic at 4 bytes, bad version at 5, bad kind at 6, an oversized
///   declared length at [`FRAME_HEADER`] — **before** any payload is
///   buffered or allocated.
pub fn decode_frame(buf: &[u8], max_payload: u32) -> Result<Option<(Frame, usize)>, NetError> {
    if buf.len() < 4 {
        if buf.iter().zip(NET_MAGIC.iter()).any(|(a, b)| a != b) {
            // The prefix can never grow into a valid magic; fail now
            // rather than waiting for a 4th byte that may never come.
            let mut found = [0u8; 4];
            found[..buf.len()].copy_from_slice(buf);
            return Err(NetError::BadMagic { found });
        }
        return Ok(None);
    }
    if buf[0..4] != NET_MAGIC {
        return Err(NetError::BadMagic {
            found: [buf[0], buf[1], buf[2], buf[3]],
        });
    }
    if buf.len() < 5 {
        return Ok(None);
    }
    if buf[4] != NET_VERSION {
        return Err(NetError::BadVersion { found: buf[4] });
    }
    if buf.len() < 6 {
        return Ok(None);
    }
    let kind = buf[5];
    if !(KIND_QUERY..=KIND_INFO_RESPONSE).contains(&kind) {
        return Err(NetError::BadKind { found: kind });
    }
    if buf.len() < FRAME_HEADER {
        return Ok(None);
    }
    let declared = le_u32(&buf[6..10]);
    if declared > max_payload {
        return Err(NetError::Oversized {
            declared,
            max: max_payload,
        });
    }
    let total = FRAME_HEADER + declared as usize + FRAME_TRAILER;
    if buf.len() < total {
        return Ok(None);
    }
    let body = FRAME_HEADER + declared as usize;
    let expected = le_u64(&buf[body..total]);
    let found = fnv1a_64(buf[..body].iter().copied());
    if expected != found {
        return Err(NetError::ChecksumMismatch { expected, found });
    }
    let frame = decode_payload(kind, &buf[FRAME_HEADER..body])?;
    Ok(Some((frame, total)))
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct NetOptions {
    /// Micro-batch cap: a serving step coalesces at most this many
    /// pending queries into one deployment batch.
    pub max_batch: usize,
    /// Per-connection pending-queue bound; queries past it are
    /// answered with [`RejectCode::QueueFull`] frames.
    pub queue_cap: usize,
    /// Largest payload a frame header may declare, bytes.
    pub max_payload: u32,
    /// Connection cap; further accepts are turned away with a
    /// [`NetError::ServerFull`] error frame.
    pub max_clients: usize,
    /// How long [`NetServer::serve`] sleeps when a poll makes no
    /// progress (no new bytes, nothing pending).
    pub idle: Duration,
    /// Collapse bitwise-identical queries within one micro-batch onto a
    /// single deployment computation (the whole batch still carries one
    /// generation stamp, and fan-out preserves drain order — observably
    /// identical either way, per the serving determinism contract).
    pub dedup: bool,
}

impl Default for NetOptions {
    /// 256-query micro-batches, 1024-deep per-connection queues, 64 KiB
    /// frames, 1024 connections, 100 µs idle backoff, in-batch dedup on.
    fn default() -> NetOptions {
        NetOptions {
            max_batch: 256,
            queue_cap: 1024,
            max_payload: 64 * 1024,
            max_clients: 1024,
            idle: Duration::from_micros(100),
            dedup: true,
        }
    }
}

/// Cumulative server-side tallies, drained via [`NetServer::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections closed (any reason).
    pub closed: u64,
    /// Query frames decoded.
    pub queries: u64,
    /// Answer frames sent.
    pub answered: u64,
    /// Reject frames sent (backpressure).
    pub rejected: u64,
    /// Connections torn down for protocol violations.
    pub protocol_errors: u64,
    /// Micro-batches served.
    pub batches: u64,
    /// Largest micro-batch coalesced so far.
    pub largest_batch: usize,
    /// Info requests answered.
    pub info_requests: u64,
    /// Queries answered by collapsing onto a bitwise-identical query in
    /// the same micro-batch ([`NetOptions::dedup`]) instead of a
    /// deployment computation of their own.
    pub deduped: u64,
    /// Queries the served deployment answered from its answer cache
    /// (zero unless the deployment runs a [`crate::cache::CachePolicy`]
    /// with caching on).
    pub cache_hits: u64,
    /// Queries that fell through the deployment's answer cache to
    /// compute (zero when caching is off — an uncached deployment
    /// reports no cache traffic at all, not all-misses).
    pub cache_misses: u64,
}

/// What one serving step coalesced — the observable the fairness and
/// hot-swap tests assert on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetBatch {
    /// Queries in the micro-batch.
    pub size: usize,
    /// Distinct queries the deployment actually computed (`size` minus
    /// in-batch duplicates; equals `size` with dedup off).
    pub unique: usize,
    /// Generation the whole batch was answered by.
    pub generation: u64,
    /// `(connection id, queries taken)` per contributing connection,
    /// in drain order.
    pub per_client: Vec<(u64, usize)>,
}

struct Conn {
    id: u64,
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    pending: VecDeque<(u64, Vec<f64>)>,
    /// A violation was sent (or the peer vanished); close once the
    /// write buffer drains. Pending queries are discarded, not served.
    dead: bool,
}

impl Conn {
    fn push_frame(&mut self, frame: &Frame) {
        self.wbuf.extend_from_slice(&encode_frame(frame));
    }
}

/// The non-blocking protocol server. One instance owns the listening
/// socket, every connection's buffers and queue, and (an [`Arc`] to)
/// the served [`LiveDeployment`] — swap the deployment from any other
/// thread and in-flight traffic migrates generations atomically,
/// batch by batch.
///
/// Drive it either with [`NetServer::serve`] (the production loop) or
/// step by step with [`NetServer::pump_io`] /
/// [`NetServer::serve_pending_batch`] — the decomposition the
/// deterministic protocol tests use.
pub struct NetServer {
    listener: TcpListener,
    live: Arc<LiveDeployment>,
    dims: usize,
    opts: NetOptions,
    conns: Vec<Conn>,
    next_conn: u64,
    cursor: u64,
    stats: NetStats,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `live`,
    /// validating every query against `dims` input dimensions.
    pub fn bind(
        addr: impl ToSocketAddrs,
        live: Arc<LiveDeployment>,
        dims: usize,
        opts: NetOptions,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(NetServer {
            listener,
            live,
            dims,
            opts,
            conns: Vec::new(),
            next_conn: 0,
            cursor: 0,
            stats: NetStats::default(),
        })
    }

    /// The bound address (the ephemeral port, after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Cumulative tallies.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Fold one micro-batch's deployment stats into the server tallies.
    fn tally_cache(&mut self, stats: &crate::deploy::DeployStats) {
        self.stats.cache_hits += stats.cache_hits as u64;
        self.stats.cache_misses += stats.cache_misses as u64;
    }

    /// Live connections.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Queries decoded and waiting for a micro-batch, across all
    /// connections.
    pub fn pending(&self) -> usize {
        self.conns.iter().map(|c| c.pending.len()).sum()
    }

    /// The served deployment handle.
    pub fn deployment(&self) -> &Arc<LiveDeployment> {
        &self.live
    }

    /// One I/O pass: accept new connections, read and parse every
    /// connection (enqueueing queries, rejecting over-budget ones,
    /// answering info requests, tearing down violators), and flush
    /// write buffers. Returns whether any byte moved or any state
    /// changed — the idle signal [`NetServer::serve`] sleeps on.
    pub fn pump_io(&mut self) -> bool {
        let mut progress = self.accept_new();
        progress |= self.read_all();
        progress |= self.flush_all();
        self.reap();
        progress
    }

    /// Coalesce one adaptive micro-batch and serve it: drain pending
    /// queries **round-robin across connections** (one per turn, so no
    /// client can monopolize a batch), up to [`NetOptions::max_batch`],
    /// answer them in one [`LiveDeployment::answer_batch_tagged`] call,
    /// and stage one [`Frame::Answer`] per query stamped with the
    /// batch's generation. Returns what was coalesced, or `None` if
    /// nothing was pending. Responses are staged, not flushed — the
    /// next [`NetServer::pump_io`] (or [`NetServer::poll_once`]) pushes
    /// them out.
    pub fn serve_pending_batch(&mut self) -> Option<NetBatch> {
        if self.conns.is_empty() {
            return None;
        }
        // jobs: (conn index, request id), in drain order.
        let mut jobs: Vec<(usize, u64)> = Vec::new();
        let mut queries: Vec<Vec<f64>> = Vec::new();
        let n = self.conns.len();
        let start = (self.cursor % n as u64) as usize;
        'fill: loop {
            let mut took_any = false;
            for step in 0..n {
                let ci = (start + step) % n;
                let conn = &mut self.conns[ci];
                if conn.dead {
                    continue;
                }
                if let Some((id, q)) = conn.pending.pop_front() {
                    jobs.push((ci, id));
                    queries.push(q);
                    took_any = true;
                    if jobs.len() >= self.opts.max_batch.max(1) {
                        break 'fill;
                    }
                }
            }
            if !took_any {
                break;
            }
        }
        if jobs.is_empty() {
            return None;
        }
        // Start the next batch's rotation one connection later, so the
        // head-of-line slot itself rotates across batches.
        self.cursor = self.cursor.wrapping_add(1);
        // Collapse in-batch duplicates onto their first occurrence: the
        // deployment sees only the distinct queries (one snapshot, one
        // generation stamp for the whole micro-batch), and the fan-out
        // below hands every duplicate its representative's answer —
        // bitwise the answer it would have computed itself.
        let (answers, generation, unique) = if self.opts.dedup {
            let hashes: Vec<u64> = queries
                .iter()
                .map(|q| crate::cache::key_hash(0, 0, q))
                .collect();
            let (rep, distinct) = crate::cache::dedup_reps(&queries, &hashes);
            if distinct == queries.len() {
                let (answers, stats, generation) = self.live.answer_batch_tagged(&queries);
                self.tally_cache(&stats);
                (answers, generation, distinct)
            } else {
                let mut uniq: Vec<Vec<f64>> = Vec::with_capacity(distinct);
                let mut fan: Vec<u32> = vec![0; queries.len()];
                for (i, q) in queries.into_iter().enumerate() {
                    if rep[i] as usize == i {
                        fan[i] = uniq.len() as u32;
                        uniq.push(q);
                    } else {
                        fan[i] = fan[rep[i] as usize];
                    }
                }
                let (unique_answers, stats, generation) = self.live.answer_batch_tagged(&uniq);
                self.tally_cache(&stats);
                let answers: Vec<f64> = fan.iter().map(|&u| unique_answers[u as usize]).collect();
                self.stats.deduped += (answers.len() - distinct) as u64;
                (answers, generation, distinct)
            }
        } else {
            let (answers, stats, generation) = self.live.answer_batch_tagged(&queries);
            self.tally_cache(&stats);
            let n = answers.len();
            (answers, generation, n)
        };
        let mut per_client: Vec<(u64, usize)> = Vec::new();
        for (&(ci, id), &value) in jobs.iter().zip(answers.iter()) {
            let conn = &mut self.conns[ci];
            conn.push_frame(&Frame::Answer {
                id,
                generation,
                value,
            });
            match per_client.iter_mut().find(|(cid, _)| *cid == conn.id) {
                Some((_, count)) => *count += 1,
                None => per_client.push((conn.id, 1)),
            }
        }
        self.stats.batches += 1;
        self.stats.answered += jobs.len() as u64;
        self.stats.largest_batch = self.stats.largest_batch.max(jobs.len());
        Some(NetBatch {
            size: jobs.len(),
            unique,
            generation,
            per_client,
        })
    }

    /// One full step: [`NetServer::pump_io`], then at most one
    /// micro-batch, then flush the staged responses. Returns whether
    /// anything happened.
    pub fn poll_once(&mut self) -> bool {
        let mut progress = self.pump_io();
        if self.serve_pending_batch().is_some() {
            progress = true;
            self.flush_all();
            self.reap();
        }
        progress
    }

    /// The production loop: poll until `shutdown` is set, sleeping
    /// [`NetOptions::idle`] whenever a poll makes no progress. On
    /// shutdown, still-queued requests are answered with
    /// [`RejectCode::ShuttingDown`] frames and a best-effort flush.
    pub fn serve(&mut self, shutdown: &AtomicBool) {
        while !shutdown.load(Ordering::Relaxed) {
            if !self.poll_once() {
                std::thread::sleep(self.opts.idle);
            }
        }
        // Drain: refuse queued work typed, then flush what we can.
        for conn in &mut self.conns {
            while let Some((id, _)) = conn.pending.pop_front() {
                self.stats.rejected += 1;
                conn.push_frame(&Frame::Reject {
                    id,
                    code: RejectCode::ShuttingDown,
                });
            }
        }
        self.flush_all();
    }

    fn accept_new(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if self.conns.len() >= self.opts.max_clients {
                        // Turn the connection away typed; blocking is
                        // fine for a one-frame farewell.
                        let err = NetError::ServerFull {
                            max: self.opts.max_clients,
                        };
                        let frame = Frame::Error {
                            code: err.code(),
                            message: err.to_string(),
                        };
                        let mut stream = stream;
                        let _ = stream.write_all(&encode_frame(&frame));
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.stats.accepted += 1;
                    self.conns.push(Conn {
                        id: self.next_conn,
                        stream,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        pending: VecDeque::new(),
                        dead: false,
                    });
                    self.next_conn += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        progress
    }

    fn read_all(&mut self) -> bool {
        let mut progress = false;
        let mut tmp = [0u8; 4096];
        for ci in 0..self.conns.len() {
            let conn = &mut self.conns[ci];
            if conn.dead {
                continue;
            }
            let mut eof = false;
            loop {
                match conn.stream.read(&mut tmp) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        conn.rbuf.extend_from_slice(&tmp[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            progress |= self.parse_conn(ci);
            let conn = &mut self.conns[ci];
            if eof && !conn.dead {
                if !conn.rbuf.is_empty() {
                    // The peer hung up mid-frame: a truncated stream is
                    // a typed protocol error even though there is no
                    // one left to tell.
                    self.stats.protocol_errors += 1;
                }
                conn.dead = true;
                progress = true;
            }
        }
        progress
    }

    /// Parse every complete frame in `conns[ci].rbuf`. A decode error
    /// or direction violation stages one [`Frame::Error`] and marks the
    /// connection dead — its remaining bytes and queued queries are
    /// discarded; no other connection is touched.
    fn parse_conn(&mut self, ci: usize) -> bool {
        let max_payload = self.opts.max_payload;
        let queue_cap = self.opts.queue_cap.max(1);
        let dims = self.dims;
        let mut progress = false;
        let mut consumed = 0usize;
        // Split borrows: info() needs &self, so precompute lazily.
        let mut info: Option<ServerInfo> = None;
        let generation = self.live.generation();
        let conn = &mut self.conns[ci];
        loop {
            let violation = match decode_frame(&conn.rbuf[consumed..], max_payload) {
                Ok(None) => break,
                Ok(Some((frame, used))) => {
                    consumed += used;
                    progress = true;
                    match frame {
                        Frame::Query { id, query } => {
                            self.stats.queries += 1;
                            if query.len() != dims {
                                Some(NetError::BadQueryDim {
                                    got: query.len(),
                                    expected: dims,
                                })
                            } else if conn.pending.len() >= queue_cap {
                                self.stats.rejected += 1;
                                conn.push_frame(&Frame::Reject {
                                    id,
                                    code: RejectCode::QueueFull,
                                });
                                None
                            } else {
                                conn.pending.push_back((id, query));
                                None
                            }
                        }
                        Frame::InfoRequest => {
                            self.stats.info_requests += 1;
                            let payload = *info.get_or_insert(ServerInfo {
                                dims,
                                generation,
                                queue_cap: queue_cap.min(u32::MAX as usize) as u32,
                                max_batch: self.opts.max_batch.min(u32::MAX as usize) as u32,
                            });
                            conn.push_frame(&Frame::InfoResponse(payload));
                            None
                        }
                        other => Some(NetError::UnexpectedKind {
                            kind: kind_of(&other),
                        }),
                    }
                }
                Err(e) => Some(e),
            };
            if let Some(err) = violation {
                self.stats.protocol_errors += 1;
                conn.push_frame(&Frame::Error {
                    code: err.code(),
                    message: err.to_string(),
                });
                conn.dead = true;
                conn.rbuf.clear();
                conn.pending.clear();
                return true;
            }
        }
        if consumed > 0 {
            conn.rbuf.drain(..consumed);
        }
        progress
    }

    fn flush_all(&mut self) -> bool {
        let mut progress = false;
        for conn in &mut self.conns {
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.wpos == conn.wbuf.len() && conn.wpos > 0 {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
        }
        progress
    }

    /// Drop connections that are dead with nothing left to flush.
    fn reap(&mut self) {
        let before = self.conns.len();
        self.conns.retain(|c| !(c.dead && c.wpos >= c.wbuf.len()));
        self.stats.closed += (before - self.conns.len()) as u64;
    }
}

/// A response a pipelined client collected: answered or refused.
#[derive(Debug, Clone, PartialEq)]
pub enum NetResponse {
    /// The server answered.
    Answered(NetAnswer),
    /// The server refused (backpressure).
    Rejected {
        /// The refused request id.
        id: u64,
        /// Why.
        code: RejectCode,
    },
}

/// One answered query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetAnswer {
    /// The request id this answers.
    pub id: u64,
    /// Generation of the deployment snapshot that answered.
    pub generation: u64,
    /// The predicted aggregate value.
    pub value: f64,
}

/// A blocking protocol client over one TCP connection — what the
/// tests, the loopback example and the `netbench` load generator
/// drive. Request ids are assigned sequentially per connection.
pub struct NetClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    next_id: u64,
    max_payload: u32,
}

impl NetClient {
    /// Connect (blocking I/O, `TCP_NODELAY` on).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            rbuf: Vec::new(),
            next_id: 0,
            max_payload: NetOptions::default().max_payload,
        })
    }

    /// Bound further blocking reads (None = wait forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Send a query frame without waiting for its response; returns
    /// the request id that will come back on the answer.
    pub fn send_query(&mut self, query: &[f64]) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = Frame::Query {
            id,
            query: query.to_vec(),
        };
        self.stream.write_all(&encode_frame(&frame))?;
        Ok(id)
    }

    /// Send raw bytes on the wire — the corruption suite's way of
    /// putting damaged frames in front of the server.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Block until the next complete frame arrives.
    pub fn recv(&mut self) -> Result<Frame, NetError> {
        let mut tmp = [0u8; 4096];
        loop {
            if let Some((frame, used)) = decode_frame(&self.rbuf, self.max_payload)? {
                self.rbuf.drain(..used);
                return Ok(frame);
            }
            let n = self.stream.read(&mut tmp)?;
            if n == 0 {
                return Err(NetError::Truncated {
                    have: self.rbuf.len(),
                    need: 0,
                });
            }
            self.rbuf.extend_from_slice(&tmp[..n]);
        }
    }

    /// One blocking round trip. [`Frame::Reject`] and [`Frame::Error`]
    /// responses come back as typed errors.
    pub fn query(&mut self, query: &[f64]) -> Result<NetAnswer, NetError> {
        self.send_query(query)?;
        match self.recv()? {
            Frame::Answer {
                id,
                generation,
                value,
            } => Ok(NetAnswer {
                id,
                generation,
                value,
            }),
            Frame::Reject { id, code } => Err(NetError::Rejected { id, code }),
            Frame::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Err(NetError::UnexpectedKind {
                kind: kind_of(&other),
            }),
        }
    }

    /// Ask the server to describe itself.
    pub fn info(&mut self) -> Result<ServerInfo, NetError> {
        self.stream.write_all(&encode_frame(&Frame::InfoRequest))?;
        match self.recv()? {
            Frame::InfoResponse(info) => Ok(info),
            Frame::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Err(NetError::UnexpectedKind {
                kind: kind_of(&other),
            }),
        }
    }

    /// Pipelined stream: keep up to `window` requests outstanding,
    /// collect every response. Responses come back in request order on
    /// a single connection (the server drains each connection FIFO);
    /// they are returned in arrival order, one per query.
    pub fn query_stream(
        &mut self,
        queries: &[Vec<f64>],
        window: usize,
    ) -> Result<Vec<NetResponse>, NetError> {
        let window = window.max(1);
        let mut responses = Vec::with_capacity(queries.len());
        let mut sent = 0usize;
        while responses.len() < queries.len() {
            while sent < queries.len() && sent - responses.len() < window {
                self.send_query(&queries[sent])?;
                sent += 1;
            }
            match self.recv()? {
                Frame::Answer {
                    id,
                    generation,
                    value,
                } => responses.push(NetResponse::Answered(NetAnswer {
                    id,
                    generation,
                    value,
                })),
                Frame::Reject { id, code } => responses.push(NetResponse::Rejected { id, code }),
                Frame::Error { code, message } => return Err(NetError::Remote { code, message }),
                other => {
                    return Err(NetError::UnexpectedKind {
                        kind: kind_of(&other),
                    })
                }
            }
        }
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes, u32::MAX).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(Frame::Query {
            id: 7,
            query: vec![0.25, -1.5, 3.0],
        });
        roundtrip(Frame::Answer {
            id: 7,
            generation: 3,
            value: 42.5,
        });
        roundtrip(Frame::Reject {
            id: 9,
            code: RejectCode::QueueFull,
        });
        roundtrip(Frame::Error {
            code: 5,
            message: "checksum mismatch".into(),
        });
        roundtrip(Frame::InfoRequest);
        roundtrip(Frame::InfoResponse(ServerInfo {
            dims: 3,
            generation: 11,
            queue_cap: 64,
            max_batch: 256,
        }));
    }

    #[test]
    fn partial_prefixes_ask_for_more_bytes() {
        let bytes = encode_frame(&Frame::Query {
            id: 1,
            query: vec![0.5, 0.5],
        });
        for cut in 0..bytes.len() {
            let r = decode_frame(&bytes[..cut], u32::MAX).unwrap();
            assert!(r.is_none(), "prefix of {cut} bytes decoded early");
        }
    }

    #[test]
    fn two_frames_decode_back_to_back() {
        let a = Frame::Query {
            id: 1,
            query: vec![0.5],
        };
        let b = Frame::InfoRequest;
        let mut bytes = encode_frame(&a);
        bytes.extend_from_slice(&encode_frame(&b));
        let (f1, used) = decode_frame(&bytes, u32::MAX).unwrap().unwrap();
        assert_eq!(f1, a);
        let (f2, used2) = decode_frame(&bytes[used..], u32::MAX).unwrap().unwrap();
        assert_eq!(f2, b);
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn prologue_damage_is_typed_immediately() {
        // Bad magic fails with as few bytes as prove it.
        assert!(matches!(
            decode_frame(b"XS", u32::MAX),
            Err(NetError::BadMagic { .. })
        ));
        assert!(matches!(
            decode_frame(b"XSKW", u32::MAX),
            Err(NetError::BadMagic { .. })
        ));
        // Bad version at 5 bytes.
        assert!(matches!(
            decode_frame(b"NSKW\x09", u32::MAX),
            Err(NetError::BadVersion { found: 9 })
        ));
        // Bad kind at 6 bytes.
        assert!(matches!(
            decode_frame(b"NSKW\x01\x63", u32::MAX),
            Err(NetError::BadKind { found: 0x63 })
        ));
        // Oversized declared length at the full header, before any
        // payload exists.
        let mut hdr = Vec::new();
        hdr.extend_from_slice(b"NSKW\x01\x01");
        hdr.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&hdr, 1024),
            Err(NetError::Oversized {
                declared: u32::MAX,
                max: 1024
            })
        ));
    }

    #[test]
    fn flipped_byte_is_checksum_mismatch() {
        let bytes = encode_frame(&Frame::Answer {
            id: 3,
            generation: 1,
            value: 7.5,
        });
        // Any flip past the 6-byte magic/version/kind prologue is
        // caught: either the checksum refuses the frame, or (for a
        // flip in the length field) the frame now claims bytes that
        // will never arrive — a stall, not a mis-decode.
        for pos in 6..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[pos] ^= 0x40;
            match decode_frame(&damaged, u32::MAX) {
                Ok(Some(_)) => panic!("flip at {pos} decoded"),
                Ok(None) => assert!(
                    (6..FRAME_HEADER).contains(&pos),
                    "flip at {pos} asked for more bytes"
                ),
                Err(err) => assert!(
                    matches!(err, NetError::ChecksumMismatch { .. }),
                    "flip at {pos}: {err}"
                ),
            }
        }
    }

    #[test]
    fn payload_structure_violations_are_typed() {
        // A query declaring more dims than its payload holds: rebuild
        // the frame with a doctored payload and a valid checksum, so
        // only the structural check can refuse it.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&4u16.to_le_bytes()); // claims 4 dims
        payload.extend_from_slice(&0.5f64.to_le_bytes()); // carries 1
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&NET_MAGIC);
        bytes.push(NET_VERSION);
        bytes.push(KIND_QUERY);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let sum = fnv1a_64(bytes.iter().copied());
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes, u32::MAX),
            Err(NetError::PayloadMismatch {
                kind: KIND_QUERY,
                declared: 18,
                needed: 42
            })
        ));
    }

    #[test]
    fn non_finite_query_coordinates_are_refused() {
        let bytes = encode_frame(&Frame::Query {
            id: 1,
            query: vec![0.5, f64::NAN],
        });
        assert_eq!(
            decode_frame(&bytes, u32::MAX).unwrap_err(),
            NetError::NonFinite { index: 1 }
        );
        let bytes = encode_frame(&Frame::Query {
            id: 1,
            query: vec![f64::INFINITY],
        });
        assert_eq!(
            decode_frame(&bytes, u32::MAX).unwrap_err(),
            NetError::NonFinite { index: 0 }
        );
    }

    #[test]
    fn error_codes_are_stable_and_distinct() {
        let variants = [
            NetError::BadMagic { found: [0; 4] },
            NetError::BadVersion { found: 0 },
            NetError::BadKind { found: 0 },
            NetError::Oversized {
                declared: 0,
                max: 0,
            },
            NetError::ChecksumMismatch {
                expected: 0,
                found: 0,
            },
            NetError::PayloadMismatch {
                kind: 0,
                declared: 0,
                needed: 0,
            },
            NetError::BadQueryDim {
                got: 0,
                expected: 0,
            },
            NetError::NonFinite { index: 0 },
            NetError::BadRejectCode { found: 0 },
            NetError::BadUtf8,
            NetError::UnexpectedKind { kind: 0 },
            NetError::Truncated { have: 0, need: 0 },
            NetError::ServerFull { max: 0 },
            NetError::Rejected {
                id: 0,
                code: RejectCode::QueueFull,
            },
            NetError::Remote {
                code: 0,
                message: String::new(),
            },
            NetError::Io(String::new()),
        ];
        let mut codes: Vec<u8> = variants.iter().map(NetError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), variants.len(), "codes must be distinct");
    }
}
