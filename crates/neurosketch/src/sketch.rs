//! The NeuroSketch model: build pipeline (Fig. 4) and query answering
//! (Alg. 5).

use crate::aqc::aqc_sampled;
use crate::SketchError;
use nn::linalg::Matrix;
use nn::mlp::{BatchWorkspace, Workspace};
use nn::train::{train, TrainConfig, TrainReport};
use nn::{Mlp, QuantMode, ServingLayout};
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::predicate::PredicateFn;
use serde::{Deserialize, Serialize};
use spatial::KdTree;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Hyperparameters of a NeuroSketch (Sec. 4.2 / Sec. 5.1 defaults).
#[derive(Debug, Clone)]
pub struct NeuroSketchConfig {
    /// kd-tree height `h`; the partitioning step creates `2^h` leaves.
    pub tree_height: usize,
    /// Target number of partitions `s` after AQC-guided merging. Use
    /// `2^tree_height` to disable merging.
    pub target_partitions: usize,
    /// Total layer count `n_l` (input + hidden + output). The paper's
    /// default 5 gives three hidden layers.
    pub depth: usize,
    /// Units in the first hidden layer (`l_first`, default 60).
    pub l_first: usize,
    /// Units in the remaining hidden layers (`l_rest`, default 30).
    pub l_rest: usize,
    /// Per-leaf training configuration (Alg. 4).
    pub train: TrainConfig,
    /// Worker threads for labeling and per-leaf training.
    pub threads: usize,
    /// Master seed; per-leaf model seeds derive from it.
    pub seed: u64,
    /// Pair budget for AQC estimation during merging.
    pub aqc_max_pairs: usize,
}

impl Default for NeuroSketchConfig {
    /// The paper's default setting: depth 5, first layer 60 units, rest
    /// 30, kd-tree height 4 merged down to 8 partitions.
    fn default() -> Self {
        NeuroSketchConfig {
            tree_height: 4,
            target_partitions: 8,
            depth: 5,
            l_first: 60,
            l_rest: 30,
            train: TrainConfig::default(),
            threads: 4,
            seed: 0,
            aqc_max_pairs: 20_000,
        }
    }
}

impl NeuroSketchConfig {
    /// A small, fast configuration for tests and doc examples.
    pub fn small() -> Self {
        NeuroSketchConfig {
            tree_height: 1,
            target_partitions: 2,
            depth: 3,
            l_first: 24,
            l_rest: 24,
            train: TrainConfig {
                epochs: 150,
                patience: 15,
                ..TrainConfig::default()
            },
            threads: 2,
            seed: 0,
            aqc_max_pairs: 2_000,
        }
    }

    /// Layer sizes for a given input dimensionality.
    pub fn layer_sizes(&self, input_dim: usize) -> Vec<usize> {
        let hidden = self.depth.saturating_sub(2);
        let mut sizes = Vec::with_capacity(self.depth.max(2));
        sizes.push(input_dim);
        for i in 0..hidden {
            sizes.push(if i == 0 { self.l_first } else { self.l_rest });
        }
        sizes.push(1);
        sizes
    }

    fn validate(&self, n_queries: usize) -> Result<(), SketchError> {
        if self.depth < 2 {
            return Err(SketchError::BadConfig("depth must be at least 2".into()));
        }
        if self.l_first == 0 || self.l_rest == 0 {
            return Err(SketchError::BadConfig(
                "layer widths must be positive".into(),
            ));
        }
        if self.target_partitions == 0 {
            return Err(SketchError::BadConfig(
                "target_partitions must be positive".into(),
            ));
        }
        if n_queries == 0 {
            return Err(SketchError::BadWorkload("no training queries".into()));
        }
        Ok(())
    }
}

/// One partition's trained model plus the output scaler.
///
/// Training on raw aggregate values (which for SUM/COUNT can be in the
/// millions) destabilizes SGD, so each leaf standardizes its targets and
/// the sketch de-standardizes at answer time. This mirrors the output
/// scaling any practical TF implementation applies and does not change
/// the learned function class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct LeafModel {
    pub(crate) mlp: Mlp,
    pub(crate) y_mean: f64,
    pub(crate) y_std: f64,
}

/// A trained NeuroSketch: kd-tree over the query space + one MLP per leaf.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuroSketch {
    tree: KdTree,
    models: BTreeMap<usize, LeafModel>,
    query_dim: usize,
    /// The parameter encoding this sketch's models are stored (or will
    /// be stored) under. Freshly built sketches default to `F32`; a
    /// sketch decoded from a quantized NSK2 artifact carries the
    /// artifact's mode so re-encoding reproduces the artifact bytes.
    quant: QuantMode,
}

/// Pre-built per-partition serving layouts for a [`NeuroSketch`] —
/// one [`ServingLayout`] per leaf model (pre-transposed, block-padded
/// weight copies; see `nn::mlp::ServingLayout`).
///
/// Derived, in-memory-only state: build it once per deployed sketch
/// with [`NeuroSketch::serving_layout`] and pass it to
/// [`NeuroSketch::answer_subset_with_layout`]. It must be rebuilt after
/// any model change (e.g. [`NeuroSketch::retrain_partition`]) — the
/// serving layer constructs it together with the sketch borrow, so it
/// can never outlive the parameters it mirrors there.
#[derive(Debug, Clone)]
pub struct SketchLayout {
    layouts: BTreeMap<usize, ServingLayout>,
    /// Padded input width shared by every leaf layout.
    input_cols: usize,
}

impl SketchLayout {
    /// Approximate heap footprint of the padded weight copies, in bytes.
    pub fn padded_bytes(&self) -> usize {
        self.layouts.values().map(|l| l.padded_bytes()).sum()
    }
}

/// Reusable scratch for [`NeuroSketch::answer_batch_with`]: the GEMM
/// workspace, the assembled per-leaf input matrix, and the routing/sort
/// buffers. Keep one per serving thread; steady-state batched answering
/// then allocates only the output vector.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    ws: BatchWorkspace,
    x: Matrix,
    keyed: Vec<(usize, usize)>,
    all: Vec<usize>,
}

/// Timings and diagnostics from a build (feeds Figs. 10/13 and Table 3).
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Wall-clock to label the training queries (zero when labels were
    /// supplied by the caller).
    pub labeling: Duration,
    /// Wall-clock for partitioning + merging.
    pub partitioning: Duration,
    /// Wall-clock for training all leaf models.
    pub training: Duration,
    /// AQC of every final leaf, in leaf order.
    pub leaf_aqcs: Vec<f64>,
    /// Number of training queries per final leaf.
    pub leaf_sizes: Vec<usize>,
    /// Per-leaf training reports.
    pub train_reports: Vec<TrainReport>,
}

impl NeuroSketch {
    /// Full build: label `train_queries` with the exact engine, then
    /// partition/merge/train (Fig. 4's preprocessing).
    pub fn build(
        engine: &QueryEngine<'_>,
        predicate: &dyn PredicateFn,
        agg: Aggregate,
        train_queries: &[Vec<f64>],
        cfg: &NeuroSketchConfig,
    ) -> Result<(NeuroSketch, BuildReport), SketchError> {
        cfg.validate(train_queries.len())?;
        let t0 = Instant::now();
        let labels = engine.label_batch(predicate, agg, train_queries, cfg.threads);
        let labeling = t0.elapsed();
        let (sketch, mut report) = Self::build_from_labeled(train_queries, &labels, cfg)?;
        report.labeling = labeling;
        Ok((sketch, report))
    }

    /// Build from an already-labeled workload (lets experiments reuse
    /// ground-truth labels across configurations).
    pub fn build_from_labeled(
        queries: &[Vec<f64>],
        labels: &[f64],
        cfg: &NeuroSketchConfig,
    ) -> Result<(NeuroSketch, BuildReport), SketchError> {
        cfg.validate(queries.len())?;
        if queries.len() != labels.len() {
            return Err(SketchError::BadWorkload(format!(
                "{} queries but {} labels",
                queries.len(),
                labels.len()
            )));
        }
        let query_dim = queries[0].len();
        if queries.iter().any(|q| q.len() != query_dim) {
            return Err(SketchError::BadWorkload("ragged query vectors".into()));
        }

        // Partition (Alg. 2) and merge (Alg. 3) with AQC as the score;
        // the per-leaf AQC evaluations run on the shared worker pool.
        let t0 = Instant::now();
        let mut tree = KdTree::build(queries, cfg.tree_height);
        if cfg.target_partitions < tree.leaf_count() {
            let max_pairs = cfg.aqc_max_pairs;
            tree.merge_leaves(
                |qids| {
                    let qs: Vec<Vec<f64>> = qids.iter().map(|&i| queries[i].clone()).collect();
                    let vs: Vec<f64> = qids.iter().map(|&i| labels[i]).collect();
                    aqc_sampled(&qs, &vs, max_pairs)
                },
                cfg.target_partitions,
                cfg.threads,
            );
        }
        let partitioning = t0.elapsed();

        // Final leaf diagnostics, one worker task per leaf.
        let leaf_ids = tree.leaf_ids();
        let leaf_aqcs: Vec<f64> = par::par_map(&leaf_ids, cfg.threads, |_, &l| {
            let qids = tree.leaf_queries(l);
            let qs: Vec<Vec<f64>> = qids.iter().map(|&i| queries[i].clone()).collect();
            let vs: Vec<f64> = qids.iter().map(|&i| labels[i]).collect();
            aqc_sampled(&qs, &vs, cfg.aqc_max_pairs)
        });
        let leaf_sizes: Vec<usize> = leaf_ids
            .iter()
            .map(|&l| tree.leaf_queries(l).len())
            .collect();

        // Train one model per leaf (Alg. 4) on the shared worker pool.
        // Scheduling is dynamic — merged leaves can hold many times more
        // queries than untouched ones, so static chunking would serialize
        // behind the unluckiest worker.
        let t1 = Instant::now();
        let sizes = cfg.layer_sizes(query_dim);
        let results: Vec<(usize, LeafModel, TrainReport)> =
            par::par_map(&leaf_ids, cfg.threads, |_, &leaf| {
                let qids = tree.leaf_queries(leaf);
                let xs: Vec<Vec<f64>> = qids.iter().map(|&i| queries[i].clone()).collect();
                let ys_raw: Vec<f64> = qids.iter().map(|&i| labels[i]).collect();
                let n = ys_raw.len() as f64;
                let y_mean = ys_raw.iter().sum::<f64>() / n;
                let var = ys_raw.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n;
                let y_std = var.sqrt().max(1e-12);
                let ys: Vec<f64> = ys_raw.iter().map(|y| (y - y_mean) / y_std).collect();
                let mut mlp = Mlp::new(&sizes, cfg.seed ^ (leaf as u64).wrapping_mul(0x9E37_79B9));
                let mut leaf_train = cfg.train.clone();
                leaf_train.seed = cfg.seed.wrapping_add(leaf as u64);
                let report = train(&mut mlp, &xs, &ys, &leaf_train);
                (leaf, LeafModel { mlp, y_mean, y_std }, report)
            });
        let training = t1.elapsed();

        let mut models = BTreeMap::new();
        let mut train_reports = Vec::with_capacity(results.len());
        for (leaf, model, report) in results {
            models.insert(leaf, model);
            train_reports.push(report);
        }

        Ok((
            NeuroSketch {
                tree,
                models,
                query_dim,
                quant: QuantMode::F32,
            },
            BuildReport {
                labeling: Duration::ZERO,
                partitioning,
                training,
                leaf_aqcs,
                leaf_sizes,
                train_reports,
            },
        ))
    }

    /// Answer a query (Alg. 5): kd-tree descent then a forward pass.
    pub fn answer(&self, q: &[f64]) -> f64 {
        let mut ws = Workspace::default();
        self.answer_with(&mut ws, q)
    }

    /// Answer with caller-provided scratch space — the allocation-free
    /// hot path used for query-time measurements.
    pub fn answer_with(&self, ws: &mut Workspace, q: &[f64]) -> f64 {
        assert_eq!(
            q.len(),
            self.query_dim,
            "query dim {} does not match sketch {}",
            q.len(),
            self.query_dim
        );
        let leaf = self.tree.locate(q);
        let model = self.models.get(&leaf).expect("every leaf has a model");
        model.mlp.predict_with(ws, q) * model.y_std + model.y_mean
    }

    /// Answer a batch of queries with one GEMM per (partition, layer)
    /// instead of one matvec per query. Convenience wrapper around
    /// [`NeuroSketch::answer_batch_with`]; answers are **bitwise
    /// identical** to calling [`NeuroSketch::answer`] per query.
    pub fn answer_batch(&self, queries: &[Vec<f64>]) -> Vec<f64> {
        let mut scratch = BatchScratch::default();
        self.answer_batch_with(&mut scratch, queries)
    }

    /// Batched answering with caller-provided scratch — the
    /// allocation-light serving hot path (`neurosketch::serve` keeps one
    /// scratch per worker thread).
    ///
    /// Queries are grouped by the kd-tree leaf they route to and each
    /// group runs through [`Mlp::forward_batch`], so the per-layer weight
    /// traffic is paid once per *group* rather than once per query.
    /// Results come back in input order.
    pub fn answer_batch_with(&self, scratch: &mut BatchScratch, queries: &[Vec<f64>]) -> Vec<f64> {
        let mut out = vec![0.0; queries.len()];
        scratch.all.clear();
        scratch.all.extend(0..queries.len());
        let idxs = std::mem::take(&mut scratch.all);
        self.answer_subset_with(scratch, queries, &idxs, &mut out);
        scratch.all = idxs;
        out
    }

    /// [`NeuroSketch::answer_batch_with`] through a prebuilt
    /// [`SketchLayout`] — the whole-batch form of
    /// [`NeuroSketch::answer_subset_with_layout`]. Answers are
    /// **bitwise identical** to the plain path.
    pub fn answer_batch_with_layout(
        &self,
        layout: &SketchLayout,
        scratch: &mut BatchScratch,
        queries: &[Vec<f64>],
    ) -> Vec<f64> {
        let mut out = vec![0.0; queries.len()];
        scratch.all.clear();
        scratch.all.extend(0..queries.len());
        let idxs = std::mem::take(&mut scratch.all);
        self.answer_subset_with_layout(layout, scratch, queries, &idxs, &mut out);
        scratch.all = idxs;
        out
    }

    /// Batched answering of a subset: for every `i` in `idxs`, write the
    /// sketch's answer to `queries[i]` into `out[i]`; other slots of
    /// `out` are left untouched. This is the primitive the serving layer
    /// uses after routing splits a batch between sketch and exact engine.
    ///
    /// # Panics
    /// Panics if any selected query's dimensionality does not match the
    /// sketch, if an index is out of range, or if `out` is shorter than
    /// `queries`.
    pub fn answer_subset_with(
        &self,
        scratch: &mut BatchScratch,
        queries: &[Vec<f64>],
        idxs: &[usize],
        out: &mut [f64],
    ) {
        self.answer_subset_inner(scratch, queries, idxs, out, None);
    }

    /// [`NeuroSketch::answer_subset_with`] through a prebuilt
    /// [`SketchLayout`]: per-group forward passes take the
    /// pre-transposed, block-padded GEMM fast path instead of
    /// re-transposing each leaf's weights per batch. Answers are
    /// **bitwise identical** to the plain path.
    ///
    /// # Panics
    /// Panics like [`NeuroSketch::answer_subset_with`], or if `layout`
    /// was built from a different sketch.
    pub fn answer_subset_with_layout(
        &self,
        layout: &SketchLayout,
        scratch: &mut BatchScratch,
        queries: &[Vec<f64>],
        idxs: &[usize],
        out: &mut [f64],
    ) {
        self.answer_subset_inner(scratch, queries, idxs, out, Some(layout));
    }

    fn answer_subset_inner(
        &self,
        scratch: &mut BatchScratch,
        queries: &[Vec<f64>],
        idxs: &[usize],
        out: &mut [f64],
        layout: Option<&SketchLayout>,
    ) {
        assert!(out.len() >= queries.len(), "output slice too short");
        scratch.keyed.clear();
        for &i in idxs {
            let q = &queries[i];
            assert_eq!(
                q.len(),
                self.query_dim,
                "query dim {} does not match sketch {}",
                q.len(),
                self.query_dim
            );
            scratch.keyed.push((self.tree.locate(q), i));
        }
        // Group by leaf; ties broken by query index, so assembly order —
        // and therefore every floating-point operation — is independent
        // of the input permutation.
        scratch.keyed.sort_unstable();
        let keyed = std::mem::take(&mut scratch.keyed);
        let mut start = 0;
        while start < keyed.len() {
            let leaf = keyed[start].0;
            let mut end = start + 1;
            while end < keyed.len() && keyed[end].0 == leaf {
                end += 1;
            }
            let model = self.models.get(&leaf).expect("every leaf has a model");
            let y = match layout {
                None => {
                    scratch.x.resize(end - start, self.query_dim);
                    for (row, &(_, qi)) in keyed[start..end].iter().enumerate() {
                        scratch.x.row_mut(row).copy_from_slice(&queries[qi]);
                    }
                    model.mlp.forward_batch(&mut scratch.ws, &scratch.x)
                }
                Some(l) => {
                    // Assemble at the layout's padded width; the padding
                    // columns must be zero (resize may leave stale data).
                    scratch.x.resize(end - start, l.input_cols);
                    for (row, &(_, qi)) in keyed[start..end].iter().enumerate() {
                        let xrow = scratch.x.row_mut(row);
                        xrow[..self.query_dim].copy_from_slice(&queries[qi]);
                        xrow[self.query_dim..].fill(0.0);
                    }
                    let leaf_layout = l.layouts.get(&leaf).expect("layout covers every leaf");
                    model
                        .mlp
                        .forward_batch_layout(leaf_layout, &mut scratch.ws, &scratch.x)
                }
            };
            for (row, &(_, qi)) in keyed[start..end].iter().enumerate() {
                out[qi] = y.row(row)[0] * model.y_std + model.y_mean;
            }
            start = end;
        }
        scratch.keyed = keyed;
    }

    /// The sketch with every model parameter rounded through `f32` — the
    /// exact values the persistent NSK2 format ([`crate::persist`])
    /// stores. Saving is lossy once (training precision → storage
    /// precision) and lossless ever after:
    /// `persist::decode(persist::encode_sketch(&s))` answers bitwise
    /// identically to `s.quantized()`.
    pub fn quantized(&self) -> NeuroSketch {
        self.quantized_to(QuantMode::F32)
    }

    /// The sketch with every model parameter rounded through the given
    /// storage encoding — exactly the values an NSK2 artifact saved with
    /// that [`QuantMode`] decodes to. Each mode is lossy exactly once:
    /// `s.quantized_to(mode)` is a fixed point of itself, so load →
    /// re-encode is byte-idempotent and answers are bitwise reproducible
    /// across loads. The result carries `mode` as its
    /// [`NeuroSketch::quant_mode`].
    pub fn quantized_to(&self, mode: QuantMode) -> NeuroSketch {
        NeuroSketch {
            tree: self.tree.clone(),
            models: self
                .models
                .iter()
                .map(|(&leaf, m)| {
                    (
                        leaf,
                        LeafModel {
                            mlp: m.mlp.quantized_to(mode),
                            y_mean: m.y_mean,
                            y_std: m.y_std,
                        },
                    )
                })
                .collect(),
            query_dim: self.query_dim,
            quant: mode,
        }
    }

    /// The parameter encoding this sketch saves under by default: `F32`
    /// for freshly built sketches, or the artifact's recorded mode for
    /// a sketch decoded from a quantized NSK2 container.
    pub fn quant_mode(&self) -> QuantMode {
        self.quant
    }

    /// Build the per-partition serving layouts (pre-transposed,
    /// block-padded weight copies) for
    /// [`NeuroSketch::answer_subset_with_layout`]. Build once per
    /// deployed sketch; rebuild after any model change.
    pub fn serving_layout(&self) -> SketchLayout {
        let layouts: BTreeMap<usize, ServingLayout> = self
            .models
            .iter()
            .map(|(&leaf, m)| (leaf, m.mlp.serving_layout()))
            .collect();
        let input_cols = layouts
            .values()
            .next()
            .map(|l| l.input_cols())
            .unwrap_or(self.query_dim);
        SketchLayout {
            layouts,
            input_cols,
        }
    }

    /// The query-space kd-tree (crate-internal: persistence flattens it).
    pub(crate) fn tree(&self) -> &KdTree {
        &self.tree
    }

    /// The per-leaf models, keyed by kd-tree node id (crate-internal).
    pub(crate) fn models(&self) -> &BTreeMap<usize, LeafModel> {
        &self.models
    }

    /// Reassemble a sketch from decoded parts (crate-internal: the NSK2
    /// decoder validates the invariants before calling this).
    pub(crate) fn from_parts(
        tree: KdTree,
        models: BTreeMap<usize, LeafModel>,
        query_dim: usize,
        quant: QuantMode,
    ) -> NeuroSketch {
        NeuroSketch {
            tree,
            models,
            query_dim,
            quant,
        }
    }

    /// Train a replacement model for partition `unit` (leaf order, as in
    /// [`BuildReport::leaf_aqcs`]) against fresh labels, with the
    /// standardization and seed derivation the full build applies.
    /// Deterministic given the inputs; it reproduces a full rebuild's
    /// model **bitwise** only when `queries`/`labels` arrive in the
    /// same order the build would train them (true for un-merged
    /// trees; an AQC-merged leaf trains in subtree order, which a
    /// caller slicing a workload in query order will not match — the
    /// retrained model is then equally valid but not bit-equal).
    /// Pure: nothing is installed; [`crate::maintenance`] fans these
    /// out on the worker pool and installs the results with
    /// [`NeuroSketch::install_partition_model`].
    pub(crate) fn train_partition_model(
        &self,
        unit: usize,
        queries: &[Vec<f64>],
        labels: &[f64],
        cfg: &NeuroSketchConfig,
    ) -> Result<(LeafModel, TrainReport), SketchError> {
        let leaf_ids = self.tree.leaf_ids();
        let Some(&leaf) = leaf_ids.get(unit) else {
            return Err(SketchError::NoSuchUnit {
                unit,
                units: leaf_ids.len(),
            });
        };
        if queries.is_empty() {
            return Err(SketchError::BadWorkload(format!(
                "no training queries for partition {unit} retrain"
            )));
        }
        if queries.len() != labels.len() {
            return Err(SketchError::BadWorkload(format!(
                "{} queries but {} labels",
                queries.len(),
                labels.len()
            )));
        }
        if let Some(q) = queries.iter().find(|q| q.len() != self.query_dim) {
            return Err(SketchError::BadQueryDim {
                expected: self.query_dim,
                got: q.len(),
            });
        }
        let n = labels.len() as f64;
        let y_mean = labels.iter().sum::<f64>() / n;
        let var = labels.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n;
        let y_std = var.sqrt().max(1e-12);
        let ys: Vec<f64> = labels.iter().map(|y| (y - y_mean) / y_std).collect();
        let sizes = cfg.layer_sizes(self.query_dim);
        let mut mlp = Mlp::new(&sizes, cfg.seed ^ (leaf as u64).wrapping_mul(0x9E37_79B9));
        let mut leaf_train = cfg.train.clone();
        leaf_train.seed = cfg.seed.wrapping_add(leaf as u64);
        let report = train(&mut mlp, queries, &ys, &leaf_train);
        Ok((LeafModel { mlp, y_mean, y_std }, report))
    }

    /// Install a replacement model for partition `unit` (crate-internal:
    /// paired with [`NeuroSketch::train_partition_model`]). Every other
    /// partition's model is untouched — the bitwise-stability guarantee
    /// partial refresh rests on.
    pub(crate) fn install_partition_model(&mut self, unit: usize, model: LeafModel) {
        let leaf = self.tree.leaf_ids()[unit];
        self.models.insert(leaf, model);
    }

    /// Retrain one partition's model in place against fresh labels (the
    /// single-unit form of [`crate::maintenance`]'s partial refresh);
    /// all other partitions' models are left bitwise untouched.
    pub fn retrain_partition(
        &mut self,
        unit: usize,
        queries: &[Vec<f64>],
        labels: &[f64],
        cfg: &NeuroSketchConfig,
    ) -> Result<TrainReport, SketchError> {
        let (model, report) = self.train_partition_model(unit, queries, labels, cfg)?;
        self.install_partition_model(unit, model);
        Ok(report)
    }

    /// Checked variant of [`NeuroSketch::answer`].
    pub fn try_answer(&self, q: &[f64]) -> Result<f64, SketchError> {
        if q.len() != self.query_dim {
            return Err(SketchError::BadQueryDim {
                expected: self.query_dim,
                got: q.len(),
            });
        }
        Ok(self.answer(q))
    }

    /// Query-vector dimensionality the sketch expects.
    pub fn query_dim(&self) -> usize {
        self.query_dim
    }

    /// Index (in leaf order, matching `BuildReport::leaf_aqcs`) of the
    /// partition a query routes to.
    pub fn leaf_index_of(&self, q: &[f64]) -> usize {
        let leaf = self.tree.locate(q);
        self.tree
            .leaf_ids()
            .iter()
            .position(|&l| l == leaf)
            .expect("locate returns a live leaf")
    }

    /// Number of partitions (trained models).
    pub fn partitions(&self) -> usize {
        self.models.len()
    }

    /// Total trainable parameters across all leaf models.
    pub fn param_count(&self) -> usize {
        self.models.values().map(|m| m.mlp.param_count()).sum()
    }

    /// Storage footprint in bytes: 4 bytes per model parameter (f32 on
    /// disk) plus 12 bytes per kd-tree node (split dim + value), matching
    /// the paper's model-size accounting.
    pub fn storage_bytes(&self) -> usize {
        let models: usize = self
            .models
            .values()
            .map(|m| m.mlp.storage_bytes() + 16)
            .sum();
        models + 12 * (2 * self.partitions()).saturating_sub(1)
    }

    /// Serialize to JSON ("models are saved after training", Sec. 5.1).
    pub fn to_json(&self) -> Result<String, SketchError> {
        serde_json::to_string(self).map_err(|e| SketchError::Serde(e.to_string()))
    }

    /// Load a sketch saved with [`NeuroSketch::to_json`].
    pub fn from_json(s: &str) -> Result<NeuroSketch, SketchError> {
        serde_json::from_str(s).map_err(|e| SketchError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::simple::uniform;
    use query::predicate::Range;
    use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

    fn count_setup(n_data: usize, n_queries: usize) -> (datagen::Dataset, Workload) {
        let data = uniform(n_data, 2, 0);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: n_queries,
            seed: 1,
        })
        .unwrap();
        (data, wl)
    }

    #[test]
    fn learns_count_on_uniform_data() {
        let (data, wl) = count_setup(3000, 600);
        let engine = QueryEngine::new(&data, 1);
        let cfg = NeuroSketchConfig::small();
        let (sketch, report) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        assert_eq!(sketch.partitions(), 2);
        assert_eq!(report.leaf_aqcs.len(), 2);
        // Normalized MAE on the training queries should be small: COUNT on
        // uniform 1-active-attr data is nearly linear in the range width.
        let truths: Vec<f64> = wl
            .queries
            .iter()
            .map(|q| engine.answer(&wl.predicate, Aggregate::Count, q))
            .collect();
        let preds: Vec<f64> = wl.queries.iter().map(|q| sketch.answer(q)).collect();
        let err = query::error::normalized_mae(&truths, &preds);
        assert!(err < 0.15, "normalized MAE {err}");
    }

    #[test]
    fn answer_with_workspace_matches_answer() {
        let (data, wl) = count_setup(500, 200);
        let engine = QueryEngine::new(&data, 1);
        let (sketch, _) = NeuroSketch::build(
            &engine,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &NeuroSketchConfig::small(),
        )
        .unwrap();
        let mut ws = Workspace::default();
        for q in wl.queries.iter().take(20) {
            assert_eq!(sketch.answer(q), sketch.answer_with(&mut ws, q));
        }
    }

    #[test]
    fn build_is_deterministic() {
        let (data, wl) = count_setup(500, 200);
        let engine = QueryEngine::new(&data, 1);
        let build = || {
            let (s, _) = NeuroSketch::build(
                &engine,
                &wl.predicate,
                Aggregate::Count,
                &wl.queries,
                &NeuroSketchConfig::small(),
            )
            .unwrap();
            s.answer(&wl.queries[3])
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn merging_reduces_partitions() {
        let (data, wl) = count_setup(500, 400);
        let engine = QueryEngine::new(&data, 1);
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 3; // 8 leaves
        cfg.target_partitions = 3;
        cfg.train.epochs = 10;
        let (sketch, report) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        assert_eq!(sketch.partitions(), 3);
        assert_eq!(report.leaf_sizes.iter().sum::<usize>(), 400);
    }

    #[test]
    fn storage_accounting_counts_all_models() {
        let (data, wl) = count_setup(300, 150);
        let engine = QueryEngine::new(&data, 1);
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 5;
        let (sketch, _) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        assert!(sketch.storage_bytes() >= sketch.param_count() * 4);
        assert!(sketch.param_count() > 0);
    }

    #[test]
    fn json_roundtrip_preserves_answers() {
        let (data, wl) = count_setup(300, 150);
        let engine = QueryEngine::new(&data, 1);
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 5;
        let (sketch, _) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        let loaded = NeuroSketch::from_json(&sketch.to_json().unwrap()).unwrap();
        for q in wl.queries.iter().take(10) {
            assert_eq!(sketch.answer(q), loaded.answer(q));
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let cfg = NeuroSketchConfig::small();
        assert!(NeuroSketch::build_from_labeled(&[], &[], &cfg).is_err());
        let qs = vec![vec![0.1, 0.2]];
        assert!(NeuroSketch::build_from_labeled(&qs, &[1.0, 2.0], &cfg).is_err());
        let mut bad = NeuroSketchConfig::small();
        bad.depth = 1;
        assert!(NeuroSketch::build_from_labeled(&qs, &[1.0], &bad).is_err());
        let ragged = vec![vec![0.1, 0.2], vec![0.3]];
        assert!(NeuroSketch::build_from_labeled(&ragged, &[1.0, 2.0], &cfg).is_err());
    }

    #[test]
    fn try_answer_checks_dims() {
        let qs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0, 0.5]).collect();
        let labels: Vec<f64> = qs.iter().map(|q| q[0]).collect();
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 5;
        let (sketch, _) = NeuroSketch::build_from_labeled(&qs, &labels, &cfg).unwrap();
        assert!(sketch.try_answer(&[0.5]).is_err());
        assert!(sketch.try_answer(&[0.5, 0.5]).is_ok());
    }

    #[test]
    fn layer_sizes_follow_paper_architecture() {
        let cfg = NeuroSketchConfig::default();
        assert_eq!(cfg.layer_sizes(4), vec![4, 60, 30, 30, 1]);
        let mut d2 = cfg.clone();
        d2.depth = 2;
        assert_eq!(d2.layer_sizes(4), vec![4, 1]);
    }

    #[test]
    fn answer_batch_is_bitwise_identical_to_single_query_path() {
        let (data, wl) = count_setup(800, 300);
        let engine = QueryEngine::new(&data, 1);
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 2;
        cfg.target_partitions = 4;
        cfg.train.epochs = 20;
        let (sketch, _) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        let batched = sketch.answer_batch(&wl.queries);
        let mut ws = Workspace::default();
        for (q, b) in wl.queries.iter().zip(&batched) {
            assert_eq!(sketch.answer_with(&mut ws, q), *b);
        }
        // Scratch reuse across differently-sized batches stays correct.
        let mut scratch = BatchScratch::default();
        let big = sketch.answer_batch_with(&mut scratch, &wl.queries);
        let small = sketch.answer_batch_with(&mut scratch, &wl.queries[..7]);
        assert_eq!(&big[..7], &batched[..7]);
        assert_eq!(small, batched[..7]);
    }

    #[test]
    fn answer_subset_touches_only_selected_slots() {
        let qs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0, 0.4]).collect();
        let labels: Vec<f64> = qs.iter().map(|q| q[0] * 3.0).collect();
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 10;
        let (sketch, _) = NeuroSketch::build_from_labeled(&qs, &labels, &cfg).unwrap();
        let mut out = vec![f64::NAN; qs.len()];
        let idxs = [3usize, 17, 41];
        let mut scratch = BatchScratch::default();
        sketch.answer_subset_with(&mut scratch, &qs, &idxs, &mut out);
        for (i, v) in out.iter().enumerate() {
            if idxs.contains(&i) {
                assert_eq!(*v, sketch.answer(&qs[i]), "slot {i}");
            } else {
                assert!(v.is_nan(), "slot {i} was written");
            }
        }
    }

    #[test]
    fn quantized_preserves_structure_and_is_idempotent() {
        let (data, wl) = count_setup(300, 150);
        let engine = QueryEngine::new(&data, 1);
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 5;
        let (sketch, _) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        let q = sketch.quantized();
        assert_eq!(q.partitions(), sketch.partitions());
        assert_eq!(q.param_count(), sketch.param_count());
        for query in wl.queries.iter().take(10) {
            // Quantization moves answers only by f32 rounding...
            let (a, b) = (sketch.answer(query), q.answer(query));
            assert!((a - b).abs() <= 1e-3 * (1.0 + a.abs()), "{a} vs {b}");
            // ...and is idempotent (bitwise).
            assert_eq!(q.answer(query), q.quantized().answer(query));
        }
    }

    #[test]
    fn layout_answers_are_bitwise_identical_to_plain_path() {
        let (data, wl) = count_setup(800, 300);
        let engine = QueryEngine::new(&data, 1);
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 2;
        cfg.target_partitions = 4;
        cfg.train.epochs = 20;
        let (sketch, _) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        let layout = sketch.serving_layout();
        assert!(layout.padded_bytes() > 0);
        let idxs: Vec<usize> = (0..wl.queries.len()).collect();
        let mut plain = vec![0.0; wl.queries.len()];
        let mut padded = vec![0.0; wl.queries.len()];
        let mut scratch = BatchScratch::default();
        sketch.answer_subset_with(&mut scratch, &wl.queries, &idxs, &mut plain);
        // Same scratch across both paths: shapes must not leak.
        sketch.answer_subset_with_layout(&layout, &mut scratch, &wl.queries, &idxs, &mut padded);
        assert_eq!(plain, padded);
        // And for a quantized model, same story.
        let q = sketch.quantized_to(QuantMode::I8);
        let qlayout = q.serving_layout();
        let mut qp = vec![0.0; wl.queries.len()];
        q.answer_subset_with_layout(&qlayout, &mut scratch, &wl.queries, &idxs, &mut qp);
        for (i, q1) in wl.queries.iter().enumerate() {
            assert_eq!(qp[i], q.answer(q1), "query {i}");
        }
    }

    #[test]
    fn quantized_to_is_idempotent_per_mode() {
        let (data, wl) = count_setup(300, 150);
        let engine = QueryEngine::new(&data, 1);
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 5;
        let (sketch, _) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        assert_eq!(sketch.quant_mode(), QuantMode::F32);
        for mode in QuantMode::ALL {
            let q = sketch.quantized_to(mode);
            assert_eq!(q.quant_mode(), mode);
            let qq = q.quantized_to(mode);
            for query in wl.queries.iter().take(10) {
                assert_eq!(q.answer(query), qq.answer(query), "{mode:?}");
            }
        }
    }

    #[test]
    fn predicate_range_used_in_engine_labels() {
        // Smoke check that engine + sketch agree on the predicate contract.
        let data = uniform(200, 2, 3);
        let engine = QueryEngine::new(&data, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let q = vec![0.25, 0.5];
        let label = engine.answer(&pred, Aggregate::Count, &q);
        assert!(label > 0.0);
    }
}
