//! One serving surface for every deployment shape.
//!
//! PR 3 and PR 4 left two parallel serving stacks — the monolithic
//! [`SketchServer`] and the scatter/gather [`ShardedServer`] — that
//! duplicated batching, options and fallback plumbing, and forced every
//! caller (benches, examples, the drift monitor) to pick one at compile
//! time. [`Deployment`] is the refactor that collapses them: *anything
//! that answers query batches* — a bare [`NeuroSketch`], either server,
//! or the hot-swappable [`LiveDeployment`] handle — exposes the same
//! four methods, and routers, benches, examples and
//! [`crate::maintenance`] are written once against the trait.
//!
//! [`LiveDeployment`] adds the piece live maintenance needs: an owning
//! handle whose inner deployment can be **atomically swapped** (or
//! reloaded from a refreshed NSKM manifest) while batches are in
//! flight. Every trait call takes one snapshot of the current
//! (deployment, generation) pair and serves the whole batch from it, so
//! answers before a swap come from generation `G`, answers after from
//! `G + 1`, and no batch ever blends the two.
//!
//! ```
//! use neurosketch::deploy::{Deployment, LiveDeployment};
//! use neurosketch::{NeuroSketch, NeuroSketchConfig};
//!
//! let queries: Vec<Vec<f64>> = (0..120)
//!     .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
//!     .collect();
//! let labels: Vec<f64> = queries.iter().map(|q| 3.0 * q[0] + q[1]).collect();
//! let mut cfg = NeuroSketchConfig::small();
//! cfg.train.epochs = 10;
//! let (sketch, _) = NeuroSketch::build_from_labeled(&queries, &labels, &cfg).unwrap();
//!
//! // A bare sketch is already a Deployment...
//! let (answers, stats) = Deployment::answer_batch(&sketch, &queries);
//! assert_eq!(stats.queries, queries.len());
//!
//! // ...and a LiveDeployment serves it behind a swappable handle.
//! let live = LiveDeployment::new(sketch, 0);
//! assert_eq!(live.answer_batch(&queries).0, answers);
//! assert_eq!(live.describe().generation, Some(0));
//! ```

use crate::serve::{ServeStats, SketchServer};
use crate::shard::{ShardedServeStats, ShardedServer};
use crate::sketch::NeuroSketch;
use query::aggregate::Moments;
use std::sync::{Arc, RwLock};

/// Unified per-batch tally across deployment shapes. Monolithic fields
/// and sharded fields coexist; a path that does not track a field
/// leaves it at its identity (`shard_count` 1 for monolithic,
/// `model_batches` 0 where GEMM batches are not tallied).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeployStats {
    /// Queries answered.
    pub queries: usize,
    /// Queries answered by a sketch forward pass.
    pub sketch: usize,
    /// Queries sent to the exact engine by the DQD range rule.
    pub exact_small_range: usize,
    /// Queries sent to the exact engine by the DQD complexity rule.
    pub exact_hard_leaf: usize,
    /// Data shards each query was scattered to (1 for monolithic).
    pub shard_count: usize,
    /// Batched GEMM model evaluations performed, where tallied.
    pub model_batches: usize,
    /// Queries answered from the generation-keyed answer cache
    /// ([`crate::cache`]); 0 when the serving path has no cache.
    pub cache_hits: usize,
    /// Cache lookups that fell through to compute; 0 when the serving
    /// path has no cache.
    pub cache_misses: usize,
    /// Queries collapsed onto a bitwise-identical query in the same
    /// batch (in-batch deduplication).
    pub dedup_hits: usize,
}

impl DeployStats {
    /// Tally for a batch answered entirely by sketch forward passes.
    fn all_sketch(queries: usize) -> DeployStats {
        DeployStats {
            queries,
            sketch: queries,
            shard_count: 1,
            ..DeployStats::default()
        }
    }
}

impl From<ServeStats> for DeployStats {
    fn from(s: ServeStats) -> DeployStats {
        DeployStats {
            queries: s.total(),
            sketch: s.sketch,
            exact_small_range: s.exact_small_range,
            exact_hard_leaf: s.exact_hard_leaf,
            shard_count: 1,
            model_batches: 0,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            dedup_hits: s.dedup_hits,
        }
    }
}

impl From<ShardedServeStats> for DeployStats {
    fn from(s: ShardedServeStats) -> DeployStats {
        DeployStats {
            queries: s.queries,
            sketch: s.queries - s.cache_hits - s.dedup_hits,
            exact_small_range: 0,
            exact_hard_leaf: 0,
            shard_count: s.shard_count,
            model_batches: s.model_batches,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            dedup_hits: s.dedup_hits,
        }
    }
}

/// Which serving stack a [`Deployment`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployKind {
    /// One sketch over the whole table; units are kd-tree partitions.
    Monolithic,
    /// Scatter/gather over data shards; units are shards.
    Sharded,
    /// Replicated scatter/gather over shard groups
    /// ([`crate::cluster::Cluster`]); units are shard groups.
    Replicated,
}

/// What a [`Deployment`] is serving — the `describe` surface monitoring
/// and operator tooling read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentInfo {
    /// The serving stack.
    pub kind: DeployKind,
    /// Refreshable units: kd-tree partitions (monolithic) or data
    /// shards (sharded) — the granularity [`crate::maintenance`]'s
    /// partial refresh operates at.
    pub units: usize,
    /// Total trainable parameters across the deployed models.
    pub param_count: usize,
    /// NSKM manifest generation, when served behind a
    /// [`LiveDeployment`] handle; `None` for a bare deployment.
    pub generation: Option<u64>,
}

impl std::fmt::Display for DeploymentInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            DeployKind::Monolithic => "monolithic",
            DeployKind::Sharded => "sharded",
            DeployKind::Replicated => "replicated",
        };
        let unit = match self.kind {
            DeployKind::Monolithic => "partition",
            DeployKind::Sharded => "shard",
            DeployKind::Replicated => "shard group",
        };
        write!(
            f,
            "{kind} ({} {unit}{}, {} params",
            self.units,
            if self.units == 1 { "" } else { "s" },
            self.param_count
        )?;
        if let Some(g) = self.generation {
            write!(f, ", gen {g}")?;
        }
        write!(f, ")")
    }
}

/// A deployed NeuroSketch of any shape, behind one batched serving
/// surface.
///
/// Implementations: a bare [`NeuroSketch`] (every query takes the
/// forward pass), a routed [`SketchServer`] (DQD rules may divert
/// queries to its exact backend), a scatter/gather [`ShardedServer`],
/// and the hot-swappable [`LiveDeployment`] handle over any of them.
/// Write batch consumers — benches, examples, drift checks — against
/// `&dyn Deployment`, not a concrete server.
pub trait Deployment: Send + Sync {
    /// Answer a batch of queries. Answers come back in input order; the
    /// tally says where they came from.
    fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, DeployStats);

    /// The predicted `(n, Σ, Σ²)` per query, for deployments that model
    /// moment components (sharded: the gathered cross-shard merge).
    /// `None` when the deployment predicts the aggregate directly and
    /// has no moment decomposition to offer (monolithic sketches).
    fn moments_batch(&self, queries: &[Vec<f64>]) -> Option<Vec<Moments>>;

    /// What is deployed: stack, refreshable units, parameter count, and
    /// (behind a live handle) the manifest generation.
    fn describe(&self) -> DeploymentInfo;

    /// Storage footprint of the deployed models in bytes — the paper's
    /// 4-bytes-per-parameter-dominated accounting (exact definition per
    /// implementation: artifact bytes where the deployment is
    /// artifact-backed).
    fn storage_bytes(&self) -> usize;
}

/// A shared handle serves exactly like the deployment it points to —
/// lets one server sit behind several wrappers at once (e.g. a
/// [`crate::cache::CachedDeployment`] per generation over one compute
/// engine).
impl<T: Deployment + ?Sized> Deployment for Arc<T> {
    fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, DeployStats) {
        (**self).answer_batch(queries)
    }

    fn moments_batch(&self, queries: &[Vec<f64>]) -> Option<Vec<Moments>> {
        (**self).moments_batch(queries)
    }

    fn describe(&self) -> DeploymentInfo {
        (**self).describe()
    }

    fn storage_bytes(&self) -> usize {
        (**self).storage_bytes()
    }
}

impl Deployment for NeuroSketch {
    fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, DeployStats) {
        (
            NeuroSketch::answer_batch(self, queries),
            DeployStats::all_sketch(queries.len()),
        )
    }

    fn moments_batch(&self, _queries: &[Vec<f64>]) -> Option<Vec<Moments>> {
        None
    }

    fn describe(&self) -> DeploymentInfo {
        DeploymentInfo {
            kind: DeployKind::Monolithic,
            units: self.partitions(),
            param_count: self.param_count(),
            generation: None,
        }
    }

    fn storage_bytes(&self) -> usize {
        NeuroSketch::storage_bytes(self)
    }
}

impl Deployment for SketchServer<'_> {
    fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, DeployStats) {
        let (answers, stats) = SketchServer::answer_batch(self, queries);
        (answers, stats.into())
    }

    fn moments_batch(&self, _queries: &[Vec<f64>]) -> Option<Vec<Moments>> {
        None
    }

    fn describe(&self) -> DeploymentInfo {
        DeploymentInfo {
            kind: DeployKind::Monolithic,
            units: self.sketch().partitions(),
            param_count: self.sketch().param_count(),
            generation: None,
        }
    }

    fn storage_bytes(&self) -> usize {
        self.sketch().storage_bytes()
    }
}

impl Deployment for ShardedServer {
    fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, DeployStats) {
        let (answers, stats) = ShardedServer::answer_batch(self, queries);
        (answers, stats.into())
    }

    fn moments_batch(&self, queries: &[Vec<f64>]) -> Option<Vec<Moments>> {
        Some(ShardedServer::moments_batch(self, queries).0)
    }

    fn describe(&self) -> DeploymentInfo {
        DeploymentInfo {
            kind: DeployKind::Sharded,
            units: self.sketch().shard_count(),
            param_count: self.sketch().param_count(),
            generation: None,
        }
    }

    fn storage_bytes(&self) -> usize {
        self.sketch().artifact_bytes()
    }
}

/// One immutable (deployment, generation) pair — the unit a
/// [`LiveDeployment`] snapshot hands out.
struct LiveState {
    deployment: Box<dyn Deployment>,
    generation: u64,
}

/// An owning, hot-swappable [`Deployment`] handle.
///
/// Serving processes hold the `LiveDeployment`; maintenance swaps what
/// is behind it. Each trait call clones an [`Arc`] snapshot of the
/// current state under a brief read lock and serves the **whole batch**
/// from that snapshot, so:
///
/// * [`LiveDeployment::swap`] never blocks in-flight batches — they
///   finish on the generation they started on;
/// * a batch is always answered by exactly one generation, never a
///   blend of pre- and post-swap models;
/// * [`Deployment::describe`] reports the generation the *next* batch
///   will be served by.
///
/// [`LiveDeployment::reload_sharded`] is the artifact-side entry point:
/// point it at a (possibly partially) refreshed NSKM manifest and the
/// handle atomically becomes that generation.
pub struct LiveDeployment {
    state: RwLock<Arc<LiveState>>,
}

impl LiveDeployment {
    /// Serve `deployment` as generation `generation`.
    pub fn new(deployment: impl Deployment + 'static, generation: u64) -> LiveDeployment {
        LiveDeployment {
            state: RwLock::new(Arc::new(LiveState {
                deployment: Box::new(deployment),
                generation,
            })),
        }
    }

    /// Atomically replace the served deployment. Batches already in
    /// flight finish on the old generation; every batch started after
    /// the swap sees the new one. Returns the generation that was
    /// replaced.
    pub fn swap(&self, deployment: impl Deployment + 'static, generation: u64) -> u64 {
        let next = Arc::new(LiveState {
            deployment: Box::new(deployment),
            generation,
        });
        let mut guard = self.state.write().expect("live deployment lock");
        std::mem::replace(&mut *guard, next).generation
    }

    /// Load a sharded deployment from its NSKM manifest and swap it in,
    /// serving it with `opts`. The new generation is the manifest's —
    /// after a partial refresh ([`crate::persist::save_refreshed`])
    /// that is the old generation + 1. Returns the now-live generation.
    pub fn reload_sharded(
        &self,
        manifest_path: impl AsRef<std::path::Path>,
        opts: crate::serve::ServeOptions,
    ) -> Result<u64, crate::persist::PersistError> {
        // One read, one decode: the loaded shards and the generation
        // come from the *same* manifest bytes, so a refresh landing
        // concurrently can never make the handle serve one generation's
        // models under another's number.
        let (sketch, manifest) = crate::persist::load_sharded_with_manifest(manifest_path)?;
        self.swap(ShardedServer::new(sketch, opts), manifest.generation);
        Ok(manifest.generation)
    }

    /// The generation the next batch will be served by.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// [`Deployment::answer_batch`] plus the generation that answered:
    /// the answers and the stamp come from **one** snapshot, so a swap
    /// landing concurrently can never tag generation `G`'s answers with
    /// `G + 1` (or vice versa). This is the serving surface
    /// [`crate::net`] stamps every response frame from — the
    /// batch-level guarantee behind its never-blend-generations
    /// contract.
    pub fn answer_batch_tagged(&self, queries: &[Vec<f64>]) -> (Vec<f64>, DeployStats, u64) {
        let state = self.snapshot();
        let (answers, stats) = state.deployment.answer_batch(queries);
        (answers, stats, state.generation)
    }

    /// Clone the current state under a brief read lock; the caller then
    /// works lock-free on the snapshot.
    fn snapshot(&self) -> Arc<LiveState> {
        self.state.read().expect("live deployment lock").clone()
    }
}

impl Deployment for LiveDeployment {
    fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, DeployStats) {
        self.snapshot().deployment.answer_batch(queries)
    }

    fn moments_batch(&self, queries: &[Vec<f64>]) -> Option<Vec<Moments>> {
        self.snapshot().deployment.moments_batch(queries)
    }

    fn describe(&self) -> DeploymentInfo {
        let state = self.snapshot();
        DeploymentInfo {
            generation: Some(state.generation),
            ..state.deployment.describe()
        }
    }

    fn storage_bytes(&self) -> usize {
        self.snapshot().deployment.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{DqdRouter, RoutingPolicy};
    use crate::serve::ServeOptions;
    use crate::shard::{build_sharded, ShardPlan};
    use crate::sketch::NeuroSketchConfig;
    use datagen::simple::uniform;
    use query::aggregate::Aggregate;
    use query::exec::QueryEngine;
    use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

    fn setup() -> (datagen::Dataset, Workload) {
        let data = uniform(800, 2, 3);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: 160,
            seed: 7,
        })
        .unwrap();
        (data, wl)
    }

    fn cfg() -> NeuroSketchConfig {
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 10;
        cfg
    }

    /// Every implementation's trait surface must agree bitwise with its
    /// inherent batch path and report a coherent tally.
    #[test]
    fn trait_paths_match_inherent_paths() {
        let (data, wl) = setup();
        let engine = QueryEngine::new(&data, 1);
        let (sketch, report) = crate::NeuroSketch::build(
            &engine,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg(),
        )
        .unwrap();

        // Bare sketch.
        let inherent = sketch.answer_batch(&wl.queries);
        let (via_trait, stats) = Deployment::answer_batch(&sketch, &wl.queries);
        assert_eq!(via_trait, inherent);
        assert_eq!(stats.queries, wl.queries.len());
        assert_eq!(stats.sketch, wl.queries.len());
        assert_eq!(stats.shard_count, 1);
        assert!(Deployment::moments_batch(&sketch, &wl.queries).is_none());
        let info = Deployment::describe(&sketch);
        assert_eq!(info.kind, DeployKind::Monolithic);
        assert_eq!(info.units, sketch.partitions());
        assert_eq!(info.generation, None);
        assert_eq!(Deployment::storage_bytes(&sketch), sketch.storage_bytes());

        // Routed server.
        let router = DqdRouter::new(sketch.clone(), report.leaf_aqcs, RoutingPolicy::default());
        let server = SketchServer::new(router, ServeOptions::default());
        let inherent = SketchServer::answer_batch(&server, &wl.queries);
        let (via_trait, stats) = Deployment::answer_batch(&server, &wl.queries);
        assert_eq!(via_trait, inherent.0);
        assert_eq!(stats, inherent.1.into());
        assert_eq!(Deployment::describe(&server).kind, DeployKind::Monolithic);

        // Sharded server.
        let (sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: 2 },
            &wl.predicate,
            Aggregate::Avg,
            &wl.queries,
            &cfg(),
        )
        .unwrap();
        let server = crate::shard::ShardedServer::new(sharded, ServeOptions::default());
        let inherent = crate::shard::ShardedServer::answer_batch(&server, &wl.queries);
        let (via_trait, stats) = Deployment::answer_batch(&server, &wl.queries);
        assert_eq!(via_trait, inherent.0);
        assert_eq!(stats.shard_count, 2);
        assert_eq!(stats.model_batches, inherent.1.model_batches);
        let moments = Deployment::moments_batch(&server, &wl.queries).expect("sharded has moments");
        for (m, a) in moments.iter().zip(&via_trait) {
            assert_eq!(server.sketch().finish_guarded(*m), *a);
        }
        let info = Deployment::describe(&server);
        assert_eq!((info.kind, info.units), (DeployKind::Sharded, 2));
    }

    /// A swap flips answers and generation atomically; the handle's
    /// describe carries the generation a bare deployment lacks.
    #[test]
    fn live_deployment_swaps_whole_generations() {
        let (_, wl) = setup();
        let labels_a: Vec<f64> = wl.queries.iter().map(|q| q[0] * 10.0).collect();
        let labels_b: Vec<f64> = wl.queries.iter().map(|q| 50.0 - q[0] * 10.0).collect();
        let (gen_a, _) =
            crate::NeuroSketch::build_from_labeled(&wl.queries, &labels_a, &cfg()).unwrap();
        let (gen_b, _) =
            crate::NeuroSketch::build_from_labeled(&wl.queries, &labels_b, &cfg()).unwrap();
        let expect_a = gen_a.answer_batch(&wl.queries);
        let expect_b = gen_b.answer_batch(&wl.queries);

        let live = LiveDeployment::new(gen_a, 4);
        assert_eq!(live.generation(), 4);
        assert_eq!(live.describe().generation, Some(4));
        assert_eq!(live.answer_batch(&wl.queries).0, expect_a);

        let (tagged, _, generation) = live.answer_batch_tagged(&wl.queries);
        assert_eq!((tagged, generation), (expect_a.clone(), 4));

        let replaced = live.swap(gen_b, 5);
        assert_eq!(replaced, 4);
        assert_eq!(live.generation(), 5);
        assert_eq!(live.answer_batch(&wl.queries).0, expect_b);
        let (tagged, _, generation) = live.answer_batch_tagged(&wl.queries);
        assert_eq!((tagged, generation), (expect_b.clone(), 5));
        assert_ne!(expect_a, expect_b, "test must distinguish generations");
    }

    #[test]
    fn info_display_is_operator_readable() {
        let info = DeploymentInfo {
            kind: DeployKind::Sharded,
            units: 4,
            param_count: 1234,
            generation: Some(7),
        };
        assert_eq!(info.to_string(), "sharded (4 shards, 1234 params, gen 7)");
        let info = DeploymentInfo {
            kind: DeployKind::Monolithic,
            units: 1,
            param_count: 10,
            generation: None,
        };
        assert_eq!(info.to_string(), "monolithic (1 partition, 10 params)");
    }
}
