//! The multi-layer perceptron used throughout NeuroSketch.
//!
//! Architecture follows Sec. 4.2 of the paper: an input layer of
//! dimensionality `d`, a first hidden layer of `l_first` units, further
//! hidden layers of `l_rest` units, and a single linear output unit; ReLU
//! everywhere except the output.

use crate::activation::Activation;
use crate::binary::{
    f16_bits_to_f32, f32_to_f16_bits, i8_quant, max_abs_f32, pow2_scale, QuantMode,
};
use crate::init::Init;
use crate::linalg::{
    bias_add_rows, bias_relu_rows, col_sums_into, matmul, matmul_at_b, matmul_padded, Matrix,
};
use crate::NnError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One dense (fully connected) layer: `act(W x + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `out_dim x in_dim`.
    pub weights: Matrix,
    /// Bias vector, length `out_dim`.
    pub biases: Vec<f64>,
    /// Activation applied after the affine transform.
    pub activation: Activation,
}

impl Dense {
    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.cols()
    }
}

/// A feed-forward network with ReLU hidden layers and a linear output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Reusable scratch buffers so repeated inference performs no allocation.
///
/// The paper's query-time numbers are dominated by a single forward pass of
/// a tiny model; allocating on every query would distort them.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    a: Vec<f64>,
    b: Vec<f64>,
}

/// Reusable scratch for the batched training hot path: one activation
/// matrix per layer plus two ping-pong delta matrices.
///
/// Buffers grow on first use and are then reused across mini-batches,
/// epochs, and even across models of the same architecture, so steady-
/// state training performs **zero per-example allocation**. Construct
/// once per worker thread and pass to [`Mlp::forward_batch`] /
/// [`Mlp::backward_batch`].
#[derive(Debug, Clone, Default)]
pub struct BatchWorkspace {
    /// `acts[l]` holds layer `l`'s activations, `batch x out_dim(l)`.
    acts: Vec<Matrix>,
    /// Transposed weight copies (`in_dim x out_dim` per layer), refreshed
    /// each forward pass so the layer GEMM runs in axpy form.
    wt: Vec<Matrix>,
    /// Delta ping-pong buffers, `batch x width`.
    delta: Matrix,
    delta_prev: Matrix,
}

impl BatchWorkspace {
    /// Activations of the final layer from the last
    /// [`Mlp::forward_batch`] call (`batch x output_dim`).
    ///
    /// # Panics
    /// Panics if no forward pass has been run yet.
    pub fn output(&self) -> &Matrix {
        self.acts.last().expect("forward_batch has been run")
    }
}

/// Round `n` up to the next multiple of 4 — the block size of
/// [`matmul_padded`].
fn pad4(n: usize) -> usize {
    (n + 3) & !3
}

/// Pre-transposed, block-padded serving copies of a model's parameters.
///
/// [`Mlp::forward_batch`] re-transposes every weight matrix on every
/// call so its GEMM can run in axpy form; a server answering batches
/// against a fixed model pays that copy once per layer per batch per
/// leaf. A `ServingLayout` hoists the transpose to construction time and
/// zero-pads each layer's input and output widths to multiples of 4 so
/// [`matmul_padded`]'s register-blocked dense kernel applies. Padding
/// columns hold zero weights and zero biases, so they stay exactly
/// `0.0` through every layer and never perturb the real outputs — the
/// layout path is bitwise identical to [`Mlp::forward_batch`] (see
/// [`Mlp::forward_batch_layout`]).
///
/// The layout is a *derived*, in-memory-only artifact: it is built from
/// a decoded model and never serialized, so the NSK2 on-disk format and
/// its quantization contract are unaffected.
#[derive(Debug, Clone)]
pub struct ServingLayout {
    /// Per layer: transposed weights, `pad4(in_dim) x pad4(out_dim)`,
    /// padding entries zero.
    wt: Vec<Matrix>,
    /// Per layer: biases padded with zeros to `pad4(out_dim)`.
    biases: Vec<Vec<f64>>,
    /// `pad4(input_dim)` — the column count callers must assemble
    /// input batches with.
    input_cols: usize,
}

impl ServingLayout {
    /// Padded input width: input matrices passed to
    /// [`Mlp::forward_batch_layout`] must have exactly this many
    /// columns, with columns at index `>= input_dim` set to zero.
    pub fn input_cols(&self) -> usize {
        self.input_cols
    }

    /// Approximate heap footprint of the padded copies, in bytes.
    pub fn padded_bytes(&self) -> usize {
        self.wt
            .iter()
            .map(|m| m.len() * 8)
            .chain(self.biases.iter().map(|b| b.len() * 8))
            .sum()
    }
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[4, 60, 30, 30, 1]`,
    /// He-initialized with the given seed.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given (use
    /// [`Mlp::try_new`] for a fallible version).
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        Self::try_new(sizes, seed).expect("invalid MLP architecture")
    }

    /// Fallible constructor: requires at least an input and an output size,
    /// all sizes nonzero.
    pub fn try_new(sizes: &[usize], seed: u64) -> Result<Self, NnError> {
        Self::with_init(sizes, Init::HeNormal, seed)
    }

    /// Construct with an explicit weight-initialization scheme.
    pub fn with_init(sizes: &[usize], init: Init, seed: u64) -> Result<Self, NnError> {
        if sizes.len() < 2 {
            return Err(NnError::BadArchitecture(format!(
                "need at least input and output sizes, got {sizes:?}"
            )));
        }
        if sizes.contains(&0) {
            return Err(NnError::BadArchitecture(format!(
                "zero-width layer in {sizes:?}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let mut m = Matrix::zeros(fan_out, fan_in);
            for v in m.as_mut_slice() {
                *v = init.sample(&mut rng, fan_in, fan_out);
            }
            let is_last = layers.len() == sizes.len() - 2;
            layers.push(Dense {
                weights: m,
                biases: vec![0.0; fan_out],
                activation: if is_last {
                    Activation::Identity
                } else {
                    Activation::Relu
                },
            });
        }
        Ok(Mlp { layers })
    }

    /// Build directly from explicit layers (used by the memorization
    /// construction).
    pub fn from_layers(layers: Vec<Dense>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::BadArchitecture("no layers".into()));
        }
        for w in layers.windows(2) {
            if w[0].out_dim() != w[1].in_dim() {
                return Err(NnError::BadArchitecture(format!(
                    "layer output {} does not match next input {}",
                    w[0].out_dim(),
                    w[1].in_dim()
                )));
            }
        }
        Ok(Mlp { layers })
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality (1 for all NeuroSketch models).
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable layer access (used by the optimizer).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total number of trainable parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.biases.len())
            .sum()
    }

    /// Storage footprint in bytes, counting each parameter as an `f32`
    /// (4 bytes), matching the paper's model-size accounting.
    pub fn storage_bytes(&self) -> usize {
        self.param_count() * 4
    }

    /// Width of the widest layer — sizing for scratch buffers.
    fn max_width(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.out_dim().max(l.in_dim()))
            .max()
            .unwrap_or(0)
    }

    /// Forward pass, allocating output. Prefer
    /// [`Mlp::forward_with`] in hot loops.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut ws = Workspace::default();
        self.forward_with(&mut ws, x).to_vec()
    }

    /// Forward pass using caller-provided scratch space; returns a slice
    /// into the workspace valid until the next call.
    pub fn forward_with<'w>(&self, ws: &'w mut Workspace, x: &[f64]) -> &'w [f64] {
        assert_eq!(
            x.len(),
            self.input_dim(),
            "input dim {} does not match network {}",
            x.len(),
            self.input_dim()
        );
        let w = self.max_width();
        ws.a.resize(w, 0.0);
        ws.b.resize(w, 0.0);
        ws.a[..x.len()].copy_from_slice(x);
        let mut cur_len = x.len();
        let mut in_a = true;
        for layer in &self.layers {
            let out_len = layer.out_dim();
            let (src, dst) = if in_a {
                (&ws.a, &mut ws.b)
            } else {
                (&ws.b, &mut ws.a)
            };
            layer
                .weights
                .matvec_into(&src[..cur_len], &mut dst[..out_len]);
            for (d, b) in dst[..out_len].iter_mut().zip(&layer.biases) {
                *d += b;
            }
            layer.activation.apply(&mut dst[..out_len]);
            cur_len = out_len;
            in_a = !in_a;
        }
        if in_a {
            &ws.a[..cur_len]
        } else {
            &ws.b[..cur_len]
        }
    }

    /// Scalar prediction convenience for single-output networks.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.forward(x)[0]
    }

    /// Scalar prediction with scratch space.
    pub fn predict_with(&self, ws: &mut Workspace, x: &[f64]) -> f64 {
        self.forward_with(ws, x)[0]
    }

    /// Forward pass that retains every layer's pre-activations and
    /// activations (for backprop). Returns `(pre_activations, activations)`
    /// where `activations[0]` is the input.
    pub fn forward_full(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for layer in &self.layers {
            let input = acts.last().expect("nonempty");
            let mut z = vec![0.0; layer.out_dim()];
            layer.weights.matvec_into(input, &mut z);
            for (zi, b) in z.iter_mut().zip(&layer.biases) {
                *zi += b;
            }
            pre.push(z.clone());
            layer.activation.apply(&mut z);
            acts.push(z);
        }
        (pre, acts)
    }

    /// Inference with caller-provided scratch space — the public
    /// allocation-free entry point for answering queries.
    ///
    /// Identical to [`Mlp::forward_with`]; the name exists so call sites
    /// that *serve* rather than *train* read naturally. Reuse one
    /// [`Workspace`] across calls (e.g. one per worker thread) and no
    /// allocation happens after the first call:
    ///
    /// ```
    /// use nn::mlp::Workspace;
    /// use nn::Mlp;
    ///
    /// let mlp = Mlp::new(&[2, 8, 1], 7);
    /// let mut ws = Workspace::default();
    /// for q in [[0.1, 0.2], [0.3, 0.4]] {
    ///     let y = mlp.infer_with(&mut ws, &q)[0];
    ///     assert!(y.is_finite());
    /// }
    /// ```
    pub fn infer_with<'w>(&self, ws: &'w mut Workspace, x: &[f64]) -> &'w [f64] {
        self.forward_with(ws, x)
    }

    /// Batched forward pass: compute activations for a whole
    /// `batch x input_dim` matrix (one example per row), reusing `ws`.
    ///
    /// Each layer is one [`matmul`] against a transposed weight copy
    /// kept in the workspace, followed by a fused bias+activation
    /// epilogue — a single pass over the weights per *mini-batch*
    /// instead of one per example.
    /// All per-layer activations are retained in `ws` for
    /// [`Mlp::backward_batch`]; the returned reference is the final
    /// layer's output (`batch x output_dim`).
    ///
    /// The floating-point result is bitwise identical to running
    /// [`Mlp::forward_with`] on every row.
    ///
    /// # Panics
    /// Panics if `x.cols()` does not match the network's input
    /// dimensionality.
    pub fn forward_batch<'w>(&self, ws: &'w mut BatchWorkspace, x: &Matrix) -> &'w Matrix {
        assert_eq!(
            x.cols(),
            self.input_dim(),
            "input dim {} does not match network {}",
            x.cols(),
            self.input_dim()
        );
        let bsz = x.rows();
        ws.acts.resize(self.layers.len(), Matrix::zeros(0, 0));
        ws.wt.resize(self.layers.len(), Matrix::zeros(0, 0));
        for (li, layer) in self.layers.iter().enumerate() {
            let (done, rest) = ws.acts.split_at_mut(li);
            let act = &mut rest[0];
            let input = if li == 0 { x } else { &done[li - 1] };
            act.resize(bsz, layer.out_dim());
            // Z = X · Wᵀ, computed as `matmul` against a transposed weight
            // copy: the axpy-form inner loop vectorizes across output
            // units and skips ReLU-zero inputs, and still accumulates
            // each entry in ascending contraction order (bitwise equal to
            // the per-example matvec).
            layer.weights.transpose_into(&mut ws.wt[li]);
            matmul(act, input, &ws.wt[li]);
            match layer.activation {
                Activation::Relu => bias_relu_rows(act, &layer.biases),
                Activation::Identity => bias_add_rows(act, &layer.biases),
            }
        }
        ws.output()
    }

    /// Build the pre-transposed, block-padded serving copies of this
    /// model's parameters. Build once per deployed model, reuse for
    /// every batch — see [`ServingLayout`].
    pub fn serving_layout(&self) -> ServingLayout {
        let mut wt = Vec::with_capacity(self.layers.len());
        let mut biases = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, inp) = (layer.out_dim(), layer.in_dim());
            let mut t = Matrix::zeros(pad4(inp), pad4(out));
            for r in 0..out {
                let wrow = layer.weights.row(r);
                for (c, w) in wrow.iter().enumerate() {
                    t.set(c, r, *w);
                }
            }
            let mut b = vec![0.0; pad4(out)];
            b[..out].copy_from_slice(&layer.biases);
            wt.push(t);
            biases.push(b);
        }
        ServingLayout {
            wt,
            biases,
            input_cols: pad4(self.input_dim()),
        }
    }

    /// Batched forward pass through a prebuilt [`ServingLayout`]: no
    /// per-batch transpose, and every layer GEMM takes
    /// [`matmul_padded`]'s register-blocked dense fast path.
    ///
    /// `x` must be assembled at the layout's padded width
    /// ([`ServingLayout::input_cols`]) with the padding columns zero.
    /// The returned matrix is `batch x pad4(output_dim)`; the real
    /// outputs occupy columns `0..output_dim` and are **bitwise
    /// identical** to [`Mlp::forward_batch`] on the unpadded input:
    /// zero-padded inputs and weights leave every fmadd accumulator
    /// unchanged, and the contraction order is the same ascending-`k`
    /// chain, so padding never changes a rounding step.
    ///
    /// # Panics
    /// Panics if `x.cols()` does not match the layout's padded input
    /// width, and in debug builds if `layout` was built from a model of
    /// a different architecture.
    pub fn forward_batch_layout<'w>(
        &self,
        layout: &ServingLayout,
        ws: &'w mut BatchWorkspace,
        x: &Matrix,
    ) -> &'w Matrix {
        assert_eq!(
            x.cols(),
            layout.input_cols,
            "padded input width {} does not match layout {}",
            x.cols(),
            layout.input_cols
        );
        debug_assert_eq!(
            layout.wt.len(),
            self.layers.len(),
            "layout/model layer count mismatch"
        );
        let bsz = x.rows();
        ws.acts.resize(self.layers.len(), Matrix::zeros(0, 0));
        for (li, layer) in self.layers.iter().enumerate() {
            let (done, rest) = ws.acts.split_at_mut(li);
            let act = &mut rest[0];
            let input = if li == 0 { x } else { &done[li - 1] };
            let wt = &layout.wt[li];
            debug_assert_eq!(wt.cols(), pad4(layer.out_dim()), "layout layer {li}");
            act.resize(bsz, wt.cols());
            matmul_padded(act, input, wt);
            match layer.activation {
                Activation::Relu => bias_relu_rows(act, &layout.biases[li]),
                Activation::Identity => bias_add_rows(act, &layout.biases[li]),
            }
        }
        ws.output()
    }

    /// Batched backward pass for the MSE loss `Σ_e Σ_o (f(x_e)_o − y_eo)²`.
    ///
    /// Requires that [`Mlp::forward_batch`] was just called on `ws` with
    /// the same `x`. Overwrites `grads` with the **summed** (not
    /// averaged) gradients of the batch — fold the `1/batch` factor into
    /// the optimizer step via
    /// [`Optimizer::step_scaled`](crate::optimizer::Optimizer::step_scaled).
    /// Returns the summed batch loss.
    ///
    /// The weight gradient of each layer is one [`matmul_at_b`]
    /// (`deltaᵀ · input`), the bias gradient one column reduction, and
    /// the delta propagation one [`matmul`] against the weights with a
    /// fused ReLU mask — all into reused buffers, with an accumulation
    /// order bitwise identical to summing
    /// [`accumulate_example_gradient`] over the batch.
    ///
    /// # Panics
    /// Panics if `y`'s shape does not match `(x.rows(), output_dim)` or
    /// if the workspace does not hold activations for `x`.
    pub fn backward_batch(
        &self,
        ws: &mut BatchWorkspace,
        x: &Matrix,
        y: &Matrix,
        grads: &mut Gradients,
    ) -> f64 {
        let bsz = x.rows();
        let out_dim = self.output_dim();
        assert_eq!(
            (y.rows(), y.cols()),
            (bsz, out_dim),
            "target shape {}x{} does not match batch {}x{}",
            y.rows(),
            y.cols(),
            bsz,
            out_dim
        );
        assert_eq!(ws.acts.len(), self.layers.len(), "run forward_batch first");
        assert_eq!(ws.output().rows(), bsz, "workspace batch size mismatch");

        // Output delta: dL/dz = 2 (a − y) · act'(z), and the summed loss.
        let last = self.layers.len() - 1;
        let last_act = self.layers[last].activation;
        ws.delta.resize(bsz, out_dim);
        let mut loss = 0.0;
        {
            let out = &ws.acts[last];
            for e in 0..bsz {
                let (orow, yrow) = (out.row(e), y.row(e));
                let drow = ws.delta.row_mut(e);
                for ((d, a), t) in drow.iter_mut().zip(orow).zip(yrow) {
                    let diff = a - t;
                    loss += diff * diff;
                    *d = 2.0 * diff * last_act.derivative_from_output(*a);
                }
            }
        }

        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let (dw, db) = &mut grads.layers[li];
            let input = if li == 0 { x } else { &ws.acts[li - 1] };
            // dW = deltaᵀ · input ; db = column sums of delta.
            matmul_at_b(dw, &ws.delta, input);
            col_sums_into(&ws.delta, db);
            if li > 0 {
                // delta_prev = (delta · W) .* act'(a_prev).
                ws.delta_prev.resize(bsz, layer.in_dim());
                matmul(&mut ws.delta_prev, &ws.delta, &layer.weights);
                let prev_act = self.layers[li - 1].activation;
                let prev = &ws.acts[li - 1];
                for e in 0..bsz {
                    let arow = prev.row(e);
                    for (d, a) in ws.delta_prev.row_mut(e).iter_mut().zip(arow) {
                        *d *= prev_act.derivative_from_output(*a);
                    }
                }
                std::mem::swap(&mut ws.delta, &mut ws.delta_prev);
            }
        }
        loss
    }

    /// The model with every parameter rounded through `f32` — exactly
    /// the values the compact binary format ([`crate::binary`]) stores.
    ///
    /// Persisting a model is lossy once (f64 training precision → f32
    /// storage precision) and lossless ever after; `quantized` applies
    /// that first rounding in memory, so
    /// `binary::decode(binary::encode(&m))` equals `m.quantized()`
    /// bitwise. Serving layers use it to state (and test) that a loaded
    /// model answers identically to the in-memory one it was saved from.
    pub fn quantized(&self) -> Mlp {
        self.quantized_to(QuantMode::F32)
    }

    /// The model with every parameter rounded through the given storage
    /// encoding — exactly the values
    /// `binary::decode_any(binary::encode_with(&m, mode))` yields.
    ///
    /// Extends the [`Mlp::quantized`] contract to the quantized
    /// encodings: each mode is lossy exactly once and idempotent ever
    /// after (`m.quantized_to(mode).quantized_to(mode)` is bitwise equal
    /// to `m.quantized_to(mode)`), so load → re-encode reproduces the
    /// artifact bytes and answers are bitwise reproducible across loads
    /// for every mode.
    pub fn quantized_to(&self, mode: QuantMode) -> Mlp {
        let squash: fn(f64) -> f64 = match mode {
            QuantMode::F32 => |v| v as f32 as f64,
            QuantMode::F16 => |v| f16_bits_to_f32(f32_to_f16_bits(v as f32)) as f64,
            // I8 needs the per-tensor scale; handled below.
            QuantMode::I8 => |v| v,
        };
        let layers = self
            .layers
            .iter()
            .map(|l| {
                let mut weights = l.weights.clone();
                let mut biases = l.biases.clone();
                if mode == QuantMode::I8 {
                    let ws = pow2_scale(max_abs_f32(weights.as_slice().iter().copied()));
                    for w in weights.as_mut_slice() {
                        *w = (i8_quant(*w as f32, ws) as f32 * ws) as f64;
                    }
                    let bs = pow2_scale(max_abs_f32(biases.iter().copied()));
                    for b in &mut biases {
                        *b = (i8_quant(*b as f32, bs) as f32 * bs) as f64;
                    }
                } else {
                    for w in weights.as_mut_slice() {
                        *w = squash(*w);
                    }
                    for b in &mut biases {
                        *b = squash(*b);
                    }
                }
                Dense {
                    weights,
                    biases,
                    activation: l.activation,
                }
            })
            .collect();
        Mlp { layers }
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> Result<String, NnError> {
        serde_json::to_string(self).map_err(|e| NnError::Serde(e.to_string()))
    }

    /// Deserialize from a JSON string produced by [`Mlp::to_json`].
    pub fn from_json(s: &str) -> Result<Self, NnError> {
        serde_json::from_str(s).map_err(|e| NnError::Serde(e.to_string()))
    }
}

/// Gradients mirroring an [`Mlp`]'s layer structure.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// One `(dW, db)` pair per layer.
    pub layers: Vec<(Matrix, Vec<f64>)>,
}

impl Gradients {
    /// Zero gradients shaped like `mlp`.
    pub fn zeros_like(mlp: &Mlp) -> Self {
        Gradients {
            layers: mlp
                .layers()
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.out_dim(), l.in_dim()),
                        vec![0.0; l.out_dim()],
                    )
                })
                .collect(),
        }
    }

    /// Reset to zero for the next batch.
    pub fn zero(&mut self) {
        for (w, b) in &mut self.layers {
            w.fill_zero();
            b.fill(0.0);
        }
    }

    /// Scale all gradients by `s` (e.g. `1/batch_size`).
    pub fn scale(&mut self, s: f64) {
        for (w, b) in &mut self.layers {
            for v in w.as_mut_slice() {
                *v *= s;
            }
            for v in b {
                *v *= s;
            }
        }
    }
}

/// Accumulate into `grads` the MSE gradient contribution of one example.
///
/// Loss convention: `L = (f(x) - y)^2` summed over outputs; the caller is
/// responsible for averaging over the batch via [`Gradients::scale`].
pub fn accumulate_example_gradient(mlp: &Mlp, x: &[f64], y: &[f64], grads: &mut Gradients) -> f64 {
    let (pre, acts) = mlp.forward_full(x);
    let out = acts.last().expect("nonempty");
    debug_assert_eq!(out.len(), y.len());
    // delta at the output layer: dL/dz = 2 (a - y) * act'(z)
    let last = mlp.layers().len() - 1;
    let mut delta: Vec<f64> = out
        .iter()
        .zip(y)
        .zip(&pre[last])
        .map(|((a, t), z)| 2.0 * (a - t) * mlp.layers()[last].activation.derivative(*z))
        .collect();
    let loss: f64 = out.iter().zip(y).map(|(a, t)| (a - t) * (a - t)).sum();

    for li in (0..mlp.layers().len()).rev() {
        let layer = &mlp.layers()[li];
        let (dw, db) = &mut grads.layers[li];
        // dW += delta * input^T ; db += delta
        dw.rank1_add(1.0, &delta, &acts[li]);
        for (bi, d) in db.iter_mut().zip(&delta) {
            *bi += d;
        }
        if li > 0 {
            // propagate: delta_prev = (W^T delta) .* act'(z_prev)
            let mut prev = vec![0.0; layer.in_dim()];
            layer.weights.matvec_transpose_into(&delta, &mut prev);
            let prev_layer = &mlp.layers()[li - 1];
            for (p, z) in prev.iter_mut().zip(&pre[li - 1]) {
                *p *= prev_layer.activation.derivative(*z);
            }
            delta = prev;
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Mlp {
        Mlp::new(&[2, 4, 1], 42)
    }

    #[test]
    fn shapes_and_params() {
        let m = tiny();
        assert_eq!(m.input_dim(), 2);
        assert_eq!(m.output_dim(), 1);
        assert_eq!(m.param_count(), 2 * 4 + 4 + 4 + 1);
        assert_eq!(m.storage_bytes(), m.param_count() * 4);
    }

    #[test]
    fn forward_is_deterministic_and_matches_workspace_path() {
        let m = tiny();
        let x = [0.3, 0.7];
        let a = m.forward(&x);
        let mut ws = Workspace::default();
        let b = m.forward_with(&mut ws, &x).to_vec();
        assert_eq!(a, b);
        assert_eq!(a, m.forward(&x));
    }

    #[test]
    fn rejects_degenerate_architectures() {
        assert!(Mlp::try_new(&[3], 0).is_err());
        assert!(Mlp::try_new(&[3, 0, 1], 0).is_err());
        assert!(Mlp::from_layers(vec![]).is_err());
    }

    #[test]
    fn from_layers_checks_dims() {
        let l1 = Dense {
            weights: Matrix::zeros(4, 2),
            biases: vec![0.0; 4],
            activation: Activation::Relu,
        };
        let l2_bad = Dense {
            weights: Matrix::zeros(1, 3),
            biases: vec![0.0],
            activation: Activation::Identity,
        };
        assert!(Mlp::from_layers(vec![l1, l2_bad]).is_err());
    }

    #[test]
    fn json_roundtrip() {
        let m = tiny();
        let s = m.to_json().unwrap();
        let m2 = Mlp::from_json(&s).unwrap();
        assert_eq!(m, m2);
        assert_eq!(m.predict(&[0.1, 0.9]), m2.predict(&[0.1, 0.9]));
    }

    /// Check backprop gradients against central finite differences.
    #[test]
    fn gradients_match_finite_differences() {
        let mut m = Mlp::new(&[2, 5, 3, 1], 9);
        let x = [0.4, -0.2];
        let y = [1.5];
        let mut grads = Gradients::zeros_like(&m);
        accumulate_example_gradient(&m, &x, &y, &mut grads);

        let eps = 1e-6;
        let loss_of = |m: &Mlp| {
            let o = m.predict(&x);
            (o - y[0]) * (o - y[0])
        };
        for li in 0..m.layers().len() {
            for idx in 0..m.layers()[li].weights.len() {
                let orig = m.layers()[li].weights.as_slice()[idx];
                m.layers_mut()[li].weights.as_mut_slice()[idx] = orig + eps;
                let lp = loss_of(&m);
                m.layers_mut()[li].weights.as_mut_slice()[idx] = orig - eps;
                let lm = loss_of(&m);
                m.layers_mut()[li].weights.as_mut_slice()[idx] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                let an = grads.layers[li].0.as_slice()[idx];
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + fd.abs()),
                    "layer {li} weight {idx}: fd {fd} vs analytic {an}"
                );
            }
            for bi in 0..m.layers()[li].biases.len() {
                let orig = m.layers()[li].biases[bi];
                m.layers_mut()[li].biases[bi] = orig + eps;
                let lp = loss_of(&m);
                m.layers_mut()[li].biases[bi] = orig - eps;
                let lm = loss_of(&m);
                m.layers_mut()[li].biases[bi] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                let an = grads.layers[li].1[bi];
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + fd.abs()),
                    "layer {li} bias {bi}: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "input dim")]
    fn forward_panics_on_wrong_dim() {
        let m = tiny();
        let _ = m.forward(&[0.1, 0.2, 0.3]);
    }

    fn batch_inputs(n: usize, d: usize) -> Matrix {
        let mut x = Matrix::zeros(n, d);
        for e in 0..n {
            for i in 0..d {
                x.set(e, i, ((e * d + i) as f64 * 0.7133).sin());
            }
        }
        x
    }

    #[test]
    fn forward_batch_matches_per_example_bitwise() {
        let m = Mlp::new(&[3, 7, 5, 1], 13);
        let x = batch_inputs(9, 3);
        let mut bws = BatchWorkspace::default();
        let out = m.forward_batch(&mut bws, &x);
        let mut ws = Workspace::default();
        for e in 0..x.rows() {
            let want = m.forward_with(&mut ws, x.row(e)).to_vec();
            assert_eq!(out.row(e), &want[..], "row {e}");
        }
    }

    #[test]
    fn forward_batch_workspace_reuse_across_batch_sizes() {
        let m = Mlp::new(&[2, 6, 1], 3);
        let mut bws = BatchWorkspace::default();
        // A big batch then a small one: stale buffer contents must not leak.
        let big = batch_inputs(16, 2);
        let _ = m.forward_batch(&mut bws, &big);
        let small = batch_inputs(3, 2);
        let out = m.forward_batch(&mut bws, &small).clone();
        assert_eq!(out.rows(), 3);
        for e in 0..3 {
            assert_eq!(out.row(e)[0], m.predict(small.row(e)), "row {e}");
        }
    }

    #[test]
    fn backward_batch_matches_accumulated_per_example_gradients() {
        let m = Mlp::new(&[3, 8, 4, 1], 21);
        let n = 11;
        let x = batch_inputs(n, 3);
        let mut y = Matrix::zeros(n, 1);
        for e in 0..n {
            y.set(e, 0, (e as f64 * 0.31).cos());
        }

        // Reference: per-example accumulation in batch order.
        let mut ref_grads = Gradients::zeros_like(&m);
        let mut ref_loss = 0.0;
        for e in 0..n {
            ref_loss += accumulate_example_gradient(&m, x.row(e), y.row(e), &mut ref_grads);
        }

        let mut bws = BatchWorkspace::default();
        let mut grads = Gradients::zeros_like(&m);
        m.forward_batch(&mut bws, &x);
        let loss = m.backward_batch(&mut bws, &x, &y, &mut grads);

        assert_eq!(loss, ref_loss);
        for (li, ((dw, db), (rw, rb))) in grads.layers.iter().zip(&ref_grads.layers).enumerate() {
            assert_eq!(dw.as_slice(), rw.as_slice(), "layer {li} weights");
            assert_eq!(&db[..], &rb[..], "layer {li} biases");
        }
    }

    #[test]
    fn backward_batch_overwrites_stale_gradients() {
        let m = tiny();
        let x = batch_inputs(4, 2);
        let y = Matrix::zeros(4, 1);
        let mut bws = BatchWorkspace::default();
        let mut grads = Gradients::zeros_like(&m);
        // Poison the gradient buffers; backward_batch must overwrite.
        for (w, b) in &mut grads.layers {
            w.as_mut_slice().fill(1234.5);
            b.fill(-9.0);
        }
        m.forward_batch(&mut bws, &x);
        m.backward_batch(&mut bws, &x, &y, &mut grads);
        let mut fresh = Gradients::zeros_like(&m);
        let mut bws2 = BatchWorkspace::default();
        m.forward_batch(&mut bws2, &x);
        m.backward_batch(&mut bws2, &x, &y, &mut fresh);
        for ((dw, db), (fw, fb)) in grads.layers.iter().zip(&fresh.layers) {
            assert_eq!(dw.as_slice(), fw.as_slice());
            assert_eq!(&db[..], &fb[..]);
        }
    }

    #[test]
    #[should_panic(expected = "target shape")]
    fn backward_batch_checks_target_shape() {
        let m = tiny();
        let x = batch_inputs(4, 2);
        let y = Matrix::zeros(3, 1);
        let mut bws = BatchWorkspace::default();
        m.forward_batch(&mut bws, &x);
        let mut grads = Gradients::zeros_like(&m);
        m.backward_batch(&mut bws, &x, &y, &mut grads);
    }

    #[test]
    fn quantized_matches_binary_roundtrip_bitwise() {
        let m = Mlp::new(&[3, 9, 4, 1], 17);
        let q = m.quantized();
        let loaded = crate::binary::decode(crate::binary::encode(&m)).unwrap();
        assert_eq!(q, loaded);
        // Quantization is idempotent.
        assert_eq!(q, q.quantized());
        for i in 0..10 {
            let x = [i as f64 * 0.09, 0.4, 0.8];
            assert_eq!(q.predict(&x), loaded.predict(&x));
        }
    }

    /// Copy `x` into a matrix with `cols` columns, extra columns zero.
    fn padded_input(x: &Matrix, cols: usize) -> Matrix {
        assert!(cols >= x.cols());
        let mut p = Matrix::zeros(x.rows(), cols);
        for e in 0..x.rows() {
            p.row_mut(e)[..x.cols()].copy_from_slice(x.row(e));
        }
        p
    }

    #[test]
    fn layout_forward_matches_forward_batch_bitwise() {
        // Odd widths force padding in every layer; batch sizes cover the
        // 4-row blocks and the remainder rows of `matmul_padded`.
        let m = Mlp::new(&[3, 7, 5, 1], 13);
        let layout = m.serving_layout();
        assert_eq!(layout.input_cols(), 4);
        assert!(layout.padded_bytes() > 0);
        for bsz in [1, 3, 4, 9, 16] {
            let x = batch_inputs(bsz, 3);
            let mut bws = BatchWorkspace::default();
            let want = m.forward_batch(&mut bws, &x).clone();
            let xp = padded_input(&x, layout.input_cols());
            let mut lws = BatchWorkspace::default();
            let got = m.forward_batch_layout(&layout, &mut lws, &xp);
            assert_eq!(got.rows(), bsz);
            assert_eq!(got.cols(), 4);
            for e in 0..bsz {
                assert_eq!(got.row(e)[0], want.row(e)[0], "bsz {bsz} row {e}");
                // Padding outputs stay exactly zero.
                assert!(got.row(e)[1..].iter().all(|v| *v == 0.0));
            }
        }
    }

    #[test]
    fn layout_forward_reuses_workspace_across_paths() {
        // A workspace used by the plain path must be reusable by the
        // layout path (and back) without stale-shape leakage.
        let m = Mlp::new(&[2, 6, 1], 3);
        let layout = m.serving_layout();
        let mut ws = BatchWorkspace::default();
        let x = batch_inputs(5, 2);
        let plain = m.forward_batch(&mut ws, &x).clone();
        let xp = padded_input(&x, layout.input_cols());
        let via_layout = m.forward_batch_layout(&layout, &mut ws, &xp).clone();
        let plain_again = m.forward_batch(&mut ws, &x).clone();
        for e in 0..5 {
            assert_eq!(plain.row(e)[0], via_layout.row(e)[0]);
            assert_eq!(plain.row(e), plain_again.row(e));
        }
    }

    #[test]
    fn quantized_to_matches_binary_roundtrip_bitwise_per_mode() {
        let m = Mlp::new(&[3, 9, 4, 1], 17);
        for mode in QuantMode::ALL {
            let q = m.quantized_to(mode);
            let (loaded, got_mode) =
                crate::binary::decode_any(crate::binary::encode_with(&m, mode)).unwrap();
            assert_eq!(got_mode, mode);
            assert_eq!(q, loaded, "{mode:?}");
            // Lossy exactly once: re-quantizing is the identity.
            assert_eq!(q, q.quantized_to(mode), "{mode:?} idempotence");
        }
        // F32 mode is the legacy `quantized()`.
        assert_eq!(m.quantized(), m.quantized_to(QuantMode::F32));
    }

    #[test]
    fn quantized_models_still_answer_close_to_f32() {
        let m = Mlp::new(&[2, 16, 8, 1], 29);
        let f32_m = m.quantized();
        for mode in [QuantMode::F16, QuantMode::I8] {
            let q = m.quantized_to(mode);
            for i in 0..20 {
                let x = [i as f64 * 0.05, 1.0 - i as f64 * 0.03];
                let (a, b) = (f32_m.predict(&x), q.predict(&x));
                assert!(
                    (a - b).abs() < 0.5 * (1.0 + a.abs()),
                    "{mode:?}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn infer_with_matches_forward() {
        let m = tiny();
        let mut ws = Workspace::default();
        let x = [0.4, 0.6];
        assert_eq!(m.infer_with(&mut ws, &x).to_vec(), m.forward(&x));
    }
}
