//! Adversarial tests for the NSKM sharded-deployment manifest,
//! mirroring `persist_corruption.rs` for NSK2: every corruption of a
//! valid deployment — manifest truncation, bad magic/version, arbitrary
//! byte damage, a wrong artifact checksum, a missing shard file — must
//! come back as a typed [`PersistError`], never a panic, and successful
//! loads must always yield a servable deployment.
//!
//! The replica cases extend the same corruptions to a
//! [`Cluster`] loaded from one manifest per replica: damage confined
//! to one replica (torn manifest, corrupt artifact, stale generation)
//! must be routed around — typed in the event log, batch still served
//! — and only damage that exhausts a whole group's replicas may
//! surface as [`ClusterError::QuorumLost`].

use bytes::Bytes;
use neurosketch::cluster::{Cluster, ClusterError, ClusterEvent, ClusterOptions, RoutePolicy};
use neurosketch::persist::{self, PersistError};
use neurosketch::shard::{build_sharded, ShardPlan};
use neurosketch::NeuroSketchConfig;
use proptest::prelude::*;
use query::aggregate::{Aggregate, MomentKind};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Manifest bytes plus every `(file name, bytes)` artifact of the
/// cached deployment.
type DeploymentBytes = (Vec<u8>, Vec<(String, Vec<u8>)>);

/// A small sharded AVG deployment (2 shards × {count, sum}), built once
/// and shared: its manifest bytes plus a factory that lays the
/// deployment out in a fresh temp directory per test.
fn deployment_bytes() -> &'static DeploymentBytes {
    static CACHE: OnceLock<DeploymentBytes> = OnceLock::new();
    CACHE.get_or_init(|| {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
            .collect();
        let data = datagen::Dataset::from_rows(vec!["a".into(), "m".into()], &rows).unwrap();
        let pred = query::predicate::Range::new(vec![0], 2).unwrap();
        let queries: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i as f64 * 0.317) % 0.8, 0.1 + (i as f64 * 0.119) % 0.15])
            .collect();
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 4;
        let (sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: 2 },
            &pred,
            Aggregate::Avg,
            &queries,
            &cfg,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("nskm_corruption_seed");
        std::fs::remove_dir_all(&dir).ok();
        let manifest_path = persist::save_sharded(&dir, &sharded).unwrap();
        let manifest = std::fs::read(&manifest_path).unwrap();
        let mut artifacts = Vec::new();
        for shard in 0..2 {
            for kind in [MomentKind::Count, MomentKind::Sum] {
                let name = persist::shard_artifact_name(shard, kind);
                artifacts.push((name.clone(), std::fs::read(dir.join(&name)).unwrap()));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        (manifest, artifacts)
    })
}

/// Materialize the cached deployment in a fresh directory; the closure
/// may damage it before `load_sharded` runs.
fn with_deployment(
    tag: &str,
    damage: impl FnOnce(&PathBuf),
) -> Result<neurosketch::ShardedSketch, PersistError> {
    let (manifest, artifacts) = deployment_bytes();
    let dir = std::env::temp_dir().join(format!("nskm_corruption_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(persist::MANIFEST_NAME), manifest).unwrap();
    for (name, bytes) in artifacts {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
    damage(&dir);
    let out = persist::load_sharded(dir.join(persist::MANIFEST_NAME));
    std::fs::remove_dir_all(&dir).ok();
    out
}

#[test]
fn intact_deployment_loads_and_serves() {
    let loaded = with_deployment("intact", |_| {}).unwrap();
    assert_eq!(loaded.shard_count(), 2);
    assert_eq!(loaded.aggregate(), Aggregate::Avg);
    let v = loaded.answer(&[0.2, 0.3]);
    assert!(v.is_finite());
}

#[test]
fn missing_shard_artifact_is_typed() {
    let err = with_deployment("missing", |dir| {
        std::fs::remove_file(dir.join(persist::shard_artifact_name(1, MomentKind::Sum))).unwrap();
    })
    .unwrap_err();
    match err {
        PersistError::MissingShard { path } => {
            assert_eq!(path, persist::shard_artifact_name(1, MomentKind::Sum));
        }
        other => panic!("expected MissingShard, got {other}"),
    }
}

#[test]
fn flipped_artifact_byte_is_a_checksum_mismatch() {
    let name = persist::shard_artifact_name(0, MomentKind::Count);
    let err = with_deployment("checksum", |dir| {
        let path = dir.join(&name);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
    })
    .unwrap_err();
    match err {
        PersistError::ChecksumMismatch {
            path,
            expected,
            found,
        } => {
            assert_eq!(path, name);
            assert_ne!(expected, found);
        }
        other => panic!("expected ChecksumMismatch, got {other}"),
    }
}

#[test]
fn swapped_artifacts_are_a_checksum_mismatch() {
    // Two structurally valid artifacts in each other's places: only the
    // checksum can tell — exactly the file-swap failure mode the
    // manifest exists to catch.
    let a = persist::shard_artifact_name(0, MomentKind::Count);
    let b = persist::shard_artifact_name(1, MomentKind::Count);
    let err = with_deployment("swap", |dir| {
        let bytes_a = std::fs::read(dir.join(&a)).unwrap();
        let bytes_b = std::fs::read(dir.join(&b)).unwrap();
        std::fs::write(dir.join(&a), bytes_b).unwrap();
        std::fs::write(dir.join(&b), bytes_a).unwrap();
    })
    .unwrap_err();
    assert!(
        matches!(err, PersistError::ChecksumMismatch { .. }),
        "got {err}"
    );
}

#[test]
fn manifest_bad_magic_and_version_are_typed() {
    let (manifest, _) = deployment_bytes();

    let mut bad_magic = manifest.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        persist::decode_manifest(Bytes::from(bad_magic)),
        Err(PersistError::BadMagic { .. })
    ));

    let mut future = manifest.clone();
    future[4..8].copy_from_slice(&9u32.to_le_bytes());
    match persist::decode_manifest(Bytes::from(future)).unwrap_err() {
        PersistError::UnsupportedVersion { found } => assert_eq!(found, 9),
        other => panic!("expected UnsupportedVersion, got {other}"),
    }
}

#[test]
fn manifest_shard_count_mismatch_is_corrupt() {
    // Plan says 2 shards (offset 18: aggregate u8 + plan tag u8 after
    // the 8-byte header and 8-byte generation, then shards u32); the
    // shard table count sits right after. Bump the plan's count only.
    let (manifest, _) = deployment_bytes();
    let mut bad = manifest.clone();
    bad[18..22].copy_from_slice(&3u32.to_le_bytes());
    assert!(matches!(
        persist::decode_manifest(Bytes::from(bad)),
        Err(PersistError::Corrupt(m)) if m.contains("shards")
    ));
}

/// Materialize the cached deployment as `n` replica directories (one
/// manifest + artifact set each); the closure may damage any of them
/// before [`Cluster::load`] runs over all the manifests.
fn with_replicas(
    tag: &str,
    n: usize,
    quorum: f64,
    damage: impl FnOnce(&[PathBuf]),
    check: impl FnOnce(Result<Cluster, ClusterError>),
) {
    let (manifest, artifacts) = deployment_bytes();
    let root = std::env::temp_dir().join(format!("nskm_replica_corruption_{tag}"));
    std::fs::remove_dir_all(&root).ok();
    let dirs: Vec<PathBuf> = (0..n)
        .map(|r| {
            let dir = root.join(format!("replica{r}"));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join(persist::MANIFEST_NAME), manifest).unwrap();
            for (name, bytes) in artifacts {
                std::fs::write(dir.join(name), bytes).unwrap();
            }
            dir
        })
        .collect();
    damage(&dirs);
    let manifests: Vec<PathBuf> = dirs
        .iter()
        .map(|d| d.join(persist::MANIFEST_NAME))
        .collect();
    let out = Cluster::load(
        &manifests,
        RoutePolicy::RoundRobin,
        ClusterOptions {
            threads: 2,
            quorum,
            ..ClusterOptions::default()
        },
    );
    std::fs::remove_dir_all(&root).ok();
    check(out);
}

fn probe_queries() -> Vec<Vec<f64>> {
    (0..20)
        .map(|i| vec![(i as f64 * 0.317) % 0.8, 0.1 + (i as f64 * 0.119) % 0.15])
        .collect()
}

#[test]
fn torn_replica_manifest_routes_around_not_fails() {
    // One replica's manifest is torn (truncated mid-write). Its whole
    // column is rejected — typed in the event log — but the peers are
    // healthy, so the batch succeeds at full coverage.
    with_replicas(
        "torn_manifest",
        2,
        1.0,
        |dirs| {
            let path = dirs[1].join(persist::MANIFEST_NAME);
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        },
        |out| {
            let mut cluster = out.unwrap();
            assert!(cluster
                .events()
                .iter()
                .any(|e| matches!(e, ClusterEvent::ManifestRejected { replica: 1, .. })));
            let (answers, report) = cluster.answer_batch(&probe_queries()).unwrap();
            assert_eq!(report.covered, 2, "healthy peers must cover every group");
            assert_eq!(report.failovers, 0);
            assert!(answers.iter().all(|a| a.is_finite()));
        },
    );
}

#[test]
fn corrupt_replica_artifact_downs_one_slot_only() {
    // A checksum-corrupt artifact on one replica downs exactly that
    // (group, replica) slot; the batch routes that group to the peer.
    let name = persist::shard_artifact_name(1, MomentKind::Sum);
    with_replicas(
        "corrupt_artifact",
        2,
        1.0,
        |dirs| {
            let path = dirs[0].join(&name);
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, bytes).unwrap();
        },
        |out| {
            let mut cluster = out.unwrap();
            assert!(cluster.events().iter().any(|e| matches!(
                e,
                ClusterEvent::ReplicaLoadFailed { group: 1, replica: 0, error }
                    if error.contains("checksum")
            )));
            let (answers, report) = cluster.answer_batch(&probe_queries()).unwrap();
            assert_eq!(report.covered, 2);
            // Group 1 has only replica 1 eligible; group 0 kept both.
            assert_eq!(report.chosen[1], Some(1));
            assert!(answers.iter().all(|a| a.is_finite()));
        },
    );
}

#[test]
fn mixed_generation_replicas_never_blend() {
    // Replica 0 claims generation 1 (its manifest's generation field is
    // newer) but its shard-1 artifact is corrupt, so generation 1 can
    // only cover group 0. Full-quorum serving must fall back to the
    // generation that covers everything — replica 1's generation 0 —
    // flagged stale, never a cross-generation blend.
    let name = persist::shard_artifact_name(1, MomentKind::Count);
    with_replicas(
        "mixed_generations",
        2,
        1.0,
        |dirs| {
            let path = dirs[0].join(persist::MANIFEST_NAME);
            let mut bytes = std::fs::read(&path).unwrap();
            // Generation u64 sits right after the 8-byte header.
            bytes[8..16].copy_from_slice(&1u64.to_le_bytes());
            std::fs::write(&path, bytes).unwrap();
            let artifact = dirs[0].join(&name);
            let mut bytes = std::fs::read(&artifact).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x08;
            std::fs::write(&artifact, bytes).unwrap();
        },
        |out| {
            let mut cluster = out.unwrap();
            let (answers, report) = cluster.answer_batch(&probe_queries()).unwrap();
            assert_eq!(report.generation, 0, "must serve the covering generation");
            assert_eq!(report.latest, 1);
            assert!(report.stale, "serving behind the newest must be flagged");
            assert_eq!(report.covered, 2);
            assert!(cluster.events().iter().any(|e| matches!(
                e,
                ClusterEvent::ServedStale {
                    served: 0,
                    latest: 1,
                    ..
                }
            )));
            assert!(answers.iter().all(|a| a.is_finite()));
        },
    );
}

#[test]
fn group_with_no_surviving_replica_is_quorum_lost_or_partial() {
    let damage = |dirs: &[PathBuf]| {
        // Every replica of shard group 0 loses an artifact.
        for dir in dirs {
            std::fs::remove_file(dir.join(persist::shard_artifact_name(0, MomentKind::Count)))
                .unwrap();
        }
    };
    with_replicas("group_down_strict", 2, 1.0, damage, |out| {
        let mut cluster = out.unwrap();
        match cluster.answer_batch(&probe_queries()) {
            Err(ClusterError::QuorumLost {
                covered,
                needed,
                groups,
            }) => assert_eq!((covered, needed, groups), (1, 2, 2)),
            other => panic!("expected QuorumLost, got {other:?}"),
        }
    });
    with_replicas("group_down_relaxed", 2, 0.5, damage, |out| {
        let mut cluster = out.unwrap();
        let (answers, report) = cluster.answer_batch(&probe_queries()).unwrap();
        assert_eq!(report.covered, 1);
        assert_eq!(report.chosen[0], None);
        assert!(answers.iter().all(|a| a.is_finite()));
    });
}

#[test]
fn all_manifests_unreadable_is_typed() {
    with_replicas(
        "all_torn",
        2,
        1.0,
        |dirs| {
            for dir in dirs {
                let path = dir.join(persist::MANIFEST_NAME);
                std::fs::write(&path, b"garbage").unwrap();
            }
        },
        |out| {
            assert!(
                matches!(out, Err(ClusterError::Persist(_))),
                "expected a typed persistence error"
            );
        },
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict prefix of a valid manifest fails with a typed error
    /// (and never bad-magic once the magic survived the cut).
    #[test]
    fn manifest_truncation_always_yields_typed_error(frac in 0.0f64..1.0) {
        let (manifest, _) = deployment_bytes();
        let cut = ((manifest.len() - 1) as f64 * frac) as usize;
        let err = persist::decode_manifest(Bytes::from(manifest[..cut].to_vec())).unwrap_err();
        if cut >= 8 {
            prop_assert!(
                !matches!(err, PersistError::BadMagic { .. }),
                "magic was intact at cut {cut}: {err}"
            );
        }
    }

    /// Arbitrary single-byte manifest damage never panics: either a
    /// typed decode error, or a decode whose artifact references no
    /// longer resolve/checksum (caught at load), or — when the flip
    /// landed in a checksum that decode does not verify — a manifest
    /// that still lists the right artifacts.
    #[test]
    fn manifest_byte_flips_never_panic(pos_frac in 0.0f64..1.0, flip in 1u32..256) {
        let (manifest, _) = deployment_bytes();
        let mut bad = manifest.clone();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= flip as u8;
        if let Ok(m) = persist::decode_manifest(Bytes::from(bad)) {
            prop_assert_eq!(m.shards.len(), 2);
            for shard in &m.shards {
                prop_assert_eq!(shard.len(), 2);
            }
        }
    }

    /// Random garbage is rejected, not mis-parsed into a panic.
    #[test]
    fn manifest_garbage_is_rejected(bytes in prop::collection::vec(0u32..256, 0..192)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        prop_assert!(persist::decode_manifest(Bytes::from(raw)).is_err());
    }
}
