//! Sharded scale-out lifecycle: **plan → parallel per-shard build →
//! save (NSKM) → load → scatter/gather serve**.
//!
//! The single-artifact lifecycle (`save_load_serve`) deploys one sketch
//! over the whole table; this example drives the horizontal-scale-out
//! path from `docs/scaling.md` with the repo's production pieces:
//!
//! 1. split a synthetic table into K data shards with a [`ShardPlan`],
//! 2. build one sketch per (shard, moment component) in parallel
//!    (`neurosketch::shard::build_sharded`),
//! 3. save the whole deployment as one loadable unit — per-shard NSK2
//!    artifacts plus the NSKM manifest (`persist::save_sharded`),
//! 4. load it back and verify the loaded deployment answers **bitwise
//!    identically** to the quantized in-memory one,
//! 5. serve the workload through the scatter/gather [`ShardedServer`]
//!    and verify the gather math: per-shard **exact** moments merged in
//!    shard order equal the monolithic exact backend on COUNT and SUM
//!    (bitwise / ulp-bounded), and the served sketch answers track the
//!    exact answers.
//!
//! ```text
//! cargo run --release --example sharded_serve            # full scale
//! cargo run --release --example sharded_serve -- --fast  # CI smoke
//! ```

use datagen::simple::uniform;
use neurosketch::deploy::Deployment;
use neurosketch::serve::ServeOptions;
use neurosketch::shard::{build_sharded, ShardPlan, ShardedServer};
use neurosketch::{persist, NeuroSketchConfig};
use query::aggregate::{Aggregate, Moments};
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};
use std::time::Instant;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (rows, n_queries) = if fast { (4_000, 400) } else { (20_000, 1_200) };
    let shards = 4;

    // A table, a 1-active-attribute workload, and the exact oracle.
    let data = uniform(rows, 2, 17);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 2,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: n_queries,
        seed: 6,
    })
    .expect("workload");
    let engine = QueryEngine::new(&data, 1);

    // 1. + 2. Plan and build: K shards, one sketch per moment component.
    let plan = ShardPlan::Hash { shards, seed: 42 };
    let mut cfg = NeuroSketchConfig::small();
    cfg.tree_height = 2;
    cfg.target_partitions = 4;
    cfg.train.epochs = if fast { 80 } else { 150 };
    cfg.threads = 4;
    for agg in [Aggregate::Count, Aggregate::Sum] {
        let t0 = Instant::now();
        let (sharded, report) =
            build_sharded(&data, 1, &plan, &wl.predicate, agg, &wl.queries, &cfg)
                .expect("sharded build");
        println!(
            "[{}] built {} shards x {} model(s): rows/shard {:?}, {} params, {:?}",
            agg.name(),
            sharded.shard_count(),
            report.models_trained / sharded.shard_count(),
            report.shard_rows,
            sharded.param_count(),
            t0.elapsed()
        );

        // 3. Save as one loadable unit: NSK2 per shard + NSKM manifest.
        let dir = std::env::temp_dir().join(format!(
            "neurosketch_sharded_demo_{}",
            agg.name().to_lowercase()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let manifest_path = persist::save_sharded(&dir, &sharded).expect("save_sharded");
        let artifact_bytes = sharded.artifact_bytes();
        println!(
            "[{}] saved: {} artifacts + manifest at {} ({} artifact bytes, {} per shard)",
            agg.name(),
            sharded.shard_count(),
            manifest_path.display(),
            artifact_bytes,
            artifact_bytes / sharded.shard_count(),
        );

        // 4. Load and verify: f32 storage quantizes exactly once, so the
        // loaded deployment equals the quantized in-memory one bitwise.
        // Both sides answer through the batched server (answers are
        // thread-count-independent, so the comparison is exact).
        let loaded = persist::load_sharded(&manifest_path).expect("load_sharded");
        std::fs::remove_dir_all(&dir).ok();
        let server = ShardedServer::new(
            loaded,
            ServeOptions {
                threads: 4,
                ..ServeOptions::default()
            },
        );
        // Both sides answer through the unified `Deployment` trait —
        // the same surface the monolithic server exposes.
        let serving: &dyn Deployment = &server;
        let quantized_server = ShardedServer::new(sharded.quantized(), ServeOptions::default());
        let loaded_answers = serving.answer_batch(&wl.queries).0;
        assert_eq!(
            loaded_answers,
            Deployment::answer_batch(&quantized_server, &wl.queries).0,
            "loaded deployment diverged from the quantized in-memory one"
        );
        println!(
            "[{}] loaded: bitwise-identical to the in-memory deployment on all {} queries",
            agg.name(),
            wl.queries.len()
        );

        // 5a. The gather math itself, on exact per-shard backends:
        // merging each shard's exact (n, Σ, Σ²) must reproduce the
        // monolithic exact backend — bitwise for COUNT, ulp-bounded for
        // SUM (pure reassociation of f64 adds).
        let shard_tables = plan.split(&data);
        let shard_engines: Vec<QueryEngine<'_>> = shard_tables
            .iter()
            .map(|t| QueryEngine::new(t, 1))
            .collect();
        for q in wl.queries.iter().take(200) {
            let gathered = shard_engines
                .iter()
                .map(|e| e.moments(&wl.predicate, q))
                .fold(Moments::ZERO, Moments::merge)
                .finish(agg)
                .unwrap();
            let exact = engine.answer(&wl.predicate, agg, q);
            match agg {
                Aggregate::Count => assert_eq!(
                    gathered, exact,
                    "gathered exact COUNT must be bitwise-equal to the monolithic backend"
                ),
                _ => assert!(
                    (gathered - exact).abs() <= 1e-9 * (1.0 + exact.abs()),
                    "gathered exact {} diverged: {gathered} vs {exact}",
                    agg.name()
                ),
            }
        }
        println!(
            "[{}] gather = monolithic exact backend on {} probe queries",
            agg.name(),
            200.min(wl.queries.len())
        );

        // 5b. Scatter/gather serving over the loaded artifacts.
        let t1 = Instant::now();
        let (answers, stats) = serving.answer_batch(&wl.queries);
        let elapsed = t1.elapsed();
        let truths: Vec<f64> = wl
            .queries
            .iter()
            .map(|q| engine.answer(&wl.predicate, agg, q))
            .collect();
        // Coarse rail against gross regressions only — the tight
        // sharded-vs-monolithic error pin lives in the shard module's
        // regression test.
        let nmae = normalized_mae(&truths, &answers);
        assert!(
            nmae < 0.35,
            "served {} error off the rails: NMAE {nmae}",
            agg.name()
        );
        println!(
            "[{}] served: {} queries x {} shards in {:?} ({:.0} queries/sec, NMAE {:.4})",
            agg.name(),
            stats.queries,
            stats.shard_count,
            elapsed,
            stats.queries as f64 / elapsed.as_secs_f64(),
            nmae
        );
    }
    println!("plan -> build -> save -> load -> scatter/gather round trip verified");
}
