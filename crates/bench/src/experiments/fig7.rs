//! Fig. 7: impact of query range on error and query time (TPC1, AVG, one
//! active attribute, range fixed to x% of the domain for
//! x ∈ {1, 3, 5, 10}). Shape to check: NeuroSketch error *increases* as
//! ranges shrink (per the DQD bound's sampling term), while it stays
//! orders of magnitude faster at all ranges.

use crate::common::{print_rows, run_comparison, EngineRow, ExperimentContext};
use datagen::PaperDataset;
use query::aggregate::Aggregate;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

/// Results for one range setting.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Range width as a fraction of the domain.
    pub range: f64,
    /// Engine rows.
    pub engines: Vec<EngineRow>,
}

/// The paper's sweep values.
pub const RANGES: [f64; 4] = [0.01, 0.03, 0.05, 0.10];

/// Run the range sweep on TPC1.
pub fn run(ctx: &ExperimentContext) -> Vec<Fig7Row> {
    let (data, measure) = ctx.dataset(PaperDataset::Tpc1);
    RANGES
        .iter()
        .map(|&r| {
            let wl = Workload::generate(&WorkloadConfig {
                dims: data.dims(),
                active: ActiveMode::Random(1),
                range: RangeMode::FixedWidth(r),
                count: ctx.train_queries() + ctx.test_queries(),
                seed: ctx.seed.wrapping_add((r * 1000.0) as u64),
            })
            .expect("valid workload");
            let engines = run_comparison(
                &data,
                measure,
                &wl,
                Aggregate::Avg,
                ctx,
                &ctx.ns_config(),
                false, // DBEst excluded from Sec. 5.2.2 (poor TPC performance)
            );
            Fig7Row { range: r, engines }
        })
        .collect()
}

/// Print one block per range value.
pub fn print(rows: &[Fig7Row]) {
    println!("\n==== Fig. 7: varying query range (TPC1, AVG) ====");
    for row in rows {
        print_rows(&format!("range = {:.0}%", row.range * 100.0), &row.engines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_tends_to_shrink_with_larger_ranges() {
        let ctx = ExperimentContext::fast();
        let rows = run(&ctx);
        assert_eq!(rows.len(), 4);
        let ns_err: Vec<f64> = rows.iter().map(|r| r.engines[0].nmae).collect();
        // The theory predicts monotone improvement; at smoke scale allow
        // the weaker claim that 10% ranges beat 1% ranges.
        assert!(
            ns_err[3] < ns_err[0],
            "NeuroSketch error at 10% ({}) should beat 1% ({})",
            ns_err[3],
            ns_err[0]
        );
    }
}
