//! TPC-DS-like `store_sales` generator.
//!
//! The paper uses the 13 numeric attributes of TPC-DS `store_sales` with
//! `net_profit` as the measure. We reproduce the *pricing arithmetic* of
//! the TPC-DS specification so the columns carry the same dependence
//! structure: per-item wholesale cost and list price, a sales price
//! discounted from list, extended amounts scaled by quantity, and
//! `net_profit = net_paid − ext_wholesale_cost`. This matters for the
//! experiments: the paper's Fig. 16c shows net_profit is a smooth,
//! near-linear function of the other pricing columns (low AQC), which this
//! generator preserves by construction.

use crate::dataset::Dataset;
use crate::simple::standard_normal;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The 13 numeric store_sales columns, in TPC-DS order.
pub const COLUMNS: [&str; 13] = [
    "ss_quantity",
    "ss_wholesale_cost",
    "ss_list_price",
    "ss_sales_price",
    "ss_ext_discount_amt",
    "ss_ext_sales_price",
    "ss_ext_wholesale_cost",
    "ss_ext_list_price",
    "ss_ext_tax",
    "ss_coupon_amt",
    "ss_net_paid",
    "ss_net_paid_inc_tax",
    "ss_net_profit",
];

/// Index of `ss_net_profit`, the paper's measure attribute for TPC.
pub const NET_PROFIT: usize = 12;

/// Generate `rows` store_sales-like records.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows * COLUMNS.len());
    for _ in 0..rows {
        // TPC-DS ranges: quantity 1..100, wholesale cost 1..100 dollars.
        let quantity = rng.random_range(1..=100) as f64;
        let wholesale_cost = rng.random_range(1.0..100.0);
        // List price marks wholesale up by 0%..200%.
        let markup = rng.random_range(1.0..3.0);
        let list_price = wholesale_cost * markup;
        // Sales price discounts list by 0%..100%.
        let discount_frac: f64 = rng.random();
        let sales_price = list_price * (1.0 - discount_frac);
        let ext_discount_amt = quantity * (list_price - sales_price);
        let ext_sales_price = quantity * sales_price;
        let ext_wholesale_cost = quantity * wholesale_cost;
        let ext_list_price = quantity * list_price;
        // Coupons apply to ~20% of sales, covering up to the full amount.
        let coupon_amt = if rng.random::<f64>() < 0.2 {
            ext_sales_price * rng.random_range(0.0..0.5)
        } else {
            0.0
        };
        let net_paid = ext_sales_price - coupon_amt;
        // Sales tax 0%..9% with a little measurement noise.
        let tax_rate = rng.random_range(0.0..0.09);
        let ext_tax = net_paid * tax_rate + 0.01 * standard_normal(&mut rng).abs();
        let net_paid_inc_tax = net_paid + ext_tax;
        let net_profit = net_paid - ext_wholesale_cost;
        data.extend_from_slice(&[
            quantity,
            wholesale_cost,
            list_price,
            sales_price,
            ext_discount_amt,
            ext_sales_price,
            ext_wholesale_cost,
            ext_list_price,
            ext_tax,
            coupon_amt,
            net_paid,
            net_paid_inc_tax,
            net_profit,
        ]);
    }
    Dataset::new(COLUMNS.iter().map(|s| s.to_string()).collect(), data)
        .expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_columns() {
        let d = generate(100, 1);
        assert_eq!(d.dims(), 13);
        assert_eq!(d.rows(), 100);
        assert_eq!(d.column_index("ss_net_profit").unwrap(), NET_PROFIT);
    }

    #[test]
    fn pricing_arithmetic_is_consistent() {
        let d = generate(500, 2);
        for row in d.iter_rows() {
            let quantity = row[0];
            let (wholesale, list, sales) = (row[1], row[2], row[3]);
            assert!(list >= wholesale, "list {list} < wholesale {wholesale}");
            assert!(sales <= list, "sales {sales} > list {list}");
            // ext columns are quantity * per-unit.
            assert!((row[5] - quantity * sales).abs() < 1e-9);
            assert!((row[6] - quantity * wholesale).abs() < 1e-9);
            assert!((row[7] - quantity * list).abs() < 1e-9);
            // net_profit = net_paid − ext_wholesale_cost.
            assert!((row[12] - (row[10] - row[6])).abs() < 1e-9);
        }
    }

    #[test]
    fn net_profit_straddles_zero() {
        // Fig. 5: the net-profit marginal is centered near zero with both
        // signs well represented (deep discounts make many sales lossy).
        let d = generate(5000, 3);
        let profits = d.column(NET_PROFIT);
        let neg = profits.iter().filter(|p| **p < 0.0).count();
        let pos = profits.len() - neg;
        assert!(neg > 1000 && pos > 1000, "neg {neg} pos {pos}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(50, 9).raw(), generate(50, 9).raw());
    }
}
