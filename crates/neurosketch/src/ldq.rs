//! Closed-form LDQ constants (Sec. 3.1.3).
//!
//! LDQ is the Lipschitz constant (1-norm) of the *normalized distribution
//! query function* `f_χ(q)/n`. For the COUNT query function over simple
//! 1-D distributions the paper derives:
//!
//! * uniform on `[0,1]`: `ρ = 1` (Example 3.2),
//! * Gaussian with std `σ`: `ρ = 3 / (σ √(2π))` (Example 3.3),
//! * a mixture inherits a weighted sum of component constants (a Lipschitz
//!   constant for the mixture CDF derivative bound).
//!
//! These feed the DQD bound evaluators in [`crate::dqd`] and the Fig. 14
//! reproduction, where smaller LDQ ⇒ smaller/faster networks at equal
//! error.

/// LDQ of the COUNT query function over a 1-D uniform distribution
/// (Example 3.2): exactly 1.
pub fn ldq_uniform_count() -> f64 {
    1.0
}

/// LDQ of the COUNT query function over a 1-D Gaussian with standard
/// deviation `sigma` (Example 3.3): `3 / (σ √(2π))`.
///
/// # Panics
/// Panics if `sigma <= 0`.
pub fn ldq_gaussian_count(sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    3.0 / (sigma * (std::f64::consts::TAU).sqrt())
}

/// LDQ upper bound for a 1-D Gaussian mixture: the weighted sum of the
/// component constants. (The mixture density's derivative bound is at
/// most the weighted sum of the components' bounds.)
///
/// # Panics
/// Panics if weights/sigmas differ in length, any sigma is nonpositive,
/// or weights don't sum to ~1.
pub fn ldq_gmm_count(weights: &[f64], sigmas: &[f64]) -> f64 {
    assert_eq!(weights.len(), sigmas.len(), "weights/sigmas must pair up");
    let wsum: f64 = weights.iter().sum();
    assert!(
        (wsum - 1.0).abs() < 1e-6,
        "weights must sum to 1, got {wsum}"
    );
    weights
        .iter()
        .zip(sigmas)
        .map(|(w, s)| w * ldq_gaussian_count(*s))
        .sum()
}

/// Empirical LDQ estimate: the *maximum* observed difference quotient over
/// sampled query pairs (AQC uses the mean; the Lipschitz constant is the
/// sup, so the max over samples lower-bounds it).
pub fn ldq_empirical(queries: &[Vec<f64>], values: &[f64]) -> f64 {
    assert_eq!(queries.len(), values.len(), "queries/values must pair up");
    let mut best = 0.0f64;
    for i in 0..queries.len() {
        for j in (i + 1)..queries.len() {
            let dist: f64 = queries[i]
                .iter()
                .zip(&queries[j])
                .map(|(a, b)| (a - b).abs())
                .sum();
            if dist > 0.0 {
                best = best.max((values[i] - values[j]).abs() / dist);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_one() {
        assert_eq!(ldq_uniform_count(), 1.0);
    }

    #[test]
    fn gaussian_matches_paper_formula() {
        let sigma = 0.1;
        let expected = 3.0 / (sigma * (2.0 * std::f64::consts::PI).sqrt());
        assert!((ldq_gaussian_count(sigma) - expected).abs() < 1e-12);
    }

    #[test]
    fn smaller_sigma_is_harder() {
        assert!(ldq_gaussian_count(0.05) > ldq_gaussian_count(0.2));
    }

    #[test]
    fn gmm_between_components_when_equal_sigma() {
        let l = ldq_gmm_count(&[0.5, 0.5], &[0.1, 0.1]);
        assert!((l - ldq_gaussian_count(0.1)).abs() < 1e-12);
    }

    #[test]
    fn gmm_ordering_matches_fig14() {
        // Fig. 14's setup: uniform < gaussian < gmm (two sharp components).
        let uni = ldq_uniform_count();
        let gau = ldq_gaussian_count(0.2);
        let gmm = ldq_gmm_count(&[0.5, 0.5], &[0.08, 0.08]);
        assert!(uni < gau && gau < gmm, "{uni} {gau} {gmm}");
    }

    #[test]
    fn empirical_ldq_at_least_mean_quotient() {
        let qs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 30.0]).collect();
        let vs: Vec<f64> = qs.iter().map(|q| (4.0 * q[0]).sin()).collect();
        let sup = ldq_empirical(&qs, &vs);
        let mean = crate::aqc::aqc(&qs, &vs);
        assert!(sup >= mean);
        // sin(4x) has derivative at most 4.
        assert!(sup <= 4.0 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_panics() {
        let _ = ldq_gaussian_count(0.0);
    }
}
