//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                 # every experiment at reduced scale
//! repro fig6 --scale 10     # one experiment near paper scale
//! repro table3 --fast       # smoke run
//! ```

use bench::common::ExperimentContext;
use bench::experiments::*;

const USAGE: &str = "usage: repro <experiment> [--scale X] [--seed N] [--fast]
experiments: fig5 fig6 fig7 fig8 fig9 table2 fig10 fig11 fig12 table3 fig13 fig14 fig16 fig19 ablation all";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExperimentContext::default();
    // Flags and the experiment name may appear in any order
    // (`repro fig5 --fast` and `repro --fast fig5` both work).
    let mut which = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                ctx.scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--seed" => {
                i += 1;
                ctx.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--fast" => {
                ctx.fast = true;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}\n{USAGE}")),
            other if which.is_none() => which = Some(other.to_string()),
            other => die(&format!("unexpected argument {other}\n{USAGE}")),
        }
        i += 1;
    }
    let Some(which) = which else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    let start = std::time::Instant::now();
    run_one(&which, &ctx);
    eprintln!(
        "\n[{} finished in {:.1} s]",
        which,
        start.elapsed().as_secs_f64()
    );
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn run_one(which: &str, ctx: &ExperimentContext) {
    match which {
        "fig5" => fig5::print(&fig5::run(ctx)),
        "fig6" => fig6::print(&fig6::run(ctx)),
        "fig7" => fig7::print(&fig7::run(ctx)),
        "fig8" => fig8::print(&fig8::run(ctx)),
        "fig9" => fig9::print(&fig9::run(ctx)),
        "table2" => table2::print(&table2::run(ctx)),
        "fig10" => fig10::print(&fig10::run(ctx)),
        "fig11" => fig11::print(&fig11::run(ctx)),
        "fig12" => fig12::print(&fig12::run(ctx)),
        "table3" => table3::print(&table3::run(ctx)),
        "fig13" => fig13::print(&fig13::run(ctx)),
        "fig14" => fig14::print(&fig14::run(ctx)),
        "fig15" | "fig16" | "table4" => fig16::print(&fig16::run(ctx)),
        "fig19" => fig19::print(&fig19::run(ctx)),
        "ablation" => ablation::print(&ablation::run(ctx)),
        "all" => {
            for exp in [
                "fig5", "fig6", "fig7", "fig8", "fig9", "table2", "fig10", "fig11", "fig12",
                "table3", "fig13", "fig14", "fig16", "fig19", "ablation",
            ] {
                let t = std::time::Instant::now();
                run_one(exp, ctx);
                eprintln!("[{exp}: {:.1} s]", t.elapsed().as_secs_f64());
            }
        }
        other => die(&format!("unknown experiment {other}\n{USAGE}")),
    }
}
