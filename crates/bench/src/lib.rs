//! # bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (Sec. 5). Each
//! experiment returns structured rows and can print them in a layout
//! mirroring the paper's, so shapes (who wins, by what factor, where the
//! crossovers are) can be compared directly against the publication.
//!
//! Run everything with the `repro` binary:
//!
//! ```text
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- fig6 --scale 1.0
//! ```
//!
//! `--scale` multiplies dataset/workload sizes (default 1.0 ≈ laptop-
//! friendly reduced scale; 10 approaches paper sizes); `--fast` shrinks
//! everything for smoke testing.

pub mod common;
pub mod experiments;
pub mod netload;
pub mod perf;

pub use common::{EngineRow, ExperimentContext};
pub use netload::{run_load, spawn_server, NetLoadReport};
pub use perf::{PerfEntry, PerfReport};
