//! Fig. 13: preprocessing-time study.
//!
//! (a) training-set generation time per dataset (exact labeling of the
//!     workload), (b) architecture-search convergence — best-found error
//!     relative to the default architecture as search time grows, and
//!     (c) training-loss curves for two widths. Shapes to check: labeling
//!     is seconds-scale; the search finds a near-default-quality
//!     architecture quickly; larger widths converge in fewer epochs.

use crate::common::{default_workload, ExperimentContext};
use datagen::PaperDataset;
use neurosketch::arch_search::grid_search;
use neurosketch::NeuroSketch;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use std::time::Duration;

/// Part (a): one dataset's labeling time.
#[derive(Debug, Clone)]
pub struct LabelTime {
    /// Dataset name.
    pub dataset: &'static str,
    /// Queries labeled.
    pub queries: usize,
    /// Wall-clock for exact labeling.
    pub elapsed: Duration,
}

/// Part (b): search convergence as (elapsed, best-error / default-error).
#[derive(Debug, Clone)]
pub struct SearchCurve {
    /// Error of the paper-default architecture on the same validation set.
    pub default_error: f64,
    /// (elapsed, running-best error ratio) points.
    pub points: Vec<(Duration, f64)>,
}

/// Part (c): per-epoch loss for one width.
#[derive(Debug, Clone)]
pub struct LossCurve {
    /// Hidden width.
    pub width: usize,
    /// Mean training MSE per epoch.
    pub losses: Vec<f64>,
}

/// All three panels.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// Panel (a).
    pub label_times: Vec<LabelTime>,
    /// Panel (b).
    pub search: SearchCurve,
    /// Panel (c).
    pub training: Vec<LossCurve>,
}

/// Run the preprocessing study.
pub fn run(ctx: &ExperimentContext) -> Fig13Result {
    // (a) labeling time per dataset.
    let datasets: Vec<PaperDataset> = if ctx.fast {
        vec![PaperDataset::Pm, PaperDataset::Vs, PaperDataset::G5]
    } else {
        PaperDataset::ALL.to_vec()
    };
    let mut label_times = Vec::new();
    for ds in datasets {
        let (data, measure) = ctx.dataset(ds);
        let engine = QueryEngine::new(&data, measure);
        let wl = default_workload(ds, data.dims(), ctx.train_queries(), ctx.seed);
        let t0 = std::time::Instant::now();
        let _ = engine.label_batch(&wl.predicate, Aggregate::Avg, &wl.queries, 4);
        label_times.push(LabelTime {
            dataset: ds.name(),
            queries: wl.queries.len(),
            elapsed: t0.elapsed(),
        });
    }

    // (b) architecture search on VS.
    let (data, measure) = ctx.dataset(PaperDataset::Vs);
    let engine = QueryEngine::new(&data, measure);
    let wl = default_workload(
        PaperDataset::Vs,
        data.dims(),
        ctx.train_queries() + ctx.test_queries(),
        ctx.seed,
    );
    let (train, val) = wl.split(ctx.test_queries());
    let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &train, 4);
    let val_labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &val, 4);

    let mut base = ctx.ns_config();
    base.tree_height = 0;
    base.target_partitions = 1;
    if ctx.fast {
        base.train.epochs = 20;
    }
    // Default-architecture reference error.
    let (default_sketch, _) =
        NeuroSketch::build_from_labeled(&train, &labels, &base).expect("build");
    let preds: Vec<f64> = val.iter().map(|q| default_sketch.answer(q)).collect();
    let default_error = normalized_mae(&val_labels, &preds);

    let widths: Vec<usize> = if ctx.fast {
        vec![15, 30]
    } else {
        vec![15, 30, 60, 120]
    };
    let depths: Vec<usize> = if ctx.fast {
        vec![3, 5]
    } else {
        vec![3, 4, 5, 7]
    };
    let default_params = default_sketch.param_count();
    let result = grid_search(
        &train,
        &labels,
        &val,
        &val_labels,
        &widths,
        &depths,
        default_params, // space constraint: at most the default size
        &base,
    );
    let points = result
        .convergence_curve()
        .into_iter()
        .map(|(t, e)| (t, e / default_error.max(1e-12)))
        .collect();

    // (c) training curves for widths 30 and 120.
    let mut training = Vec::new();
    for width in [30usize, 120] {
        let mut cfg = base.clone();
        cfg.l_first = width;
        cfg.l_rest = width;
        cfg.train.patience = 0; // full curve, no early stop
        let (_, report) = NeuroSketch::build_from_labeled(&train, &labels, &cfg).expect("build");
        let losses = report
            .train_reports
            .first()
            .map(|r| r.loss_curve.clone())
            .unwrap_or_default();
        training.push(LossCurve { width, losses });
    }

    Fig13Result {
        label_times,
        search: SearchCurve {
            default_error,
            points,
        },
        training,
    }
}

/// Print all three panels.
pub fn print(res: &Fig13Result) {
    println!("\n==== Fig. 13: preprocessing time study ====");
    println!("\n(a) training set generation");
    for lt in &res.label_times {
        println!(
            "  {:<8} {:>8} queries in {:>8.2} s",
            lt.dataset,
            lt.queries,
            lt.elapsed.as_secs_f64()
        );
    }
    println!(
        "\n(b) architecture search (error ratio vs default = {:.4})",
        res.search.default_error
    );
    for (t, ratio) in &res.search.points {
        println!("  {:>8.2} s  ratio {:.3}", t.as_secs_f64(), ratio);
    }
    println!("\n(c) training loss curves");
    for c in &res.training {
        let show: Vec<String> = c
            .losses
            .iter()
            .step_by((c.losses.len() / 8).max(1))
            .map(|l| format!("{l:.4}"))
            .collect();
        println!("  width {:>4}: {}", c.width, show.join(" -> "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_converges_to_reasonable_ratio() {
        let ctx = ExperimentContext::fast();
        let res = run(&ctx);
        assert!(!res.label_times.is_empty());
        let final_ratio = res.search.points.last().expect("nonempty").1;
        // Within the same parameter budget, the search should land within
        // 2.5x of the default error even at smoke scale.
        assert!(final_ratio < 2.5, "ratio {final_ratio}");
        assert_eq!(res.training.len(), 2);
        // Loss decreases over training for both widths.
        for c in &res.training {
            let first = c.losses.first().expect("nonempty");
            let last = c.losses.last().expect("nonempty");
            assert!(last < first, "width {} loss {first} -> {last}", c.width);
        }
    }
}
