//! Minimal dense linear algebra: a row-major matrix and the handful of
//! operations the MLP forward/backward passes need.
//!
//! This is deliberately not a general-purpose linear algebra library: the
//! MLPs in NeuroSketch are tiny (tens of units per layer), so a simple
//! cache-friendly row-major layout with scalar loops is fast enough and
//! keeps the code auditable.

use serde::{Deserialize, Serialize};

/// A dense row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` — this is an internal
    /// construction invariant, not user input.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix buffer size mismatch");
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `out = self * x` where `x` has length `cols` and `out` length `rows`.
    ///
    /// The workhorse of the forward pass. `out` is overwritten.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *o = acc;
        }
    }

    /// `out = self^T * x` where `x` has length `rows` and `out` length `cols`.
    ///
    /// Used to back-propagate deltas through a layer's weights.
    pub fn matvec_transpose_into(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.rows);
        debug_assert_eq!(out.len(), self.cols);
        out.fill(0.0);
        for (r, xr) in x.iter().enumerate() {
            if *xr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * xr;
            }
        }
    }

    /// Rank-1 update `self += alpha * a * b^T` with `a` of length `rows` and
    /// `b` of length `cols`. Used to accumulate weight gradients.
    pub fn rank1_add(&mut self, alpha: f64, a: &[f64], b: &[f64]) {
        debug_assert_eq!(a.len(), self.rows);
        debug_assert_eq!(b.len(), self.cols);
        for (r, ar) in a.iter().enumerate() {
            if *ar == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let s = alpha * ar;
            for (w, bi) in row.iter_mut().zip(b) {
                *w += s * bi;
            }
        }
    }

    /// Reset all entries to zero (gradient buffers between batches).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// `y += alpha * x` for equal-length slices.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm.
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.5, -1.0];
        let mut out = [0.0; 2];
        m.matvec_into(&x, &mut out);
        assert_eq!(out, [1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn matvec_transpose_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [2.0, -1.0];
        let mut out = [0.0; 3];
        m.matvec_transpose_into(&x, &mut out);
        assert_eq!(out, [2.0 - 4.0, 4.0 - 5.0, 6.0 - 6.0]);
    }

    #[test]
    fn rank1_add_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.rank1_add(2.0, &[1.0, 0.5], &[3.0, 4.0]);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(0, 1), 8.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn row_views_are_consistent() {
        let mut m = Matrix::zeros(3, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(1, 0), 7.0);
        assert_eq!(m.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm1(&[1.0, -2.0, 3.0]), 6.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    #[should_panic(expected = "matrix buffer size mismatch")]
    fn from_vec_checks_size() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
