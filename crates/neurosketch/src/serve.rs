//! Throughput-oriented query serving.
//!
//! The paper's query-time story is a single forward pass; a production
//! deployment answers *streams* of queries. [`SketchServer`] turns a
//! loaded sketch (usually from an NSK2 artifact, [`crate::persist`])
//! into a batch-serving engine:
//!
//! * each incoming batch is sharded across the `par` worker pool, one
//!   reusable [`BatchScratch`]/exact-engine scratch per worker, so
//!   steady-state serving performs no per-query allocation and
//!   throughput scales with threads;
//! * within a shard, sketch-routed queries are grouped by kd-tree leaf
//!   and answered with [`Mlp::forward_batch`](nn::Mlp::forward_batch) —
//!   one GEMM per (partition, layer) instead of one matvec per query,
//!   so batching pays even on a single core. With
//!   [`ServeOptions::layout`] on (the default) those GEMMs run through
//!   a pre-transposed, block-padded copy of every leaf's weights
//!   ([`crate::sketch::SketchLayout`], built once at construction), so
//!   steady-state batches skip the per-batch weight transpose entirely
//!   and take [`nn::linalg::matmul_padded`]'s dense fast path;
//! * every query first passes the wrapped [`DqdRouter`]'s DQD rules
//!   (Sec. 4.3): too-small ranges and too-complex partitions go to the
//!   configured exact engine instead of the sketch.
//!
//! Answers are **bitwise identical** to calling
//! [`NeuroSketch::answer`](crate::NeuroSketch::answer) (or the exact
//! engine) query-by-query, in input order, at any thread count — the
//! sharding and leaf-grouping change scheduling, not arithmetic.
//!
//! `SketchServer` fronts **one** sketch over the whole table; when the
//! data itself is partitioned across shards, [`crate::shard`] layers a
//! scatter/gather [`ShardedServer`](crate::shard::ShardedServer) over
//! per-shard deployments (persisted together via
//! [`crate::persist::save_sharded`]).
//!
//! ```
//! use neurosketch::serve::{ServeOptions, SketchServer};
//! use neurosketch::router::{DqdRouter, RoutingPolicy};
//! use neurosketch::{NeuroSketch, NeuroSketchConfig};
//!
//! let queries: Vec<Vec<f64>> = (0..160)
//!     .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
//!     .collect();
//! let labels: Vec<f64> = queries.iter().map(|q| q[0] + q[1]).collect();
//! let mut cfg = NeuroSketchConfig::small();
//! cfg.train.epochs = 10;
//! let (sketch, report) = NeuroSketch::build_from_labeled(&queries, &labels, &cfg).unwrap();
//! let router = DqdRouter::new(sketch, report.leaf_aqcs, RoutingPolicy::default());
//! let server = SketchServer::new(router, ServeOptions::default());
//! let (answers, stats) = server.answer_batch(&queries);
//! assert_eq!(answers.len(), queries.len());
//! assert_eq!(stats.sketch, queries.len());
//! ```

use crate::cache::{aggregate_tag, serve_cached, AnswerCache, CachePolicy, CacheStats};
use crate::router::{range_volume, DqdRouter, Route};
use crate::sketch::{BatchScratch, NeuroSketch, SketchLayout};
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::predicate::PredicateFn;

/// Tuning knobs for a [`SketchServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads a batch fans out across.
    pub threads: usize,
    /// Upper bound on the shard (sub-batch) a single worker processes at
    /// once; bounds per-worker scratch memory on huge batches.
    pub max_shard: usize,
    /// Number of active attributes `k` whose `[c..., r...]` widths define
    /// the range volume for the router's range rule (Lemma 3.6). `None`
    /// skips the range rule (predicates without a meaningful volume).
    pub active_attrs: Option<usize>,
    /// Serve through pre-transposed, block-padded weight copies
    /// ([`crate::sketch::SketchLayout`], built once at server
    /// construction): batches skip the per-batch weight transpose and
    /// run the dense padded GEMM kernel. Answers are bitwise identical
    /// either way; turning this off only trades serving throughput for
    /// the layout's extra resident copy of the weights.
    pub layout: bool,
    /// Answer cache + in-batch deduplication front ([`crate::cache`]).
    /// With caching on, the server owns a private [`AnswerCache`]
    /// (keyed at generation 0 — a rebuilt server starts cold, so stale
    /// hits are impossible); share one cache across generations with
    /// [`crate::cache::CachedDeployment`] instead. Cached and deduped
    /// answers are bitwise identical to the uncached path. Off by
    /// default.
    pub cache: CachePolicy,
}

impl Default for ServeOptions {
    /// Four workers, 1024-query shards, range rule off, padded layout
    /// on, cache front off.
    fn default() -> Self {
        ServeOptions {
            threads: 4,
            max_shard: 1024,
            active_attrs: None,
            layout: true,
            cache: CachePolicy::OFF,
        }
    }
}

/// Where sketch-refused queries go: the exact engine plus the predicate
/// and aggregate it should evaluate (the same triple that labeled the
/// training workload).
pub struct ExactBackend<'a> {
    /// The exact oracle over the *current* data.
    pub engine: &'a QueryEngine<'a>,
    /// Predicate the served query vectors parameterize.
    pub predicate: &'a dyn PredicateFn,
    /// Aggregate function being served.
    pub aggregate: Aggregate,
}

/// Per-batch routing tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered by the sketch's forward pass.
    pub sketch: usize,
    /// Queries sent to the exact engine by the range rule.
    pub exact_small_range: usize,
    /// Queries sent to the exact engine by the complexity rule.
    pub exact_hard_leaf: usize,
    /// Queries answered from the server's answer cache
    /// ([`ServeOptions::cache`]); they were neither routed nor
    /// computed.
    pub cache_hits: usize,
    /// Cache lookups that fell through to the compute path (0 with
    /// caching off). These queries are also tallied under `sketch` /
    /// `exact_*` by where they were then computed.
    pub cache_misses: usize,
    /// Queries collapsed onto a bitwise-identical query in the same
    /// batch; they inherit their representative's answer bits.
    pub dedup_hits: usize,
}

impl ServeStats {
    /// Total queries answered (computed, cached, or deduplicated).
    pub fn total(&self) -> usize {
        self.sketch
            + self.exact_small_range
            + self.exact_hard_leaf
            + self.cache_hits
            + self.dedup_hits
    }

    fn absorb(&mut self, other: ServeStats) {
        self.sketch += other.sketch;
        self.exact_small_range += other.exact_small_range;
        self.exact_hard_leaf += other.exact_hard_leaf;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.dedup_hits += other.dedup_hits;
    }
}

/// A loaded sketch behind a concurrent, batch-oriented serving front.
pub struct SketchServer<'a> {
    router: DqdRouter,
    fallback: Option<ExactBackend<'a>>,
    opts: ServeOptions,
    /// Built once at construction when `opts.layout` is on; workers
    /// share it read-only.
    layout: Option<SketchLayout>,
    /// Built once at construction when `opts.cache` retains answers;
    /// private to this server instance, keyed at generation 0.
    cache: Option<AnswerCache>,
}

impl<'a> SketchServer<'a> {
    /// Serve a routed sketch with no exact backend. The router's policy
    /// is ignored (there is nowhere to fall back to): every query goes
    /// to the sketch.
    pub fn new(router: DqdRouter, opts: ServeOptions) -> SketchServer<'static> {
        let layout = opts.layout.then(|| router.sketch().serving_layout());
        SketchServer {
            router,
            fallback: None,
            opts,
            layout,
            cache: Self::build_cache(&opts),
        }
    }

    /// Serve with DQD routing live: queries the policy refuses are
    /// answered by `fallback` instead of the sketch.
    pub fn with_fallback(
        router: DqdRouter,
        fallback: ExactBackend<'a>,
        opts: ServeOptions,
    ) -> SketchServer<'a> {
        let layout = opts.layout.then(|| router.sketch().serving_layout());
        SketchServer {
            router,
            fallback: Some(fallback),
            opts,
            layout,
            cache: Self::build_cache(&opts),
        }
    }

    fn build_cache(opts: &ServeOptions) -> Option<AnswerCache> {
        opts.cache
            .caching()
            .then(|| AnswerCache::new(opts.cache.capacity_bytes, opts.cache.stripes))
    }

    /// Counters and occupancy of the embedded answer cache, when
    /// [`ServeOptions::cache`] retains answers.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(AnswerCache::stats)
    }

    /// The aggregate byte folded into cache keys: the fallback's
    /// aggregate when routing is live, else the untyped tag.
    fn cache_tag(&self) -> u8 {
        self.fallback
            .as_ref()
            .map_or(0, |fb| aggregate_tag(fb.aggregate))
    }

    /// The served sketch.
    pub fn sketch(&self) -> &NeuroSketch {
        self.router.sketch()
    }

    /// The wrapped router.
    pub fn router(&self) -> &DqdRouter {
        &self.router
    }

    /// The active options.
    pub fn options(&self) -> ServeOptions {
        self.opts
    }

    /// Answer one query through the same routing as a batch of one.
    pub fn answer(&self, q: &[f64]) -> f64 {
        self.answer_batch(std::slice::from_ref(&q.to_vec())).0[0]
    }

    /// Answer a batch of queries. Returns the answers in input order and
    /// the routing tally.
    ///
    /// The batch is split into up to `opts.threads` shards (each at most
    /// `opts.max_shard` queries) and served on the shared worker pool;
    /// each worker routes its shard, answers the sketch-routed queries
    /// with leaf-grouped GEMMs, and the rest through the exact backend.
    pub fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, ServeStats) {
        if queries.is_empty() {
            return (Vec::new(), ServeStats::default());
        }
        if self.opts.cache.enabled() {
            return self.answer_batch_fronted(queries);
        }
        self.answer_batch_direct(queries)
    }

    /// The plain path: shard the batch across workers, no cache front.
    fn answer_batch_direct(&self, queries: &[Vec<f64>]) -> (Vec<f64>, ServeStats) {
        let threads = self.opts.threads.max(1);
        let shard = queries
            .len()
            .div_ceil(threads)
            .clamp(1, self.opts.max_shard.max(1));
        let shards: Vec<&[Vec<f64>]> = queries.chunks(shard).collect();
        let parts = par::par_map_init(
            &shards,
            threads,
            || (BatchScratch::default(), Vec::new()),
            |(scratch, exact_scratch), _, chunk| self.serve_shard(scratch, exact_scratch, chunk),
        );
        let mut answers = Vec::with_capacity(queries.len());
        let mut stats = ServeStats::default();
        for (part, part_stats) in parts {
            answers.extend(part);
            stats.absorb(part_stats);
        }
        (answers, stats)
    }

    /// The cache/dedup path: the shared front collapses duplicates and
    /// answers warm keys, and only the remaining distinct queries reach
    /// the parallel compute fan-out — by index into the original batch,
    /// so nothing is copied on the way in.
    fn answer_batch_fronted(&self, queries: &[Vec<f64>]) -> (Vec<f64>, ServeStats) {
        let front = self.cache.as_ref().map(|c| (c, self.cache_tag(), 0u64));
        let mut computed = ServeStats::default();
        let (answers, tally) = serve_cached(front, self.opts.cache.dedup, queries, |misses| {
            let (values, stats) = self.serve_subset(queries, misses);
            computed = stats;
            values
        });
        computed.cache_hits = tally.cache_hits;
        computed.cache_misses = tally.cache_misses;
        computed.dedup_hits = tally.dedup_hits;
        (answers, computed)
    }

    /// Answer the subset of `queries` selected by `idxs` (sorted input
    /// indices), returning values aligned with `idxs`. Same worker
    /// fan-out as the direct path, over index chunks instead of query
    /// chunks.
    fn serve_subset(&self, queries: &[Vec<f64>], idxs: &[usize]) -> (Vec<f64>, ServeStats) {
        let threads = self.opts.threads.max(1);
        let shard = idxs
            .len()
            .div_ceil(threads)
            .clamp(1, self.opts.max_shard.max(1));
        let chunks: Vec<&[usize]> = idxs.chunks(shard).collect();
        let parts = par::par_map_init(
            &chunks,
            threads,
            || (BatchScratch::default(), Vec::new(), Vec::new()),
            |(scratch, exact_scratch, out), _, chunk| {
                self.serve_idx_chunk(scratch, exact_scratch, out, queries, chunk)
            },
        );
        let mut values = Vec::with_capacity(idxs.len());
        let mut stats = ServeStats::default();
        for (part, part_stats) in parts {
            values.extend(part);
            stats.absorb(part_stats);
        }
        (values, stats)
    }

    /// Route and answer one index chunk with this worker's scratch
    /// state, compacting the answers back into chunk order.
    ///
    /// `out` is a worker-reused batch-length answer buffer: grown (and
    /// zeroed) at most once per worker rather than allocated per chunk,
    /// so a fronted all-miss batch does not pay O(batch × chunks)
    /// zeroing the direct path avoids. Stale values from a previous
    /// chunk are never observed — every index in `idxs` lands in
    /// `to_sketch` or `to_exact` and is written before the final
    /// compaction reads it.
    fn serve_idx_chunk(
        &self,
        scratch: &mut BatchScratch,
        exact_scratch: &mut Vec<f64>,
        out: &mut Vec<f64>,
        queries: &[Vec<f64>],
        idxs: &[usize],
    ) -> (Vec<f64>, ServeStats) {
        if out.len() < queries.len() {
            out.resize(queries.len(), 0.0);
        }
        let mut stats = ServeStats::default();
        let mut to_sketch = Vec::with_capacity(idxs.len());
        let mut to_exact = Vec::new();
        match &self.fallback {
            None => to_sketch.extend(idxs.iter().copied()),
            Some(_) => {
                for &i in idxs {
                    let q = &queries[i];
                    let volume = self.opts.active_attrs.map(|k| range_volume(q, k));
                    match self.router.route(q, volume) {
                        Route::Sketch => to_sketch.push(i),
                        Route::ExactSmallRange => {
                            stats.exact_small_range += 1;
                            to_exact.push(i);
                        }
                        Route::ExactHardLeaf => {
                            stats.exact_hard_leaf += 1;
                            to_exact.push(i);
                        }
                    }
                }
            }
        }
        stats.sketch += to_sketch.len();
        match &self.layout {
            Some(l) => self
                .sketch()
                .answer_subset_with_layout(l, scratch, queries, &to_sketch, out),
            None => self
                .sketch()
                .answer_subset_with(scratch, queries, &to_sketch, out),
        }
        if let Some(fb) = &self.fallback {
            for &i in &to_exact {
                out[i] =
                    fb.engine
                        .answer_with(exact_scratch, fb.predicate, fb.aggregate, &queries[i]);
            }
        }
        (idxs.iter().map(|&i| out[i]).collect(), stats)
    }

    /// Route and answer one shard with this worker's scratch state.
    fn serve_shard(
        &self,
        scratch: &mut BatchScratch,
        exact_scratch: &mut Vec<f64>,
        chunk: &[Vec<f64>],
    ) -> (Vec<f64>, ServeStats) {
        let mut out = vec![0.0; chunk.len()];
        let mut stats = ServeStats::default();
        let mut to_sketch = Vec::with_capacity(chunk.len());
        let mut to_exact = Vec::new();
        match &self.fallback {
            // No fallback: routing is moot, everything goes to the sketch.
            None => to_sketch.extend(0..chunk.len()),
            Some(_) => {
                for (i, q) in chunk.iter().enumerate() {
                    let volume = self.opts.active_attrs.map(|k| range_volume(q, k));
                    match self.router.route(q, volume) {
                        Route::Sketch => to_sketch.push(i),
                        Route::ExactSmallRange => {
                            stats.exact_small_range += 1;
                            to_exact.push(i);
                        }
                        Route::ExactHardLeaf => {
                            stats.exact_hard_leaf += 1;
                            to_exact.push(i);
                        }
                    }
                }
            }
        }
        stats.sketch += to_sketch.len();
        match &self.layout {
            Some(l) => self
                .sketch()
                .answer_subset_with_layout(l, scratch, chunk, &to_sketch, &mut out),
            None => self
                .sketch()
                .answer_subset_with(scratch, chunk, &to_sketch, &mut out),
        }
        if let Some(fb) = &self.fallback {
            for &i in &to_exact {
                out[i] =
                    fb.engine
                        .answer_with(exact_scratch, fb.predicate, fb.aggregate, &chunk[i]);
            }
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RoutingPolicy;
    use crate::sketch::NeuroSketchConfig;
    use datagen::simple::uniform;
    use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

    fn served_setup() -> (datagen::Dataset, Workload, DqdRouter) {
        let data = uniform(2_000, 2, 0);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: 500,
            seed: 5,
        })
        .unwrap();
        let engine = QueryEngine::new(&data, 1);
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 2;
        cfg.target_partitions = 4;
        cfg.train.epochs = 15;
        let (sketch, report) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        let router = DqdRouter::new(sketch, report.leaf_aqcs, RoutingPolicy::default());
        (data, wl, router)
    }

    #[test]
    fn batch_serving_is_bitwise_identical_to_single_query_loop() {
        let (_data, wl, router) = served_setup();
        let expected: Vec<f64> = wl
            .queries
            .iter()
            .map(|q| router.sketch().answer(q))
            .collect();
        // Both serving paths — the plain per-batch-transpose one and the
        // pre-transposed padded layout — must be bitwise the scalar loop.
        for layout in [false, true] {
            for threads in [1, 2, 4] {
                let (_, _, router) = {
                    // Rebuild per thread count: SketchServer consumes the router.
                    let (d, w, r) = served_setup();
                    (d, w, r)
                };
                let server = SketchServer::new(
                    router,
                    ServeOptions {
                        threads,
                        max_shard: 64,
                        active_attrs: None,
                        layout,
                        cache: CachePolicy::OFF,
                    },
                );
                let (answers, stats) = server.answer_batch(&wl.queries);
                assert_eq!(answers, expected, "threads={threads} layout={layout}");
                assert_eq!(stats.sketch, wl.queries.len());
                assert_eq!(stats.total(), wl.queries.len());
            }
        }
    }

    #[test]
    fn routing_splits_between_sketch_and_exact() {
        let (data, wl, router) = served_setup();
        let engine = QueryEngine::new(&data, 1);
        // Reconstruct with a restrictive range rule.
        let policy = RoutingPolicy {
            min_range_volume: 0.3,
            max_leaf_aqc: f64::INFINITY,
        };
        let router = DqdRouter::new(router.sketch().clone(), router.leaf_aqcs().to_vec(), policy);
        let reference = router.clone_reference_answers(&engine, &wl);
        let server = SketchServer::with_fallback(
            router,
            ExactBackend {
                engine: &engine,
                predicate: &wl.predicate,
                aggregate: Aggregate::Count,
            },
            ServeOptions {
                threads: 2,
                max_shard: 128,
                active_attrs: Some(1),
                layout: true,
                cache: CachePolicy::OFF,
            },
        );
        let (answers, stats) = server.answer_batch(&wl.queries);
        assert_eq!(answers, reference.0);
        assert_eq!(stats.exact_small_range, reference.1);
        assert!(stats.exact_small_range > 0, "range rule never fired");
        assert!(stats.sketch > 0, "sketch never answered");
        assert_eq!(stats.total(), wl.queries.len());
    }

    impl DqdRouter {
        /// Test helper: the per-query reference answers and the count of
        /// range-rule fallbacks, via the router's own scalar path.
        fn clone_reference_answers(
            &self,
            engine: &QueryEngine<'_>,
            wl: &Workload,
        ) -> (Vec<f64>, usize) {
            let mut small = 0;
            let answers = wl
                .queries
                .iter()
                .map(|q| {
                    let vol = range_volume(q, 1);
                    let (v, route) = self.answer(q, Some(vol), |q| {
                        engine.answer(&wl.predicate, Aggregate::Count, q)
                    });
                    if route == Route::ExactSmallRange {
                        small += 1;
                    }
                    v
                })
                .collect();
            (answers, small)
        }
    }

    #[test]
    fn empty_batch_and_single_query() {
        let (_data, wl, router) = served_setup();
        let expect = router.sketch().answer(&wl.queries[0]);
        let server = SketchServer::new(router, ServeOptions::default());
        let (answers, stats) = server.answer_batch(&[]);
        assert!(answers.is_empty());
        assert_eq!(stats.total(), 0);
        assert_eq!(server.answer(&wl.queries[0]), expect);
    }

    #[test]
    fn loaded_artifact_serves_identically_to_quantized_source() {
        let (_data, wl, router) = served_setup();
        let artifact = crate::persist::decode(crate::persist::encode_router(&router)).unwrap();
        let quantized = router.sketch().quantized();
        let server = SketchServer::new(artifact.into_router(), ServeOptions::default());
        let (answers, _) = server.answer_batch(&wl.queries);
        for (q, a) in wl.queries.iter().zip(&answers) {
            assert_eq!(*a, quantized.answer(q));
        }
    }
}
