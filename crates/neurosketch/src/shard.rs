//! Sharded sketch scale-out: scatter/gather build and serve over
//! per-shard sketches.
//!
//! The kd-tree inside every [`NeuroSketch`] partitions the *query
//! space*; this module adds the second partitioning the ROADMAP's
//! scale-out story needs — over the *data*. A [`ShardPlan`] splits the
//! table's rows into `K` shards, [`build_sharded`] trains an
//! independent sketch per shard on the **same** workload (fanned out on
//! the [`par`] pool), and a [`ShardedServer`] answers query batches by
//! scattering every batch to all shards and gathering per-shard answers
//! into one.
//!
//! The gather step is exact because it merges **sufficient statistics**,
//! not finished answers: each shard predicts the components of
//! `(n, Σ, Σ²)` its aggregate needs ([`query::aggregate::MomentKind`]),
//! and moments of a disjoint row union are the component-wise sums of
//! the parts' moments ([`query::aggregate::Moments::merge`]). COUNT and
//! SUM simply add across shards; AVG recombines as `ΣΣᵢ / Σnᵢ` and STD
//! from all three — so the gathered answer is an *exact* composition of
//! the per-shard answers (bitwise for COUNT, ulp-exact for the
//! SUM/AVG/STD recombination). MEDIAN is not a function of moments and
//! is rejected at build time.
//!
//! What sharding buys, per the paper's constant-cost story: per-shard
//! artifacts have bounded size regardless of total data volume, shards
//! build in parallel (each labels only its own rows), and serve-side
//! throughput scales by adding shard servers. A whole deployment
//! persists as one loadable unit via the NSKM manifest
//! ([`crate::persist::save_sharded`] / [`crate::persist::load_sharded`]);
//! [`crate::serve`] documents the single-artifact serving engine each
//! shard reuses, and `docs/scaling.md` is the operator's handbook.
//!
//! ```
//! use datagen::Dataset;
//! use neurosketch::shard::{build_sharded, ShardPlan, ShardedServer};
//! use neurosketch::serve::ServeOptions;
//! use neurosketch::NeuroSketchConfig;
//! use query::aggregate::{Aggregate, Moments};
//! use query::exec::QueryEngine;
//! use query::predicate::Range;
//!
//! // A small table and a 1-active-attribute COUNT workload.
//! let rows: Vec<Vec<f64>> = (0..400)
//!     .map(|i| vec![(i as f64 * 0.377) % 1.0, (i as f64 * 0.713) % 1.0])
//!     .collect();
//! let data = Dataset::from_rows(vec!["a".into(), "m".into()], &rows).unwrap();
//! let pred = Range::new(vec![0], 2).unwrap();
//! let queries: Vec<Vec<f64>> = (0..80)
//!     .map(|i| vec![(i as f64 * 0.549) % 0.8, 0.2 + (i as f64 * 0.211) % 0.2])
//!     .collect();
//!
//! // Plan → parallel per-shard build → scatter/gather serving.
//! let plan = ShardPlan::RoundRobin { shards: 2 };
//! let mut cfg = NeuroSketchConfig::small();
//! cfg.train.epochs = 10;
//! let (sharded, report) =
//!     build_sharded(&data, 1, &plan, &pred, Aggregate::Count, &queries, &cfg).unwrap();
//! assert_eq!(report.shard_rows, vec![200, 200]);
//!
//! let server = ShardedServer::new(sharded, ServeOptions::default());
//! let (answers, stats) = server.answer_batch(&queries);
//! assert_eq!(answers.len(), queries.len());
//! assert_eq!(stats.shard_count, 2);
//!
//! // The gathered answer IS the sum of the per-shard sketch answers
//! // (COUNT adds across a disjoint row split) ...
//! let manual: f64 = server
//!     .sketch()
//!     .shards()
//!     .iter()
//!     .map(|s| s.model(query::aggregate::MomentKind::Count).unwrap().answer(&queries[0]))
//!     .sum();
//! assert_eq!(answers[0], manual);
//!
//! // ... and tracks the exact whole-table answer about as well as the
//! // per-shard sketches track their shards.
//! let engine = QueryEngine::new(&data, 1);
//! let exact = engine.answer(&pred, Aggregate::Count, &queries[0]);
//! assert!((answers[0] - exact).abs() < 0.25 * data.rows() as f64);
//! ```

use crate::cache::{aggregate_tag, serve_cached, AnswerCache, CacheStats};
use crate::serve::ServeOptions;
use crate::sketch::{BatchScratch, NeuroSketch, NeuroSketchConfig, SketchLayout};
use crate::SketchError;
use datagen::Dataset;
use nn::QuantMode;
use query::aggregate::{Aggregate, MomentKind, Moments};
use query::exec::QueryEngine;
use query::predicate::PredicateFn;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How the table's rows are assigned to shards. Serializable (JSON via
/// serde, binary via the NSKM manifest in [`crate::persist`]) so a
/// deployment can re-derive its row-to-shard mapping.
///
/// Row-count stability differs by variant: `RoundRobin` and `Hash`
/// assign each row index independently of the total, so appending rows
/// never moves existing ones; `Blocks` assignment depends on the total
/// row count (`⌊i·K/n⌋`), so growing the table reassigns rows near
/// every block boundary — rebuild, don't ingest, under a `Blocks` plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardPlan {
    /// Row `i` goes to shard `i mod shards` — perfectly balanced,
    /// interleaved; the default for i.i.d. rows.
    RoundRobin {
        /// Number of shards `K`.
        shards: usize,
    },
    /// Contiguous row ranges (shard `⌊i·K/n⌋`) — preserves row locality,
    /// e.g. time-ordered ingestion where each shard owns an era.
    Blocks {
        /// Number of shards `K`.
        shards: usize,
    },
    /// Row `i` goes to `splitmix64(seed ⊕ i) mod shards` — stateless
    /// pseudo-random placement, balanced in expectation.
    Hash {
        /// Number of shards `K`.
        shards: usize,
        /// Hash seed; two plans with different seeds place rows
        /// differently.
        seed: u64,
    },
}

/// The splitmix64 finalizer, used by [`ShardPlan::Hash`] placement (and
/// crate-internally by the fault-plan generator in [`crate::cluster`]).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ShardPlan {
    /// Number of shards this plan produces.
    pub fn shards(&self) -> usize {
        match *self {
            ShardPlan::RoundRobin { shards }
            | ShardPlan::Blocks { shards }
            | ShardPlan::Hash { shards, .. } => shards,
        }
    }

    /// Shard index of row `row` in a table of `rows` rows.
    ///
    /// # Panics
    /// Panics if `row >= rows` or the plan has zero shards; validate
    /// with [`ShardPlan::validate`] first.
    pub fn assign(&self, row: usize, rows: usize) -> usize {
        assert!(row < rows, "row {row} out of range for {rows} rows");
        match *self {
            ShardPlan::RoundRobin { shards } => row % shards,
            ShardPlan::Blocks { shards } => row * shards / rows,
            ShardPlan::Hash { shards, seed } => {
                (splitmix64(seed ^ row as u64) % shards as u64) as usize
            }
        }
    }

    /// Check the plan against a table size: at least one shard, and no
    /// more shards than rows (an empty shard would train a sketch of a
    /// constant-zero function — almost certainly a configuration error).
    pub fn validate(&self, rows: usize) -> Result<(), SketchError> {
        let k = self.shards();
        if k == 0 {
            return Err(SketchError::BadConfig(
                "shard plan must have at least one shard".into(),
            ));
        }
        if k > rows {
            return Err(SketchError::BadConfig(format!(
                "{k} shards for {rows} rows: every shard needs data"
            )));
        }
        Ok(())
    }

    /// Whether appending rows to the table leaves every *existing* row's
    /// shard assignment unchanged. `RoundRobin` and `Hash` place each
    /// row index independently of the total, so they are row-stable;
    /// `Blocks` assignment (`⌊i·K/n⌋`) depends on the total row count,
    /// so appends reshuffle rows near every block boundary. Partial
    /// refresh ([`crate::maintenance`]) requires a row-stable plan —
    /// under `Blocks`, only a full rebuild is sound after ingestion.
    pub fn row_stable(&self) -> bool {
        !matches!(self, ShardPlan::Blocks { .. })
    }

    /// Refine a round-robin plan in place: `K` shards become
    /// `K × factor`, and every new shard's rows are a **subset** of one
    /// old shard's rows — new shard `j` (under `K × factor`) owns
    /// exactly the rows of old shard `j mod K` with
    /// `i mod (K × factor) == j`, because
    /// `(i mod K·f) mod K == i mod K`. That row-stability is what lets
    /// [`crate::cluster::Cluster::rebalance`] split serving topology
    /// without retraining a single model: each old shard's sketch keeps
    /// answering for the union of its children until a child is
    /// materialized.
    ///
    /// Only `RoundRobin` refines this way: `Blocks` boundaries move with
    /// the shard count, and `Hash` placement under `K × factor` shards
    /// is unrelated to placement under `K` — both are typed refusals.
    /// `factor` 0 is a typed refusal; `factor` 1 is the identity.
    pub fn refine(&self, factor: usize) -> Result<ShardPlan, SketchError> {
        if factor == 0 {
            return Err(SketchError::BadConfig(
                "refinement factor must be at least 1".into(),
            ));
        }
        match *self {
            ShardPlan::RoundRobin { shards } => {
                let refined = shards.checked_mul(factor).ok_or_else(|| {
                    SketchError::BadConfig(format!(
                        "{shards} shards × factor {factor} overflows the shard count"
                    ))
                })?;
                Ok(ShardPlan::RoundRobin { shards: refined })
            }
            other => Err(SketchError::BadConfig(format!(
                "{other:?} does not refine row-stably: only round-robin plans guarantee every \
                 refined shard's rows are a subset of one coarse shard's rows"
            ))),
        }
    }

    /// Materialize the per-shard row-index assignment, shard by shard.
    /// Within a shard, rows keep their original order.
    pub fn assignment(&self, rows: usize) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.shards()];
        for row in 0..rows {
            out[self.assign(row, rows)].push(row);
        }
        out
    }

    /// Split a dataset into the plan's per-shard tables.
    pub fn split(&self, data: &Dataset) -> Vec<Dataset> {
        self.assignment(data.rows())
            .iter()
            .map(|rows| data.select_rows(rows))
            .collect()
    }
}

/// One data shard's trained models: up to one sketch per moment
/// component ([`MomentKind`]), each predicting that component of the
/// shard-local `(n, Σ, Σ²)` for a query. Which slots are populated is
/// decided by the deployment's aggregate
/// ([`Aggregate::required_moments`]).
#[derive(Debug, Clone)]
pub struct ShardSketch {
    models: [Option<NeuroSketch>; 3],
}

impl ShardSketch {
    /// Assemble from per-component models (crate-internal: used by the
    /// builder and the NSKM loader after validation).
    pub(crate) fn from_models(models: [Option<NeuroSketch>; 3]) -> ShardSketch {
        ShardSketch { models }
    }

    /// The model predicting one moment component, if this deployment
    /// trains it.
    pub fn model(&self, kind: MomentKind) -> Option<&NeuroSketch> {
        self.models[kind.slot()].as_ref()
    }

    /// The trained moment components, in `(n, Σ, Σ²)` slot order.
    pub fn kinds(&self) -> impl Iterator<Item = MomentKind> + '_ {
        MomentKind::ALL
            .into_iter()
            .filter(|k| self.models[k.slot()].is_some())
    }

    /// Predict this shard's moments for every query in the batch.
    /// Components without a model stay 0 (their aggregate never reads
    /// them). Uses the batched leaf-grouped GEMM path per component.
    pub fn moments_batch_with(
        &self,
        scratch: &mut BatchScratch,
        queries: &[Vec<f64>],
    ) -> Vec<Moments> {
        let mut out = vec![Moments::ZERO; queries.len()];
        for kind in MomentKind::ALL {
            if let Some(model) = &self.models[kind.slot()] {
                let component = model.answer_batch_with(scratch, queries);
                for (m, v) in out.iter_mut().zip(component) {
                    m.set_component(kind, v);
                }
            }
        }
        out
    }

    /// Every parameter of every component model rounded through `f32` —
    /// what the per-shard NSK2 artifacts store. See
    /// [`NeuroSketch::quantized`].
    pub fn quantized(&self) -> ShardSketch {
        self.quantized_to(QuantMode::F32)
    }

    /// Every component model quantized through `mode` — the in-memory
    /// equivalent of saving this shard's artifacts with that
    /// [`QuantMode`] and loading them back. See
    /// [`NeuroSketch::quantized_to`].
    pub fn quantized_to(&self, mode: QuantMode) -> ShardSketch {
        ShardSketch {
            models: [
                self.models[0].as_ref().map(|m| m.quantized_to(mode)),
                self.models[1].as_ref().map(|m| m.quantized_to(mode)),
                self.models[2].as_ref().map(|m| m.quantized_to(mode)),
            ],
        }
    }

    /// Prebuilt serving layouts for this shard's component models
    /// (see [`NeuroSketch::serving_layout`]), for
    /// [`ShardSketch::moments_batch_with_layout`]. Build once per
    /// deployed shard; rebuild after any model change.
    pub fn serving_layout(&self) -> ShardLayout {
        ShardLayout {
            layouts: [
                self.models[0].as_ref().map(NeuroSketch::serving_layout),
                self.models[1].as_ref().map(NeuroSketch::serving_layout),
                self.models[2].as_ref().map(NeuroSketch::serving_layout),
            ],
        }
    }

    /// [`ShardSketch::moments_batch_with`] through prebuilt
    /// [`ShardLayout`]s: each component's forward passes take the
    /// pre-transposed, block-padded GEMM fast path. Predictions are
    /// **bitwise identical** to the plain path.
    pub fn moments_batch_with_layout(
        &self,
        layout: &ShardLayout,
        scratch: &mut BatchScratch,
        queries: &[Vec<f64>],
    ) -> Vec<Moments> {
        let mut out = vec![Moments::ZERO; queries.len()];
        for kind in MomentKind::ALL {
            if let Some(model) = &self.models[kind.slot()] {
                let l = layout.layouts[kind.slot()]
                    .as_ref()
                    .expect("layout built from a shard with the same components");
                let component = model.answer_batch_with_layout(l, scratch, queries);
                for (m, v) in out.iter_mut().zip(component) {
                    m.set_component(kind, v);
                }
            }
        }
        out
    }

    /// Total trainable parameters across this shard's component models.
    pub fn param_count(&self) -> usize {
        self.models
            .iter()
            .flatten()
            .map(NeuroSketch::param_count)
            .sum()
    }

    /// Exact on-disk bytes of this shard's NSK2 artifacts
    /// ([`crate::persist::encoded_len`] per component model).
    pub fn artifact_bytes(&self) -> usize {
        self.models
            .iter()
            .flatten()
            .map(crate::persist::encoded_len)
            .sum()
    }
}

/// Prebuilt serving layouts for one shard's component models, in
/// `(n, Σ, Σ²)` slot order — the sharded analog of [`SketchLayout`].
/// Derived, in-memory-only state: never persisted.
#[derive(Debug, Clone)]
pub struct ShardLayout {
    layouts: [Option<SketchLayout>; 3],
}

impl ShardLayout {
    /// Approximate heap footprint of the padded weight copies, in bytes.
    pub fn padded_bytes(&self) -> usize {
        self.layouts
            .iter()
            .flatten()
            .map(SketchLayout::padded_bytes)
            .sum()
    }
}

/// A complete sharded deployment: the row plan, the aggregate it serves,
/// and one [`ShardSketch`] per shard. Build with [`build_sharded`],
/// persist with [`crate::persist::save_sharded`], serve with
/// [`ShardedServer`].
#[derive(Debug, Clone)]
pub struct ShardedSketch {
    plan: ShardPlan,
    aggregate: Aggregate,
    shards: Vec<ShardSketch>,
}

impl ShardedSketch {
    /// Assemble from parts (crate-internal: the builder and the NSKM
    /// loader validate the invariants — one entry per plan shard, the
    /// aggregate's required components present on every shard).
    pub(crate) fn from_parts(
        plan: ShardPlan,
        aggregate: Aggregate,
        shards: Vec<ShardSketch>,
    ) -> ShardedSketch {
        debug_assert_eq!(plan.shards(), shards.len());
        ShardedSketch {
            plan,
            aggregate,
            shards,
        }
    }

    /// The row-assignment plan.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// The aggregate this deployment serves.
    pub fn aggregate(&self) -> Aggregate {
        self.aggregate
    }

    /// The per-shard sketches, in shard order.
    pub fn shards(&self) -> &[ShardSketch] {
        &self.shards
    }

    /// Number of data shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Swap in a rebuilt shard (crate-internal: the partial-refresh path
    /// in [`crate::maintenance`] retrains stale shards in place; the
    /// caller guarantees the replacement was trained for the same
    /// aggregate's components).
    pub(crate) fn replace_shard(&mut self, idx: usize, shard: ShardSketch) {
        self.shards[idx] = shard;
    }

    /// Finish one set of (possibly predicted) moments into this
    /// deployment's aggregate, with the near-empty guard
    /// [`ShardedSketch::gather`] applies: AVG and STD divide by the
    /// count, which for *predicted* moments on an empty-selectivity
    /// query is model noise near zero, so a count below half a row takes
    /// the empty-range convention (`0.0`) instead of amplifying the
    /// noise into an arbitrary ratio.
    pub fn finish_guarded(&self, total: Moments) -> f64 {
        finish_guarded(self.aggregate, total)
    }

    /// Gather a query's answer from per-shard moments: merge in shard
    /// order, then finish once ([`ShardedSketch::finish_guarded`]). The
    /// merge is component-wise f64 addition, so the result is an exact
    /// composition of the shard predictions.
    pub fn gather(&self, per_shard: impl Iterator<Item = Moments>) -> f64 {
        self.finish_guarded(per_shard.fold(Moments::ZERO, Moments::merge))
    }

    /// Answer one query through the full scatter/gather path (a batch of
    /// one; see [`ShardedServer`] for the batched, parallel front).
    pub fn answer(&self, q: &[f64]) -> f64 {
        let mut scratch = BatchScratch::default();
        let query = [q.to_vec()];
        self.gather(
            self.shards
                .iter()
                .map(|s| s.moments_batch_with(&mut scratch, &query)[0]),
        )
    }

    /// The deployment with every model quantized through `f32` — what a
    /// save/load round trip through the NSKM manifest yields. See
    /// [`NeuroSketch::quantized`].
    pub fn quantized(&self) -> ShardedSketch {
        self.quantized_to(QuantMode::F32)
    }

    /// The deployment with every model quantized through `mode` — what
    /// saving the manifest with that [`QuantMode`] and loading it back
    /// yields. See [`NeuroSketch::quantized_to`].
    pub fn quantized_to(&self, mode: QuantMode) -> ShardedSketch {
        ShardedSketch {
            plan: self.plan,
            aggregate: self.aggregate,
            shards: self.shards.iter().map(|s| s.quantized_to(mode)).collect(),
        }
    }

    /// Total trainable parameters across all shards and components.
    pub fn param_count(&self) -> usize {
        self.shards.iter().map(ShardSketch::param_count).sum()
    }

    /// Exact total on-disk bytes of the per-shard NSK2 artifacts
    /// (manifest overhead excluded — a few dozen bytes per shard).
    pub fn artifact_bytes(&self) -> usize {
        self.shards.iter().map(ShardSketch::artifact_bytes).sum()
    }
}

/// Finish one set of (possibly predicted) moments into `agg` with the
/// near-empty guard every gather path in this crate applies: AVG and
/// STD divide by the count, which for *predicted* moments on an
/// empty-selectivity query is model noise near zero, so a count below
/// half a row takes the empty-range convention (`0.0`) instead of
/// amplifying the noise into an arbitrary ratio. Shared by
/// [`ShardedSketch::finish_guarded`] and the replicated gather in
/// [`crate::cluster`], so a cluster's answers are bitwise the
/// single-box scatter/gather answers whenever the same moments are
/// merged in the same order.
///
/// # Panics
/// Panics on an aggregate that is not moment-composable (MEDIAN);
/// every constructor in this crate rejects those up front.
pub fn finish_guarded(agg: Aggregate, total: Moments) -> f64 {
    if matches!(agg, Aggregate::Avg | Aggregate::Std) && total.n < 0.5 {
        return 0.0;
    }
    total
        .finish(agg)
        .expect("sharded aggregates are moment-composable by construction")
}

/// Timings and diagnostics from a sharded build.
#[derive(Debug, Clone)]
pub struct ShardedBuildReport {
    /// Rows each shard owns, in shard order.
    pub shard_rows: Vec<usize>,
    /// Moment-labeling wall-clock, summed across shards (shards label
    /// concurrently, so the elapsed wall-clock is lower).
    pub labeling: Duration,
    /// Training wall-clock, summed across shards.
    pub training: Duration,
    /// Total component models trained (`shards × required components`).
    pub models_trained: usize,
}

/// Build a sharded deployment: split `data`'s rows by `plan`, then — in
/// parallel across shards on the [`par`] pool — label the workload with
/// each shard's exact per-shard moments
/// ([`QueryEngine::label_moments_batch`]) and train one [`NeuroSketch`]
/// per required moment component.
///
/// Every shard trains on the **same** `queries`; only the labels differ
/// (each shard's engine sees only its own rows). `cfg.threads` bounds
/// the cross-shard fan-out; within a shard the build runs
/// single-threaded so the pool is not oversubscribed. Per-(shard,
/// component) seeds derive from `cfg.seed`, so builds are deterministic
/// at any thread count.
///
/// Errors: MEDIAN (not moment-composable), a plan with zero shards or
/// more shards than rows, and every error [`NeuroSketch::build_from_labeled`]
/// itself produces.
pub fn build_sharded(
    data: &Dataset,
    measure: usize,
    plan: &ShardPlan,
    predicate: &dyn PredicateFn,
    agg: Aggregate,
    queries: &[Vec<f64>],
    cfg: &NeuroSketchConfig,
) -> Result<(ShardedSketch, ShardedBuildReport), SketchError> {
    let Some(kinds) = agg.required_moments() else {
        return Err(SketchError::BadConfig(format!(
            "{} is not a function of (n, Σ, Σ²) and cannot be sharded by moment composition",
            agg.name()
        )));
    };
    plan.validate(data.rows())?;
    let shard_data = plan.split(data);
    let shard_rows: Vec<usize> = shard_data.iter().map(Dataset::rows).collect();
    // validate() is a cheap pigeonhole pre-check; only the materialized
    // assignment can prove every shard non-empty (a Hash plan over a
    // small table may leave one dry even with K ≤ rows).
    if let Some(empty) = shard_rows.iter().position(|&r| r == 0) {
        return Err(SketchError::BadConfig(format!(
            "{plan:?} leaves shard {empty} with no rows: every shard needs data"
        )));
    }

    // One task per shard; the inner builds run single-threaded so K
    // shards use K workers, not K × cfg.threads.
    let built: Vec<Result<(ShardSketch, Duration, Duration), SketchError>> =
        par::par_map(&shard_data, cfg.threads, |shard_idx, shard| {
            build_shard_sketch(shard_idx, shard, measure, predicate, kinds, queries, cfg)
        });

    let mut shards = Vec::with_capacity(built.len());
    let mut labeling = Duration::ZERO;
    let mut training = Duration::ZERO;
    for b in built {
        let (shard, label_t, train_t) = b?;
        labeling += label_t;
        training += train_t;
        shards.push(shard);
    }
    let models_trained = shards.len() * kinds.len();
    Ok((
        ShardedSketch::from_parts(*plan, agg, shards),
        ShardedBuildReport {
            shard_rows,
            labeling,
            training,
            models_trained,
        },
    ))
}

/// Build one shard's per-component sketches against its own rows — the
/// unit of work shared by [`build_sharded`] and the partial-refresh path
/// in [`crate::maintenance`]. Per-(shard, component) seeds derive from
/// (`cfg.seed`, `shard_idx`, slot) via splitmix64, and the inner build
/// runs single-threaded, so rebuilding shard `i` alone yields **bitwise**
/// the models a full [`build_sharded`] over the same data would give
/// that shard. Returns the sketch plus (labeling, training) wall-clock.
pub(crate) fn build_shard_sketch(
    shard_idx: usize,
    shard: &Dataset,
    measure: usize,
    predicate: &dyn PredicateFn,
    kinds: &[MomentKind],
    queries: &[Vec<f64>],
    cfg: &NeuroSketchConfig,
) -> Result<(ShardSketch, Duration, Duration), SketchError> {
    let engine = QueryEngine::new(shard, measure);
    let t0 = Instant::now();
    let moments = engine.label_moments_batch(predicate, queries, 1);
    let labeling = t0.elapsed();
    let t1 = Instant::now();
    let mut models: [Option<NeuroSketch>; 3] = [None, None, None];
    for kind in kinds {
        let labels: Vec<f64> = moments.iter().map(|m| m.component(*kind)).collect();
        let mut component_cfg = cfg.clone();
        component_cfg.threads = 1;
        // Decorrelate initializations across (shard, component) pairs;
        // splitmix64 keeps the derivation stateless.
        component_cfg.seed = cfg
            .seed
            .wrapping_add(splitmix64((shard_idx * 3 + kind.slot()) as u64 + 1));
        let (sketch, _) = NeuroSketch::build_from_labeled(queries, &labels, &component_cfg)?;
        models[kind.slot()] = Some(sketch);
    }
    Ok((ShardSketch::from_models(models), labeling, t1.elapsed()))
}

/// Per-batch scatter/gather tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedServeStats {
    /// Queries answered.
    pub queries: usize,
    /// Data shards each query was scattered to.
    pub shard_count: usize,
    /// Batched GEMM model evaluations actually performed:
    /// `shards × required components × ⌈computed queries / max_shard⌉`
    /// (0 for an empty batch) — the capacity-accounting tally. With the
    /// cache front on, only queries that missed both the dedup map and
    /// the cache are computed.
    pub model_batches: usize,
    /// Queries answered from the server's answer cache
    /// ([`ServeOptions::cache`]) instead of being scattered.
    pub cache_hits: usize,
    /// Cache lookups that fell through to the scatter (0 with caching
    /// off).
    pub cache_misses: usize,
    /// Queries collapsed onto a bitwise-identical query in the same
    /// batch.
    pub dedup_hits: usize,
}

/// A sharded deployment behind a concurrent scatter/gather serving
/// front.
///
/// Unlike [`crate::serve::SketchServer`] — which *splits* a batch
/// because one sketch holds the whole answer — a data-sharded
/// deployment must send **every query to every shard** (any shard's
/// rows may match any query) and gather. The batch is scattered across
/// the [`par`] pool one task per shard; each worker predicts its
/// shard's moments with the batched leaf-grouped GEMM path and a
/// reusable per-worker [`BatchScratch`], then the gather merges moments
/// in shard order and finishes once per query. Answers are in input
/// order and independent of the thread count.
pub struct ShardedServer {
    sketch: ShardedSketch,
    opts: ServeOptions,
    /// One prebuilt layout per shard when `opts.layout` is on; empty
    /// otherwise. Workers share them read-only.
    layouts: Vec<ShardLayout>,
    /// Built once at construction when `opts.cache` retains answers;
    /// private to this server instance, keyed at generation 0 (a
    /// reloaded server — e.g. [`crate::deploy::LiveDeployment`]'s
    /// manifest reload path — starts cold, so stale hits are
    /// impossible).
    cache: Option<AnswerCache>,
}

impl ShardedServer {
    /// Serve a sharded deployment. `opts.threads` bounds the cross-shard
    /// fan-out and `opts.max_shard` the per-GEMM sub-batch;
    /// `opts.layout` serves through pre-transposed padded weight copies
    /// (built here, once per shard); `opts.active_attrs` is ignored
    /// (scatter/gather has no DQD routing — shard sketches answer
    /// everything).
    pub fn new(sketch: ShardedSketch, opts: ServeOptions) -> ShardedServer {
        let layouts = if opts.layout {
            sketch
                .shards()
                .iter()
                .map(ShardSketch::serving_layout)
                .collect()
        } else {
            Vec::new()
        };
        let cache = opts
            .cache
            .caching()
            .then(|| AnswerCache::new(opts.cache.capacity_bytes, opts.cache.stripes));
        ShardedServer {
            sketch,
            opts,
            layouts,
            cache,
        }
    }

    /// Counters and occupancy of the embedded answer cache, when
    /// [`ServeOptions::cache`] retains answers.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(AnswerCache::stats)
    }

    /// The served deployment.
    pub fn sketch(&self) -> &ShardedSketch {
        &self.sketch
    }

    /// The active options.
    pub fn options(&self) -> ServeOptions {
        self.opts
    }

    /// Answer one query through the same path as a batch of one.
    pub fn answer(&self, q: &[f64]) -> f64 {
        self.answer_batch(std::slice::from_ref(&q.to_vec())).0[0]
    }

    /// Answer a batch: scatter to all shards, gather exact moment
    /// compositions. Returns answers in input order plus the tally.
    /// With [`ServeOptions::cache`] on, the cache/dedup front runs
    /// first and only distinct, cold queries are scattered — answers
    /// are bitwise identical either way.
    pub fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, ShardedServeStats) {
        if !self.opts.cache.enabled() || queries.is_empty() {
            return self.answer_batch_direct(queries);
        }
        let front = self
            .cache
            .as_ref()
            .map(|c| (c, aggregate_tag(self.sketch.aggregate()), 0u64));
        let mut computed = ShardedServeStats::default();
        let (answers, tally) = serve_cached(front, self.opts.cache.dedup, queries, |misses| {
            let sub: Vec<Vec<f64>> = misses.iter().map(|&i| queries[i].clone()).collect();
            let (values, stats) = self.answer_batch_direct(&sub);
            computed = stats;
            values
        });
        let stats = ShardedServeStats {
            queries: queries.len(),
            shard_count: self.sketch.shard_count(),
            model_batches: computed.model_batches,
            cache_hits: tally.cache_hits,
            cache_misses: tally.cache_misses,
            dedup_hits: tally.dedup_hits,
        };
        (answers, stats)
    }

    fn answer_batch_direct(&self, queries: &[Vec<f64>]) -> (Vec<f64>, ShardedServeStats) {
        let (per_shard, stats) = self.scatter(queries);
        let answers = (0..queries.len())
            .map(|i| self.sketch.gather(per_shard.iter().map(|s| s[i])))
            .collect();
        (answers, stats)
    }

    /// The gathered `(n, Σ, Σ²)` prediction per query — the same scatter
    /// as [`ShardedServer::answer_batch`] with per-shard moments merged
    /// in shard order but not yet finished into the aggregate. This is
    /// the moment-level serving surface the [`crate::deploy::Deployment`]
    /// trait exposes; `finish_guarded` of each entry is exactly the
    /// corresponding `answer_batch` answer.
    /// With [`ServeOptions::cache`] deduplication on, identical
    /// queries are predicted once and their merged moments fanned back
    /// out (moments are never *cached* — the cache stores finished
    /// answers only).
    pub fn moments_batch(&self, queries: &[Vec<f64>]) -> (Vec<Moments>, ShardedServeStats) {
        if !self.opts.cache.dedup || queries.is_empty() {
            return self.moments_batch_direct(queries);
        }
        let hashes: Vec<u64> = queries
            .iter()
            .map(|q| crate::cache::key_hash(0, 0, q))
            .collect();
        let (rep, distinct) = crate::cache::dedup_reps(queries, &hashes);
        if distinct == queries.len() {
            return self.moments_batch_direct(queries);
        }
        let uniques: Vec<usize> = (0..queries.len())
            .filter(|&i| rep[i] as usize == i)
            .collect();
        let sub: Vec<Vec<f64>> = uniques.iter().map(|&i| queries[i].clone()).collect();
        let (values, computed) = self.moments_batch_direct(&sub);
        // Position of each representative's moments in `values`.
        let mut pos = vec![0u32; queries.len()];
        for (k, &i) in uniques.iter().enumerate() {
            pos[i] = k as u32;
        }
        let merged = (0..queries.len())
            .map(|i| values[pos[rep[i] as usize] as usize])
            .collect();
        let stats = ShardedServeStats {
            queries: queries.len(),
            shard_count: self.sketch.shard_count(),
            model_batches: computed.model_batches,
            cache_hits: 0,
            cache_misses: 0,
            dedup_hits: queries.len() - distinct,
        };
        (merged, stats)
    }

    fn moments_batch_direct(&self, queries: &[Vec<f64>]) -> (Vec<Moments>, ShardedServeStats) {
        let (per_shard, stats) = self.scatter(queries);
        let merged = (0..queries.len())
            .map(|i| {
                per_shard
                    .iter()
                    .map(|s| s[i])
                    .fold(Moments::ZERO, Moments::merge)
            })
            .collect();
        (merged, stats)
    }

    /// Scatter a batch to every shard on the worker pool; returns the
    /// per-shard moment predictions (outer index = shard) and the tally.
    fn scatter(&self, queries: &[Vec<f64>]) -> (Vec<Vec<Moments>>, ShardedServeStats) {
        let max_chunk = self.opts.max_shard.max(1);
        let total_kinds: usize = self.sketch.shards().iter().map(|s| s.kinds().count()).sum();
        let stats = ShardedServeStats {
            queries: queries.len(),
            shard_count: self.sketch.shard_count(),
            model_batches: total_kinds * queries.len().div_ceil(max_chunk),
            cache_hits: 0,
            cache_misses: 0,
            dedup_hits: 0,
        };
        if queries.is_empty() {
            return (Vec::new(), stats);
        }
        let per_shard: Vec<Vec<Moments>> = par::par_map_init(
            self.sketch.shards(),
            self.opts.threads.max(1),
            BatchScratch::default,
            |scratch, si, shard| {
                let mut moments = Vec::with_capacity(queries.len());
                for chunk in queries.chunks(max_chunk) {
                    moments.extend(match self.layouts.get(si) {
                        Some(l) => shard.moments_batch_with_layout(l, scratch, chunk),
                        None => shard.moments_batch_with(scratch, chunk),
                    });
                }
                moments
            },
        );
        (per_shard, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachePolicy;
    use datagen::simple::uniform;
    use query::error::normalized_mae;
    use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

    fn small_cfg() -> NeuroSketchConfig {
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 12;
        cfg
    }

    fn setup(rows: usize, queries: usize) -> (Dataset, Workload) {
        let data = uniform(rows, 2, 11);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: queries,
            seed: 4,
        })
        .unwrap();
        (data, wl)
    }

    #[test]
    fn plans_partition_every_row_exactly_once() {
        let rows = 97;
        for plan in [
            ShardPlan::RoundRobin { shards: 4 },
            ShardPlan::Blocks { shards: 4 },
            ShardPlan::Hash { shards: 4, seed: 7 },
        ] {
            let assignment = plan.assignment(rows);
            assert_eq!(assignment.len(), 4);
            let mut seen = vec![false; rows];
            for (shard, owned) in assignment.iter().enumerate() {
                for &r in owned {
                    assert!(!seen[r], "row {r} assigned twice by {plan:?}");
                    seen[r] = true;
                    assert_eq!(plan.assign(r, rows), shard);
                }
            }
            assert!(seen.iter().all(|s| *s), "{plan:?} dropped a row");
        }
        // Round-robin and blocks are balanced within one row.
        for plan in [
            ShardPlan::RoundRobin { shards: 4 },
            ShardPlan::Blocks { shards: 4 },
        ] {
            let sizes: Vec<usize> = plan.assignment(rows).iter().map(Vec::len).collect();
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
    }

    /// Row stability is what partial refresh relies on: appending rows
    /// must not move existing ones between shards.
    #[test]
    fn row_stability_matches_assignment_behavior() {
        for (plan, stable) in [
            (ShardPlan::RoundRobin { shards: 3 }, true),
            (ShardPlan::Hash { shards: 3, seed: 5 }, true),
            (ShardPlan::Blocks { shards: 3 }, false),
        ] {
            assert_eq!(plan.row_stable(), stable, "{plan:?}");
            let before: Vec<usize> = (0..60).map(|r| plan.assign(r, 60)).collect();
            let after: Vec<usize> = (0..60).map(|r| plan.assign(r, 90)).collect();
            if stable {
                assert_eq!(before, after, "{plan:?} moved a row on append");
            } else {
                assert_ne!(before, after, "{plan:?} unexpectedly stable");
            }
        }
    }

    /// `moments_batch` is the un-finished half of `answer_batch`:
    /// finishing each gathered moment reproduces the served answers
    /// bitwise.
    #[test]
    fn moments_batch_finishes_to_answers() {
        let (data, wl) = setup(400, 90);
        let (sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: 2 },
            &wl.predicate,
            Aggregate::Avg,
            &wl.queries,
            &small_cfg(),
        )
        .unwrap();
        let server = ShardedServer::new(sharded, ServeOptions::default());
        let (answers, a_stats) = server.answer_batch(&wl.queries);
        let (moments, m_stats) = server.moments_batch(&wl.queries);
        assert_eq!(a_stats, m_stats);
        for (m, a) in moments.iter().zip(&answers) {
            assert_eq!(server.sketch().finish_guarded(*m), *a);
        }
    }

    /// Refinement is row-stable in the subset sense: every row's shard
    /// under the refined plan reduces (mod K) to its shard under the
    /// coarse plan, so refined shard `j`'s rows ⊆ coarse shard
    /// `j mod K`'s rows. Non-round-robin plans and factor 0 are typed
    /// refusals.
    #[test]
    fn refine_is_row_stable_and_typed() {
        let rows = 131;
        for k in [1usize, 2, 3] {
            for factor in [1usize, 2, 3] {
                let base = ShardPlan::RoundRobin { shards: k };
                let fine = base.refine(factor).unwrap();
                assert_eq!(fine.shards(), k * factor);
                for row in 0..rows {
                    assert_eq!(
                        fine.assign(row, rows) % k,
                        base.assign(row, rows),
                        "row {row} escaped its coarse shard under K={k} × {factor}"
                    );
                }
                // Refinement composes: (K → K·a) → K·a·b is K → K·a·b.
                assert_eq!(fine.refine(2).unwrap().shards(), k * factor * 2);
            }
        }
        assert!(matches!(
            ShardPlan::RoundRobin { shards: 2 }.refine(0),
            Err(SketchError::BadConfig(_))
        ));
        assert!(matches!(
            ShardPlan::Blocks { shards: 2 }.refine(2),
            Err(SketchError::BadConfig(_))
        ));
        assert!(matches!(
            ShardPlan::Hash { shards: 2, seed: 1 }.refine(2),
            Err(SketchError::BadConfig(_))
        ));
    }

    #[test]
    fn plan_validation_rejects_degenerate_configs() {
        assert!(ShardPlan::RoundRobin { shards: 0 }.validate(10).is_err());
        assert!(ShardPlan::RoundRobin { shards: 11 }.validate(10).is_err());
        assert!(ShardPlan::RoundRobin { shards: 10 }.validate(10).is_ok());
    }

    /// A hash plan can pass the pigeonhole pre-check yet leave a shard
    /// dry on a small table; the build must refuse rather than train a
    /// constant-zero sketch for the empty shard.
    #[test]
    fn build_rejects_hash_plan_with_an_empty_shard() {
        let (data, wl) = setup(6, 20);
        // Find a seed whose placement leaves some shard empty (common
        // for 6 rows into 4 shards); deterministic once found.
        let seed = (0..u64::MAX)
            .find(|&seed| {
                ShardPlan::Hash { shards: 4, seed }
                    .assignment(6)
                    .iter()
                    .any(Vec::is_empty)
            })
            .expect("some seed leaves a shard empty");
        let plan = ShardPlan::Hash { shards: 4, seed };
        assert!(plan.validate(6).is_ok(), "pre-check alone cannot see it");
        let err = build_sharded(
            &data,
            1,
            &plan,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &small_cfg(),
        )
        .unwrap_err();
        assert!(
            matches!(&err, SketchError::BadConfig(m) if m.contains("no rows")),
            "got {err:?}"
        );
    }

    #[test]
    fn split_preserves_rows_and_order() {
        let (data, _) = setup(50, 40);
        let plan = ShardPlan::Blocks { shards: 3 };
        let parts = plan.split(&data);
        assert_eq!(parts.iter().map(Dataset::rows).sum::<usize>(), 50);
        // Blocks keeps original order: first shard's first row is row 0.
        assert_eq!(parts[0].row(0), data.row(0));
    }

    #[test]
    fn median_is_rejected() {
        let (data, wl) = setup(60, 30);
        let err = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: 2 },
            &wl.predicate,
            Aggregate::Median,
            &wl.queries,
            &small_cfg(),
        )
        .unwrap_err();
        assert!(matches!(err, SketchError::BadConfig(_)));
    }

    /// Gathered COUNT is bitwise the shard-order sum of the per-shard
    /// sketch answers; the batched scatter path, the single-query path,
    /// and a manual fold all agree exactly.
    #[test]
    fn gathered_count_is_bitwise_sum_of_shard_answers() {
        let (data, wl) = setup(600, 160);
        let plan = ShardPlan::Hash { shards: 3, seed: 1 };
        let (sharded, report) = build_sharded(
            &data,
            1,
            &plan,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &small_cfg(),
        )
        .unwrap();
        assert_eq!(report.models_trained, 3);
        assert_eq!(report.shard_rows.iter().sum::<usize>(), 600);
        // The padded-layout scatter path must recombine bitwise like the
        // plain one at any thread count.
        for layout in [false, true] {
            for threads in [1, 4] {
                let server = ShardedServer::new(
                    sharded.clone(),
                    ServeOptions {
                        threads,
                        max_shard: 64,
                        active_attrs: None,
                        layout,
                        cache: CachePolicy::OFF,
                    },
                );
                let (answers, stats) = server.answer_batch(&wl.queries);
                assert_eq!(stats.queries, wl.queries.len());
                // 3 shards × 1 component × ⌈160 / 64⌉ chunks.
                assert_eq!(stats.model_batches, 9);
                for (q, a) in wl.queries.iter().zip(&answers) {
                    let manual: f64 = sharded
                        .shards()
                        .iter()
                        .map(|s| s.model(MomentKind::Count).unwrap().answer(q))
                        .fold(0.0, |acc, v| acc + v);
                    assert_eq!(*a, manual, "threads={threads} layout={layout}");
                    assert_eq!(*a, sharded.answer(q), "threads={threads} layout={layout}");
                }
            }
        }
    }

    /// SUM/AVG/STD gather is an ulp-exact recombination of the per-shard
    /// moment predictions via (n, Σ, Σ²).
    #[test]
    fn gathered_moment_aggregates_recombine_exactly() {
        let (data, wl) = setup(500, 120);
        let plan = ShardPlan::RoundRobin { shards: 2 };
        for agg in [Aggregate::Sum, Aggregate::Avg, Aggregate::Std] {
            let (sharded, _) = build_sharded(
                &data,
                1,
                &plan,
                &wl.predicate,
                agg,
                &wl.queries,
                &small_cfg(),
            )
            .unwrap();
            let server = ShardedServer::new(sharded.clone(), ServeOptions::default());
            let (answers, _) = server.answer_batch(&wl.queries);
            for (q, a) in wl.queries.iter().zip(&answers) {
                // Manual recombination from the per-shard component
                // models, merged in shard order exactly as gather does.
                let mut scratch = BatchScratch::default();
                let total = sharded
                    .shards()
                    .iter()
                    .map(|s| s.moments_batch_with(&mut scratch, std::slice::from_ref(q))[0])
                    .fold(Moments::ZERO, Moments::merge);
                // Mirror gather()'s documented near-empty guard.
                let manual = if matches!(agg, Aggregate::Avg | Aggregate::Std) && total.n < 0.5 {
                    0.0
                } else {
                    total.finish(agg).unwrap()
                };
                let ulps = 4.0 * f64::EPSILON * (1.0 + manual.abs());
                assert!(
                    (*a - manual).abs() <= ulps,
                    "{}: {a} vs {manual}",
                    agg.name()
                );
            }
        }
    }

    /// A single-shard deployment is the monolithic build: same data,
    /// same labels, same seed — bitwise-identical answers.
    #[test]
    fn k1_matches_monolithic_build_bitwise() {
        let (data, wl) = setup(400, 100);
        let cfg = small_cfg();
        let (sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: 1 },
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg,
        )
        .unwrap();
        let engine = QueryEngine::new(&data, 1);
        let labels = engine.label_batch(&wl.predicate, Aggregate::Count, &wl.queries, 1);
        let mut mono_cfg = cfg.clone();
        mono_cfg.seed = cfg.seed.wrapping_add(super::splitmix64(1));
        let (mono, _) = NeuroSketch::build_from_labeled(&wl.queries, &labels, &mono_cfg).unwrap();
        for q in wl.queries.iter().take(25) {
            assert_eq!(sharded.answer(q), mono.answer(q));
        }
        // The equivalence survives quantization: a k=1 i8 deployment
        // answers bitwise like the i8-quantized monolithic sketch, both
        // directly and through the layout-serving front.
        let sharded_i8 = sharded.quantized_to(QuantMode::I8);
        let mono_i8 = mono.quantized_to(QuantMode::I8);
        let server = ShardedServer::new(sharded_i8.clone(), ServeOptions::default());
        let (served, _) = server.answer_batch(&wl.queries);
        for (q, s) in wl.queries.iter().zip(&served).take(25) {
            assert_eq!(sharded_i8.answer(q), mono_i8.answer(q));
            assert_eq!(*s, mono_i8.answer(q));
        }
    }

    /// Regression pin: on the paper's uniform workload, scatter/gather
    /// over 4 shards answers about as accurately as the monolithic
    /// sketch (deterministic builds, so the bound cannot flake).
    #[test]
    fn sharded_error_tracks_monolithic_on_paper_workload() {
        let (data, wl) = setup(2_000, 300);
        let engine = QueryEngine::new(&data, 1);
        let cfg = small_cfg();
        for agg in [Aggregate::Count, Aggregate::Avg] {
            let truths: Vec<f64> = wl
                .queries
                .iter()
                .map(|q| engine.answer(&wl.predicate, agg, q))
                .collect();
            let labels = engine.label_batch(&wl.predicate, agg, &wl.queries, 2);
            let (mono, _) = NeuroSketch::build_from_labeled(&wl.queries, &labels, &cfg).unwrap();
            let mono_preds: Vec<f64> = wl.queries.iter().map(|q| mono.answer(q)).collect();
            let mono_err = normalized_mae(&truths, &mono_preds);

            let (sharded, _) = build_sharded(
                &data,
                1,
                &ShardPlan::RoundRobin { shards: 4 },
                &wl.predicate,
                agg,
                &wl.queries,
                &cfg,
            )
            .unwrap();
            let server = ShardedServer::new(sharded, ServeOptions::default());
            let (preds, _) = server.answer_batch(&wl.queries);
            let sharded_err = normalized_mae(&truths, &preds);
            assert!(
                sharded_err < (3.0 * mono_err).max(0.25),
                "{}: sharded NMAE {sharded_err} vs monolithic {mono_err}",
                agg.name()
            );
        }
    }

    #[test]
    fn empty_batch_and_single_query() {
        let (data, wl) = setup(200, 60);
        let (sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::Blocks { shards: 2 },
            &wl.predicate,
            Aggregate::Sum,
            &wl.queries,
            &small_cfg(),
        )
        .unwrap();
        let server = ShardedServer::new(sharded, ServeOptions::default());
        let (answers, stats) = server.answer_batch(&[]);
        assert!(answers.is_empty());
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.model_batches, 0, "nothing ran, nothing tallied");
        let one = server.answer(&wl.queries[0]);
        assert_eq!(one, server.answer_batch(&wl.queries[..1]).0[0]);
    }

    /// AVG/STD gather must not divide by a near-zero *predicted* count:
    /// below half a row the empty-range convention wins, so noise like
    /// n̂ = 0.004 cannot explode into an arbitrary ratio.
    #[test]
    fn gather_clamps_near_empty_predicted_counts() {
        let (data, wl) = setup(200, 60);
        for agg in [Aggregate::Avg, Aggregate::Std] {
            let (sharded, _) = build_sharded(
                &data,
                1,
                &ShardPlan::RoundRobin { shards: 2 },
                &wl.predicate,
                agg,
                &wl.queries,
                &small_cfg(),
            )
            .unwrap();
            let tiny = Moments {
                n: 0.004,
                s: 0.02,
                s2: 0.01,
            };
            assert_eq!(sharded.gather([tiny].into_iter()), 0.0, "{}", agg.name());
            let negative = Moments {
                n: -0.02,
                s: 0.5,
                s2: 0.2,
            };
            assert_eq!(sharded.gather([negative].into_iter()), 0.0);
            // Above the threshold the ratio is served untouched.
            let real = Moments {
                n: 3.0,
                s: 6.0,
                s2: 14.0,
            };
            assert_eq!(
                sharded.gather([real].into_iter()),
                real.finish(agg).unwrap()
            );
        }
        // COUNT/SUM never divide, so they pass through unclamped.
        let (counted, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: 2 },
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &small_cfg(),
        )
        .unwrap();
        let tiny = Moments {
            n: 0.004,
            s: 0.0,
            s2: 0.0,
        };
        assert_eq!(counted.gather([tiny].into_iter()), 0.004);
    }

    #[test]
    fn quantized_deployment_is_idempotent_and_close() {
        let (data, wl) = setup(300, 80);
        let (sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: 2 },
            &wl.predicate,
            Aggregate::Avg,
            &wl.queries,
            &small_cfg(),
        )
        .unwrap();
        let q1 = sharded.quantized();
        assert_eq!(q1.param_count(), sharded.param_count());
        assert!(sharded.artifact_bytes() >= sharded.param_count() * 4);
        for q in wl.queries.iter().take(10) {
            let (a, b) = (sharded.answer(q), q1.answer(q));
            assert!((a - b).abs() <= 1e-3 * (1.0 + a.abs()), "{a} vs {b}");
            assert_eq!(q1.answer(q), q1.quantized().answer(q));
        }
    }
}
