//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/).
//!
//! Implements the subset the workspace's property tests use:
//!
//! - [`strategy::Strategy`] with ranges, tuples, [`prop::collection::vec`],
//!   and [`strategy::Strategy::prop_map`];
//! - the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest, deliberately accepted for an
//! offline stub: inputs are drawn from a fixed deterministic seed
//! (reproducible, but not configurable via `PROPTEST_*` env vars), and
//! failing cases are **not shrunk** — the panic message reports the
//! case number and the generated inputs' `Debug` form is up to the
//! assertion message.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn addition_commutes(a in 0.0f64..1.0, b in 0.0f64..1.0) {
//!         prop_assert!((a + b - (b + a)).abs() < 1e-15);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
// The crate-level doc example necessarily shows `#[test]` inside
// `proptest!` — that is the macro's real usage.
#![allow(clippy::test_attr_in_doctest)]

pub mod config;
pub mod prop;
pub mod strategy;
pub mod test_runner;

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; panics (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular `#[test]` that draws `cases` inputs from the
/// strategies and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::config::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @expand ($crate::config::ProptestConfig::default()) $($rest)*
        );
    };
}
