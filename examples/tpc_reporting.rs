//! TPC-style reporting: approximate net-profit analytics over
//! store_sales, comparing NeuroSketch against every baseline on the same
//! report queries — a miniature of the paper's Fig. 6 on a single
//! dataset.
//!
//! ```text
//! cargo run --release --example tpc_reporting
//! ```

use baselines::deepdb::{Spn, SpnConfig};
use baselines::tree_agg::TreeAgg;
use baselines::verdict::StratifiedSampler;
use baselines::AqpEngine;
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

fn main() {
    // store_sales-like data; ss_net_profit (col 12) is the measure.
    let raw = datagen::tpc::generate(60_000, 5);
    let (data, _) = raw.normalized();
    let measure = datagen::tpc::NET_PROFIT;
    let engine = QueryEngine::new(&data, measure);

    // Report workload: AVG(net_profit) filtered by one random attribute.
    let wl = Workload::generate(&WorkloadConfig {
        dims: data.dims(),
        active: ActiveMode::Random(1),
        range: RangeMode::Uniform,
        count: 2_200,
        seed: 9,
    })
    .expect("valid workload");
    let (train, test) = wl.split(200);
    let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &train, 4);
    let truth = engine.label_batch(&wl.predicate, Aggregate::Avg, &test, 4);

    // NeuroSketch.
    let (sketch, _) =
        NeuroSketch::build_from_labeled(&train, &labels, &NeuroSketchConfig::default())
            .expect("build");

    // Baselines.
    let tree_agg = TreeAgg::build(&data, measure, data.rows() / 10, 0);
    let verdict = StratifiedSampler::build(&data, measure, data.rows() / 10, 32, 0);
    let spn = Spn::build(&data, measure, &SpnConfig::default());

    println!(
        "{:<13} {:>10} {:>13} {:>12}",
        "engine", "nMAE", "query time", "storage"
    );
    // NeuroSketch row.
    let mut ws = nn::mlp::Workspace::default();
    let t = std::time::Instant::now();
    let preds: Vec<f64> = test
        .iter()
        .map(|q| sketch.answer_with(&mut ws, q))
        .collect();
    let us = t.elapsed().as_secs_f64() * 1e6 / test.len() as f64;
    println!(
        "{:<13} {:>10.4} {:>10.1} us {:>8.0} KiB",
        "NeuroSketch",
        normalized_mae(&truth, &preds),
        us,
        sketch.storage_bytes() as f64 / 1024.0
    );
    // Baseline rows.
    for engine_ref in [&tree_agg as &dyn AqpEngine, &verdict, &spn] {
        let t = std::time::Instant::now();
        let preds: Vec<f64> = test
            .iter()
            .map(|q| {
                engine_ref
                    .answer(&wl.predicate, Aggregate::Avg, q)
                    .unwrap_or(0.0)
            })
            .collect();
        let us = t.elapsed().as_secs_f64() * 1e6 / test.len() as f64;
        println!(
            "{:<13} {:>10.4} {:>10.1} us {:>8.0} KiB",
            engine_ref.name(),
            normalized_mae(&truth, &preds),
            us,
            engine_ref.storage_bytes() as f64 / 1024.0
        );
    }

    // One concrete report line.
    let q = &test[0];
    println!(
        "\nexample report query (one active attribute): sketch {:.4}, exact {:.4} (normalized profit units)",
        sketch.answer(q),
        truth[0]
    );
}
