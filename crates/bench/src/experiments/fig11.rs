//! Fig. 11: visualizing the learned query function for the running
//! example — average visit duration in a fixed-size window over VS —
//! for two model depths. Shape to check: both depths reproduce the
//! spatial pattern of the true function with sharp drops smoothed out,
//! and the deeper model tracks the ground truth more closely.

use crate::common::ExperimentContext;
use datagen::PaperDataset;
use neurosketch::NeuroSketch;
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::predicate::FixedWidthRange;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The visualization payload: ground truth and the learned surfaces.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// Grid resolution per axis.
    pub grid: usize,
    /// True query-function values, row-major `grid x grid`.
    pub truth: Vec<f64>,
    /// Learned surface at depth 5.
    pub depth5: Vec<f64>,
    /// Learned surface at depth 10.
    pub depth10: Vec<f64>,
    /// Pearson correlation (truth vs depth 5, truth vs depth 10).
    pub correlation: (f64, f64),
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Run the visualization experiment.
pub fn run(ctx: &ExperimentContext) -> Fig11Result {
    let (data, measure) = ctx.dataset(PaperDataset::Vs);
    let engine = QueryEngine::new(&data, measure);
    // Fixed window over (lat, lon): the query function takes only the
    // window corner (Example 2.1's 50m x 50m query).
    let width = 0.15;
    let pred =
        FixedWidthRange::new(vec![0, 1], vec![width, width], data.dims()).expect("lat/lon exist");

    // Training queries: uniform corners.
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let n_train = ctx.train_queries();
    let train: Vec<Vec<f64>> = (0..n_train)
        .map(|_| {
            vec![
                rng.random_range(0.0..1.0 - width),
                rng.random_range(0.0..1.0 - width),
            ]
        })
        .collect();
    let labels = engine.label_batch(&pred, Aggregate::Avg, &train, 4);

    let build = |depth: usize| -> NeuroSketch {
        let mut cfg = ctx.ns_config();
        cfg.tree_height = 0;
        cfg.target_partitions = 1;
        cfg.depth = depth;
        NeuroSketch::build_from_labeled(&train, &labels, &cfg)
            .expect("sketch build")
            .0
    };
    let s5 = build(5);
    let s10 = build(10);

    let grid = if ctx.fast { 12 } else { 24 };
    let mut truth = Vec::with_capacity(grid * grid);
    let mut d5 = Vec::with_capacity(grid * grid);
    let mut d10 = Vec::with_capacity(grid * grid);
    for i in 0..grid {
        for j in 0..grid {
            let q = vec![
                i as f64 / grid as f64 * (1.0 - width),
                j as f64 / grid as f64 * (1.0 - width),
            ];
            truth.push(engine.answer(&pred, Aggregate::Avg, &q));
            d5.push(s5.answer(&q));
            d10.push(s10.answer(&q));
        }
    }
    let correlation = (pearson(&truth, &d5), pearson(&truth, &d10));
    Fig11Result {
        grid,
        truth,
        depth5: d5,
        depth10: d10,
        correlation,
    }
}

/// Print coarse ASCII heat maps.
pub fn print(res: &Fig11Result) {
    println!("\n==== Fig. 11: learned query function visualization (VS) ====");
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let render = |name: &str, vals: &[f64]| {
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("\n[{name}]  (range {lo:.2} .. {hi:.2})");
        for i in 0..res.grid {
            let row: String = (0..res.grid)
                .map(|j| {
                    let v = vals[i * res.grid + j];
                    let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
                    shades[((t * 9.0).round() as usize).min(9)]
                })
                .collect();
            println!("  {row}");
        }
    };
    render("ground truth", &res.truth);
    render("NeuroSketch depth 5", &res.depth5);
    render("NeuroSketch depth 10", &res.depth10);
    println!(
        "\ncorrelation with truth: depth5 = {:.3}, depth10 = {:.3}",
        res.correlation.0, res.correlation.1
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learned_surfaces_correlate_with_truth() {
        let ctx = ExperimentContext::fast();
        let res = run(&ctx);
        assert_eq!(res.truth.len(), res.grid * res.grid);
        // At smoke scale (400 queries, 40 epochs) the surface is rough;
        // a full run reaches > 0.9. Require a clearly positive signal.
        assert!(
            res.correlation.0 > 0.25,
            "depth-5 correlation {} too low",
            res.correlation.0
        );
        assert!(
            res.correlation.1 > 0.25,
            "depth-10 correlation {} too low",
            res.correlation.1
        );
    }
}
