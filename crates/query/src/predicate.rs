//! Predicate functions `P_f(q, x)`.
//!
//! Sec. 4.3 of the paper deliberately leaves the predicate abstract: any
//! binary function of a query instance and a data point defines a valid
//! RAQ. We provide the predicates used in the evaluation:
//!
//! * [`Range`] — the standard WHERE clause of Sec. 2
//!   (`c_i ≤ x_i < c_i + r_i` over a chosen set of active attributes),
//! * [`FixedWidthRange`] — ranges with widths baked into the predicate so
//!   the query instance is only the lower-corner `c` (Example 2.1, Fig. 16),
//! * [`RotatedRect`] — the general rectangle `(p, p′, φ)` of Table 2,
//! * [`HalfSpace`] — the `x[1] > x[0]·q[0] + q[1]` example of Sec. 4.3,
//! * [`HyperSphere`] — the circular predicate of Sec. 3.3.2.

use crate::QueryError;

/// A binary predicate over (query instance, data row).
pub trait PredicateFn: Send + Sync {
    /// Dimensionality of the query instance vector this predicate consumes.
    fn query_dim(&self) -> usize;

    /// Does row `x` match query instance `q`?
    ///
    /// `q` must have length [`PredicateFn::query_dim`]; implementations
    /// may debug-assert this.
    fn matches(&self, q: &[f64], x: &[f64]) -> bool;

    /// If the predicate constrains axis-aligned per-attribute intervals,
    /// return `(attr, lo, hi)` triples for index pruning. The intervals
    /// are a *necessary* condition: any matching row lies inside all of
    /// them (endpoints conservatively included by consumers). Default: no
    /// pruning possible.
    fn axis_bounds(&self, _q: &[f64]) -> Option<Vec<(usize, f64, f64)>> {
        None
    }

    /// Whether [`PredicateFn::axis_bounds`] is also *sufficient*: a row
    /// matches **iff** every listed attribute lies in its half-open
    /// `[lo, hi)` interval. When true and a single attribute is
    /// constrained, the query engine answers moment aggregates straight
    /// from its sorted-column prefix sums without visiting any row.
    fn axis_bounds_exact(&self) -> bool {
        false
    }

    /// The axis bounds, but only when they fully define the predicate —
    /// the support test used by engines (histograms, SPNs, regression
    /// ensembles) that answer from the intervals alone and would return
    /// silently wrong numbers for a mere bounding box.
    fn exact_axis_bounds(&self, q: &[f64]) -> Option<Vec<(usize, f64, f64)>> {
        if self.axis_bounds_exact() {
            self.axis_bounds(q)
        } else {
            None
        }
    }
}

/// The standard range predicate of Sec. 2 over `attrs` active attributes.
///
/// The query instance is `[c_1..c_k, r_1..r_k]` where `k = attrs.len()`;
/// attribute `attrs[i]` is constrained to `[c_i, c_i + r_i)`. Attributes
/// not listed are unconstrained (equivalently `c = 0, r = 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    attrs: Vec<usize>,
}

impl Range {
    /// Constrain the given attributes. `dims` is the dataset width, used
    /// to validate indices.
    pub fn new(attrs: Vec<usize>, dims: usize) -> Result<Self, QueryError> {
        if attrs.is_empty() {
            return Err(QueryError::BadConfig("no active attributes".into()));
        }
        for &a in &attrs {
            if a >= dims {
                return Err(QueryError::BadAttribute { attr: a, dims });
            }
        }
        Ok(Range { attrs })
    }

    /// Constrain every attribute of a `dims`-wide dataset (the paper's
    /// full `(c, r)` query function with `d = 2·d̄`).
    pub fn all(dims: usize) -> Self {
        Range {
            attrs: (0..dims).collect(),
        }
    }

    /// The active attribute indices.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }
}

impl PredicateFn for Range {
    fn query_dim(&self) -> usize {
        2 * self.attrs.len()
    }

    fn matches(&self, q: &[f64], x: &[f64]) -> bool {
        debug_assert_eq!(q.len(), self.query_dim());
        let k = self.attrs.len();
        self.attrs.iter().enumerate().all(|(i, &a)| {
            let (c, r) = (q[i], q[k + i]);
            x[a] >= c && x[a] < c + r
        })
    }

    fn axis_bounds(&self, q: &[f64]) -> Option<Vec<(usize, f64, f64)>> {
        let k = self.attrs.len();
        Some(
            self.attrs
                .iter()
                .enumerate()
                .map(|(i, &a)| (a, q[i], q[i] + q[k + i]))
                .collect(),
        )
    }

    fn axis_bounds_exact(&self) -> bool {
        true
    }
}

/// Range predicate with fixed widths: the query instance is only the
/// lower corner `c` (length `attrs.len()`).
///
/// This is Example 2.1's 50m x 50m average-visit-duration query and the
/// `r = 10%` sweep of Fig. 16.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedWidthRange {
    attrs: Vec<usize>,
    widths: Vec<f64>,
}

impl FixedWidthRange {
    /// Constrain `attrs[i]` to `[c_i, c_i + widths[i])`.
    pub fn new(attrs: Vec<usize>, widths: Vec<f64>, dims: usize) -> Result<Self, QueryError> {
        if attrs.len() != widths.len() || attrs.is_empty() {
            return Err(QueryError::BadConfig(
                "attrs/widths must pair up and be nonempty".into(),
            ));
        }
        for &a in &attrs {
            if a >= dims {
                return Err(QueryError::BadAttribute { attr: a, dims });
            }
        }
        if widths.iter().any(|w| *w <= 0.0) {
            return Err(QueryError::BadConfig("widths must be positive".into()));
        }
        Ok(FixedWidthRange { attrs, widths })
    }

    /// The active attribute indices.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// The fixed widths.
    pub fn widths(&self) -> &[f64] {
        &self.widths
    }
}

impl PredicateFn for FixedWidthRange {
    fn query_dim(&self) -> usize {
        self.attrs.len()
    }

    fn matches(&self, q: &[f64], x: &[f64]) -> bool {
        debug_assert_eq!(q.len(), self.query_dim());
        self.attrs
            .iter()
            .zip(q)
            .zip(&self.widths)
            .all(|((&a, &c), &w)| x[a] >= c && x[a] < c + w)
    }

    fn axis_bounds(&self, q: &[f64]) -> Option<Vec<(usize, f64, f64)>> {
        Some(
            self.attrs
                .iter()
                .zip(q)
                .zip(&self.widths)
                .map(|((&a, &c), &w)| (a, c, c + w))
                .collect(),
        )
    }

    fn axis_bounds_exact(&self) -> bool {
        true
    }
}

/// General rectangle predicate of Table 2: the query instance is
/// `(p, p′, φ)` — two opposite vertices and the rectangle's angle with the
/// x-axis. A point is inside if, after rotating the plane by `−φ` about
/// `p`, it lies in the axis-aligned box spanned by the rotated `p` and `p′`.
#[derive(Debug, Clone, PartialEq)]
pub struct RotatedRect {
    x_attr: usize,
    y_attr: usize,
}

impl RotatedRect {
    /// Rectangle over the plane of the two given attributes.
    pub fn new(x_attr: usize, y_attr: usize, dims: usize) -> Result<Self, QueryError> {
        for &a in &[x_attr, y_attr] {
            if a >= dims {
                return Err(QueryError::BadAttribute { attr: a, dims });
            }
        }
        if x_attr == y_attr {
            return Err(QueryError::BadConfig(
                "x and y attributes must differ".into(),
            ));
        }
        Ok(RotatedRect { x_attr, y_attr })
    }
}

impl PredicateFn for RotatedRect {
    fn query_dim(&self) -> usize {
        5 // p.x, p.y, p'.x, p'.y, phi
    }

    fn matches(&self, q: &[f64], x: &[f64]) -> bool {
        debug_assert_eq!(q.len(), 5);
        let (px, py, qx, qy, phi) = (q[0], q[1], q[2], q[3], q[4]);
        let (cos, sin) = (phi.cos(), phi.sin());
        // Rotate both the point and p' by −φ about p.
        let rot = |vx: f64, vy: f64| -> (f64, f64) {
            let (dx, dy) = (vx - px, vy - py);
            (dx * cos + dy * sin, -dx * sin + dy * cos)
        };
        let (cx, cy) = rot(qx, qy);
        let (ux, uy) = rot(x[self.x_attr], x[self.y_attr]);
        let (x0, x1) = if cx < 0.0 { (cx, 0.0) } else { (0.0, cx) };
        let (y0, y1) = if cy < 0.0 { (cy, 0.0) } else { (0.0, cy) };
        ux >= x0 && ux <= x1 && uy >= y0 && uy <= y1
    }

    fn axis_bounds(&self, q: &[f64]) -> Option<Vec<(usize, f64, f64)>> {
        // Axis-aligned bounding box of the rectangle's four vertices:
        // p, p', and the two corners p + cx·u and p + cy·v in the rotated
        // frame (u = (cosφ, sinφ), v = (−sinφ, cosφ)).
        let (px, py, qx, qy, phi) = (q[0], q[1], q[2], q[3], q[4]);
        let (cos, sin) = (phi.cos(), phi.sin());
        let (dx, dy) = (qx - px, qy - py);
        let (cx, cy) = (dx * cos + dy * sin, -dx * sin + dy * cos);
        let corners = [
            (px, py),
            (qx, qy),
            (px + cx * cos, py + cx * sin),
            (px - cy * sin, py + cy * cos),
        ];
        let fold = |f: fn(f64, f64) -> f64, pick: fn(&(f64, f64)) -> f64| {
            corners[1..].iter().map(pick).fold(pick(&corners[0]), f)
        };
        // Widen each side by one ulp: `matches` computes the rotated
        // coordinates with its own rounding, so a point within ulps of
        // the rectangle edge can match while sitting marginally outside
        // the independently-rounded bbox. The bounds are a pruning
        // superset, never the exact test, so widening is free.
        Some(vec![
            (
                self.x_attr,
                fold(f64::min, |c| c.0).next_down(),
                fold(f64::max, |c| c.0).next_up(),
            ),
            (
                self.y_attr,
                fold(f64::min, |c| c.1).next_down(),
                fold(f64::max, |c| c.1).next_up(),
            ),
        ])
    }
}

/// Half-space predicate from Sec. 4.3: matches points *above* the line
/// `y = slope·x + intercept`, with the query instance `q = (slope,
/// intercept)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HalfSpace {
    x_attr: usize,
    y_attr: usize,
}

impl HalfSpace {
    /// Half-space over the plane of the two given attributes.
    pub fn new(x_attr: usize, y_attr: usize, dims: usize) -> Result<Self, QueryError> {
        for &a in &[x_attr, y_attr] {
            if a >= dims {
                return Err(QueryError::BadAttribute { attr: a, dims });
            }
        }
        Ok(HalfSpace { x_attr, y_attr })
    }
}

impl PredicateFn for HalfSpace {
    fn query_dim(&self) -> usize {
        2
    }

    fn matches(&self, q: &[f64], x: &[f64]) -> bool {
        debug_assert_eq!(q.len(), 2);
        x[self.y_attr] > x[self.x_attr] * q[0] + q[1]
    }
}

/// Circular predicate of Sec. 3.3.2: `‖x_attrs − center‖₂ ≤ radius`, with
/// `q = [center..., radius]`.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperSphere {
    attrs: Vec<usize>,
}

impl HyperSphere {
    /// Ball over the subspace of the given attributes.
    pub fn new(attrs: Vec<usize>, dims: usize) -> Result<Self, QueryError> {
        if attrs.is_empty() {
            return Err(QueryError::BadConfig("no attributes".into()));
        }
        for &a in &attrs {
            if a >= dims {
                return Err(QueryError::BadAttribute { attr: a, dims });
            }
        }
        Ok(HyperSphere { attrs })
    }
}

impl PredicateFn for HyperSphere {
    fn query_dim(&self) -> usize {
        self.attrs.len() + 1
    }

    fn matches(&self, q: &[f64], x: &[f64]) -> bool {
        debug_assert_eq!(q.len(), self.query_dim());
        let radius = q[self.attrs.len()];
        let d2: f64 = self
            .attrs
            .iter()
            .zip(q)
            .map(|(&a, &c)| (x[a] - c) * (x[a] - c))
            .sum();
        d2 <= radius * radius
    }

    fn axis_bounds(&self, q: &[f64]) -> Option<Vec<(usize, f64, f64)>> {
        // The ball's bounding box; `matches` still does the exact test.
        let radius = q[self.attrs.len()];
        Some(
            self.attrs
                .iter()
                .zip(q)
                .map(|(&a, &c)| (a, (c - radius).next_down(), (c + radius).next_up()))
                .collect(),
        )
    }
}

/// Parametric disjunctive predicate from Sec. 4.3's WHERE-clause example
/// (`WHERE X1 > ?param1 OR X2 > ?param2`): matches when *any* listed
/// attribute exceeds its query-supplied threshold. The query instance is
/// the threshold vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DisjunctiveThresholds {
    attrs: Vec<usize>,
}

impl DisjunctiveThresholds {
    /// OR of `x[attrs[i]] > q[i]` terms.
    pub fn new(attrs: Vec<usize>, dims: usize) -> Result<Self, QueryError> {
        if attrs.is_empty() {
            return Err(QueryError::BadConfig("no attributes".into()));
        }
        for &a in &attrs {
            if a >= dims {
                return Err(QueryError::BadAttribute { attr: a, dims });
            }
        }
        Ok(DisjunctiveThresholds { attrs })
    }
}

impl PredicateFn for DisjunctiveThresholds {
    fn query_dim(&self) -> usize {
        self.attrs.len()
    }

    fn matches(&self, q: &[f64], x: &[f64]) -> bool {
        debug_assert_eq!(q.len(), self.query_dim());
        self.attrs.iter().zip(q).any(|(&a, &t)| x[a] > t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_matches_half_open_interval() {
        let p = Range::new(vec![0, 2], 3).unwrap();
        assert_eq!(p.query_dim(), 4);
        let q = [0.2, 0.4, 0.3, 0.3]; // attr0 in [0.2,0.5), attr2 in [0.4,0.7)
        assert!(p.matches(&q, &[0.2, 9.0, 0.4]));
        assert!(p.matches(&q, &[0.49, -1.0, 0.69]));
        assert!(!p.matches(&q, &[0.5, 0.0, 0.5])); // upper bound excluded
        assert!(!p.matches(&q, &[0.19, 0.0, 0.5]));
    }

    #[test]
    fn range_all_covers_every_attr() {
        let p = Range::all(2);
        let q = [0.0, 0.0, 1.0, 1.0];
        assert!(p.matches(&q, &[0.5, 0.99]));
        assert!(!p.matches(&q, &[1.0, 0.5])); // 1.0 is outside [0,1)
    }

    #[test]
    fn range_axis_bounds() {
        let p = Range::new(vec![1], 2).unwrap();
        let b = p.axis_bounds(&[0.25, 0.5]).unwrap();
        assert_eq!(b, vec![(1, 0.25, 0.75)]);
    }

    #[test]
    fn range_rejects_bad_attrs() {
        assert!(Range::new(vec![3], 3).is_err());
        assert!(Range::new(vec![], 3).is_err());
    }

    #[test]
    fn fixed_width_uses_only_corner() {
        let p = FixedWidthRange::new(vec![0, 1], vec![0.1, 0.1], 2).unwrap();
        assert_eq!(p.query_dim(), 2);
        assert!(p.matches(&[0.5, 0.5], &[0.55, 0.59]));
        assert!(!p.matches(&[0.5, 0.5], &[0.55, 0.61]));
        assert!(FixedWidthRange::new(vec![0], vec![0.0], 2).is_err());
        assert!(FixedWidthRange::new(vec![0], vec![0.1, 0.2], 2).is_err());
    }

    #[test]
    fn rotated_rect_axis_aligned_case() {
        // phi = 0 degenerates to an ordinary rectangle between p and p'.
        let p = RotatedRect::new(0, 1, 2).unwrap();
        let q = [0.2, 0.2, 0.6, 0.5, 0.0];
        assert!(p.matches(&q, &[0.4, 0.3]));
        assert!(p.matches(&q, &[0.2, 0.2]));
        assert!(!p.matches(&q, &[0.7, 0.3]));
        assert!(!p.matches(&q, &[0.4, 0.6]));
    }

    #[test]
    fn rotated_rect_45_degrees() {
        let p = RotatedRect::new(0, 1, 2).unwrap();
        let s = std::f64::consts::FRAC_PI_4;
        // p at origin, p' along the rotated axes at (0.4, 0.2) in local
        // coordinates: in world coords p' = R(φ)(0.4, 0.2).
        let (lx, ly) = (0.4, 0.2);
        let qx = lx * s.cos() - ly * s.sin();
        let qy = lx * s.sin() + ly * s.cos();
        let q = [0.0, 0.0, qx, qy, s];
        // Local point (0.2, 0.1) is inside; world coords:
        let (wx, wy) = (0.2 * s.cos() - 0.1 * s.sin(), 0.2 * s.sin() + 0.1 * s.cos());
        assert!(p.matches(&q, &[wx, wy]));
        // Local point (0.2, 0.3) is outside (y beyond 0.2).
        let (ox, oy) = (0.2 * s.cos() - 0.3 * s.sin(), 0.2 * s.sin() + 0.3 * s.cos());
        assert!(!p.matches(&q, &[ox, oy]));
    }

    #[test]
    fn rotated_rect_handles_negative_extents() {
        // p' below/left of p still forms a valid rectangle.
        let p = RotatedRect::new(0, 1, 2).unwrap();
        let q = [0.6, 0.5, 0.2, 0.2, 0.0];
        assert!(p.matches(&q, &[0.4, 0.3]));
        assert!(!p.matches(&q, &[0.7, 0.3]));
    }

    #[test]
    fn half_space_above_line() {
        let p = HalfSpace::new(0, 1, 2).unwrap();
        let q = [1.0, 0.0]; // y > x
        assert!(p.matches(&q, &[0.3, 0.5]));
        assert!(!p.matches(&q, &[0.5, 0.3]));
        assert!(!p.matches(&q, &[0.5, 0.5]));
    }

    #[test]
    fn disjunction_matches_any_exceeding_threshold() {
        let p = DisjunctiveThresholds::new(vec![0, 2], 3).unwrap();
        assert_eq!(p.query_dim(), 2);
        let q = [0.5, 0.8];
        assert!(p.matches(&q, &[0.6, 0.0, 0.0])); // first term
        assert!(p.matches(&q, &[0.0, 0.0, 0.9])); // second term
        assert!(p.matches(&q, &[0.9, 0.0, 0.9])); // both
        assert!(!p.matches(&q, &[0.5, 1.0, 0.8])); // strict inequality
        assert!(p.axis_bounds(&q).is_none()); // not expressible as a box
        assert!(DisjunctiveThresholds::new(vec![5], 3).is_err());
    }

    #[test]
    fn sphere_contains_center_boundary() {
        let p = HyperSphere::new(vec![0, 1], 2).unwrap();
        assert_eq!(p.query_dim(), 3);
        let q = [0.5, 0.5, 0.2];
        assert!(p.matches(&q, &[0.5, 0.5]));
        assert!(p.matches(&q, &[0.7, 0.5])); // on the boundary
        assert!(!p.matches(&q, &[0.71, 0.5]));
    }
}
