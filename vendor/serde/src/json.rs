//! JSON entry points; `serde_json` re-exports these.

use crate::de::{Deserializer, Error};
use crate::{Deserialize, Serialize};

/// Serialize `value` to a compact JSON string.
///
/// Infallible for the types in this workspace, but kept `Result` for
/// source compatibility with `serde_json::to_string`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.json_serialize(&mut out);
    Ok(out)
}

/// Deserialize a `T` from JSON text. Rejects trailing garbage.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut de = Deserializer::new(s);
    let v = T::json_deserialize(&mut de)?;
    de.finish()?;
    Ok(v)
}
