//! Replicated cluster lifecycle: **build → replicate → route →
//! fault-inject → rolling upgrade → rebalance**.
//!
//! `sharded_serve` scales one box to K shards; this example drives the
//! simulated-cluster path from `docs/scaling.md` where every shard
//! group has N replicas behind a routing policy and the failure modes
//! are *injected on purpose* with a seeded, replayable
//! [`FaultPlan`](neurosketch::cluster::FaultPlan):
//!
//! 1. build a K=2 round-robin AVG deployment and publish it as an NSKM
//!    manifest, then lay it out as two replica directories,
//! 2. [`Cluster::load`] the replicas and verify a healthy cluster
//!    answers **bitwise identically** to the single-box
//!    [`ShardedServer`],
//! 3. kill a replica mid-batch with a fault plan: the router fails
//!    over, the event log says so, and answers do not move,
//! 4. retrain against drifted data, land a generation-1 refresh, and
//!    roll it out replica by replica — mid-roll batches serve
//!    generation 0 *flagged stale* (never a blend), and
//!    [`DriftMonitor::check_many`] scores every replica column against
//!    one probe labeling,
//! 5. rebalance the round-robin plan 2 → 4 **row-stably**: answers stay
//!    bitwise unchanged, then materializing the coarse groups yields
//!    bitwise the models a fresh 4-shard build would train.
//!
//! ```text
//! cargo run --release --example replicated_serve            # full scale
//! cargo run --release --example replicated_serve -- --fast  # CI smoke
//! ```

use datagen::simple::{drift_batch, uniform};
use neurosketch::cluster::{
    Cluster, ClusterEvent, ClusterOptions, Fault, FaultPlan, RoutePolicy, UpgradeStep,
};
use neurosketch::maintenance::{retrain_shards, DriftMonitor};
use neurosketch::serve::ServeOptions;
use neurosketch::shard::{build_sharded, ShardPlan, ShardedServer};
use neurosketch::{persist, Deployment, NeuroSketchConfig};
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};
use std::path::PathBuf;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (rows, n_queries) = if fast { (2_000, 200) } else { (12_000, 800) };
    let shards = 2;
    let replicas = 2;

    let mut data = uniform(rows, 2, 23);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 2,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: n_queries,
        seed: 8,
    })
    .expect("workload");
    let mut cfg = NeuroSketchConfig::small();
    cfg.tree_height = 2;
    cfg.target_partitions = 4;
    cfg.train.epochs = if fast { 40 } else { 120 };
    cfg.threads = 4;

    // 1. Build and publish generation 0, then fan it out to two
    // replica directories — "each replica has its own disk".
    let (sharded, _) = build_sharded(
        &data,
        1,
        &ShardPlan::RoundRobin { shards },
        &wl.predicate,
        Aggregate::Avg,
        &wl.queries,
        &cfg,
    )
    .expect("sharded build");
    let publish = std::env::temp_dir().join("neurosketch_replicated_demo_publish");
    std::fs::remove_dir_all(&publish).ok();
    let manifest = persist::save_sharded(&publish, &sharded).expect("save_sharded");
    let replica_dirs: Vec<PathBuf> = (0..replicas)
        .map(|r| {
            let dir = std::env::temp_dir().join(format!("neurosketch_replicated_demo_r{r}"));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).expect("replica dir");
            for entry in std::fs::read_dir(&publish).expect("read publish dir") {
                let entry = entry.expect("dir entry");
                std::fs::copy(entry.path(), dir.join(entry.file_name())).expect("copy artifact");
            }
            dir
        })
        .collect();
    let replica_manifests: Vec<PathBuf> = replica_dirs
        .iter()
        .map(|d| d.join(persist::MANIFEST_NAME))
        .collect();
    println!(
        "published gen 0: {shards} shard groups x {replicas} replicas ({} bytes/replica)",
        sharded.artifact_bytes()
    );

    // 2. Load the cluster and pin it against the single box.
    let single = ShardedServer::new(
        persist::load_sharded(&manifest).expect("load_sharded"),
        ServeOptions::default(),
    );
    let gen0_expect = single.answer_batch(&wl.queries).0;
    let mut cluster = Cluster::load(
        &replica_manifests,
        RoutePolicy::LeastLoaded,
        ClusterOptions::default(),
    )
    .expect("cluster load");
    let (answers, report) = cluster.answer_batch(&wl.queries).expect("healthy batch");
    assert_eq!(
        answers, gen0_expect,
        "a healthy cluster must be bitwise the single-box deployment"
    );
    println!(
        "healthy serve: {} queries over {} groups, gen {}, bitwise = single box",
        report.queries, report.groups, report.generation
    );

    // 3. Kill a replica mid-batch; the router fails over and answers
    // do not move. The plan is plain data — serialize it, keep it, and
    // any later run replays the same failure sequence.
    let fault_plan = FaultPlan {
        seed: 4242,
        faults: vec![Fault::Kill {
            batch: 0,
            group: 0,
            replica: 0,
        }],
    };
    println!(
        "fault plan: {}",
        serde_json::to_string(&fault_plan).expect("serialize plan")
    );
    let mut cluster = Cluster::load(
        &replica_manifests,
        RoutePolicy::LeastLoaded,
        ClusterOptions::default(),
    )
    .expect("cluster reload")
    .with_faults(fault_plan);
    let (answers, report) = cluster.answer_batch(&wl.queries).expect("kill batch");
    assert_eq!(answers, gen0_expect, "failover must not move answers");
    assert!(report.failovers >= 1, "the routed replica died mid-batch");
    let killed = cluster
        .events()
        .iter()
        .any(|e| matches!(e, ClusterEvent::ReplicaKilled { .. }));
    assert!(killed, "the injected kill must land, typed");
    println!(
        "injected kill: {} failover(s), coverage {}/{}, answers bitwise unchanged",
        report.failovers, report.covered, report.groups
    );
    // Repair it from its own replica disk (still generation 0) so the
    // upcoming roll has full redundancy to walk through.
    cluster
        .repair_replica(0, 0, &replica_manifests[0])
        .expect("repair killed replica");
    println!("killed replica repaired from its replica disk, back at gen 0");

    // 4. Drift, refresh, and roll generation 1 across the replicas of
    // replica 0's disk (the roll source); mid-roll batches are flagged
    // stale and still single-generation.
    data.append(&drift_batch(rows / 2, 2, 1.0, 0.3, 29))
        .expect("append drift");
    let mut refreshed = sharded.clone();
    retrain_shards(
        &mut refreshed,
        &data,
        1,
        &wl.predicate,
        &wl.queries,
        &cfg,
        &[0, 1],
    )
    .expect("retrain");
    persist::save_refreshed(&manifest, &refreshed, &[0, 1]).expect("save gen 1");
    let gen1_expect = ShardedServer::new(
        persist::load_sharded(&manifest).expect("load gen 1"),
        ServeOptions::default(),
    )
    .answer_batch(&wl.queries)
    .0;

    let step = cluster.rolling_upgrade_step(&manifest).expect("first step");
    assert!(matches!(step, UpgradeStep::Upgraded { from: 0, to: 1, .. }));
    let (mid, mid_report) = cluster.answer_batch(&wl.queries).expect("mid-roll batch");
    assert_eq!(
        mid, gen0_expect,
        "mid-roll batches must not blend generations"
    );
    assert!(mid_report.stale, "serving behind the roll must be flagged");
    println!(
        "mid-roll: serving gen {} while gen {} lands — stale flag set, answers bitwise gen 0",
        mid_report.generation, mid_report.latest
    );
    let steps = cluster.rolling_upgrade(&manifest).expect("finish roll");
    assert!(matches!(
        steps.last(),
        Some(UpgradeStep::Done { generation: 1 })
    ));
    let (post, post_report) = cluster.answer_batch(&wl.queries).expect("post-roll batch");
    assert_eq!(post, gen1_expect, "post-roll answers must be gen 1");
    assert!(!post_report.stale);
    println!(
        "rolled to gen {} in {} steps, stale flag cleared",
        post_report.generation,
        steps.len()
    );

    // Per-replica drift scoring: one exact probe labeling, one report
    // per replica column through the shared `Deployment` trait.
    let engine = QueryEngine::new(&data, 1);
    let monitor = DriftMonitor::new(wl.queries[..wl.queries.len().min(64)].to_vec(), 0.5)
        .expect("monitor")
        .with_threads(2);
    let views: Vec<_> = (0..replicas)
        .map(|r| cluster.replica_view(r).expect("replica view"))
        .collect();
    let deployments: Vec<&dyn Deployment> = views.iter().map(|v| v as &dyn Deployment).collect();
    let reports = monitor.check_many(&deployments, &engine, &wl.predicate, Aggregate::Avg);
    for (r, rep) in reports.iter().enumerate() {
        println!(
            "replica column {r}: NMAE {:.4} ({})",
            rep.nmae,
            if rep.stale { "stale" } else { "fresh" }
        );
    }

    // 5. Row-stable rebalance 2 → 4: answers bitwise unchanged with no
    // rebuild; materializing then matches a fresh 4-shard build.
    let refined = cluster.rebalance(2).expect("rebalance");
    let (rebalanced, _) = cluster.answer_batch(&wl.queries).expect("rebalanced batch");
    assert_eq!(
        rebalanced, gen1_expect,
        "a row-stable rebalance must not move answers"
    );
    println!(
        "rebalanced {:?} -> {:?}: answers bitwise unchanged, no rebuild",
        ShardPlan::RoundRobin { shards },
        refined
    );
    while let Some(i) = cluster.groups().iter().position(|g| g.logical().len() > 1) {
        cluster
            .materialize_group(i, &data, 1, &wl.predicate, &wl.queries, &cfg)
            .expect("materialize");
    }
    let (fine, _) = build_sharded(
        &data,
        1,
        &ShardPlan::RoundRobin { shards: 4 },
        &wl.predicate,
        Aggregate::Avg,
        &wl.queries,
        &cfg,
    )
    .expect("fresh fine build");
    let fine_expect = ShardedServer::new(fine, ServeOptions::default())
        .answer_batch(&wl.queries)
        .0;
    let (materialized, _) = cluster
        .answer_batch(&wl.queries)
        .expect("materialized batch");
    assert_eq!(
        materialized, fine_expect,
        "materialized groups must be bitwise a fresh fine-grained build"
    );
    println!("materialized 4 groups: bitwise = fresh 4-shard build");

    std::fs::remove_dir_all(&publish).ok();
    for dir in &replica_dirs {
        std::fs::remove_dir_all(dir).ok();
    }
    println!("build -> replicate -> fault-inject -> roll -> rebalance round trip verified");
}
