//! Shared machinery for the experiment modules: dataset preparation,
//! engine construction, timing, and table printing.

use baselines::dbest::{DbEstConfig, DbEstEnsemble};
use baselines::deepdb::{Spn, SpnConfig};
use baselines::tree_agg::TreeAgg;
use baselines::verdict::StratifiedSampler;
use baselines::AqpEngine;
use datagen::{Dataset, PaperDataset};
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use nn::train::TrainConfig;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::predicate::PredicateFn;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};
use std::time::Instant;

/// Global experiment knobs, set from the `repro` CLI.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentContext {
    /// Multiplies dataset and workload sizes. 1.0 is the reduced default
    /// scale documented in DESIGN.md; ~10 approaches paper sizes.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Smoke-test mode: shrink everything aggressively.
    pub fast: bool,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            scale: 1.0,
            seed: 42,
            fast: false,
        }
    }
}

impl ExperimentContext {
    /// A context for CI smoke tests.
    pub fn fast() -> Self {
        ExperimentContext {
            scale: 0.05,
            seed: 42,
            fast: true,
        }
    }

    /// Training-workload size for NeuroSketch (paper: 100k).
    pub fn train_queries(&self) -> usize {
        if self.fast {
            400
        } else {
            (4_000.0 * self.scale).max(400.0) as usize
        }
    }

    /// Test-set size (paper: held-out split of the workload pool).
    pub fn test_queries(&self) -> usize {
        if self.fast {
            80
        } else {
            (400.0 * self.scale).max(80.0) as usize
        }
    }

    /// Generate a paper dataset (already min-max normalized) plus its
    /// measure column index.
    pub fn dataset(&self, ds: PaperDataset) -> (Dataset, usize) {
        let scale = if self.fast { 0.05 } else { self.scale };
        let raw = ds.generate(scale, self.seed);
        let (norm, _) = raw.normalized();
        (norm, ds.measure_column())
    }

    /// NeuroSketch defaults (paper Sec. 5.1), with training budget scaled
    /// to the harness size.
    pub fn ns_config(&self) -> NeuroSketchConfig {
        NeuroSketchConfig {
            tree_height: 4,
            target_partitions: 8,
            depth: 5,
            l_first: 60,
            l_rest: 30,
            train: TrainConfig {
                epochs: if self.fast { 40 } else { 200 },
                patience: 15,
                batch_size: 64,
                lr: 1e-3,
                min_delta: 1e-4,
                seed: self.seed,
                time_budget: None,
            },
            threads: 4,
            seed: self.seed,
            aqc_max_pairs: if self.fast { 2_000 } else { 20_000 },
        }
    }
}

/// One engine's measurements for a comparison table.
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// Engine display name.
    pub engine: &'static str,
    /// Normalized MAE on the test queries (NaN when unsupported).
    pub nmae: f64,
    /// Mean per-query latency in microseconds.
    pub query_us: f64,
    /// Storage in KiB.
    pub storage_kib: f64,
    /// Fraction of test queries the engine answered.
    pub support: f64,
}

impl EngineRow {
    /// `N/A` row for engines that cannot run an experiment at all.
    pub fn unsupported(engine: &'static str) -> EngineRow {
        EngineRow {
            engine,
            nmae: f64::NAN,
            query_us: f64::NAN,
            storage_kib: f64::NAN,
            support: 0.0,
        }
    }
}

/// Print a comparison table.
pub fn print_rows(title: &str, rows: &[EngineRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>9}",
        "engine", "norm. MAE", "query time", "storage", "support"
    );
    for r in rows {
        if r.support == 0.0 {
            println!(
                "{:<14} {:>12} {:>14} {:>12} {:>9}",
                r.engine, "N/A", "N/A", "N/A", "0%"
            );
        } else {
            println!(
                "{:<14} {:>12.4} {:>11.1} us {:>8.1} KiB {:>8.0}%",
                r.engine,
                r.nmae,
                r.query_us,
                r.storage_kib,
                r.support * 100.0
            );
        }
    }
}

/// Time a per-query closure over the test set; returns `(answers,
/// mean_us)`.
pub fn time_queries(queries: &[Vec<f64>], mut f: impl FnMut(&[f64]) -> f64) -> (Vec<f64>, f64) {
    let start = Instant::now();
    let answers: Vec<f64> = queries.iter().map(|q| f(q)).collect();
    let us = start.elapsed().as_secs_f64() * 1e6 / queries.len().max(1) as f64;
    (answers, us)
}

/// Evaluate an [`AqpEngine`] on a test set against ground truth. Queries
/// the engine declines are excluded from the error (support < 1 reflects
/// them); an engine declining everything yields an `unsupported` row.
pub fn eval_engine(
    engine: &dyn AqpEngine,
    name: &'static str,
    pred: &dyn PredicateFn,
    agg: Aggregate,
    test: &[Vec<f64>],
    truth: &[f64],
    storage: usize,
) -> EngineRow {
    let start = Instant::now();
    let mut answered = Vec::new();
    let mut answered_truth = Vec::new();
    for (q, t) in test.iter().zip(truth) {
        if let Ok(a) = engine.answer(pred, agg, q) {
            answered.push(a);
            answered_truth.push(*t);
        }
    }
    if answered.is_empty() {
        return EngineRow::unsupported(name);
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / test.len() as f64;
    EngineRow {
        engine: name,
        nmae: normalized_mae(&answered_truth, &answered),
        query_us: us,
        storage_kib: storage as f64 / 1024.0,
        support: answered.len() as f64 / test.len() as f64,
    }
}

/// The standard engine line-up of Fig. 6, built on one dataset.
pub struct Lineup {
    /// NeuroSketch itself.
    pub sketch: NeuroSketch,
    /// TREE-AGG with a 10% sample.
    pub tree_agg: TreeAgg,
    /// VerdictDB-like stratified sampler with a 10% budget.
    pub verdict: StratifiedSampler,
    /// DeepDB-like SPN.
    pub deepdb: Spn,
    /// DBEst-like per-attribute ensemble (`None` when skipped, e.g. for
    /// multi-active-attribute workloads).
    pub dbest: Option<DbEstEnsemble>,
}

/// Build the full line-up for a labeled workload. `build_dbest` mirrors
/// the paper excluding DBEst from some experiments.
pub fn build_lineup(
    data: &Dataset,
    measure: usize,
    train: &[Vec<f64>],
    labels: &[f64],
    ctx: &ExperimentContext,
    ns_cfg: &NeuroSketchConfig,
    build_dbest: bool,
) -> Lineup {
    let (sketch, _) = NeuroSketch::build_from_labeled(train, labels, ns_cfg).expect("sketch build");
    let sample_k = (data.rows() / 10).max(100);
    let tree_agg = TreeAgg::build(data, measure, sample_k, ctx.seed);
    let verdict = StratifiedSampler::build(data, measure, sample_k, 32, ctx.seed ^ 1);
    let spn_cfg = SpnConfig {
        min_rows: if ctx.fast { 200 } else { 500 },
        seed: ctx.seed,
        ..SpnConfig::default()
    };
    let deepdb = Spn::build(data, measure, &spn_cfg);
    let dbest = build_dbest.then(|| {
        let mut cfg = DbEstConfig {
            seed: ctx.seed,
            ..DbEstConfig::default()
        };
        if ctx.fast {
            cfg.reg_samples = 500;
            cfg.kde_centers = 128;
            cfg.train.epochs = 30;
        }
        DbEstEnsemble::build_all(data, measure, &cfg)
    });
    Lineup {
        sketch,
        tree_agg,
        verdict,
        deepdb,
        dbest,
    }
}

/// Run the standard comparison: label a train/test split, build the
/// line-up, evaluate every engine. Returns rows in the paper's engine
/// order.
#[allow(clippy::too_many_arguments)]
pub fn run_comparison(
    data: &Dataset,
    measure: usize,
    wl: &Workload,
    agg: Aggregate,
    ctx: &ExperimentContext,
    ns_cfg: &NeuroSketchConfig,
    build_dbest: bool,
) -> Vec<EngineRow> {
    let engine = QueryEngine::new(data, measure);
    let (train, test) = wl.split(ctx.test_queries());
    let labels = engine.label_batch(&wl.predicate, agg, &train, 4);
    let truth = engine.label_batch(&wl.predicate, agg, &test, 4);
    let lineup = build_lineup(data, measure, &train, &labels, ctx, ns_cfg, build_dbest);

    let mut rows = Vec::new();
    // NeuroSketch: allocation-free hot path.
    let mut ws = nn::mlp::Workspace::default();
    let (preds, us) = time_queries(&test, |q| lineup.sketch.answer_with(&mut ws, q));
    rows.push(EngineRow {
        engine: "NeuroSketch",
        nmae: normalized_mae(&truth, &preds),
        query_us: us,
        storage_kib: lineup.sketch.storage_bytes() as f64 / 1024.0,
        support: 1.0,
    });
    rows.push(eval_engine(
        &lineup.tree_agg,
        "TREE-AGG",
        &wl.predicate,
        agg,
        &test,
        &truth,
        lineup.tree_agg.storage_bytes(),
    ));
    rows.push(eval_engine(
        &lineup.verdict,
        "VerdictDB",
        &wl.predicate,
        agg,
        &test,
        &truth,
        lineup.verdict.storage_bytes(),
    ));
    rows.push(eval_engine(
        &lineup.deepdb,
        "DeepDB",
        &wl.predicate,
        agg,
        &test,
        &truth,
        lineup.deepdb.storage_bytes(),
    ));
    if let Some(dbest) = &lineup.dbest {
        rows.push(eval_engine(
            dbest,
            "DBEst",
            &wl.predicate,
            agg,
            &test,
            &truth,
            dbest.storage_bytes(),
        ));
    } else {
        rows.push(EngineRow::unsupported("DBEst"));
    }
    rows
}

/// The default workload for a dataset: lat/lon active for VS (as in the
/// paper), one random active attribute elsewhere.
pub fn default_workload(ds: PaperDataset, dims: usize, count: usize, seed: u64) -> Workload {
    let active = match ds {
        PaperDataset::Vs => ActiveMode::Fixed(vec![0, 1]),
        _ => ActiveMode::Random(1),
    };
    Workload::generate(&WorkloadConfig {
        dims,
        active,
        range: RangeMode::Uniform,
        count,
        seed,
    })
    .expect("valid workload config")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_context_is_small() {
        let ctx = ExperimentContext::fast();
        assert!(ctx.train_queries() <= 1000);
        assert!(ctx.test_queries() <= 100);
    }

    #[test]
    fn time_queries_returns_all_answers() {
        let qs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let (ans, us) = time_queries(&qs, |q| q[0] * 2.0);
        assert_eq!(ans.len(), 10);
        assert_eq!(ans[3], 6.0);
        assert!(us >= 0.0);
    }

    #[test]
    fn comparison_smoke_on_tiny_uniform() {
        let ctx = ExperimentContext::fast();
        let data = datagen::simple::uniform(800, 2, 0);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: 300,
            seed: 1,
        })
        .unwrap();
        let mut cfg = ctx.ns_config();
        cfg.tree_height = 1;
        cfg.target_partitions = 2;
        cfg.train.epochs = 20;
        let rows = run_comparison(&data, 1, &wl, Aggregate::Avg, &ctx, &cfg, true);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].engine, "NeuroSketch");
        assert!(rows[0].nmae.is_finite());
        // All engines support AVG with one active attribute.
        for r in &rows {
            assert!(r.support > 0.0, "{} declined everything", r.engine);
        }
    }
}
