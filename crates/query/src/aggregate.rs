//! Aggregation functions.
//!
//! The paper's theory covers COUNT, SUM and AVG; NeuroSketch itself makes
//! no assumption on the aggregate and is evaluated on STD and MEDIAN too
//! (Sec. 4.3, Fig. 9, Table 2). The empty-range convention is `0.0` for
//! every aggregate — the same convention the paper's training-label
//! generation implies (a query matching no rows contributes target 0).

use serde::{Deserialize, Serialize};

/// An aggregation function over the measure values of matching rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Aggregate {
    /// Number of matching rows.
    Count,
    /// Sum of the measure attribute.
    Sum,
    /// Mean of the measure attribute.
    Avg,
    /// Population standard deviation of the measure attribute.
    Std,
    /// Median (lower median for even counts) of the measure attribute.
    Median,
}

impl Aggregate {
    /// All aggregates, in the order of Fig. 9 plus MEDIAN.
    pub const ALL: [Aggregate; 5] = [
        Aggregate::Avg,
        Aggregate::Sum,
        Aggregate::Std,
        Aggregate::Count,
        Aggregate::Median,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Std => "STD",
            Aggregate::Median => "MEDIAN",
        }
    }

    /// Whether the aggregate's magnitude grows with data size (true for
    /// COUNT/SUM — the "normalize by n" cases of Sec. 3.1.1).
    pub fn scales_with_n(&self) -> bool {
        matches!(self, Aggregate::Count | Aggregate::Sum)
    }

    /// Apply to a *mutable* buffer of measure values of the matching rows
    /// (MEDIAN reorders the buffer in place; other aggregates leave it
    /// untouched). Empty input yields `0.0`.
    pub fn apply(&self, values: &mut [f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let n = values.len() as f64;
        match self {
            Aggregate::Count => n,
            Aggregate::Sum => values.iter().sum(),
            Aggregate::Avg => values.iter().sum::<f64>() / n,
            Aggregate::Std => {
                let mean = values.iter().sum::<f64>() / n;
                (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).sqrt()
            }
            Aggregate::Median => {
                let mid = (values.len() - 1) / 2;
                let (_, m, _) =
                    values.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("no NaN"));
                *m
            }
        }
    }

    /// Streaming variant for COUNT/SUM/AVG/STD that avoids materializing
    /// the matching values; returns `None` for MEDIAN (which needs them,
    /// so the iterator is not consumed).
    pub fn apply_streaming(&self, it: impl Iterator<Item = f64>) -> Option<f64> {
        match self {
            Aggregate::Median => None,
            _ => Moments::of(it).finish(*self),
        }
    }

    /// The moment components a scatter/gather deployment must collect
    /// per shard to recombine this aggregate exactly, or `None` for
    /// MEDIAN (not a function of moments, hence not shardable this way).
    ///
    /// COUNT and SUM are single-component (they simply add across
    /// shards); AVG needs `(n, Σ)` and STD needs `(n, Σ, Σ²)`.
    pub fn required_moments(&self) -> Option<&'static [MomentKind]> {
        match self {
            Aggregate::Count => Some(&[MomentKind::Count]),
            Aggregate::Sum => Some(&[MomentKind::Sum]),
            Aggregate::Avg => Some(&[MomentKind::Count, MomentKind::Sum]),
            Aggregate::Std => Some(&[MomentKind::Count, MomentKind::Sum, MomentKind::SumSq]),
            Aggregate::Median => None,
        }
    }

    /// Compute the aggregate from the first three moments of the matching
    /// measure values — `n` (count), `s` (sum), `s2` (sum of squares).
    /// Returns `None` for MEDIAN, which is not a function of moments.
    ///
    /// This is the closed form behind [`Aggregate::apply_streaming`], and
    /// what lets the query engine's sorted-column index answer range
    /// aggregates from prefix-sum differences without touching rows.
    pub fn from_moments(&self, n: f64, s: f64, s2: f64) -> Option<f64> {
        // Each aggregate reads only the components it requires
        // ([`Aggregate::required_moments`]): for true moments `n == 0`
        // implies `s == s2 == 0`, so COUNT/SUM need no empty-set guard —
        // and a sharded deployment that trains only its required
        // components (e.g. SUM-only, where `n` stays 0) must not be
        // zeroed by one it never populated.
        Some(match self {
            Aggregate::Count => n,
            Aggregate::Sum => s,
            Aggregate::Avg => {
                if n == 0.0 {
                    0.0
                } else {
                    s / n
                }
            }
            Aggregate::Std => {
                if n == 0.0 {
                    0.0
                } else {
                    let mean = s / n;
                    (s2 / n - mean * mean).max(0.0).sqrt()
                }
            }
            Aggregate::Median => return None,
        })
    }
}

/// One component of the sufficient statistics `(n, Σ, Σ²)` that
/// COUNT/SUM/AVG/STD are functions of.
///
/// A sharded deployment trains one model per `(shard, MomentKind)` and
/// gathers by *adding* each component across shards — see
/// [`Aggregate::required_moments`] and [`Moments::merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MomentKind {
    /// `n` — the number of matching rows.
    Count,
    /// `Σ` — the sum of the measure over matching rows.
    Sum,
    /// `Σ²` — the sum of the squared measure over matching rows.
    SumSq,
}

impl MomentKind {
    /// All moment components, in `(n, Σ, Σ²)` order.
    pub const ALL: [MomentKind; 3] = [MomentKind::Count, MomentKind::Sum, MomentKind::SumSq];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MomentKind::Count => "count",
            MomentKind::Sum => "sum",
            MomentKind::SumSq => "sumsq",
        }
    }

    /// Stable dense index (0, 1, 2) — the slot this component occupies in
    /// per-shard model tables and in the NSKM manifest.
    pub fn slot(&self) -> usize {
        match self {
            MomentKind::Count => 0,
            MomentKind::Sum => 1,
            MomentKind::SumSq => 2,
        }
    }
}

/// The first three moments of a set of measure values: the sufficient
/// statistics from which every non-MEDIAN aggregate is computed.
///
/// `Moments` is the *moment-composable answer type*: moments of a
/// disjoint union of row sets are the component-wise **sums** of the
/// parts' moments, so a scatter/gather deployment can answer
/// COUNT/SUM/AVG/STD exactly by merging per-shard moments and finishing
/// once ([`Moments::finish`]).
///
/// ```
/// use query::aggregate::{Aggregate, Moments};
///
/// let left = Moments::of([1.0, 2.0].into_iter());
/// let right = Moments::of([3.0, 4.0].into_iter());
/// let whole = Moments::of([1.0, 2.0, 3.0, 4.0].into_iter());
/// assert_eq!(left.merge(right), whole);
/// assert_eq!(whole.finish(Aggregate::Avg), Some(2.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Moments {
    /// Number of values (`n`).
    pub n: f64,
    /// Sum of the values (`Σ`).
    pub s: f64,
    /// Sum of the squared values (`Σ²`).
    pub s2: f64,
}

impl Moments {
    /// The moments of the empty set — the identity of [`Moments::merge`].
    pub const ZERO: Moments = Moments {
        n: 0.0,
        s: 0.0,
        s2: 0.0,
    };

    /// Accumulate the moments of a value stream.
    pub fn of(values: impl Iterator<Item = f64>) -> Moments {
        let mut m = Moments::ZERO;
        for v in values {
            m.n += 1.0;
            m.s += v;
            m.s2 += v * v;
        }
        m
    }

    /// Moments of the disjoint union: component-wise addition. This is
    /// the whole gather step — exact (each component is one f64 add; no
    /// reordering of the per-part accumulations).
    pub fn merge(self, other: Moments) -> Moments {
        Moments {
            n: self.n + other.n,
            s: self.s + other.s,
            s2: self.s2 + other.s2,
        }
    }

    /// One component by kind.
    pub fn component(&self, kind: MomentKind) -> f64 {
        match kind {
            MomentKind::Count => self.n,
            MomentKind::Sum => self.s,
            MomentKind::SumSq => self.s2,
        }
    }

    /// Set one component by kind.
    pub fn set_component(&mut self, kind: MomentKind, value: f64) {
        match kind {
            MomentKind::Count => self.n = value,
            MomentKind::Sum => self.s = value,
            MomentKind::SumSq => self.s2 = value,
        }
    }

    /// Finish into an aggregate value (`None` for MEDIAN) — the same
    /// closed form as [`Aggregate::from_moments`].
    pub fn finish(&self, agg: Aggregate) -> Option<f64> {
        agg.from_moments(self.n, self.s, self.s2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(agg: Aggregate, vals: &[f64]) -> f64 {
        agg.apply(&mut vals.to_vec())
    }

    #[test]
    fn count_sum_avg() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(apply(Aggregate::Count, &v), 4.0);
        assert_eq!(apply(Aggregate::Sum, &v), 10.0);
        assert_eq!(apply(Aggregate::Avg, &v), 2.5);
    }

    #[test]
    fn std_population() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((apply(Aggregate::Std, &v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(apply(Aggregate::Median, &[5.0, 1.0, 3.0]), 3.0);
        // Lower median for even counts.
        assert_eq!(apply(Aggregate::Median, &[4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(apply(Aggregate::Median, &[9.0]), 9.0);
    }

    #[test]
    fn empty_yields_zero() {
        for agg in Aggregate::ALL {
            assert_eq!(agg.apply(&mut []), 0.0, "{}", agg.name());
        }
    }

    #[test]
    fn streaming_matches_materialized() {
        let v = [1.0, 5.0, 2.0, 8.0, 3.5];
        for agg in [
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::Std,
        ] {
            let a = apply(agg, &v);
            let b = agg.apply_streaming(v.iter().copied()).unwrap();
            assert!((a - b).abs() < 1e-12, "{}", agg.name());
        }
        assert!(Aggregate::Median
            .apply_streaming(v.iter().copied())
            .is_none());
    }

    #[test]
    fn moments_merge_matches_whole_set() {
        let left = [1.0, 5.0, 2.0];
        let right = [8.0, 3.5];
        let merged = Moments::of(left.iter().copied()).merge(Moments::of(right.iter().copied()));
        let whole = Moments::of(left.iter().chain(right.iter()).copied());
        assert_eq!(merged, whole);
        for agg in [
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::Std,
        ] {
            let direct = apply(agg, &[1.0, 5.0, 2.0, 8.0, 3.5]);
            let gathered = merged.finish(agg).unwrap();
            assert!(
                (direct - gathered).abs() < 1e-12 * (1.0 + direct.abs()),
                "{}: {direct} vs {gathered}",
                agg.name()
            );
        }
        assert!(merged.finish(Aggregate::Median).is_none());
    }

    #[test]
    fn moments_components_roundtrip() {
        let mut m = Moments::ZERO;
        for (i, kind) in MomentKind::ALL.iter().enumerate() {
            assert_eq!(kind.slot(), i);
            m.set_component(*kind, (i + 1) as f64);
            assert_eq!(m.component(*kind), (i + 1) as f64);
        }
        assert_eq!(
            m,
            Moments {
                n: 1.0,
                s: 2.0,
                s2: 3.0
            }
        );
        assert_eq!(Moments::ZERO.merge(m), m);
    }

    #[test]
    fn required_moments_cover_the_shardable_aggregates() {
        assert_eq!(
            Aggregate::Count.required_moments(),
            Some(&[MomentKind::Count][..])
        );
        assert_eq!(
            Aggregate::Sum.required_moments(),
            Some(&[MomentKind::Sum][..])
        );
        assert_eq!(
            Aggregate::Avg.required_moments(),
            Some(&[MomentKind::Count, MomentKind::Sum][..])
        );
        assert_eq!(
            Aggregate::Std.required_moments(),
            Some(&MomentKind::ALL[..])
        );
        assert_eq!(Aggregate::Median.required_moments(), None);
        // Every required component reconstructs via from_moments: the
        // kinds listed really are sufficient statistics. (STD's two
        // formulas — Σ(v-mean)² vs Σv²-n·mean² — differ in rounding, so
        // compare within ulps, not bitwise.)
        let m = Moments::of([2.0, 4.0, 9.0].into_iter());
        for agg in Aggregate::ALL {
            if agg.required_moments().is_some() {
                let direct = apply(agg, &[2.0, 4.0, 9.0]);
                let via_moments = m.finish(agg).unwrap();
                assert!(
                    (direct - via_moments).abs() < 1e-12 * (1.0 + direct.abs()),
                    "{}: {direct} vs {via_moments}",
                    agg.name()
                );
            }
        }
    }

    #[test]
    fn scales_with_n_flags() {
        assert!(Aggregate::Count.scales_with_n());
        assert!(Aggregate::Sum.scales_with_n());
        assert!(!Aggregate::Avg.scales_with_n());
        assert!(!Aggregate::Median.scales_with_n());
    }
}
