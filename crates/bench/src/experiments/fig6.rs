//! Fig. 6: error (a), query time (b) and storage (c) of every engine on
//! the seven evaluation datasets. AVG aggregation; one random active
//! attribute (lat/lon for VS). The shapes to check: NeuroSketch lowest
//! error on most datasets, query time orders of magnitude below the
//! model-of-data baselines and roughly constant across datasets; DeepDB
//! storage grows with data size while NeuroSketch stays under a fixed
//! small budget.

use crate::common::{default_workload, print_rows, run_comparison, EngineRow, ExperimentContext};
use datagen::PaperDataset;
use query::aggregate::Aggregate;

/// Results for one dataset.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Engine rows (NeuroSketch, TREE-AGG, VerdictDB, DeepDB, DBEst).
    pub engines: Vec<EngineRow>,
}

/// Datasets included at the given context (TPC10/G20 are skipped in fast
/// mode: their cost dwarfs the information gained in a smoke run).
fn datasets(ctx: &ExperimentContext) -> Vec<PaperDataset> {
    if ctx.fast {
        vec![
            PaperDataset::Pm,
            PaperDataset::Vs,
            PaperDataset::G5,
            PaperDataset::Tpc1,
        ]
    } else {
        PaperDataset::ALL.to_vec()
    }
}

/// Run the cross-dataset comparison.
pub fn run(ctx: &ExperimentContext) -> Vec<Fig6Row> {
    datasets(ctx)
        .into_iter()
        .map(|ds| {
            let (data, measure) = ctx.dataset(ds);
            let wl = default_workload(
                ds,
                data.dims(),
                ctx.train_queries() + ctx.test_queries(),
                ctx.seed,
            );
            // DBEst only answers single-active-attribute range queries;
            // for VS (two fixed active attributes) the paper reports no
            // DBEst numbers — the lineup mirrors that by omission.
            let build_dbest = !matches!(ds, PaperDataset::Vs);
            let engines = run_comparison(
                &data,
                measure,
                &wl,
                Aggregate::Avg,
                ctx,
                &ctx.ns_config(),
                build_dbest,
            );
            Fig6Row {
                dataset: ds.name(),
                engines,
            }
        })
        .collect()
}

/// Print in the paper's dataset order.
pub fn print(rows: &[Fig6Row]) {
    println!("\n==== Fig. 6: RAQs on different datasets (AVG) ====");
    for row in rows {
        print_rows(&format!("Fig. 6 / {}", row.dataset), &row.engines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neurosketch_is_fast_and_supported_everywhere() {
        let ctx = ExperimentContext::fast();
        let rows = run(&ctx);
        assert!(!rows.is_empty());
        for row in &rows {
            let ns = &row.engines[0];
            assert_eq!(ns.engine, "NeuroSketch");
            assert_eq!(ns.support, 1.0, "{}", row.dataset);
            assert!(ns.nmae.is_finite(), "{}", row.dataset);
            // Headline property (verified strictly at full scale by the
            // repro binary): forward passes should not be slower than the
            // model-of-data baseline by more than smoke-scale noise.
            let deepdb = row.engines.iter().find(|r| r.engine == "DeepDB").unwrap();
            if deepdb.support > 0.0 {
                assert!(
                    ns.query_us < deepdb.query_us * 10.0 + 100.0,
                    "{}: NS {} us vs DeepDB {} us",
                    row.dataset,
                    ns.query_us,
                    deepdb.query_us
                );
            }
        }
    }
}
