//! DQD explorer — the theory side of the paper, runnable.
//!
//! Walks through: closed-form LDQ constants (Examples 3.2/3.3), the
//! Theorem 3.4 approximation-complexity bound, the Theorem 3.5 sampling
//! bound and the "faster on larger databases" effect, and the explicit
//! Algorithm-1 construction with its memorization guarantee.
//!
//! ```text
//! cargo run --release --example dqd_explorer
//! ```

use neurosketch::dqd::{
    approx_complexity, dqd_bound, eps2_for_confidence, sampling_confidence, ErrorNorm,
};
use neurosketch::ldq::{ldq_gaussian_count, ldq_gmm_count, ldq_uniform_count};
use nn::construction::{GridNet, SlopeMode};

fn main() {
    println!("== LDQ: the paper's complexity measure (Sec. 3.1.3) ==");
    println!("uniform COUNT:            rho = {:.2}", ldq_uniform_count());
    for sigma in [0.3, 0.15, 0.05] {
        println!(
            "gaussian(sigma={sigma:.2}) COUNT: rho = {:.2}",
            ldq_gaussian_count(sigma)
        );
    }
    println!(
        "2-GMM(sigma=0.05) COUNT:  rho = {:.2}",
        ldq_gmm_count(&[0.5, 0.5], &[0.05, 0.05])
    );

    println!("\n== Theorem 3.4: network complexity for approximation error eps1 ==");
    println!("(d = 2, 1-norm bound; complexity = d * (t+1)^d units)");
    for rho in [1.0, 8.0] {
        for eps1 in [0.1, 0.05, 0.01] {
            println!(
                "  rho {rho:>4.1}, eps1 {eps1:>5.2} -> complexity {}",
                approx_complexity(rho, 2, eps1, ErrorNorm::L1)
            );
        }
    }

    println!("\n== Theorem 3.5: sampling error vs data size ==");
    println!("(probability that normalized COUNT error exceeds eps2 = 0.05, d = 2)");
    for n in [10_000usize, 100_000, 1_000_000, 10_000_000] {
        println!(
            "  n = {n:>9}: failure prob <= {:.3e}",
            sampling_confidence(2, n, 0.05)
        );
    }

    println!("\n== 'Faster on larger databases' (Sec. 3.1.2) ==");
    println!("(fixing confidence 0.01, the achievable eps2 shrinks with n,");
    println!(" so eps1 may grow and the network may shrink at equal total error)");
    for n in [1_000_000usize, 10_000_000, 100_000_000] {
        match eps2_for_confidence(1, n, 0.01) {
            Some(eps2) => {
                let total = 0.08;
                let eps1 = (total - eps2).max(1e-4);
                let b = dqd_bound(1.0, 1, n, eps1, eps2);
                println!(
                    "  n = {n:>10}: eps2 {:.4} -> eps1 {:.4} -> network complexity {}",
                    b.eps2, b.eps1, b.complexity
                );
            }
            None => println!("  n = {n:>10}: bound vacuous at this size"),
        }
    }

    println!("\n== Algorithm 1: the memorization construction ==");
    let f = |x: &[f64]| 0.5 * x[0] + 0.5 * (1.0 - x[1]); // 1-Lipschitz
    let t = 8;
    let net = GridNet::construct(&f, 2, t, SlopeMode::LemmaA3).expect("construct");
    println!(
        "grid t = {t}: {} g-units, slope M = {:.2}",
        net.units(),
        net.slope()
    );
    // Check the memorization guarantee at a few vertices.
    let mut worst: f64 = 0.0;
    for i in 0..=t {
        for j in 0..=t {
            let p = [i as f64 / t as f64, j as f64 / t as f64];
            worst = worst.max((net.forward(&p) - f(&p)).abs());
        }
    }
    println!(
        "max error over all {} grid vertices: {worst:.2e} (Lemma A.1: exactly 0)",
        (t + 1) * (t + 1)
    );
    // Empirical 1-norm error vs the 3*rho*d/t bound of Theorem 3.4(a).
    let steps = 50;
    let mut acc = 0.0;
    for i in 0..steps {
        for j in 0..steps {
            let p = [
                (i as f64 + 0.5) / steps as f64,
                (j as f64 + 0.5) / steps as f64,
            ];
            acc += (net.forward(&p) - f(&p)).abs();
        }
    }
    let emp = acc / (steps * steps) as f64;
    let bound = 3.0 * 1.0 * 2.0 / t as f64;
    println!("empirical 1-norm error {emp:.4} <= theorem bound {bound:.4}");
}
