//! Criterion benchmark behind Fig. 6(b): per-query latency of every
//! engine on the same workload. The paper's headline — NeuroSketch
//! answers in microseconds, orders of magnitude below the model-of-data
//! baselines — shows up directly in these numbers.
//!
//! The dataset/workload is [`bench::perf::scenarios::query_scenario`] —
//! the same fixture `perfbench` times into `BENCH_query.json`.

use baselines::dbest::{DbEst, DbEstConfig};
use baselines::deepdb::{Spn, SpnConfig};
use baselines::tree_agg::TreeAgg;
use baselines::verdict::StratifiedSampler;
use baselines::AqpEngine;
use bench::perf::scenarios::query_scenario;
use criterion::{criterion_group, criterion_main, Criterion};
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use std::hint::black_box;

fn bench_query_time(c: &mut Criterion) {
    let sc = query_scenario(false);
    let engine = QueryEngine::new(&sc.data, sc.measure);

    let mut ns_cfg = NeuroSketchConfig::default();
    ns_cfg.train.epochs = 60;
    let (sketch, _) =
        NeuroSketch::build_from_labeled(&sc.train, &sc.labels, &ns_cfg).expect("build");
    let tree_agg = TreeAgg::build(&sc.data, sc.measure, 2_000, 0);
    let verdict = StratifiedSampler::build(&sc.data, sc.measure, 2_000, 32, 0);
    let spn = Spn::build(&sc.data, sc.measure, &SpnConfig::default());
    let dbest = DbEst::build(
        &sc.data,
        0,
        sc.measure,
        &DbEstConfig {
            reg_samples: 1_000,
            ..DbEstConfig::default()
        },
    );

    let mut group = c.benchmark_group("fig6b_query_time");
    let n_test = sc.test.len();
    let mut i = 0usize;
    let mut next = move || {
        i = (i + 1) % n_test;
        i
    };
    let test_ref = &sc.test;

    let mut ws = nn::mlp::Workspace::default();
    group.bench_function("neurosketch", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(sketch.answer_with(&mut ws, q))
        })
    });
    group.bench_function("tree_agg", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(
                tree_agg
                    .answer(&sc.wl.predicate, Aggregate::Avg, q)
                    .unwrap(),
            )
        })
    });
    group.bench_function("verdictdb", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(verdict.answer(&sc.wl.predicate, Aggregate::Avg, q).unwrap())
        })
    });
    group.bench_function("deepdb_spn", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(spn.answer(&sc.wl.predicate, Aggregate::Avg, q).unwrap())
        })
    });
    group.bench_function("dbest", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(dbest.answer(&sc.wl.predicate, Aggregate::Avg, q).unwrap())
        })
    });
    group.bench_function("exact_scan", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(engine.answer(&sc.wl.predicate, Aggregate::Avg, q))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_query_time
}
criterion_main!(benches);
