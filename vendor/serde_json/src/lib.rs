//! Offline stand-in for `serde_json`: `to_string` / `from_str` over
//! the vendored `serde` stub's JSON engine.
//!
//! ```
//! let s = serde_json::to_string(&vec![1u32, 2, 3]).unwrap();
//! assert_eq!(s, "[1,2,3]");
//! let v: Vec<u32> = serde_json::from_str(&s).unwrap();
//! assert_eq!(v, [1, 2, 3]);
//! ```

#![forbid(unsafe_code)]

/// Deserialization/serialization error (re-exported from the `serde`
/// stub's JSON engine).
pub use serde::de::Error;
pub use serde::json::{from_str, to_string};
