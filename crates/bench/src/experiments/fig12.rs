//! Fig. 12: generalization vs training-set size, plus the distance from
//! test queries to their nearest training query (dist-NTQ). Shapes to
//! check: error drops with more training queries then plateaus; dist-NTQ
//! keeps shrinking past the plateau (for small models the residual error
//! is capacity, not data, per Sec. 5.4); small nets generalize better at
//! tiny sample sizes.

use crate::common::{default_workload, ExperimentContext};
use datagen::PaperDataset;
use neurosketch::NeuroSketch;
use query::aggregate::Aggregate;
use query::error::{dist_ntq, normalized_mae};
use query::exec::QueryEngine;

/// One (dataset, width, n_train) measurement.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Hidden width (30 or 120 in the paper).
    pub width: usize,
    /// Training queries used.
    pub n_train: usize,
    /// Test normalized MAE.
    pub nmae: f64,
    /// Mean distance from test queries to the nearest training query.
    pub dist_ntq: f64,
}

/// Run the generalization study.
pub fn run(ctx: &ExperimentContext) -> Vec<Fig12Row> {
    let datasets: Vec<PaperDataset> = if ctx.fast {
        vec![PaperDataset::Vs]
    } else {
        vec![PaperDataset::Vs, PaperDataset::Pm, PaperDataset::Tpc1]
    };
    let sizes: Vec<usize> = if ctx.fast {
        vec![50, 200, 400]
    } else {
        let base = ctx.train_queries();
        vec![base / 40, base / 10, base / 4, base]
    };
    let widths = [30usize, 120];

    let mut rows = Vec::new();
    for ds in datasets {
        let (data, measure) = ctx.dataset(ds);
        let engine = QueryEngine::new(&data, measure);
        let max_n = *sizes.iter().max().expect("nonempty");
        let wl = default_workload(ds, data.dims(), max_n + ctx.test_queries(), ctx.seed);
        let (pool, test) = wl.split(ctx.test_queries());
        let pool_labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &pool, 4);
        let truth = engine.label_batch(&wl.predicate, Aggregate::Avg, &test, 4);

        for &width in &widths {
            for &n in &sizes {
                let n = n.min(pool.len());
                let train = &pool[..n];
                let labels = &pool_labels[..n];
                let mut cfg = ctx.ns_config();
                cfg.tree_height = 0;
                cfg.target_partitions = 1;
                cfg.l_first = width;
                cfg.l_rest = width;
                let Ok((sketch, _)) = NeuroSketch::build_from_labeled(train, labels, &cfg) else {
                    continue;
                };
                let preds: Vec<f64> = test.iter().map(|q| sketch.answer(q)).collect();
                rows.push(Fig12Row {
                    dataset: ds.name(),
                    width,
                    n_train: n,
                    nmae: normalized_mae(&truth, &preds),
                    dist_ntq: dist_ntq(&test, train),
                });
            }
        }
    }
    rows
}

/// Print the table.
pub fn print(rows: &[Fig12Row]) {
    println!("\n==== Fig. 12: generalization vs training size ====");
    println!(
        "{:<8} {:>6} {:>10} {:>10} {:>12}",
        "dataset", "width", "n_train", "nMAE", "dist. NTQ"
    );
    for r in rows {
        println!(
            "{:<8} {:>6} {:>10} {:>10.4} {:>12.5}",
            r.dataset, r.width, r.n_train, r.nmae, r.dist_ntq
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_ntq_shrinks_with_more_training_queries() {
        let ctx = ExperimentContext::fast();
        let rows = run(&ctx);
        let w30: Vec<&Fig12Row> = rows
            .iter()
            .filter(|r| r.width == 30 && r.dataset == "VS")
            .collect();
        assert!(w30.len() >= 2);
        let first = w30.first().unwrap();
        let last = w30.last().unwrap();
        assert!(last.n_train > first.n_train);
        assert!(
            last.dist_ntq < first.dist_ntq,
            "dist NTQ should shrink: {} -> {}",
            first.dist_ntq,
            last.dist_ntq
        );
    }

    #[test]
    fn more_data_does_not_hurt_much() {
        let ctx = ExperimentContext::fast();
        let rows = run(&ctx);
        for width in [30, 120] {
            let mut series: Vec<&Fig12Row> = rows
                .iter()
                .filter(|r| r.width == width && r.dataset == "VS")
                .collect();
            series.sort_by_key(|r| r.n_train);
            let first = series.first().unwrap().nmae;
            let last = series.last().unwrap().nmae;
            assert!(
                last <= first * 1.5,
                "width {width}: error grew from {first} to {last}"
            );
        }
    }
}
