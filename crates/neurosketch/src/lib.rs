//! # neurosketch — learned range-aggregate query answering
//!
//! Rust implementation of **NeuroSketch** (Zeighami, Shahabi, Sharan;
//! SIGMOD 2023): answer range aggregate queries (RAQs) with a forward pass
//! of a small neural network instead of touching the data.
//!
//! The pipeline (paper Fig. 4):
//!
//! 1. sample a training workload and label it with the exact
//!    [`query::QueryEngine`],
//! 2. partition the query space with a median-split kd-tree
//!    ([`spatial::KdTree`], Alg. 2),
//! 3. merge leaves that are *easy* — low [`aqc`](mod@aqc) (Average Query function
//!    Change, the practical proxy for the LDQ complexity measure of the
//!    paper's DQD bound) — until `s` partitions remain (Alg. 3),
//! 4. train an independent MLP per partition (Alg. 4),
//! 5. answer queries by kd-tree descent + one forward pass (Alg. 5).
//!
//! The theory side of the paper is implemented too: [`ldq`] gives
//! closed-form LDQ constants for the distributions of Examples 3.2/3.3 and
//! [`dqd`] evaluates the DQD bound (Theorems 3.1/3.4/3.5, Lemma 3.6).
//!
//! ```
//! use datagen::simple::uniform;
//! use query::{Aggregate, QueryEngine, Workload, WorkloadConfig, ActiveMode};
//! use query::workload::RangeMode;
//! use neurosketch::{NeuroSketch, NeuroSketchConfig};
//!
//! let data = uniform(2000, 2, 0);
//! let engine = QueryEngine::new(&data, 1);
//! let wl = Workload::generate(&WorkloadConfig {
//!     dims: 2,
//!     active: ActiveMode::Fixed(vec![0]),
//!     range: RangeMode::Uniform,
//!     count: 400,
//!     seed: 1,
//! }).unwrap();
//! let cfg = NeuroSketchConfig::small();
//! let (sketch, _report) =
//!     NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg).unwrap();
//! let approx = sketch.answer(&wl.queries[0]);
//! let exact = engine.answer(&wl.predicate, Aggregate::Count, &wl.queries[0]);
//! assert!((approx - exact).abs() / 2000.0 < 0.2);
//! ```

#![deny(missing_docs)]

pub mod aqc;
pub mod arch_search;
pub mod cache;
pub mod cluster;
pub mod deploy;
pub mod dqd;
pub mod ldq;
pub mod maintenance;
pub mod net;
pub mod persist;
pub mod router;
pub mod serve;
pub mod shard;
pub mod sketch;

pub use aqc::{aqc, normalized_aqc_std};
pub use cache::{AnswerCache, CachePolicy, CacheStats, CachedDeployment};
pub use cluster::{
    Cluster, ClusterBatchReport, ClusterError, ClusterEvent, ClusterOptions, ClusterReplicaView,
    Fault, FaultPlan, RoutePolicy, UpgradeStep,
};
pub use deploy::{DeployKind, DeployStats, Deployment, DeploymentInfo, LiveDeployment};
pub use maintenance::{DriftMonitor, DriftReport, MaintenancePlan, MaintenanceReport};
pub use net::{
    Frame, NetAnswer, NetClient, NetError, NetOptions, NetResponse, NetServer, NetStats,
    RejectCode, ServerInfo,
};
pub use persist::{Artifact, PersistError};
pub use serve::{ServeOptions, ServeStats, SketchServer};
pub use shard::{build_sharded, ShardPlan, ShardedServer, ShardedSketch};
pub use sketch::{BatchScratch, BuildReport, NeuroSketch, NeuroSketchConfig};

/// Errors produced while building or using a NeuroSketch.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// The training workload was empty or inconsistent.
    BadWorkload(String),
    /// Invalid hyperparameter combination.
    BadConfig(String),
    /// Query vector does not match the sketch's input dimensionality.
    BadQueryDim {
        /// Dimensionality the sketch was trained for.
        expected: usize,
        /// Dimensionality of the offending query vector.
        got: usize,
    },
    /// Drift monitoring was configured with an empty probe workload —
    /// there is nothing to test the deployment against.
    EmptyProbe,
    /// Drift monitoring was configured with a staleness threshold that
    /// can never fire meaningfully (non-positive or NaN).
    BadThreshold {
        /// The offending threshold value.
        got: f64,
    },
    /// A maintenance operation addressed a refreshable unit — a kd-tree
    /// partition (monolithic) or a data shard (sharded) — that the
    /// deployment does not have.
    NoSuchUnit {
        /// The offending unit index.
        unit: usize,
        /// Number of units the deployment actually has.
        units: usize,
    },
    /// Model (de)serialization failed.
    Serde(String),
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::BadWorkload(s) => write!(f, "bad workload: {s}"),
            SketchError::BadConfig(s) => write!(f, "bad config: {s}"),
            SketchError::BadQueryDim { expected, got } => {
                write!(f, "query vector length {got}, sketch expects {expected}")
            }
            SketchError::EmptyProbe => write!(f, "probe workload must be nonempty"),
            SketchError::BadThreshold { got } => {
                write!(f, "staleness threshold must be positive, got {got}")
            }
            SketchError::NoSuchUnit { unit, units } => {
                write!(f, "no refreshable unit {unit}: deployment has {units}")
            }
            SketchError::Serde(s) => write!(f, "serialization error: {s}"),
        }
    }
}

impl std::error::Error for SketchError {}
