//! AQC — Average Query function Change (Sec. 3.1.4).
//!
//! LDQ, the Lipschitz constant of the normalized distribution query
//! function, is the paper's complexity measure but is a supremum over all
//! query pairs and depends on the unobservable data distribution. AQC is
//! the practical proxy the paper uses instead:
//!
//! ```text
//!   AQC = (1 / C(|Q|,2)) · Σ_{q,q'∈Q} |f(q) − f(q')| / ‖q − q'‖
//! ```
//!
//! averaged over sampled query pairs. We use the 1-norm in the
//! denominator, consistent with the paper's Lipschitz definition
//! (Sec. 3.1.1). For large query sets the exact pairwise sum is quadratic,
//! so [`aqc_sampled`] caps the number of pairs with a deterministic
//! stride-based pair sample.

/// Exact AQC over all `C(n,2)` pairs. Pairs at identical query points are
/// skipped (their difference quotient is undefined).
///
/// # Panics
/// Panics if `queries` and `values` differ in length.
pub fn aqc(queries: &[Vec<f64>], values: &[f64]) -> f64 {
    assert_eq!(queries.len(), values.len(), "queries/values must pair up");
    let n = queries.len();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(r) = ratio(&queries[i], &queries[j], values[i], values[j]) {
                total += r;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total / pairs as f64
    }
}

/// AQC over at most `max_pairs` deterministically sampled pairs. With
/// `max_pairs >= C(n,2)` this equals [`aqc`].
pub fn aqc_sampled(queries: &[Vec<f64>], values: &[f64], max_pairs: usize) -> f64 {
    assert_eq!(queries.len(), values.len(), "queries/values must pair up");
    let n = queries.len();
    if n < 2 {
        return 0.0;
    }
    let all_pairs = n * (n - 1) / 2;
    if all_pairs <= max_pairs {
        return aqc(queries, values);
    }
    // Deterministic pair sampling: walk pair space with a large odd stride
    // (coprime with the pair count), visiting max_pairs distinct pairs.
    let stride = largest_coprime_stride(all_pairs);
    let mut total = 0.0;
    let mut pairs = 0usize;
    let mut idx = 0usize;
    for _ in 0..max_pairs {
        let (i, j) = unrank_pair(idx, n);
        if let Some(r) = ratio(&queries[i], &queries[j], values[i], values[j]) {
            total += r;
            pairs += 1;
        }
        idx = (idx + stride) % all_pairs;
    }
    if pairs == 0 {
        0.0
    } else {
        total / pairs as f64
    }
}

/// Normalized AQC standard deviation across partitions: `STD(R)/AVG(R)`
/// for `R = {AQC_N}` over kd-tree leaves (Table 3's second column). The
/// paper correlates this with the benefit of partitioning.
pub fn normalized_aqc_std(leaf_aqcs: &[f64]) -> f64 {
    if leaf_aqcs.is_empty() {
        return 0.0;
    }
    let n = leaf_aqcs.len() as f64;
    let mean = leaf_aqcs.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = leaf_aqcs.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

#[inline]
fn ratio(q1: &[f64], q2: &[f64], v1: f64, v2: f64) -> Option<f64> {
    let dist: f64 = q1.iter().zip(q2).map(|(a, b)| (a - b).abs()).sum();
    if dist > 0.0 {
        Some((v1 - v2).abs() / dist)
    } else {
        None
    }
}

/// Map a linear pair index to `(i, j)`, `i < j`, over `n` items.
fn unrank_pair(mut k: usize, n: usize) -> (usize, usize) {
    // Row i has (n - 1 - i) pairs.
    let mut i = 0usize;
    loop {
        let row = n - 1 - i;
        if k < row {
            return (i, i + 1 + k);
        }
        k -= row;
        i += 1;
    }
}

/// A stride roughly 41% of `m` (golden-ratio-ish) made coprime with `m`.
fn largest_coprime_stride(m: usize) -> usize {
    let mut s = ((m as f64 * 0.381_966) as usize).max(1);
    while gcd(s, m) != 1 {
        s += 1;
    }
    s
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_function_has_zero_aqc() {
        let qs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0]).collect();
        let vs = vec![3.0; 10];
        assert_eq!(aqc(&qs, &vs), 0.0);
    }

    #[test]
    fn linear_function_aqc_equals_slope() {
        // f(q) = 2q: every difference quotient is exactly 2.
        let qs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let vs: Vec<f64> = qs.iter().map(|q| 2.0 * q[0]).collect();
        assert!((aqc(&qs, &vs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn steeper_functions_have_larger_aqc() {
        let qs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 30.0]).collect();
        let smooth: Vec<f64> = qs.iter().map(|q| q[0]).collect();
        let sharp: Vec<f64> = qs
            .iter()
            .map(|q| if q[0] > 0.5 { 10.0 } else { 0.0 })
            .collect();
        assert!(aqc(&qs, &sharp) > aqc(&qs, &smooth));
    }

    #[test]
    fn duplicate_queries_are_skipped() {
        let qs = vec![vec![0.5], vec![0.5], vec![1.0]];
        let vs = vec![1.0, 2.0, 3.0];
        // Only pairs (0,2) and (1,2) count: |1-3|/0.5 = 4, |2-3|/0.5 = 2.
        assert!((aqc(&qs, &vs) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_matches_exact_when_budget_suffices() {
        let qs: Vec<Vec<f64>> = (0..15).map(|i| vec![(i as f64 * 0.618) % 1.0]).collect();
        let vs: Vec<f64> = qs.iter().map(|q| q[0] * q[0]).collect();
        assert_eq!(aqc(&qs, &vs), aqc_sampled(&qs, &vs, 1000));
    }

    #[test]
    fn sampled_approximates_exact_on_larger_sets() {
        let qs: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i as f64 * 0.754877) % 1.0, (i as f64 * 0.569840) % 1.0])
            .collect();
        let vs: Vec<f64> = qs.iter().map(|q| (6.0 * q[0]).sin() + q[1]).collect();
        let exact = aqc(&qs, &vs);
        let approx = aqc_sampled(&qs, &vs, 5000);
        assert!(
            (exact - approx).abs() / exact < 0.2,
            "exact {exact} approx {approx}"
        );
    }

    #[test]
    fn unrank_pair_is_a_bijection() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for k in 0..n * (n - 1) / 2 {
            let (i, j) = unrank_pair(k, n);
            assert!(i < j && j < n);
            assert!(seen.insert((i, j)));
        }
        assert_eq!(seen.len(), 21);
    }

    #[test]
    fn normalized_std_zero_for_uniform_leaves() {
        assert_eq!(normalized_aqc_std(&[2.0, 2.0, 2.0]), 0.0);
        assert!(normalized_aqc_std(&[1.0, 3.0]) > 0.0);
        assert_eq!(normalized_aqc_std(&[]), 0.0);
    }

    #[test]
    fn small_sets_degenerate_to_zero() {
        assert_eq!(aqc(&[vec![0.1]], &[5.0]), 0.0);
        assert_eq!(aqc_sampled(&[], &[], 10), 0.0);
    }
}
