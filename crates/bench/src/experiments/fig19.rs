//! Fig. 19 (Sec. A.5): the theoretical construction in practice.
//!
//! Compares, at matched parameter budgets, (1) **CS** — the Algorithm-1
//! memorization construction used as-is, (2) **CS+SGD** — the
//! construction as an initialization for SGD, and (3) **FNN+SGD(x)** —
//! randomly initialized fully connected nets of depth `x`. Run on a 2-D
//! query function (fixed-window AVG over VS-like data) and a 4-D one
//! (variable range). Shapes to check: CS+SGD wins on the 2-D function;
//! on 4-D, CS degrades badly and FNNs win (the paper's conclusion that
//! the construction helps only in low dimension).

use crate::common::ExperimentContext;
use datagen::PaperDataset;
use nn::construction::{GridNet, SlopeMode};
use nn::train::{train, TrainConfig};
use nn::Mlp;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::predicate::{FixedWidthRange, PredicateFn, Range};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One method's accuracy at one query dimensionality.
#[derive(Debug, Clone)]
pub struct Fig19Row {
    /// Query-function dimensionality (2 or 4).
    pub dims: usize,
    /// Method label.
    pub method: String,
    /// Parameter count of the model.
    pub params: usize,
    /// Test normalized MAE.
    pub nmae: f64,
}

/// Choose an FNN width whose parameter count is at most `budget` for the
/// given depth and input dim.
fn width_for_budget(input: usize, depth: usize, budget: usize) -> usize {
    let params = |w: usize| -> usize {
        let sizes = {
            let hidden = depth.saturating_sub(2);
            let mut s = vec![input];
            s.extend(std::iter::repeat_n(w, hidden));
            s.push(1);
            s
        };
        sizes.windows(2).map(|p| p[0] * p[1] + p[1]).sum()
    };
    let mut w = 1;
    while params(w + 1) <= budget && w < 4096 {
        w += 1;
    }
    w
}

fn eval_mlp(mlp: &Mlp, test: &[Vec<f64>], truth: &[f64], y_scale: (f64, f64)) -> f64 {
    let preds: Vec<f64> = test
        .iter()
        .map(|q| mlp.predict(q) * y_scale.1 + y_scale.0)
        .collect();
    normalized_mae(truth, &preds)
}

/// Run one dimensionality's comparison.
fn run_dim(
    ctx: &ExperimentContext,
    dims: usize,
    engine: &QueryEngine<'_>,
    pred: &dyn PredicateFn,
    queries: &[Vec<f64>],
) -> Vec<Fig19Row> {
    let n_test = ctx.test_queries().min(queries.len() / 4);
    let (train_q, test_q) = queries.split_at(queries.len() - n_test);
    let labels = engine.label_batch(pred, Aggregate::Avg, train_q, 4);
    let truth = engine.label_batch(pred, Aggregate::Avg, test_q, 4);

    // Target standardization shared by all SGD methods.
    let n = labels.len() as f64;
    let y_mean = labels.iter().sum::<f64>() / n;
    let y_std = (labels.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n)
        .sqrt()
        .max(1e-12);
    let ys: Vec<f64> = labels.iter().map(|y| (y - y_mean) / y_std).collect();

    // Parameter budget set by the construction at a modest t.
    let t = if dims == 2 {
        if ctx.fast {
            6
        } else {
            10
        }
    } else {
        3
    };
    let f = |x: &[f64]| engine.answer(pred, Aggregate::Avg, x);
    let grid = GridNet::construct(&f, dims, t, SlopeMode::LemmaA3).expect("construct");
    let budget = grid.to_mlp().param_count();

    let mut rows = Vec::new();
    // CS: the raw construction.
    let cs_preds: Vec<f64> = test_q.iter().map(|q| grid.forward(q)).collect();
    rows.push(Fig19Row {
        dims,
        method: "CS".into(),
        params: grid.param_count(),
        nmae: normalized_mae(&truth, &cs_preds),
    });

    // CS+SGD: construction (on the standardized function) as init.
    let f_std = |x: &[f64]| (engine.answer(pred, Aggregate::Avg, x) - y_mean) / y_std;
    let grid_std = GridNet::construct(&f_std, dims, t, SlopeMode::LemmaA3).expect("construct");
    let mut cs_sgd = grid_std.to_mlp();
    let tcfg = TrainConfig {
        epochs: if ctx.fast { 40 } else { 150 },
        lr: 1e-3,
        seed: ctx.seed,
        ..TrainConfig::default()
    };
    train(&mut cs_sgd, train_q, &ys, &tcfg);
    rows.push(Fig19Row {
        dims,
        method: "CS+SGD".into(),
        params: cs_sgd.param_count(),
        nmae: eval_mlp(&cs_sgd, test_q, &truth, (y_mean, y_std)),
    });

    // FNN+SGD at several depths, width chosen to match the budget.
    for depth in [2usize, 4, 6, 8] {
        let w = width_for_budget(dims, depth + 1, budget);
        let hidden = depth.saturating_sub(1);
        let mut sizes = vec![dims];
        sizes.extend(std::iter::repeat_n(w, hidden.max(1)));
        sizes.push(1);
        let mut fnn = Mlp::new(&sizes, ctx.seed ^ depth as u64);
        train(&mut fnn, train_q, &ys, &tcfg);
        rows.push(Fig19Row {
            dims,
            method: format!("FNN+SGD ({depth})"),
            params: fnn.param_count(),
            nmae: eval_mlp(&fnn, test_q, &truth, (y_mean, y_std)),
        });
    }
    rows
}

/// Run Fig. 19 on both query dimensionalities.
pub fn run(ctx: &ExperimentContext) -> Vec<Fig19Row> {
    let (data, measure) = ctx.dataset(PaperDataset::Vs);
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 19);
    let n_q = ctx.train_queries() + ctx.test_queries();

    // 2-D: fixed-window AVG (query = window corner).
    let width = 0.2;
    let pred2 =
        FixedWidthRange::new(vec![0, 1], vec![width, width], data.dims()).expect("valid predicate");
    let queries2: Vec<Vec<f64>> = (0..n_q)
        .map(|_| {
            vec![
                rng.random_range(0.0..1.0 - width),
                rng.random_range(0.0..1.0 - width),
            ]
        })
        .collect();
    let engine = QueryEngine::new(&data, measure);
    let mut rows = run_dim(ctx, 2, &engine, &pred2, &queries2);

    // 4-D: variable-range AVG (query = (c1, c2, r1, r2)).
    let pred4 = Range::new(vec![0, 1], data.dims()).expect("valid predicate");
    let queries4: Vec<Vec<f64>> = (0..n_q)
        .map(|_| {
            let c1: f64 = rng.random_range(0.0..0.8);
            let c2: f64 = rng.random_range(0.0..0.8);
            let r1: f64 = rng.random_range(0.1..(1.0 - c1));
            let r2: f64 = rng.random_range(0.1..(1.0 - c2));
            vec![c1, c2, r1, r2]
        })
        .collect();
    rows.extend(run_dim(ctx, 4, &engine, &pred4, &queries4));
    rows
}

/// Print both panels.
pub fn print(rows: &[Fig19Row]) {
    println!("\n==== Fig. 19: construction vs SGD ====");
    for dims in [2usize, 4] {
        println!("\n({dims}-dimensional queries)");
        println!("{:<14} {:>10} {:>10}", "method", "params", "nMAE");
        for r in rows.iter().filter(|r| r.dims == dims) {
            println!("{:<14} {:>10} {:>10.4}", r.method, r.params, r.nmae);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_budget_respects_budget() {
        let w = width_for_budget(2, 3, 1000);
        let params = 2 * w + w + w + 1;
        assert!(params <= 1000);
        let wp = width_for_budget(2, 3, 2000);
        assert!(wp >= w);
    }

    #[test]
    fn cs_sgd_beats_raw_cs_in_2d() {
        let ctx = ExperimentContext::fast();
        let rows = run(&ctx);
        let by = |d: usize, m: &str| {
            rows.iter()
                .find(|r| r.dims == d && r.method == m)
                .unwrap_or_else(|| panic!("{m} at {d}d"))
        };
        // SGD refinement should not hurt the construction (paper Fig. 19a).
        assert!(by(2, "CS+SGD").nmae <= by(2, "CS").nmae * 1.2);
        // In 4-D the raw construction is far worse than trained FNNs
        // (paper Fig. 19b).
        let fnn_best = rows
            .iter()
            .filter(|r| r.dims == 4 && r.method.starts_with("FNN"))
            .map(|r| r.nmae)
            .fold(f64::INFINITY, f64::min);
        assert!(
            by(4, "CS").nmae > fnn_best,
            "CS {} vs FNN {}",
            by(4, "CS").nmae,
            fnn_best
        );
    }
}
