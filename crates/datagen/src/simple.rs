//! Elementary distributions used by the theory experiments (Fig. 14,
//! Examples 3.2/3.3): uniform, single Gaussian, and two-component GMM in
//! low dimension, each with a closed-form LDQ in `neurosketch::ldq`.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Standard normal via Box–Muller (kept local so `datagen` has no
/// dependency on `nn`).
pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `n` i.i.d. uniform points over `[0,1]^dims`.
pub fn uniform(n: usize, dims: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let columns = (0..dims).map(|i| format!("x{i}")).collect();
    let data = (0..n * dims).map(|_| rng.random::<f64>()).collect();
    Dataset::new(columns, data).expect("valid by construction")
}

/// `n` i.i.d. points from an isotropic Gaussian `N(mu, sigma^2 I)` in
/// `dims` dimensions, truncated (by resampling) to `[0,1]^dims` so the
/// paper's `A_i ∈ [0,1]` assumption holds.
pub fn gaussian(n: usize, dims: usize, mu: f64, sigma: f64, seed: u64) -> Dataset {
    assert!(sigma > 0.0, "sigma must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let columns = (0..dims).map(|i| format!("x{i}")).collect();
    let mut data = Vec::with_capacity(n * dims);
    for _ in 0..n {
        for _ in 0..dims {
            // Rejection-sample into [0,1]; for the paper's parameters the
            // acceptance rate is high, but guard with a clamp fallback.
            let mut v = mu + sigma * standard_normal(&mut rng);
            let mut tries = 0;
            while !(0.0..=1.0).contains(&v) && tries < 64 {
                v = mu + sigma * standard_normal(&mut rng);
                tries += 1;
            }
            data.push(v.clamp(0.0, 1.0));
        }
    }
    Dataset::new(columns, data).expect("valid by construction")
}

/// A delta batch for update-ingestion experiments: `n` rows of which a
/// `drift` fraction (in expectation) come from a concentrated Gaussian
/// blob at `center` (per-attribute sigma 0.05, truncated to `[0,1]`) and
/// the rest from the uniform base distribution.
///
/// `drift = 0.0` is organic growth — the batch is distributed like
/// [`uniform`] data and appending it should leave a trained sketch
/// healthy; `drift = 1.0` is a hard shift whose mass a drift check
/// (`neurosketch::maintenance`'s `DriftMonitor`) must flag. Because
/// the blob is localized at `center`, the shift lands in *some* query
/// ranges and not others — exactly the partial-staleness shape the
/// per-partition maintenance path exists for. Deterministic given the
/// seed.
pub fn drift_batch(n: usize, dims: usize, drift: f64, center: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&drift), "drift must be in [0,1]");
    let sigma = 0.05;
    let mut rng = StdRng::seed_from_u64(seed);
    let columns = (0..dims).map(|i| format!("x{i}")).collect();
    let mut data = Vec::with_capacity(n * dims);
    for _ in 0..n {
        let blob = rng.random::<f64>() < drift;
        for _ in 0..dims {
            let v = if blob {
                let mut v = center + sigma * standard_normal(&mut rng);
                let mut tries = 0;
                while !(0.0..=1.0).contains(&v) && tries < 64 {
                    v = center + sigma * standard_normal(&mut rng);
                    tries += 1;
                }
                v.clamp(0.0, 1.0)
            } else {
                rng.random::<f64>()
            };
            data.push(v);
        }
    }
    Dataset::new(columns, data).expect("valid by construction")
}

/// `n` i.i.d. points from a two-component 1-D GMM with the given means,
/// common sigma, and equal weights, truncated to `[0,1]` (Fig. 14's "GMM").
pub fn gmm2(n: usize, mu1: f64, mu2: f64, sigma: f64, seed: u64) -> Dataset {
    assert!(sigma > 0.0, "sigma must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        let mu = if rng.random::<bool>() { mu1 } else { mu2 };
        let mut v = mu + sigma * standard_normal(&mut rng);
        let mut tries = 0;
        while !(0.0..=1.0).contains(&v) && tries < 64 {
            v = mu + sigma * standard_normal(&mut rng);
            tries += 1;
        }
        data.push(v.clamp(0.0, 1.0));
    }
    Dataset::new(vec!["x0".into()], data).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bounds_and_shape() {
        let d = uniform(500, 3, 1);
        assert_eq!(d.rows(), 500);
        assert_eq!(d.dims(), 3);
        assert!(d.raw().iter().all(|v| (0.0..1.0).contains(v)));
        // Mean of each column should be near 0.5.
        for c in 0..3 {
            let (mean, _) = d.column_stats(c);
            assert!((mean - 0.5).abs() < 0.05, "col {c} mean {mean}");
        }
    }

    #[test]
    fn gaussian_concentrates_around_mu() {
        let d = gaussian(2000, 1, 0.5, 0.1, 2);
        let (mean, std) = d.column_stats(0);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((std - 0.1).abs() < 0.02, "std {std}");
        assert!(d.raw().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn gmm2_is_bimodal() {
        let d = gmm2(4000, 0.25, 0.75, 0.05, 3);
        let vals = d.column(0);
        let near = |c: f64| vals.iter().filter(|v| (*v - c).abs() < 0.15).count();
        let n1 = near(0.25);
        let n2 = near(0.75);
        assert!(n1 > 1000 && n2 > 1000, "modes {n1} {n2}");
        // Very few points in the trough between modes.
        let trough = vals.iter().filter(|v| (0.45..0.55).contains(*v)).count();
        assert!(trough < 200, "trough {trough}");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(uniform(50, 2, 9).raw(), uniform(50, 2, 9).raw());
        assert_ne!(uniform(50, 2, 9).raw(), uniform(50, 2, 10).raw());
        assert_eq!(
            drift_batch(50, 2, 0.5, 0.2, 9).raw(),
            drift_batch(50, 2, 0.5, 0.2, 9).raw()
        );
    }

    #[test]
    fn drift_batch_concentrates_with_drift() {
        let near_center = |d: &Dataset| {
            d.raw().iter().filter(|v| (**v - 0.2).abs() < 0.15).count() as f64
                / d.raw().len() as f64
        };
        // No drift: batch looks uniform (~30% of mass within ±0.15 of 0.2).
        let organic = drift_batch(3_000, 2, 0.0, 0.2, 4);
        assert!(near_center(&organic) < 0.45, "{}", near_center(&organic));
        assert!(organic.raw().iter().all(|v| (0.0..=1.0).contains(v)));
        // Full drift: nearly all mass lands in the blob.
        let shifted = drift_batch(3_000, 2, 1.0, 0.2, 4);
        assert!(near_center(&shifted) > 0.95, "{}", near_center(&shifted));
        // Half drift sits in between.
        let half = drift_batch(3_000, 2, 0.5, 0.2, 4);
        assert!(near_center(&half) > near_center(&organic));
        assert!(near_center(&half) < near_center(&shifted));
    }
}
